//! Property test: the Hungarian assignment is exactly optimal.
//!
//! The misclassification metric (the paper's central quality measure)
//! rests on the Kuhn–Munkres implementation; here it is checked against
//! exhaustive permutation search on random small instances.

use proptest::prelude::*;
use rbt_cluster::metrics::hungarian_min;
use rbt_linalg::Matrix;

fn permutations(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut items: Vec<usize> = (0..n).collect();
    fn heap(k: usize, items: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if k <= 1 {
            out.push(items.clone());
            return;
        }
        for i in 0..k {
            heap(k - 1, items, out);
            if k.is_multiple_of(2) {
                items.swap(i, k - 1);
            } else {
                items.swap(0, k - 1);
            }
        }
    }
    heap(n, &mut items, &mut out);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn hungarian_matches_exhaustive_search(n in 1usize..6, vals in prop::collection::vec(-100.0..100.0f64, 25)) {
        let cost = Matrix::from_vec(n, n, vals[..n * n].to_vec()).unwrap();
        let assignment = hungarian_min(&cost);

        // It is a permutation.
        let mut seen = assignment.clone();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..n).collect::<Vec<_>>());

        let total: f64 = assignment.iter().enumerate().map(|(i, &j)| cost[(i, j)]).sum();
        let best = permutations(n)
            .into_iter()
            .map(|perm| perm.iter().enumerate().map(|(i, &j)| cost[(i, j)]).sum::<f64>())
            .fold(f64::INFINITY, f64::min);
        prop_assert!(
            total <= best + 1e-9 * (1.0 + best.abs()),
            "hungarian {total} vs exhaustive {best}"
        );
    }

    #[test]
    fn misclassification_is_zero_iff_same_partition(labels in prop::collection::vec(0usize..4, 2..40), relabel in prop::collection::vec(0usize..7, 4)) {
        use rbt_cluster::metrics::{misclassification_error, same_partition};
        // Build a relabelled copy through a (possibly non-injective) map.
        let mapped: Vec<usize> = labels.iter().map(|&l| relabel[l]).collect();
        let err = misclassification_error(&labels, &mapped).unwrap();
        if same_partition(&labels, &mapped) {
            prop_assert!(err.abs() < 1e-12);
        } else {
            prop_assert!(err > 0.0);
        }
    }

    #[test]
    fn metrics_are_symmetric_in_their_arguments(a in prop::collection::vec(0usize..3, 5..30), seed in 0u64..100) {
        use rbt_cluster::metrics::{adjusted_rand_index, rand_index};
        // A derived second labelling.
        let b: Vec<usize> = a.iter().enumerate().map(|(i, &l)| (l + (i as u64 % (seed % 3 + 1)) as usize) % 3).collect();
        let r_ab = rand_index(&a, &b).unwrap();
        let r_ba = rand_index(&b, &a).unwrap();
        prop_assert!((r_ab - r_ba).abs() < 1e-12);
        let ari_ab = adjusted_rand_index(&a, &b).unwrap();
        let ari_ba = adjusted_rand_index(&b, &a).unwrap();
        prop_assert!((ari_ab - ari_ba).abs() < 1e-12);
    }
}
