//! Lloyd's k-means with k-means++ or random initialisation.
//!
//! K-means is the algorithm the related privacy-preserving-clustering work
//! (\[13\] Vaidya & Clifton) targets, and the workhorse of the Corollary 1
//! experiments: because its assignments depend only on squared Euclidean
//! distances to centroids, an isometric transformation of the data leaves
//! the clustering trajectory identical (given the same initialisation
//! choices), so RBT preserves its output *exactly*.

use crate::{Error, Result};
use rand::Rng;
use rbt_linalg::distance::Metric;
use rbt_linalg::kernels;
use rbt_linalg::pool::{self, even_chunks, Pool};
use rbt_linalg::Matrix;

/// Initialisation strategy for k-means.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KMeansInit {
    /// k-means++ seeding (D² sampling) — the default.
    #[default]
    PlusPlus,
    /// Uniformly random distinct points.
    Random,
    /// The first `k` points of the dataset (fully deterministic; used by the
    /// isometry experiments so that runs on `D` and `D'` are comparable
    /// without sharing an RNG).
    FirstK,
}

/// Configuration for Lloyd's algorithm.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use rbt_cluster::{KMeans, KMeansInit};
/// use rbt_linalg::Matrix;
///
/// let data = Matrix::from_rows(&[
///     &[0.0, 0.0], &[0.2, 0.1], &[9.0, 9.0], &[9.1, 8.9],
/// ]).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let result = KMeans::new(2).unwrap()
///     .with_init(KMeansInit::FirstK)
///     .fit(&data, &mut rng).unwrap();
/// assert_eq!(result.labels[0], result.labels[1]);
/// assert_ne!(result.labels[0], result.labels[2]);
/// ```
#[derive(Debug, Clone)]
pub struct KMeans {
    k: usize,
    max_iters: usize,
    tol: f64,
    init: KMeansInit,
    threads: usize,
}

/// Outcome of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster assignment per point, in `0..k`.
    pub labels: Vec<usize>,
    /// Final centroids (`k × n`).
    pub centroids: Matrix,
    /// Sum of squared distances of points to their centroid (inertia).
    pub inertia: f64,
    /// Lloyd iterations executed.
    pub iterations: usize,
    /// Whether the centroid movement fell below the tolerance.
    pub converged: bool,
}

impl KMeans {
    /// Creates a configuration for `k` clusters with defaults
    /// (`max_iters = 300`, `tol = 1e-9`, k-means++ init, and as many
    /// assignment threads as the machine offers).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for `k == 0`.
    pub fn new(k: usize) -> Result<Self> {
        if k == 0 {
            return Err(Error::InvalidParameter("k must be positive".into()));
        }
        Ok(KMeans {
            k,
            max_iters: 300,
            tol: 1e-9,
            init: KMeansInit::default(),
            threads: pool::default_threads(),
        })
    }

    /// Sets the iteration budget.
    pub fn with_max_iters(mut self, max_iters: usize) -> Self {
        self.max_iters = max_iters;
        self
    }

    /// Sets the centroid-movement convergence tolerance.
    pub fn with_tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Sets the initialisation strategy.
    pub fn with_init(mut self, init: KMeansInit) -> Self {
        self.init = init;
        self
    }

    /// Sets the number of threads the assignment step may use (clamped to
    /// ≥ 1). Labels, centroids, inertia and iteration counts are
    /// **bit-for-bit identical** for every thread count: each row's nearest
    /// centroid is computed by the same kernel regardless of which thread
    /// owns the row, and all cross-row reductions stay in serial row order.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Runs Lloyd's algorithm on the rows of `data`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TooFewPoints`] if `data.rows() < k`.
    pub fn fit<R: Rng + ?Sized>(&self, data: &Matrix, rng: &mut R) -> Result<KMeansResult> {
        let m = data.rows();
        if m < self.k {
            return Err(Error::TooFewPoints {
                points: m,
                required: self.k,
            });
        }
        let n = data.cols();
        let mut centroids = self.initial_centroids(data, rng);
        let mut labels = vec![0usize; m];
        let mut counts = vec![0usize; self.k];
        let mut new_centroids = Matrix::zeros(self.k, n);
        let mut iterations = 0;
        let mut converged = false;
        let pool = Pool::new(self.threads);
        // (label, squared distance) per row — the parallel assignment
        // output buffer.
        let mut assignment = vec![(0usize, 0.0f64); m];

        for iter in 0..self.max_iters {
            iterations = iter + 1;
            // Assignment step: blocked kernel sweep, rows split across the
            // pool. Each row's result is independent, so the labels are
            // identical to the serial loop.
            assign_rows(data, &centroids, &pool, &mut assignment);
            for (label, a) in labels.iter_mut().zip(&assignment) {
                *label = a.0;
            }
            // Update step.
            for v in new_centroids.as_mut_slice() {
                *v = 0.0;
            }
            counts.iter_mut().for_each(|c| *c = 0);
            for (point, &label) in data.row_iter().zip(&labels) {
                counts[label] += 1;
                let c = new_centroids.row_mut(label);
                for (cv, &pv) in c.iter_mut().zip(point) {
                    *cv += pv;
                }
            }
            for (j, &count) in counts.iter().enumerate() {
                if count == 0 {
                    // Empty cluster: re-seed to the point farthest from its
                    // centroid — deterministic and standard practice.
                    let far = farthest_point(data, &centroids, &labels);
                    new_centroids.row_mut(j).copy_from_slice(data.row(far));
                } else {
                    let inv = 1.0 / count as f64;
                    for v in new_centroids.row_mut(j) {
                        *v *= inv;
                    }
                }
            }
            // Convergence: max centroid movement.
            let shift = centroids
                .max_abs_diff(&new_centroids)
                .expect("same shape by construction");
            std::mem::swap(&mut centroids, &mut new_centroids);
            if shift <= self.tol {
                converged = true;
                break;
            }
        }

        // Final assignment against the final centroids. The inertia
        // reduction stays in serial row order so it does not depend on the
        // thread count.
        assign_rows(data, &centroids, &pool, &mut assignment);
        let mut inertia = 0.0;
        for (label, &(nearest, d2)) in labels.iter_mut().zip(&assignment) {
            *label = nearest;
            inertia += d2;
        }

        Ok(KMeansResult {
            labels,
            centroids,
            inertia,
            iterations,
            converged,
        })
    }

    fn initial_centroids<R: Rng + ?Sized>(&self, data: &Matrix, rng: &mut R) -> Matrix {
        let m = data.rows();
        let n = data.cols();
        let mut centroids = Matrix::zeros(self.k, n);
        match self.init {
            KMeansInit::FirstK => {
                for j in 0..self.k {
                    centroids.row_mut(j).copy_from_slice(data.row(j));
                }
            }
            KMeansInit::Random => {
                let mut chosen = Vec::with_capacity(self.k);
                while chosen.len() < self.k {
                    let i = rng.random_range(0..m);
                    if !chosen.contains(&i) {
                        chosen.push(i);
                    }
                }
                for (j, &i) in chosen.iter().enumerate() {
                    centroids.row_mut(j).copy_from_slice(data.row(i));
                }
            }
            KMeansInit::PlusPlus => {
                // D² sampling.
                let first = rng.random_range(0..m);
                centroids.row_mut(0).copy_from_slice(data.row(first));
                let mut d2: Vec<f64> = data
                    .row_iter()
                    .map(|p| Metric::SquaredEuclidean.distance(p, data.row(first)))
                    .collect();
                for j in 1..self.k {
                    let total: f64 = d2.iter().sum();
                    let idx = if total <= 0.0 {
                        // All remaining points coincide with a centroid.
                        rng.random_range(0..m)
                    } else {
                        let mut target = rng.random_range(0.0..total);
                        let mut pick = m - 1;
                        for (i, &w) in d2.iter().enumerate() {
                            if target < w {
                                pick = i;
                                break;
                            }
                            target -= w;
                        }
                        pick
                    };
                    centroids.row_mut(j).copy_from_slice(data.row(idx));
                    for (i, point) in data.row_iter().enumerate() {
                        let nd = Metric::SquaredEuclidean.distance(point, data.row(idx));
                        if nd < d2[i] {
                            d2[i] = nd;
                        }
                    }
                }
            }
        }
        centroids
    }
}

/// Below this many rows the assignment sweep runs inline: spawning scoped
/// threads costs tens of microseconds per iteration, which dwarfs the
/// nanoseconds of work the paper-scale (tens of rows) workloads need.
const PARALLEL_ASSIGN_MIN_ROWS: usize = 512;

/// Fills `out[i]` with `(nearest centroid, squared distance)` for every row
/// of `data`, splitting rows across the pool (inline below
/// [`PARALLEL_ASSIGN_MIN_ROWS`]). Runs the blocked
/// [`kernels::nearest_row_squared`] argmin per row — first-minimum tie
/// handling and scan order match the scalar loop, so output is identical
/// for any thread count.
fn assign_rows(data: &Matrix, centroids: &Matrix, pool: &Pool, out: &mut [(usize, f64)]) {
    let rows = data.rows();
    let threads = if rows < PARALLEL_ASSIGN_MIN_ROWS {
        1
    } else {
        pool.threads()
    };
    let bounds = even_chunks(rows, threads);
    let flat = centroids.as_slice();
    let (k, cols) = centroids.shape();
    pool.for_each_chunk_mut(out, &bounds, |_, start, chunk| {
        for (t, slot) in chunk.iter_mut().enumerate() {
            *slot = kernels::nearest_row_squared(data.row(start + t), flat, cols, k);
        }
    });
}

fn farthest_point(data: &Matrix, centroids: &Matrix, labels: &[usize]) -> usize {
    let mut best = (0usize, -1.0f64);
    for (i, point) in data.row_iter().enumerate() {
        let d2 = kernels::squared_euclidean(point, centroids.row(labels[i]));
        if d2 > best.1 {
            best = (i, d2);
        }
    }
    best.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    /// Two tight, well-separated blobs around (0,0) and (10,10).
    fn two_blobs() -> (Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut truth = Vec::new();
        for i in 0..20 {
            let jitter = (i as f64) * 0.01;
            rows.push(vec![jitter, -jitter]);
            truth.push(0);
            rows.push(vec![10.0 + jitter, 10.0 - jitter]);
            truth.push(1);
        }
        (Matrix::from_row_iter(rows).unwrap(), truth)
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(KMeans::new(0).is_err());
        let km = KMeans::new(5).unwrap();
        let data = Matrix::zeros(3, 2);
        assert!(matches!(
            km.fit(&data, &mut rng(0)),
            Err(Error::TooFewPoints {
                points: 3,
                required: 5
            })
        ));
    }

    #[test]
    fn separates_two_blobs() {
        let (data, truth) = two_blobs();
        let result = KMeans::new(2).unwrap().fit(&data, &mut rng(42)).unwrap();
        assert!(result.converged);
        // Perfect separation up to label permutation.
        let mis = crate::metrics::misclassification_error(&truth, &result.labels).unwrap();
        assert_eq!(mis, 0.0);
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let (data, _) = two_blobs();
        let i1 = KMeans::new(1)
            .unwrap()
            .fit(&data, &mut rng(1))
            .unwrap()
            .inertia;
        let i2 = KMeans::new(2)
            .unwrap()
            .fit(&data, &mut rng(1))
            .unwrap()
            .inertia;
        let i4 = KMeans::new(4)
            .unwrap()
            .fit(&data, &mut rng(1))
            .unwrap()
            .inertia;
        assert!(i2 < i1);
        assert!(i4 <= i2 + 1e-9);
    }

    #[test]
    fn deterministic_with_first_k_init() {
        let (data, _) = two_blobs();
        let km = KMeans::new(2).unwrap().with_init(KMeansInit::FirstK);
        let a = km.fit(&data, &mut rng(1)).unwrap();
        let b = km.fit(&data, &mut rng(999)).unwrap();
        assert_eq!(a.labels, b.labels);
        assert!(a.centroids.approx_eq(&b.centroids, 0.0));
    }

    #[test]
    fn all_inits_work_on_blobs() {
        let (data, truth) = two_blobs();
        for init in [KMeansInit::PlusPlus, KMeansInit::Random, KMeansInit::FirstK] {
            let result = KMeans::new(2)
                .unwrap()
                .with_init(init)
                .fit(&data, &mut rng(7))
                .unwrap();
            let mis = crate::metrics::misclassification_error(&truth, &result.labels).unwrap();
            assert_eq!(mis, 0.0, "init {init:?} failed");
        }
    }

    #[test]
    fn k_equals_m_gives_zero_inertia() {
        let data = Matrix::from_rows(&[&[0.0, 0.0], &[5.0, 5.0], &[9.0, 1.0]]).unwrap();
        let result = KMeans::new(3)
            .unwrap()
            .with_init(KMeansInit::FirstK)
            .fit(&data, &mut rng(3))
            .unwrap();
        assert!(result.inertia < 1e-12);
        let mut sorted = result.labels.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn handles_duplicate_points() {
        let data = Matrix::from_row_iter(vec![vec![1.0, 1.0]; 10]).unwrap();
        let result = KMeans::new(2).unwrap().fit(&data, &mut rng(5)).unwrap();
        assert_eq!(result.labels.len(), 10);
        assert!(result.inertia < 1e-12);
    }

    #[test]
    fn labels_are_in_range() {
        let (data, _) = two_blobs();
        let result = KMeans::new(3).unwrap().fit(&data, &mut rng(11)).unwrap();
        assert!(result.labels.iter().all(|&l| l < 3));
        assert_eq!(result.centroids.shape(), (3, 2));
    }

    #[test]
    fn parallel_assignment_bitwise_matches_serial() {
        // An irregular seeded workload (not cleanly separable) so the
        // assignment actually iterates and ties are plausible. Larger than
        // PARALLEL_ASSIGN_MIN_ROWS so the pooled path really runs.
        let rows: Vec<Vec<f64>> = (0..600)
            .map(|i| {
                let x = (i as f64 * 0.7).sin() * 10.0;
                let y = (i as f64 * 1.3).cos() * 5.0;
                vec![x, y, x * y, x - y, x + 0.5 * y]
            })
            .collect();
        let data = Matrix::from_row_iter(rows).unwrap();
        for init in [KMeansInit::FirstK, KMeansInit::PlusPlus, KMeansInit::Random] {
            let serial = KMeans::new(5)
                .unwrap()
                .with_init(init)
                .with_threads(1)
                .fit(&data, &mut rng(9))
                .unwrap();
            for threads in [2usize, 3, 4, 8] {
                let par = KMeans::new(5)
                    .unwrap()
                    .with_init(init)
                    .with_threads(threads)
                    .fit(&data, &mut rng(9))
                    .unwrap();
                assert_eq!(serial.labels, par.labels, "{init:?} threads={threads}");
                assert!(
                    serial.centroids.approx_eq(&par.centroids, 0.0),
                    "{init:?} threads={threads}"
                );
                assert_eq!(
                    serial.inertia.to_bits(),
                    par.inertia.to_bits(),
                    "{init:?} threads={threads}"
                );
                assert_eq!(serial.iterations, par.iterations);
                assert_eq!(serial.converged, par.converged);
            }
        }
    }

    #[test]
    fn max_iters_respected() {
        let (data, _) = two_blobs();
        let result = KMeans::new(2)
            .unwrap()
            .with_max_iters(1)
            .fit(&data, &mut rng(1))
            .unwrap();
        assert_eq!(result.iterations, 1);
    }
}
