//! Model selection: choosing `k` when the ground truth is unknown.
//!
//! The sharing scenario of the paper leaves the miner with an unlabelled
//! released matrix, so the miner must pick `k` itself. This module sweeps
//! `k` and scores each candidate clustering with the silhouette
//! coefficient. Because both k-means (Euclidean) and the silhouette are
//! rotation-invariant, **the selected `k` is identical on the original and
//! the RBT-released data** — model selection is covered by Corollary 1 too.

use crate::kmeans::{KMeans, KMeansInit};
use crate::metrics::silhouette;
use crate::{Error, Result};
use rand::Rng;
use rbt_linalg::dissimilarity::DissimilarityMatrix;
use rbt_linalg::distance::Metric;
use rbt_linalg::Matrix;

/// One candidate from a `k` sweep.
#[derive(Debug, Clone)]
pub struct KCandidate {
    /// The number of clusters tried.
    pub k: usize,
    /// Mean silhouette of the k-means clustering at this `k`.
    pub silhouette: f64,
    /// The labels produced at this `k`.
    pub labels: Vec<usize>,
}

/// Sweeps `k` over `k_range` with deterministic (`FirstK`) k-means and
/// returns every candidate plus the index of the silhouette-best one.
///
/// # Errors
///
/// * [`Error::InvalidParameter`] for an empty range or `k < 2` anywhere in
///   it (silhouette needs at least two clusters),
/// * propagated k-means errors (e.g. more clusters than points).
pub fn select_k<R: Rng + ?Sized>(
    data: &Matrix,
    k_range: std::ops::RangeInclusive<usize>,
    rng: &mut R,
) -> Result<(usize, Vec<KCandidate>)> {
    if k_range.is_empty() {
        return Err(Error::InvalidParameter("empty k range".into()));
    }
    if *k_range.start() < 2 {
        return Err(Error::InvalidParameter(
            "silhouette-based selection needs k >= 2".into(),
        ));
    }
    let dm = DissimilarityMatrix::from_matrix_parallel(
        data,
        Metric::Euclidean,
        rbt_linalg::pool::default_threads(),
    );
    let mut candidates = Vec::new();
    for k in k_range {
        let result = KMeans::new(k)?
            .with_init(KMeansInit::FirstK)
            .fit(data, rng)?;
        let score = silhouette(&dm, &result.labels)?;
        candidates.push(KCandidate {
            k,
            silhouette: score,
            labels: result.labels,
        });
    }
    let best = candidates
        .iter()
        .enumerate()
        .max_by(|a, b| {
            a.1.silhouette
                .partial_cmp(&b.1.silhouette)
                .expect("finite silhouettes")
        })
        .map(|(i, _)| i)
        .expect("non-empty candidates");
    Ok((best, candidates))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn blobs(k: usize, per: usize) -> Matrix {
        let mut rows = Vec::new();
        for c in 0..k {
            let cx = 20.0 * (c as f64);
            for i in 0..per {
                let j = i as f64 * 0.01;
                rows.push(vec![cx + j, cx - j]);
            }
        }
        Matrix::from_row_iter(rows).unwrap()
    }

    #[test]
    fn finds_the_true_k() {
        let data = blobs(3, 30);
        let (best, candidates) = select_k(&data, 2..=6, &mut rng(1)).unwrap();
        assert_eq!(candidates[best].k, 3);
        // Every candidate is populated consistently.
        for c in &candidates {
            assert_eq!(c.labels.len(), 90);
            assert!(c.silhouette.is_finite());
        }
    }

    #[test]
    fn selection_is_invariant_under_rbt() {
        use rbt_data::Normalization;
        let raw = blobs(4, 25);
        let (_, normalized) = Normalization::zscore_paper().fit_transform(&raw).unwrap();
        // Rotate column pair (0, 1) — a hand-rolled RBT step, avoiding a
        // dev-dependency cycle on rbt-core.
        let mut released = normalized.clone();
        let mut xs = released.column(0);
        let mut ys = released.column(1);
        rbt_linalg::Rotation2::from_degrees(203.7)
            .apply_columns(&mut xs, &mut ys)
            .unwrap();
        released.set_column(0, &xs).unwrap();
        released.set_column(1, &ys).unwrap();

        let (best_a, cand_a) = select_k(&normalized, 2..=6, &mut rng(2)).unwrap();
        let (best_b, cand_b) = select_k(&released, 2..=6, &mut rng(2)).unwrap();
        assert_eq!(cand_a[best_a].k, cand_b[best_b].k);
        for (a, b) in cand_a.iter().zip(&cand_b) {
            assert!((a.silhouette - b.silhouette).abs() < 1e-9);
        }
    }

    #[test]
    fn validates_range() {
        let data = blobs(2, 10);
        assert!(matches!(
            select_k(&data, 1..=4, &mut rng(0)),
            Err(Error::InvalidParameter(_))
        ));
        #[allow(clippy::reversed_empty_ranges)]
        let empty = 5..=2;
        assert!(matches!(
            select_k(&data, empty, &mut rng(0)),
            Err(Error::InvalidParameter(_))
        ));
        // k beyond the point count propagates the k-means error.
        assert!(select_k(&data, 2..=100, &mut rng(0)).is_err());
    }
}
