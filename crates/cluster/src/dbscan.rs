//! DBSCAN — density-based clustering with noise.
//!
//! DBSCAN's output depends on the data only through pairwise distances
//! (ε-neighbourhoods), so it is another family on which Corollary 1's
//! "any distance-based algorithm" claim can be validated — including on
//! non-convex shapes (rings) where k-means fails.

use crate::{Error, Result};
use rbt_linalg::dissimilarity::DissimilarityMatrix;
use rbt_linalg::distance::Metric;
use rbt_linalg::pool::{self, even_chunks, Pool};
use rbt_linalg::Matrix;

/// Label assigned to noise points.
pub const NOISE: usize = usize::MAX;

/// DBSCAN configuration.
#[derive(Debug, Clone, Copy)]
pub struct Dbscan {
    eps: f64,
    min_points: usize,
}

/// Outcome of a DBSCAN run.
#[derive(Debug, Clone)]
pub struct DbscanResult {
    /// Cluster id per point (`0..n_clusters`), or [`NOISE`].
    pub labels: Vec<usize>,
    /// Number of clusters discovered.
    pub n_clusters: usize,
    /// Indices of noise points.
    pub noise: Vec<usize>,
}

impl Dbscan {
    /// Creates a configuration.
    ///
    /// `min_points` counts the point itself, following the original paper
    /// (Ester et al.): a core point has at least `min_points` points within
    /// distance `eps`, itself included.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for non-positive/NaN `eps` or
    /// `min_points == 0`.
    pub fn new(eps: f64, min_points: usize) -> Result<Self> {
        if eps.is_nan() || eps <= 0.0 {
            return Err(Error::InvalidParameter(format!(
                "eps must be positive, got {eps}"
            )));
        }
        if min_points == 0 {
            return Err(Error::InvalidParameter(
                "min_points must be positive".into(),
            ));
        }
        Ok(Dbscan { eps, min_points })
    }

    /// The neighbourhood radius.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// The core-point density threshold.
    pub fn min_points(&self) -> usize {
        self.min_points
    }

    /// Runs DBSCAN on row vectors with the given metric.
    ///
    /// The dissimilarity matrix is built on the shared pool
    /// ([`DissimilarityMatrix::from_matrix_parallel`]) with the machine's
    /// available parallelism.
    pub fn fit(&self, data: &Matrix, metric: Metric) -> DbscanResult {
        let dm = DissimilarityMatrix::from_matrix_parallel(data, metric, pool::default_threads());
        self.fit_precomputed(&dm)
    }

    /// Runs DBSCAN on a precomputed dissimilarity matrix.
    ///
    /// The ε-region queries — the O(n²) part — are answered up front, in
    /// parallel, one neighbour list per point; the breadth-first cluster
    /// expansion then consumes the precomputed lists. Each list depends
    /// only on `dm`, so labels are bit-identical to the serial
    /// query-as-you-go formulation for any thread count.
    pub fn fit_precomputed(&self, dm: &DissimilarityMatrix) -> DbscanResult {
        let n = dm.len();
        const UNVISITED: usize = usize::MAX - 1;
        let mut labels = vec![UNVISITED; n];
        let mut n_clusters = 0usize;

        let mut neighbours: Vec<Vec<usize>> = vec![Vec::new(); n];
        // Below ~512 points the O(n²) query sweep is microseconds — run it
        // inline rather than paying thread-spawn latency.
        let pool = if n < 512 { Pool::new(1) } else { Pool::auto() };
        pool.for_each_chunk_mut(&mut neighbours, &even_chunks(n, pool.threads()), {
            |_, start, chunk| {
                for (t, list) in chunk.iter_mut().enumerate() {
                    let i = start + t;
                    *list = (0..n).filter(|&j| dm.get(i, j) <= self.eps).collect();
                }
            }
        });

        for i in 0..n {
            if labels[i] != UNVISITED {
                continue;
            }
            let seeds = &neighbours[i];
            if seeds.len() < self.min_points {
                labels[i] = NOISE;
                continue;
            }
            let cluster = n_clusters;
            n_clusters += 1;
            labels[i] = cluster;
            // Expand cluster: breadth-first over density-reachable points.
            let mut queue: std::collections::VecDeque<usize> = seeds.iter().copied().collect();
            while let Some(j) = queue.pop_front() {
                if labels[j] == NOISE {
                    labels[j] = cluster; // border point claimed by this cluster
                }
                if labels[j] != UNVISITED {
                    continue;
                }
                labels[j] = cluster;
                let jn = &neighbours[j];
                if jn.len() >= self.min_points {
                    queue.extend(jn.iter().copied());
                }
            }
        }

        let noise: Vec<usize> = labels
            .iter()
            .enumerate()
            .filter_map(|(i, &l)| (l == NOISE).then_some(i))
            .collect();
        DbscanResult {
            labels,
            n_clusters,
            noise,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Dbscan::new(0.0, 3).is_err());
        assert!(Dbscan::new(-1.0, 3).is_err());
        assert!(Dbscan::new(f64::NAN, 3).is_err());
        assert!(Dbscan::new(1.0, 0).is_err());
        assert!(Dbscan::new(1.0, 1).is_ok());
    }

    #[test]
    fn two_dense_groups_one_outlier() {
        let m = Matrix::from_rows(&[
            &[0.0, 0.0],
            &[0.2, 0.0],
            &[0.0, 0.2],
            &[10.0, 10.0],
            &[10.2, 10.0],
            &[10.0, 10.2],
            &[50.0, 50.0], // outlier
        ])
        .unwrap();
        let result = Dbscan::new(0.5, 3).unwrap().fit(&m, Metric::Euclidean);
        assert_eq!(result.n_clusters, 2);
        assert_eq!(result.noise, vec![6]);
        assert_eq!(result.labels[0], result.labels[1]);
        assert_eq!(result.labels[3], result.labels[4]);
        assert_ne!(result.labels[0], result.labels[3]);
        assert_eq!(result.labels[6], NOISE);
    }

    #[test]
    fn chain_connectivity() {
        // A chain of points each 0.9 apart: single dense cluster at eps=1.
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 * 0.9, 0.0]).collect();
        let m = Matrix::from_row_iter(rows).unwrap();
        let result = Dbscan::new(1.0, 2).unwrap().fit(&m, Metric::Euclidean);
        assert_eq!(result.n_clusters, 1);
        assert!(result.noise.is_empty());
    }

    #[test]
    fn everything_noise_when_eps_tiny() {
        let m = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0]]).unwrap();
        let result = Dbscan::new(1e-6, 2).unwrap().fit(&m, Metric::Euclidean);
        assert_eq!(result.n_clusters, 0);
        assert_eq!(result.noise.len(), 3);
    }

    #[test]
    fn min_points_one_makes_every_point_core() {
        let m = Matrix::from_rows(&[&[0.0], &[10.0]]).unwrap();
        let result = Dbscan::new(0.1, 1).unwrap().fit(&m, Metric::Euclidean);
        assert_eq!(result.n_clusters, 2);
        assert!(result.noise.is_empty());
    }

    #[test]
    fn border_point_attaches_to_first_cluster() {
        // Dense core at x≈0, border point at 1.0 reachable but not core.
        let m = Matrix::from_rows(&[&[0.0], &[0.1], &[0.2], &[1.0]]).unwrap();
        let result = Dbscan::new(0.9, 3).unwrap().fit(&m, Metric::Euclidean);
        assert_eq!(result.n_clusters, 1);
        assert_eq!(result.labels[3], 0);
    }

    #[test]
    fn precomputed_matches_direct() {
        let m = Matrix::from_rows(&[&[0.0, 0.0], &[0.3, 0.0], &[5.0, 5.0], &[5.3, 5.0]]).unwrap();
        let dm = DissimilarityMatrix::from_matrix(&m, Metric::Euclidean);
        let a = Dbscan::new(0.5, 2).unwrap().fit(&m, Metric::Euclidean);
        let b = Dbscan::new(0.5, 2).unwrap().fit_precomputed(&dm);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.n_clusters, 2);
    }

    #[test]
    fn separates_rings_where_kmeans_cannot() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let rings = rbt_data::synth::two_rings(250, 2.0, 8.0, 0.05, &mut rng);
        let result = Dbscan::new(1.2, 3)
            .unwrap()
            .fit(&rings.matrix, Metric::Euclidean);
        assert_eq!(result.n_clusters, 2, "noise: {}", result.noise.len());
        // Rings must map to consistent clusters.
        let err = crate::metrics::misclassification_error(
            &rings.labels,
            &result
                .labels
                .iter()
                .map(|&l| if l == NOISE { 0 } else { l })
                .collect::<Vec<_>>(),
        )
        .unwrap();
        assert!(err < 0.05, "misclassification {err}");
    }
}
