//! Distance-based clustering algorithms and validation metrics.
//!
//! Corollary 1 of the RBT paper promises that *any* distance-based
//! clustering algorithm returns identical clusters on the original and the
//! RBT-transformed data. This crate provides four algorithm families to
//! test that promise across paradigms:
//!
//! * [`kmeans`] — Lloyd's algorithm with k-means++ or random initialisation
//!   (centroid-based; the algorithm of the related work \[13\]),
//! * [`kmedoids`] — PAM-style k-medoids (medoid-based, works from the
//!   dissimilarity matrix alone),
//! * [`hierarchical`] — agglomerative clustering with single / complete /
//!   average / Ward linkage via the Lance–Williams recurrence
//!   (connectivity-based, also dissimilarity-only),
//! * [`dbscan`] — density-based clustering with noise.
//!
//! [`metrics`] implements the external validation measures used by the
//! experiment harness: Rand / adjusted Rand index, NMI, purity, F-measure,
//! silhouette, and the misclassification error (via an exact Hungarian
//! assignment), which is the failure mode the paper's introduction blames
//! on noise-based perturbation.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod dbscan;
pub mod hierarchical;
pub mod kmeans;
pub mod kmedoids;
pub mod metrics;
pub mod select;

pub use dbscan::{Dbscan, DbscanResult, NOISE};
pub use hierarchical::{Agglomerative, Dendrogram, Linkage};
pub use kmeans::{KMeans, KMeansInit, KMeansResult};
pub use kmedoids::{KMedoids, KMedoidsResult};
pub use select::{select_k, KCandidate};

use std::fmt;

/// Errors produced by the clustering layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// An underlying linear-algebra error.
    Linalg(rbt_linalg::Error),
    /// A parameter was invalid (k = 0, eps <= 0, …).
    InvalidParameter(String),
    /// The input had too few points for the requested clustering.
    TooFewPoints {
        /// Points provided.
        points: usize,
        /// Points required.
        required: usize,
    },
    /// An iterative algorithm failed to converge within its budget.
    NoConvergence {
        /// The iteration budget that was exhausted.
        iterations: usize,
    },
    /// Label vectors passed to a metric disagreed in length.
    LabelMismatch {
        /// Length of the first labelling.
        left: usize,
        /// Length of the second labelling.
        right: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Linalg(e) => write!(f, "linear algebra error: {e}"),
            Error::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            Error::TooFewPoints { points, required } => {
                write!(f, "too few points: {points} provided, {required} required")
            }
            Error::NoConvergence { iterations } => {
                write!(f, "no convergence after {iterations} iterations")
            }
            Error::LabelMismatch { left, right } => {
                write!(f, "label vectors disagree in length: {left} vs {right}")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rbt_linalg::Error> for Error {
    fn from(e: rbt_linalg::Error) -> Self {
        Error::Linalg(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;
