//! K-medoids (PAM-style, Voronoi-iteration variant).
//!
//! Like hierarchical clustering, k-medoids consumes only the dissimilarity
//! matrix, and unlike k-means its "centres" are actual data objects — which
//! matters for the privacy story: a released medoid is a (transformed) row,
//! never a synthetic average.

use crate::{Error, Result};
use rand::Rng;
use rbt_linalg::dissimilarity::DissimilarityMatrix;

/// K-medoids configuration.
#[derive(Debug, Clone, Copy)]
pub struct KMedoids {
    k: usize,
    max_iters: usize,
}

/// Outcome of a k-medoids run.
#[derive(Debug, Clone)]
pub struct KMedoidsResult {
    /// Cluster assignment per point, in `0..k`.
    pub labels: Vec<usize>,
    /// Indices of the medoid objects, one per cluster.
    pub medoids: Vec<usize>,
    /// Total distance of points to their medoid.
    pub cost: f64,
    /// Iterations executed.
    pub iterations: usize,
    /// Whether the medoid set reached a fixed point.
    pub converged: bool,
}

impl KMedoids {
    /// Creates a configuration for `k` clusters (default `max_iters = 100`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for `k == 0`.
    pub fn new(k: usize) -> Result<Self> {
        if k == 0 {
            return Err(Error::InvalidParameter("k must be positive".into()));
        }
        Ok(KMedoids { k, max_iters: 100 })
    }

    /// Sets the iteration budget.
    pub fn with_max_iters(mut self, max_iters: usize) -> Self {
        self.max_iters = max_iters;
        self
    }

    /// Runs the alternating (Voronoi-iteration) algorithm on a precomputed
    /// dissimilarity matrix, with random distinct initial medoids.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TooFewPoints`] if `dm.len() < k`.
    pub fn fit<R: Rng + ?Sized>(
        &self,
        dm: &DissimilarityMatrix,
        rng: &mut R,
    ) -> Result<KMedoidsResult> {
        let n = dm.len();
        if n < self.k {
            return Err(Error::TooFewPoints {
                points: n,
                required: self.k,
            });
        }
        let mut medoids = Vec::with_capacity(self.k);
        while medoids.len() < self.k {
            let c = rng.random_range(0..n);
            if !medoids.contains(&c) {
                medoids.push(c);
            }
        }
        self.run(dm, medoids)
    }

    /// Runs the algorithm from explicit initial medoids (deterministic; used
    /// by the isometry experiments).
    ///
    /// # Errors
    ///
    /// * [`Error::TooFewPoints`] if `dm.len() < k`,
    /// * [`Error::InvalidParameter`] if `initial` has the wrong length,
    ///   duplicates, or out-of-range indices.
    pub fn fit_from(&self, dm: &DissimilarityMatrix, initial: &[usize]) -> Result<KMedoidsResult> {
        let n = dm.len();
        if n < self.k {
            return Err(Error::TooFewPoints {
                points: n,
                required: self.k,
            });
        }
        if initial.len() != self.k {
            return Err(Error::InvalidParameter(format!(
                "{} initial medoids for k = {}",
                initial.len(),
                self.k
            )));
        }
        let distinct: std::collections::HashSet<_> = initial.iter().collect();
        if distinct.len() != self.k || initial.iter().any(|&m| m >= n) {
            return Err(Error::InvalidParameter(
                "initial medoids must be distinct, in-range indices".into(),
            ));
        }
        self.run(dm, initial.to_vec())
    }

    #[allow(clippy::needless_range_loop)] // medoid/label updates index several parallel arrays
    fn run(&self, dm: &DissimilarityMatrix, mut medoids: Vec<usize>) -> Result<KMedoidsResult> {
        let n = dm.len();
        let mut labels = vec![0usize; n];
        let mut iterations = 0;
        let mut converged = false;

        for iter in 0..self.max_iters {
            iterations = iter + 1;
            // Assignment.
            for i in 0..n {
                let mut best = (0usize, f64::INFINITY);
                for (c, &m) in medoids.iter().enumerate() {
                    let d = dm.get(i, m);
                    if d < best.1 {
                        best = (c, d);
                    }
                }
                labels[i] = best.0;
            }
            // Medoid update: the member minimising total within-cluster distance.
            let mut changed = false;
            for c in 0..self.k {
                let members: Vec<usize> = (0..n).filter(|&i| labels[i] == c).collect();
                if members.is_empty() {
                    continue;
                }
                let mut best = (medoids[c], f64::INFINITY);
                for &candidate in &members {
                    let total: f64 = members.iter().map(|&i| dm.get(candidate, i)).sum();
                    if total < best.1 {
                        best = (candidate, total);
                    }
                }
                if best.0 != medoids[c] {
                    medoids[c] = best.0;
                    changed = true;
                }
            }
            if !changed {
                converged = true;
                break;
            }
        }

        // Final assignment and cost.
        let mut cost = 0.0;
        for i in 0..n {
            let mut best = (0usize, f64::INFINITY);
            for (c, &m) in medoids.iter().enumerate() {
                let d = dm.get(i, m);
                if d < best.1 {
                    best = (c, d);
                }
            }
            labels[i] = best.0;
            cost += best.1;
        }

        Ok(KMedoidsResult {
            labels,
            medoids,
            cost,
            iterations,
            converged,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rbt_linalg::distance::Metric;
    use rbt_linalg::Matrix;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn two_groups() -> DissimilarityMatrix {
        let m = Matrix::from_rows(&[
            &[0.0, 0.0],
            &[0.5, 0.0],
            &[0.0, 0.5],
            &[20.0, 20.0],
            &[20.5, 20.0],
            &[20.0, 20.5],
        ])
        .unwrap();
        DissimilarityMatrix::from_matrix(&m, Metric::Euclidean)
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(KMedoids::new(0).is_err());
        let dm = two_groups();
        assert!(matches!(
            KMedoids::new(10).unwrap().fit(&dm, &mut rng(0)),
            Err(Error::TooFewPoints { .. })
        ));
    }

    #[test]
    fn separates_two_groups() {
        let dm = two_groups();
        let result = KMedoids::new(2).unwrap().fit(&dm, &mut rng(4)).unwrap();
        assert!(result.converged);
        let truth = [0, 0, 0, 1, 1, 1];
        assert_eq!(
            crate::metrics::misclassification_error(&truth, &result.labels).unwrap(),
            0.0
        );
        // Medoids are members of their clusters.
        for (c, &m) in result.medoids.iter().enumerate() {
            assert_eq!(result.labels[m], c);
        }
    }

    #[test]
    fn deterministic_from_fixed_medoids() {
        let dm = two_groups();
        let km = KMedoids::new(2).unwrap();
        let a = km.fit_from(&dm, &[0, 3]).unwrap();
        let b = km.fit_from(&dm, &[0, 3]).unwrap();
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.medoids, b.medoids);
        assert!((a.cost - b.cost).abs() < 1e-12);
    }

    #[test]
    fn fit_from_validates() {
        let dm = two_groups();
        let km = KMedoids::new(2).unwrap();
        assert!(km.fit_from(&dm, &[0]).is_err());
        assert!(km.fit_from(&dm, &[0, 0]).is_err());
        assert!(km.fit_from(&dm, &[0, 99]).is_err());
    }

    #[test]
    fn cost_is_sum_of_member_distances() {
        let dm = two_groups();
        let result = KMedoids::new(2).unwrap().fit_from(&dm, &[1, 4]).unwrap();
        let manual: f64 = (0..dm.len())
            .map(|i| dm.get(i, result.medoids[result.labels[i]]))
            .sum();
        assert!((result.cost - manual).abs() < 1e-12);
    }

    #[test]
    fn k_equals_n_zero_cost() {
        let dm = two_groups();
        let result = KMedoids::new(6)
            .unwrap()
            .fit_from(&dm, &[0, 1, 2, 3, 4, 5])
            .unwrap();
        assert!(result.cost < 1e-12);
    }
}
