//! External and internal cluster-validation metrics.
//!
//! The paper's central quality argument is about **misclassification**: the
//! prior noise-based approach \[10\] "would move \[points\] from one cluster
//! to another … introduc\[ing\] the problem of misclassification", whereas
//! RBT achieves zero misclassification by construction. This module
//! provides the measures the experiment harness uses to quantify that:
//!
//! * [`misclassification_error`] — fraction of points assigned to the wrong
//!   cluster under the *best* label matching (exact Hungarian assignment),
//! * [`rand_index`] / [`adjusted_rand_index`] — pair-counting agreement,
//! * [`normalized_mutual_information`] — information-theoretic agreement,
//! * [`purity`] and [`f_measure`] — the class-oriented measures used in the
//!   authors' companion papers,
//! * [`silhouette`] — the internal (label-free) quality score.

use crate::{Error, Result};
use rbt_linalg::dissimilarity::DissimilarityMatrix;
use rbt_linalg::Matrix;

/// Contingency table between two labelings of the same points.
#[derive(Debug, Clone)]
pub struct Contingency {
    /// `counts[(i, j)]` = number of points with true label `i` and predicted
    /// label `j`.
    pub counts: Matrix,
    /// Row sums (true-class sizes).
    pub row_sums: Vec<f64>,
    /// Column sums (predicted-cluster sizes).
    pub col_sums: Vec<f64>,
    /// Total number of points.
    pub n: usize,
}

/// Builds the contingency table of two labelings.
///
/// Labels may be arbitrary `usize` values; they are compacted to dense
/// indices internally.
///
/// # Errors
///
/// Returns [`Error::LabelMismatch`] for unequal lengths and
/// [`Error::InvalidParameter`] for empty labelings.
pub fn contingency(truth: &[usize], predicted: &[usize]) -> Result<Contingency> {
    if truth.len() != predicted.len() {
        return Err(Error::LabelMismatch {
            left: truth.len(),
            right: predicted.len(),
        });
    }
    if truth.is_empty() {
        return Err(Error::InvalidParameter("empty labelings".into()));
    }
    let (tmap, tk) = compact(truth);
    let (pmap, pk) = compact(predicted);
    let mut counts = Matrix::zeros(tk, pk);
    for (&t, &p) in truth.iter().zip(predicted) {
        counts[(tmap[&t], pmap[&p])] += 1.0;
    }
    let row_sums: Vec<f64> = (0..tk).map(|i| counts.row(i).iter().sum()).collect();
    let col_sums: Vec<f64> = (0..pk)
        .map(|j| (0..tk).map(|i| counts[(i, j)]).sum())
        .collect();
    Ok(Contingency {
        counts,
        row_sums,
        col_sums,
        n: truth.len(),
    })
}

fn compact(labels: &[usize]) -> (std::collections::HashMap<usize, usize>, usize) {
    let mut map = std::collections::HashMap::new();
    let mut sorted: Vec<usize> = labels.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    for (dense, &raw) in sorted.iter().enumerate() {
        map.insert(raw, dense);
    }
    let k = map.len();
    (map, k)
}

/// Fraction of points that end up in the "wrong" cluster under the best
/// one-to-one matching of predicted clusters to true classes (exact
/// Hungarian assignment on the contingency table).
///
/// `0.0` means the two labelings are identical up to a renaming of labels —
/// exactly the guarantee Corollary 1 makes for RBT.
///
/// # Errors
///
/// Same conditions as [`contingency`].
pub fn misclassification_error(truth: &[usize], predicted: &[usize]) -> Result<f64> {
    let c = contingency(truth, predicted)?;
    let k = c.counts.rows().max(c.counts.cols());
    // Pad to square and negate: Hungarian minimises, we want max agreement.
    let mut cost = Matrix::zeros(k, k);
    for i in 0..c.counts.rows() {
        for j in 0..c.counts.cols() {
            cost[(i, j)] = -c.counts[(i, j)];
        }
    }
    let assignment = hungarian_min(&cost);
    let matched: f64 = assignment
        .iter()
        .enumerate()
        .filter(|&(i, &j)| i < c.counts.rows() && j < c.counts.cols())
        .map(|(i, &j)| c.counts[(i, j)])
        .sum();
    Ok(1.0 - matched / c.n as f64)
}

/// Exact minimum-cost assignment (Kuhn–Munkres with potentials, `O(k³)`).
///
/// Returns, for each row, the column it is assigned to. The input must be
/// square; the metric callers pad internally.
///
/// # Panics
///
/// Panics if `cost` is not square (internal use only).
pub fn hungarian_min(cost: &Matrix) -> Vec<usize> {
    assert!(cost.is_square(), "hungarian_min requires a square matrix");
    let n = cost.rows();
    if n == 0 {
        return Vec::new();
    }
    // 1-based arrays per the classic potentials formulation.
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; n + 1];
    let mut p = vec![0usize; n + 1]; // p[j] = row matched to column j
    let mut way = vec![0usize; n + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![f64::INFINITY; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            for j in 1..=n {
                if !used[j] {
                    let cur = cost[(i0 - 1, j - 1)] - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut row_to_col = vec![0usize; n];
    for j in 1..=n {
        if p[j] > 0 {
            row_to_col[p[j] - 1] = j - 1;
        }
    }
    row_to_col
}

/// Rand index: fraction of point pairs on which the two labelings agree.
///
/// # Errors
///
/// Same conditions as [`contingency`].
pub fn rand_index(truth: &[usize], predicted: &[usize]) -> Result<f64> {
    let c = contingency(truth, predicted)?;
    let n = c.n as f64;
    let total_pairs = n * (n - 1.0) / 2.0;
    if total_pairs == 0.0 {
        return Ok(1.0);
    }
    let sum_nij2: f64 = c
        .counts
        .as_slice()
        .iter()
        .map(|&x| x * (x - 1.0) / 2.0)
        .sum();
    let sum_a2: f64 = c.row_sums.iter().map(|&x| x * (x - 1.0) / 2.0).sum();
    let sum_b2: f64 = c.col_sums.iter().map(|&x| x * (x - 1.0) / 2.0).sum();
    // Agreements = pairs together in both + pairs apart in both.
    let together_both = sum_nij2;
    let apart_both = total_pairs - sum_a2 - sum_b2 + sum_nij2;
    Ok((together_both + apart_both) / total_pairs)
}

/// Adjusted Rand index (chance-corrected; 1 = identical, ~0 = random).
///
/// # Errors
///
/// Same conditions as [`contingency`].
pub fn adjusted_rand_index(truth: &[usize], predicted: &[usize]) -> Result<f64> {
    let c = contingency(truth, predicted)?;
    let n = c.n as f64;
    let total_pairs = n * (n - 1.0) / 2.0;
    if total_pairs == 0.0 {
        return Ok(1.0);
    }
    let index: f64 = c
        .counts
        .as_slice()
        .iter()
        .map(|&x| x * (x - 1.0) / 2.0)
        .sum();
    let sum_a: f64 = c.row_sums.iter().map(|&x| x * (x - 1.0) / 2.0).sum();
    let sum_b: f64 = c.col_sums.iter().map(|&x| x * (x - 1.0) / 2.0).sum();
    let expected = sum_a * sum_b / total_pairs;
    let max_index = (sum_a + sum_b) / 2.0;
    if (max_index - expected).abs() < 1e-15 {
        // Degenerate: both labelings put everything in one cluster (or all
        // singletons); they agree perfectly.
        return Ok(1.0);
    }
    Ok((index - expected) / (max_index - expected))
}

/// Normalized mutual information with the geometric-mean normalisation
/// `NMI = I(U;V) / sqrt(H(U)·H(V))`.
///
/// Returns 1.0 when both labelings are identical partitions, and 1.0 by
/// convention when both entropies are zero (single cluster each).
///
/// # Errors
///
/// Same conditions as [`contingency`].
pub fn normalized_mutual_information(truth: &[usize], predicted: &[usize]) -> Result<f64> {
    let c = contingency(truth, predicted)?;
    let n = c.n as f64;
    let mut mi = 0.0;
    for i in 0..c.counts.rows() {
        for j in 0..c.counts.cols() {
            let nij = c.counts[(i, j)];
            if nij > 0.0 {
                mi += (nij / n) * ((n * nij) / (c.row_sums[i] * c.col_sums[j])).ln();
            }
        }
    }
    let h = |sums: &[f64]| -> f64 {
        sums.iter()
            .filter(|&&x| x > 0.0)
            .map(|&x| -(x / n) * (x / n).ln())
            .sum()
    };
    let hu = h(&c.row_sums);
    let hv = h(&c.col_sums);
    if hu == 0.0 && hv == 0.0 {
        return Ok(1.0);
    }
    if hu == 0.0 || hv == 0.0 {
        return Ok(0.0);
    }
    Ok((mi / (hu * hv).sqrt()).clamp(0.0, 1.0))
}

/// Purity: each predicted cluster votes for its majority true class.
///
/// # Errors
///
/// Same conditions as [`contingency`].
pub fn purity(truth: &[usize], predicted: &[usize]) -> Result<f64> {
    let c = contingency(truth, predicted)?;
    let mut correct = 0.0;
    for j in 0..c.counts.cols() {
        let best = (0..c.counts.rows())
            .map(|i| c.counts[(i, j)])
            .fold(0.0, f64::max);
        correct += best;
    }
    Ok(correct / c.n as f64)
}

/// Class-oriented F-measure:
/// `F = Σ_i (nᵢ/n) · max_j F(i, j)` with
/// `F(i,j) = 2·P·R / (P + R)`, precision `P = n_ij / |cluster j|`, recall
/// `R = n_ij / |class i|`.
///
/// # Errors
///
/// Same conditions as [`contingency`].
pub fn f_measure(truth: &[usize], predicted: &[usize]) -> Result<f64> {
    let c = contingency(truth, predicted)?;
    let n = c.n as f64;
    let mut total = 0.0;
    for i in 0..c.counts.rows() {
        let mut best = 0.0f64;
        for j in 0..c.counts.cols() {
            let nij = c.counts[(i, j)];
            if nij == 0.0 {
                continue;
            }
            let precision = nij / c.col_sums[j];
            let recall = nij / c.row_sums[i];
            let f = 2.0 * precision * recall / (precision + recall);
            best = best.max(f);
        }
        total += (c.row_sums[i] / n) * best;
    }
    Ok(total)
}

/// Mean silhouette coefficient over all points, computed from a
/// dissimilarity matrix. Points in singleton clusters score 0 (standard
/// convention).
///
/// # Errors
///
/// * [`Error::LabelMismatch`] if `labels.len() != dm.len()`,
/// * [`Error::InvalidParameter`] if there are fewer than 2 clusters.
pub fn silhouette(dm: &DissimilarityMatrix, labels: &[usize]) -> Result<f64> {
    let n = dm.len();
    if labels.len() != n {
        return Err(Error::LabelMismatch {
            left: n,
            right: labels.len(),
        });
    }
    let distinct: std::collections::BTreeSet<usize> = labels.iter().copied().collect();
    if distinct.len() < 2 {
        return Err(Error::InvalidParameter(
            "silhouette requires at least 2 clusters".into(),
        ));
    }
    let clusters: Vec<usize> = distinct.into_iter().collect();
    let sizes: std::collections::HashMap<usize, usize> = clusters
        .iter()
        .map(|&c| (c, labels.iter().filter(|&&l| l == c).count()))
        .collect();

    let mut total = 0.0;
    for i in 0..n {
        let own = labels[i];
        let own_size = sizes[&own];
        if own_size <= 1 {
            continue; // silhouette 0 for singletons
        }
        // Mean distance to each cluster.
        let mut sums: std::collections::HashMap<usize, f64> =
            clusters.iter().map(|&c| (c, 0.0)).collect();
        for (j, &lj) in labels.iter().enumerate() {
            if i != j {
                *sums.get_mut(&lj).expect("cluster present") += dm.get(i, j);
            }
        }
        let a = sums[&own] / (own_size - 1) as f64;
        let b = clusters
            .iter()
            .filter(|&&c| c != own)
            .map(|&c| sums[&c] / sizes[&c] as f64)
            .fold(f64::INFINITY, f64::min);
        let denom = a.max(b);
        if denom > 0.0 {
            total += (b - a) / denom;
        }
    }
    Ok(total / n as f64)
}

/// Davies–Bouldin index computed from coordinates: lower is better. For
/// each cluster pair, the ratio of within-cluster scatter sums to centroid
/// separation; the index averages each cluster's worst ratio.
///
/// Because it depends only on Euclidean distances to centroids, it is
/// invariant under RBT — an internal-quality witness for Corollary 1.
///
/// # Errors
///
/// * [`Error::LabelMismatch`] if `labels.len() != data.rows()`,
/// * [`Error::InvalidParameter`] if there are fewer than 2 clusters.
pub fn davies_bouldin(data: &Matrix, labels: &[usize]) -> Result<f64> {
    if labels.len() != data.rows() {
        return Err(Error::LabelMismatch {
            left: data.rows(),
            right: labels.len(),
        });
    }
    let clusters: Vec<usize> = {
        let set: std::collections::BTreeSet<usize> = labels.iter().copied().collect();
        set.into_iter().collect()
    };
    let k = clusters.len();
    if k < 2 {
        return Err(Error::InvalidParameter(
            "Davies-Bouldin requires at least 2 clusters".into(),
        ));
    }
    let n = data.cols();
    // Centroids and mean within-cluster distance (scatter).
    let mut centroids = Matrix::zeros(k, n);
    let mut scatter = vec![0.0f64; k];
    let mut counts = vec![0usize; k];
    let index_of: std::collections::HashMap<usize, usize> = clusters
        .iter()
        .enumerate()
        .map(|(dense, &raw)| (raw, dense))
        .collect();
    for (row, &label) in data.row_iter().zip(labels) {
        let c = index_of[&label];
        counts[c] += 1;
        for (acc, &v) in centroids.row_mut(c).iter_mut().zip(row) {
            *acc += v;
        }
    }
    for (c, &count) in counts.iter().enumerate() {
        let inv = 1.0 / count as f64;
        for v in centroids.row_mut(c) {
            *v *= inv;
        }
    }
    for (row, &label) in data.row_iter().zip(labels) {
        let c = index_of[&label];
        scatter[c] += rbt_linalg::distance::Metric::Euclidean.distance(row, centroids.row(c));
    }
    for (s, &count) in scatter.iter_mut().zip(&counts) {
        *s /= count as f64;
    }
    let mut total = 0.0;
    for a in 0..k {
        let mut worst = 0.0f64;
        for b in 0..k {
            if a == b {
                continue;
            }
            let sep = rbt_linalg::distance::Metric::Euclidean
                .distance(centroids.row(a), centroids.row(b));
            if sep > 0.0 {
                worst = worst.max((scatter[a] + scatter[b]) / sep);
            } else {
                worst = f64::INFINITY;
            }
        }
        total += worst;
    }
    Ok(total / k as f64)
}

/// Dunn index from a dissimilarity matrix: the smallest between-cluster
/// distance divided by the largest cluster diameter. Higher is better;
/// invariant under RBT.
///
/// # Errors
///
/// * [`Error::LabelMismatch`] if `labels.len() != dm.len()`,
/// * [`Error::InvalidParameter`] if there are fewer than 2 clusters or a
///   cluster diameter is zero with coincident points across clusters.
pub fn dunn_index(dm: &DissimilarityMatrix, labels: &[usize]) -> Result<f64> {
    let n = dm.len();
    if labels.len() != n {
        return Err(Error::LabelMismatch {
            left: n,
            right: labels.len(),
        });
    }
    let distinct: std::collections::BTreeSet<usize> = labels.iter().copied().collect();
    if distinct.len() < 2 {
        return Err(Error::InvalidParameter(
            "Dunn index requires at least 2 clusters".into(),
        ));
    }
    let mut min_between = f64::INFINITY;
    let mut max_diameter = 0.0f64;
    for (i, j, d) in dm.iter_pairs() {
        if labels[i] == labels[j] {
            max_diameter = max_diameter.max(d);
        } else {
            min_between = min_between.min(d);
        }
    }
    if max_diameter == 0.0 {
        // All clusters are single points or duplicates: perfectly separated.
        return Ok(f64::INFINITY);
    }
    Ok(min_between / max_diameter)
}

/// `true` when two labelings are identical **as partitions** (equal up to a
/// bijective renaming of labels) — the exact form of cluster preservation
/// Corollary 1 claims.
pub fn same_partition(a: &[usize], b: &[usize]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut fwd: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    let mut bwd: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    for (&x, &y) in a.iter().zip(b) {
        if *fwd.entry(x).or_insert(y) != y {
            return false;
        }
        if *bwd.entry(y).or_insert(x) != x {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbt_linalg::distance::Metric;

    const TRUTH: [usize; 6] = [0, 0, 0, 1, 1, 1];

    #[test]
    fn perfect_agreement_scores() {
        let relabeled = [5, 5, 5, 2, 2, 2]; // same partition, new names
        assert_eq!(misclassification_error(&TRUTH, &relabeled).unwrap(), 0.0);
        assert_eq!(rand_index(&TRUTH, &relabeled).unwrap(), 1.0);
        assert!((adjusted_rand_index(&TRUTH, &relabeled).unwrap() - 1.0).abs() < 1e-12);
        assert!((normalized_mutual_information(&TRUTH, &relabeled).unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(purity(&TRUTH, &relabeled).unwrap(), 1.0);
        assert!((f_measure(&TRUTH, &relabeled).unwrap() - 1.0).abs() < 1e-12);
        assert!(same_partition(&TRUTH, &relabeled));
    }

    #[test]
    fn one_swap_misclassification() {
        let predicted = [0, 0, 1, 1, 1, 1]; // third point moved
        let err = misclassification_error(&TRUTH, &predicted).unwrap();
        assert!((err - 1.0 / 6.0).abs() < 1e-12);
        assert!(!same_partition(&TRUTH, &predicted));
    }

    #[test]
    fn hungarian_solves_known_assignment() {
        // Classic 3x3 instance: optimal cost 5 (1+2+2).
        let cost =
            Matrix::from_rows(&[&[4.0, 1.0, 3.0], &[2.0, 0.0, 5.0], &[3.0, 2.0, 2.0]]).unwrap();
        let assign = hungarian_min(&cost);
        let total: f64 = assign.iter().enumerate().map(|(i, &j)| cost[(i, j)]).sum();
        assert!((total - 5.0).abs() < 1e-12);
        // Assignment is a permutation.
        let mut seen = assign.clone();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn hungarian_identity_cheapest_on_diagonal() {
        let mut cost = Matrix::filled(4, 4, 10.0);
        for i in 0..4 {
            cost[(i, i)] = 0.0;
        }
        assert_eq!(hungarian_min(&cost), vec![0, 1, 2, 3]);
        assert!(hungarian_min(&Matrix::zeros(0, 0)).is_empty());
    }

    #[test]
    fn ari_near_zero_for_random_labels() {
        // Independent pseudo-random labels with no real structure (splitmix-
        // style hashes so the two sequences are genuinely uncorrelated).
        let hash = |x: u64| {
            let mut z = x.wrapping_add(0x9e3779b97f4a7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        let truth: Vec<usize> = (0..400u64).map(|i| (hash(i) % 4) as usize).collect();
        let pred: Vec<usize> = (0..400u64)
            .map(|i| (hash(i + 1_000_000) % 4) as usize)
            .collect();
        let ari = adjusted_rand_index(&truth, &pred).unwrap();
        assert!(ari.abs() < 0.1, "ARI {ari}");
        // Rand index, uncorrected, sits much higher.
        assert!(rand_index(&truth, &pred).unwrap() > 0.5);
    }

    #[test]
    fn purity_with_merged_clusters() {
        // One predicted cluster swallows both classes.
        let predicted = [0, 0, 0, 0, 0, 0];
        assert!((purity(&TRUTH, &predicted).unwrap() - 0.5).abs() < 1e-12);
        // NMI of a single predicted cluster is 0.
        assert_eq!(
            normalized_mutual_information(&TRUTH, &predicted).unwrap(),
            0.0
        );
    }

    #[test]
    fn f_measure_penalises_splits() {
        // Each true class split into two pure halves.
        let predicted = [0, 0, 1, 2, 3, 3];
        let f = f_measure(&TRUTH, &predicted).unwrap();
        assert!(f < 1.0 && f > 0.4, "F {f}");
    }

    #[test]
    fn metrics_validate_input() {
        assert!(matches!(
            misclassification_error(&[0, 1], &[0]),
            Err(Error::LabelMismatch { .. })
        ));
        assert!(matches!(
            rand_index(&[], &[]),
            Err(Error::InvalidParameter(_))
        ));
    }

    #[test]
    fn silhouette_separated_vs_mixed() {
        // Two tight groups far apart → silhouette near 1.
        let pts = Matrix::from_rows(&[
            &[0.0, 0.0],
            &[0.1, 0.0],
            &[0.0, 0.1],
            &[10.0, 10.0],
            &[10.1, 10.0],
            &[10.0, 10.1],
        ])
        .unwrap();
        let dm = DissimilarityMatrix::from_matrix(&pts, Metric::Euclidean);
        let good = silhouette(&dm, &[0, 0, 0, 1, 1, 1]).unwrap();
        assert!(good > 0.9, "good {good}");
        let bad = silhouette(&dm, &[0, 1, 0, 1, 0, 1]).unwrap();
        assert!(bad < good);
        assert!(silhouette(&dm, &[0; 6]).is_err());
        assert!(silhouette(&dm, &[0, 1]).is_err());
    }

    #[test]
    fn silhouette_handles_singletons() {
        let pts = Matrix::from_rows(&[&[0.0], &[0.1], &[5.0]]).unwrap();
        let dm = DissimilarityMatrix::from_matrix(&pts, Metric::Euclidean);
        let s = silhouette(&dm, &[0, 0, 1]).unwrap();
        assert!(s.is_finite());
    }

    #[test]
    fn same_partition_edge_cases() {
        assert!(same_partition(&[], &[]));
        assert!(!same_partition(&[0], &[]));
        // Non-injective mapping must fail both directions.
        assert!(!same_partition(&[0, 1], &[0, 0]));
        assert!(!same_partition(&[0, 0], &[0, 1]));
    }

    #[test]
    fn davies_bouldin_prefers_separated_clusters() {
        let tight =
            Matrix::from_rows(&[&[0.0, 0.0], &[0.1, 0.0], &[10.0, 10.0], &[10.1, 10.0]]).unwrap();
        let labels = [0, 0, 1, 1];
        let good = davies_bouldin(&tight, &labels).unwrap();
        // Smash the clusters together: index worsens (grows).
        let close = tight.map(|x| x * 0.05);
        let bad = davies_bouldin(&close, &labels).unwrap();
        assert!(good < 0.1, "good {good}");
        assert!(
            (bad - good).abs() < 1e-9,
            "DB is scale-invariant: {bad} vs {good}"
        );
        // Mixed labels genuinely worsen it.
        let mixed = davies_bouldin(&tight, &[0, 1, 0, 1]).unwrap();
        assert!(mixed > good);
        assert!(davies_bouldin(&tight, &[0, 0, 0, 0]).is_err());
        assert!(davies_bouldin(&tight, &[0, 1]).is_err());
    }

    #[test]
    fn davies_bouldin_invariant_under_rotation() {
        use rbt_linalg::Rotation2;
        let data = Matrix::from_rows(&[
            &[0.0, 0.0],
            &[0.5, 0.2],
            &[8.0, 8.0],
            &[8.3, 7.9],
            &[-4.0, 6.0],
            &[-4.2, 6.3],
        ])
        .unwrap();
        let labels = [0, 0, 1, 1, 2, 2];
        let before = davies_bouldin(&data, &labels).unwrap();
        let mut xs = data.column(0);
        let mut ys = data.column(1);
        Rotation2::from_degrees(123.4)
            .apply_columns(&mut xs, &mut ys)
            .unwrap();
        let rotated = Matrix::from_columns(&[&xs, &ys]).unwrap();
        let after = davies_bouldin(&rotated, &labels).unwrap();
        assert!((before - after).abs() < 1e-10);
    }

    #[test]
    fn dunn_index_behaviour() {
        use rbt_linalg::distance::Metric;
        let pts = Matrix::from_rows(&[&[0.0], &[1.0], &[10.0], &[11.0]]).unwrap();
        let dm = DissimilarityMatrix::from_matrix(&pts, Metric::Euclidean);
        // Well-separated: min between = 9, max diameter = 1 → Dunn 9.
        let d = dunn_index(&dm, &[0, 0, 1, 1]).unwrap();
        assert!((d - 9.0).abs() < 1e-12);
        // Bad partition mixes the groups: Dunn collapses below 1.
        let bad = dunn_index(&dm, &[0, 1, 0, 1]).unwrap();
        assert!(bad < 0.2, "bad {bad}");
        assert!(dunn_index(&dm, &[0, 0, 0, 0]).is_err());
        assert!(dunn_index(&dm, &[0, 1]).is_err());
        // Singleton clusters with zero diameters.
        let two = Matrix::from_rows(&[&[0.0], &[5.0]]).unwrap();
        let dm2 = DissimilarityMatrix::from_matrix(&two, Metric::Euclidean);
        assert_eq!(dunn_index(&dm2, &[0, 1]).unwrap(), f64::INFINITY);
    }

    #[test]
    fn contingency_counts() {
        let c = contingency(&TRUTH, &[1, 1, 0, 0, 0, 0]).unwrap();
        assert_eq!(c.n, 6);
        assert_eq!(c.counts[(0, 1)], 2.0); // class 0 → cluster 1
        assert_eq!(c.counts[(0, 0)], 1.0);
        assert_eq!(c.counts[(1, 0)], 3.0);
        assert_eq!(c.row_sums, vec![3.0, 3.0]);
        assert_eq!(c.col_sums, vec![4.0, 2.0]);
    }
}
