//! Agglomerative hierarchical clustering via the Lance–Williams recurrence.
//!
//! Hierarchical methods consume *only* the dissimilarity matrix, which makes
//! them the cleanest witnesses for Corollary 1: RBT leaves the dissimilarity
//! matrix bit-for-bit identical (up to float rounding), so the entire
//! dendrogram — not just one flat cut — is preserved.

use crate::{Error, Result};
use rbt_linalg::dissimilarity::DissimilarityMatrix;

/// Linkage criterion for merging clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Linkage {
    /// Minimum pairwise distance (chaining-prone, exact for rings).
    Single,
    /// Maximum pairwise distance (compact clusters).
    Complete,
    /// Unweighted average pairwise distance (UPGMA).
    #[default]
    Average,
    /// Ward's minimum-variance criterion (requires Euclidean input).
    Ward,
}

/// One merge step: clusters are numbered scipy-style — leaves `0..n`, the
/// cluster created by merge `t` gets id `n + t`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Merge {
    /// Id of the first merged cluster.
    pub left: usize,
    /// Id of the second merged cluster.
    pub right: usize,
    /// Linkage distance at which the merge happened.
    pub distance: f64,
    /// Number of leaves in the merged cluster.
    pub size: usize,
}

/// The full merge history of an agglomerative run.
#[derive(Debug, Clone)]
pub struct Dendrogram {
    n: usize,
    merges: Vec<Merge>,
}

impl Dendrogram {
    /// Number of leaves (objects).
    pub fn n_leaves(&self) -> usize {
        self.n
    }

    /// The merges, in execution order.
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Flat clustering with exactly `k` clusters (undoes the last `k − 1`
    /// merges). Labels are compacted to `0..k` in order of first appearance.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] unless `1 <= k <= n`.
    pub fn cut(&self, k: usize) -> Result<Vec<usize>> {
        if k == 0 || k > self.n {
            return Err(Error::InvalidParameter(format!(
                "cannot cut {} leaves into {k} clusters",
                self.n
            )));
        }
        self.labels_after(self.n - k)
    }

    /// Flat clustering keeping only merges with `distance <= height`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for a NaN height.
    pub fn cut_at_height(&self, height: f64) -> Result<Vec<usize>> {
        if height.is_nan() {
            return Err(Error::InvalidParameter("height must not be NaN".into()));
        }
        let applied = self
            .merges
            .iter()
            .take_while(|m| m.distance <= height)
            .count();
        self.labels_after(applied)
    }

    fn labels_after(&self, n_merges: usize) -> Result<Vec<usize>> {
        // Union-find over leaf + internal ids.
        let mut parent: Vec<usize> = (0..self.n + n_merges).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for (t, m) in self.merges.iter().take(n_merges).enumerate() {
            let new_id = self.n + t;
            let a = find(&mut parent, m.left);
            let b = find(&mut parent, m.right);
            parent[a] = new_id;
            parent[b] = new_id;
        }
        let mut labels = vec![0usize; self.n];
        let mut next = 0usize;
        let mut map: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        for (i, slot) in labels.iter_mut().enumerate() {
            let root = find(&mut parent, i);
            *slot = *map.entry(root).or_insert_with(|| {
                let l = next;
                next += 1;
                l
            });
        }
        Ok(labels)
    }
}

/// Agglomerative clustering configuration.
///
/// # Example
///
/// ```
/// use rbt_cluster::{Agglomerative, Linkage};
/// use rbt_linalg::{Matrix, distance::Metric, dissimilarity::DissimilarityMatrix};
///
/// let points = Matrix::from_rows(&[&[0.0], &[1.0], &[10.0], &[11.0]]).unwrap();
/// let dm = DissimilarityMatrix::from_matrix(&points, Metric::Euclidean);
/// let dendrogram = Agglomerative::new(Linkage::Average).fit(&dm).unwrap();
/// let labels = dendrogram.cut(2).unwrap();
/// assert_eq!(labels[0], labels[1]);
/// assert_ne!(labels[0], labels[2]);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Agglomerative {
    linkage: Linkage,
}

impl Agglomerative {
    /// Creates a configuration with the given linkage.
    pub fn new(linkage: Linkage) -> Self {
        Agglomerative { linkage }
    }

    /// The configured linkage.
    pub fn linkage(&self) -> Linkage {
        self.linkage
    }

    /// Builds the dissimilarity matrix from row vectors — in parallel, on
    /// the shared pool — and fits the dendrogram on it.
    ///
    /// # Errors
    ///
    /// Same conditions as [`fit`](Self::fit).
    pub fn fit_matrix(
        &self,
        data: &rbt_linalg::Matrix,
        metric: rbt_linalg::distance::Metric,
    ) -> Result<Dendrogram> {
        let dm = DissimilarityMatrix::from_matrix_parallel(
            data,
            metric,
            rbt_linalg::pool::default_threads(),
        );
        self.fit(&dm)
    }

    /// Builds the full dendrogram from a dissimilarity matrix.
    ///
    /// Runs the naive `O(n³)` algorithm over a working copy of the dense
    /// distance matrix — simple, exact, and fast enough for the workloads in
    /// this suite (thousands of objects).
    ///
    /// # Errors
    ///
    /// Returns [`Error::TooFewPoints`] for an empty input.
    #[allow(clippy::needless_range_loop)] // triangular index scans read clearer with indices
    pub fn fit(&self, dm: &DissimilarityMatrix) -> Result<Dendrogram> {
        let n = dm.len();
        if n == 0 {
            return Err(Error::TooFewPoints {
                points: 0,
                required: 1,
            });
        }
        // Working distances between *active* clusters, indexed by slot.
        // For Ward we work on squared distances internally.
        let square = self.linkage == Linkage::Ward;
        let mut dist = vec![vec![0.0f64; n]; n];
        for i in 0..n {
            for j in 0..n {
                let d = dm.get(i, j);
                dist[i][j] = if square { d * d } else { d };
            }
        }
        let mut active: Vec<bool> = vec![true; n];
        let mut cluster_id: Vec<usize> = (0..n).collect();
        let mut sizes: Vec<usize> = vec![1; n];
        let mut merges = Vec::with_capacity(n.saturating_sub(1));

        for t in 0..n.saturating_sub(1) {
            // Find the closest active pair.
            let mut best = (usize::MAX, usize::MAX, f64::INFINITY);
            for i in 0..n {
                if !active[i] {
                    continue;
                }
                for j in (i + 1)..n {
                    if active[j] && dist[i][j] < best.2 {
                        best = (i, j, dist[i][j]);
                    }
                }
            }
            let (i, j, d) = best;
            debug_assert!(i != usize::MAX, "at least two active clusters remain");

            let (ni, nj) = (sizes[i] as f64, sizes[j] as f64);
            // Record the merge (report sqrt for Ward's squared space).
            merges.push(Merge {
                left: cluster_id[i],
                right: cluster_id[j],
                distance: if square { d.sqrt() } else { d },
                size: sizes[i] + sizes[j],
            });

            // Lance–Williams update of distances from the merged cluster
            // (kept in slot i) to every other active cluster k.
            for k in 0..n {
                if !active[k] || k == i || k == j {
                    continue;
                }
                let dik = dist[i][k];
                let djk = dist[j][k];
                let nk = sizes[k] as f64;
                let new = match self.linkage {
                    Linkage::Single => dik.min(djk),
                    Linkage::Complete => dik.max(djk),
                    Linkage::Average => (ni * dik + nj * djk) / (ni + nj),
                    Linkage::Ward => {
                        let total = ni + nj + nk;
                        ((ni + nk) * dik + (nj + nk) * djk - nk * d) / total
                    }
                };
                dist[i][k] = new;
                dist[k][i] = new;
            }
            active[j] = false;
            sizes[i] += sizes[j];
            cluster_id[i] = n + t;
        }

        Ok(Dendrogram { n, merges })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbt_linalg::distance::Metric;
    use rbt_linalg::Matrix;

    fn line_points() -> DissimilarityMatrix {
        // 1-D points 0, 1, 2, 10, 11, 12 — two obvious groups.
        let m = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[10.0], &[11.0], &[12.0]]).unwrap();
        DissimilarityMatrix::from_matrix(&m, Metric::Euclidean)
    }

    #[test]
    fn fit_matrix_matches_precomputed() {
        let m = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[10.0], &[11.0], &[12.0]]).unwrap();
        let via_dm = Agglomerative::new(Linkage::Average)
            .fit(&line_points())
            .unwrap();
        let via_matrix = Agglomerative::new(Linkage::Average)
            .fit_matrix(&m, Metric::Euclidean)
            .unwrap();
        assert_eq!(via_dm.merges(), via_matrix.merges());
    }

    #[test]
    fn two_group_cut_all_linkages() {
        let dm = line_points();
        for linkage in [
            Linkage::Single,
            Linkage::Complete,
            Linkage::Average,
            Linkage::Ward,
        ] {
            let dend = Agglomerative::new(linkage).fit(&dm).unwrap();
            assert_eq!(dend.merges().len(), 5);
            let labels = dend.cut(2).unwrap();
            assert_eq!(labels[0], labels[1]);
            assert_eq!(labels[1], labels[2]);
            assert_eq!(labels[3], labels[4]);
            assert_eq!(labels[4], labels[5]);
            assert_ne!(labels[0], labels[3], "linkage {linkage:?}");
        }
    }

    #[test]
    fn cut_extremes() {
        let dm = line_points();
        let dend = Agglomerative::default().fit(&dm).unwrap();
        let all_one = dend.cut(1).unwrap();
        assert!(all_one.iter().all(|&l| l == 0));
        let singletons = dend.cut(6).unwrap();
        let distinct: std::collections::HashSet<_> = singletons.iter().collect();
        assert_eq!(distinct.len(), 6);
        assert!(dend.cut(0).is_err());
        assert!(dend.cut(7).is_err());
    }

    #[test]
    fn cut_at_height_matches_cut() {
        let dm = line_points();
        let dend = Agglomerative::new(Linkage::Single).fit(&dm).unwrap();
        // Height between within-group spacing (1) and between-group gap (8).
        let labels = dend.cut_at_height(4.0).unwrap();
        assert_eq!(labels, dend.cut(2).unwrap());
        assert!(dend.cut_at_height(f64::NAN).is_err());
        // Below the smallest merge: all singletons.
        let s = dend.cut_at_height(0.5).unwrap();
        assert_eq!(s.len(), 6);
        assert_eq!(s.iter().collect::<std::collections::HashSet<_>>().len(), 6);
    }

    #[test]
    fn single_linkage_merge_heights() {
        let dm = line_points();
        let dend = Agglomerative::new(Linkage::Single).fit(&dm).unwrap();
        // First four merges at distance 1, final bridge at 8.
        let dists: Vec<f64> = dend.merges().iter().map(|m| m.distance).collect();
        assert!(dists[..4].iter().all(|&d| (d - 1.0).abs() < 1e-12));
        assert!((dists[4] - 8.0).abs() < 1e-12);
    }

    #[test]
    fn complete_linkage_final_height_is_diameter() {
        let dm = line_points();
        let dend = Agglomerative::new(Linkage::Complete).fit(&dm).unwrap();
        let last = dend.merges().last().unwrap();
        assert!((last.distance - 12.0).abs() < 1e-12);
        assert_eq!(last.size, 6);
    }

    #[test]
    fn average_linkage_is_between_single_and_complete() {
        let dm = line_points();
        let s = Agglomerative::new(Linkage::Single).fit(&dm).unwrap();
        let c = Agglomerative::new(Linkage::Complete).fit(&dm).unwrap();
        let a = Agglomerative::new(Linkage::Average).fit(&dm).unwrap();
        let last = |d: &Dendrogram| d.merges().last().unwrap().distance;
        assert!(last(&s) <= last(&a) + 1e-12);
        assert!(last(&a) <= last(&c) + 1e-12);
    }

    #[test]
    fn ward_prefers_balanced_merges() {
        // Ward on two tight pairs + one midpoint outlier.
        let m = Matrix::from_rows(&[&[0.0], &[0.1], &[5.0], &[9.9], &[10.0]]).unwrap();
        let dm = DissimilarityMatrix::from_matrix(&m, Metric::Euclidean);
        let dend = Agglomerative::new(Linkage::Ward).fit(&dm).unwrap();
        let labels = dend.cut(3).unwrap();
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[2], labels[0]);
        assert_ne!(labels[2], labels[3]);
    }

    #[test]
    fn empty_input_rejected_single_point_ok() {
        let empty = DissimilarityMatrix::from_condensed(0, vec![]).unwrap();
        assert!(Agglomerative::default().fit(&empty).is_err());
        let one = DissimilarityMatrix::from_condensed(1, vec![]).unwrap();
        let dend = Agglomerative::default().fit(&one).unwrap();
        assert!(dend.merges().is_empty());
        assert_eq!(dend.cut(1).unwrap(), vec![0]);
    }

    #[test]
    fn merge_ids_are_scipy_style() {
        let dm = line_points();
        let dend = Agglomerative::new(Linkage::Single).fit(&dm).unwrap();
        for (t, m) in dend.merges().iter().enumerate() {
            assert!(m.left < 6 + t);
            assert!(m.right < 6 + t);
            assert_ne!(m.left, m.right);
        }
    }
}
