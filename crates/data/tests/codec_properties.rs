//! Property tests for the CSV codec and the normalization layer on random
//! data: serialize/parse and fit/invert must round-trip losslessly.

use proptest::prelude::*;
use rbt_data::normalize::Normalization;
use rbt_data::{csv, Dataset, FittedNormalizer};
use rbt_linalg::{Matrix, VarianceMode};

fn dataset() -> impl Strategy<Value = Dataset> {
    (1usize..20, 1usize..6, any::<bool>()).prop_flat_map(|(rows, cols, with_ids)| {
        prop::collection::vec(-1e6..1e6f64, rows * cols).prop_map(move |data| {
            let matrix = Matrix::from_vec(rows, cols, data).unwrap();
            let ds = Dataset::from_matrix(matrix);
            if with_ids {
                ds.with_ids((0..rows as u64).collect()).unwrap()
            } else {
                ds
            }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn csv_round_trip_is_lossless(ds in dataset()) {
        let text = csv::to_csv(&ds);
        let back = csv::from_csv(&text).unwrap();
        prop_assert_eq!(back.columns(), ds.columns());
        prop_assert_eq!(back.ids(), ds.ids());
        // f64 Display/parse round-trips exactly.
        prop_assert!(back.matrix().approx_eq(ds.matrix(), 0.0));
    }

    #[test]
    fn normalizers_invert_on_random_data(ds in dataset(), which in 0usize..4) {
        let method = match which {
            0 => Normalization::zscore_paper(),
            1 => Normalization::min_max_unit(),
            2 => Normalization::DecimalScaling,
            _ => Normalization::RobustZScore,
        };
        let Ok((fitted, t)) = method.fit_transform(ds.matrix()) else { return Ok(()); };
        let back = fitted.inverse_transform(&t).unwrap();
        // Scale-aware tolerance: inversion is exact up to rounding in the
        // affine maps.
        let scale = ds.matrix().as_slice().iter().fold(1.0f64, |a, &x| a.max(x.abs()));
        prop_assert!(back.approx_eq(ds.matrix(), 1e-9 * scale));
    }

    #[test]
    fn normalizer_text_round_trip_on_random_data(ds in dataset(), which in 0usize..3) {
        let method = match which {
            0 => Normalization::zscore_paper(),
            1 => Normalization::min_max_unit(),
            _ => Normalization::DecimalScaling,
        };
        let Ok((fitted, t)) = method.fit_transform(ds.matrix()) else { return Ok(()); };
        let parsed = FittedNormalizer::from_text(&fitted.to_text()).unwrap();
        let t2 = parsed.transform(ds.matrix()).unwrap();
        prop_assert!(t.approx_eq(&t2, 0.0));
    }

    #[test]
    fn zscore_output_is_standardised(ds in dataset()) {
        let Ok((_, z)) = Normalization::zscore_paper().fit_transform(ds.matrix()) else { return Ok(()); };
        for j in 0..z.cols() {
            let col = z.column(j);
            let mean = rbt_linalg::stats::mean(&col).unwrap();
            let var = rbt_linalg::stats::variance(&col, VarianceMode::Sample).unwrap();
            let orig_var =
                rbt_linalg::stats::variance(&ds.matrix().column(j), VarianceMode::Sample).unwrap();
            prop_assert!(mean.abs() < 1e-6, "mean {mean}");
            if orig_var > 1e-9 {
                prop_assert!((var - 1.0).abs() < 1e-6, "variance {var}");
            } else {
                prop_assert!(var.abs() < 1e-9); // constant column maps to zeros
            }
        }
    }
}
