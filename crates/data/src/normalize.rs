//! Attribute normalization — Step 1 of the RBT pipeline (Figure 1).
//!
//! The paper reviews two methods (§3.2): **min–max** (Eq. 3) and **z-score**
//! (Eq. 4), and *requires* normalization before distortion (§4.1): it gives
//! every attribute equal weight and, as §5.3 notes, already obscures the raw
//! scales ("in general public data are not normalized"). Decimal scaling is
//! included for completeness with the data-mining literature the paper cites
//! (Han & Kamber).
//!
//! Fitting and application are separated ([`Normalization::fit`] →
//! [`FittedNormalizer::transform`]) so that the *same* parameters can be
//! applied to held-out data and inverted by the legitimate data owner —
//! and so the attack suite can model an adversary who re-normalizes the
//! released data (§5.2, Table 5).

use crate::{Error, Result};
use rbt_linalg::codec::{ByteReader, ByteWriter, DecodeError, DecodeResult};
#[cfg(test)]
use rbt_linalg::stats;
use rbt_linalg::stats::VarianceMode;
use rbt_linalg::Matrix;

/// A normalization method (unfitted).
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Normalization {
    /// Min–max normalization (Eq. 3): maps each attribute linearly onto
    /// `[new_min, new_max]`.
    MinMax {
        /// Lower bound of the target range.
        new_min: f64,
        /// Upper bound of the target range.
        new_max: f64,
    },
    /// Z-score normalization (Eq. 4): `(v − mean) / std`.
    ZScore {
        /// Divisor convention for the standard deviation. The paper's
        /// example numbers use [`VarianceMode::Sample`].
        mode: VarianceMode,
    },
    /// Decimal scaling: divide by the smallest power of ten that brings all
    /// values into `(−1, 1)`.
    DecimalScaling,
    /// Robust z-score: `(v − median) / (1.4826 · MAD)`.
    ///
    /// Extension beyond the paper: §3.2 notes that outliers "dominate the
    /// min-max normalization" and recommends z-scores — but heavy outliers
    /// also inflate the mean/standard deviation. The median/MAD variant
    /// (scaled by 1.4826 to be consistent with the standard deviation under
    /// normality) keeps the bulk of the data on the unit scale regardless
    /// of outliers.
    RobustZScore,
}

impl Normalization {
    /// Min–max onto `[0, 1]`, the range the paper suggests.
    pub fn min_max_unit() -> Self {
        Normalization::MinMax {
            new_min: 0.0,
            new_max: 1.0,
        }
    }

    /// The z-score convention that reproduces the paper's Table 2.
    pub fn zscore_paper() -> Self {
        Normalization::ZScore {
            mode: VarianceMode::Sample,
        }
    }

    /// The stable text tag identifying this method in persisted key files
    /// (`minmax`, `zscore-sample`, `zscore-population`, `decimal`,
    /// `robust`), or `None` for a method without one.
    ///
    /// Min–max target ranges are not part of the tag: the fitted per-column
    /// parameters already carry them.
    pub fn text_tag(&self) -> Option<&'static str> {
        Some(match self {
            Normalization::MinMax { .. } => "minmax",
            Normalization::ZScore {
                mode: VarianceMode::Sample,
            } => "zscore-sample",
            Normalization::ZScore {
                mode: VarianceMode::Population,
            } => "zscore-population",
            Normalization::DecimalScaling => "decimal",
            Normalization::RobustZScore => "robust",
            #[allow(unreachable_patterns)] // future #[non_exhaustive] variants
            _ => return None,
        })
    }

    /// Fits the normalization to the columns of `m`.
    ///
    /// # Errors
    ///
    /// * [`Error::Shape`] for an empty matrix,
    /// * [`Error::InvalidArgument`] for a min–max target with
    ///   `new_min >= new_max`, or for input containing NaN or infinite
    ///   values (no finite column statistics exist for such data).
    pub fn fit(&self, m: &Matrix) -> Result<FittedNormalizer> {
        if m.rows() == 0 || m.cols() == 0 {
            return Err(Error::Shape(
                "cannot fit a normalizer to an empty matrix".into(),
            ));
        }
        if m.has_non_finite() {
            return Err(Error::InvalidArgument(
                "cannot fit a normalizer to NaN or infinite values".into(),
            ));
        }
        if let Normalization::MinMax { new_min, new_max } = self {
            if new_min >= new_max {
                return Err(Error::InvalidArgument(format!(
                    "min-max target range [{new_min}, {new_max}] is empty"
                )));
            }
        }
        let params = match *self {
            Normalization::MinMax { new_min, new_max } => fit_min_max(m, new_min, new_max),
            Normalization::ZScore { mode } => fit_zscore(m, mode),
            Normalization::DecimalScaling => fit_decimal(m),
            Normalization::RobustZScore => fit_robust(m),
        };
        Ok(FittedNormalizer {
            method: *self,
            params,
        })
    }

    /// Fits and immediately transforms `m` (the common pipeline step).
    ///
    /// # Errors
    ///
    /// Same conditions as [`fit`](Self::fit).
    pub fn fit_transform(&self, m: &Matrix) -> Result<(FittedNormalizer, Matrix)> {
        let fitted = self.fit(m)?;
        let out = fitted.transform(m)?;
        Ok((fitted, out))
    }

    /// Begins a **chained partitioned fit**: an accumulator that several
    /// horizontally partitioned holders fold their row blocks into, one
    /// after another, producing a normalizer **bit-identical** to
    /// [`fit`](Self::fit) on the row-wise concatenation of all blocks.
    ///
    /// Every per-column statistic the fitters compute is a plain sequential
    /// left fold over rows (`min`/`max`, `sum`, centred sum of squares), so
    /// carrying the fold state across partition boundaries — in
    /// concatenation order — splits the pooled fold without changing a
    /// single intermediate. This is what lets multiple data owners agree on
    /// a shared normalization without pooling raw rows: only the aggregate
    /// state travels.
    ///
    /// Z-score fits are two-pass (exact means first, then centred sums);
    /// drive the accumulator with
    /// [`PartialFit::needs_second_pass`] / [`PartialFit::begin_second_pass`]
    /// and fold every block again, in the same order, before
    /// [`PartialFit::finish`].
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidArgument`] for [`Normalization::RobustZScore`]
    ///   (median/MAD need the full sorted column — there is no chainable
    ///   sufficient statistic), for a min–max target with
    ///   `new_min >= new_max`, or `n_cols == 0`.
    pub fn begin_partial_fit(&self, n_cols: usize) -> Result<PartialFit> {
        if n_cols == 0 {
            return Err(Error::InvalidArgument(
                "cannot fit a normalizer for zero columns".into(),
            ));
        }
        let state = match *self {
            Normalization::MinMax { new_min, new_max } => {
                if new_min >= new_max {
                    return Err(Error::InvalidArgument(format!(
                        "min-max target range [{new_min}, {new_max}] is empty"
                    )));
                }
                PartialState::MinMax {
                    lo: vec![f64::INFINITY; n_cols],
                    hi: vec![f64::NEG_INFINITY; n_cols],
                }
            }
            Normalization::ZScore { .. } => PartialState::ZScoreSums {
                sums: vec![0.0; n_cols],
            },
            Normalization::DecimalScaling => PartialState::Decimal {
                max_abs: vec![0.0; n_cols],
            },
            Normalization::RobustZScore => {
                return Err(Error::InvalidArgument(
                    "robust z-score needs full sorted columns and cannot be \
                     fitted from chained partition statistics"
                        .into(),
                ))
            }
        };
        Ok(PartialFit {
            method: *self,
            state,
            rows: 0,
            rows_pass2: 0,
        })
    }
}

/// Column-chunk width for the streaming fitters below: each pass keeps at
/// most this many per-column accumulators live (a few cache lines) while
/// the matrix itself is read contiguously, row-major — instead of one
/// strided [`Matrix::column_iter`] walk per column, which re-streams the
/// whole matrix `cols` times.
///
/// Each column's elements are still folded in ascending-row order with the
/// same expressions as [`rbt_linalg::stats`] (`mean_of` / `variance_of` /
/// `min_max_of`), so the fitted parameters are **bit-identical** to the
/// per-column scan this replaces.
const FIT_CHUNK_COLS: usize = 64;

fn fit_min_max(m: &Matrix, new_min: f64, new_max: f64) -> Vec<ColumnParams> {
    let mut params = Vec::with_capacity(m.cols());
    for chunk in m.column_chunks(FIT_CHUNK_COLS) {
        let mut lo = vec![f64::INFINITY; chunk.width()];
        let mut hi = vec![f64::NEG_INFINITY; chunk.width()];
        for seg in chunk.row_segments() {
            for ((l, h), &x) in lo.iter_mut().zip(hi.iter_mut()).zip(seg) {
                *l = l.min(x);
                *h = h.max(x);
            }
        }
        params.extend(lo.iter().zip(&hi).map(|(&min, &max)| ColumnParams::MinMax {
            min,
            max,
            new_min,
            new_max,
        }));
    }
    params
}

fn fit_zscore(m: &Matrix, mode: VarianceMode) -> Vec<ColumnParams> {
    let n = m.rows();
    let mut params = Vec::with_capacity(m.cols());
    for chunk in m.column_chunks(FIT_CHUNK_COLS) {
        // Two passes, like `stats::variance_of`: sums → means, then the
        // squared deviations against the exact means.
        let mut sums = vec![0.0f64; chunk.width()];
        for seg in chunk.row_segments() {
            for (s, &x) in sums.iter_mut().zip(seg) {
                *s += x;
            }
        }
        let means: Vec<f64> = sums.iter().map(|s| s / n as f64).collect();
        let mut ss = vec![0.0f64; chunk.width()];
        for seg in chunk.row_segments() {
            for ((q, &mean), &x) in ss.iter_mut().zip(&means).zip(seg) {
                *q += (x - mean) * (x - mean);
            }
        }
        params.extend(
            means
                .iter()
                .zip(&ss)
                .map(|(&mean, &q)| ColumnParams::ZScore {
                    mean,
                    std: (q / mode.divisor(n)).sqrt(),
                }),
        );
    }
    params
}

fn fit_decimal(m: &Matrix) -> Vec<ColumnParams> {
    let mut params = Vec::with_capacity(m.cols());
    for chunk in m.column_chunks(FIT_CHUNK_COLS) {
        let mut max_abs = vec![0.0f64; chunk.width()];
        for seg in chunk.row_segments() {
            for (a, &x) in max_abs.iter_mut().zip(seg) {
                *a = a.max(x.abs());
            }
        }
        params.extend(max_abs.iter().map(|&ma| {
            let mut factor = 1.0;
            while ma / factor >= 1.0 {
                factor *= 10.0;
            }
            ColumnParams::DecimalScaling { factor }
        }));
    }
    params
}

fn fit_robust(m: &Matrix) -> Vec<ColumnParams> {
    let mut params = Vec::with_capacity(m.cols());
    for chunk in m.column_chunks(FIT_CHUNK_COLS) {
        // The robust fit must sort per column; gather the chunk's columns
        // in one contiguous pass instead of one strided walk per column.
        let mut cols: Vec<Vec<f64>> = vec![Vec::with_capacity(m.rows()); chunk.width()];
        for seg in chunk.row_segments() {
            for (col, &x) in cols.iter_mut().zip(seg) {
                col.push(x);
            }
        }
        for col in &cols {
            let med = median(col);
            let deviations: Vec<f64> = col.iter().map(|x| (x - med).abs()).collect();
            // 1.4826 makes the MAD a consistent sigma estimator under
            // normality.
            let scale = 1.4826 * median(&deviations);
            params.push(ColumnParams::ZScore {
                mean: med,
                std: scale,
            });
        }
    }
    params
}

/// Median of a non-empty slice (average of the two middle order statistics
/// for even lengths).
fn median(xs: &[f64]) -> f64 {
    debug_assert!(!xs.is_empty());
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

/// Per-column fitted parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ColumnParams {
    MinMax {
        min: f64,
        max: f64,
        new_min: f64,
        new_max: f64,
    },
    ZScore {
        mean: f64,
        std: f64,
    },
    DecimalScaling {
        factor: f64,
    },
}

impl ColumnParams {
    #[inline]
    fn apply(&self, v: f64) -> f64 {
        match *self {
            ColumnParams::MinMax {
                min,
                max,
                new_min,
                new_max,
            } => {
                if max == min {
                    // Constant column: map onto the middle of the target range.
                    (new_min + new_max) / 2.0
                } else {
                    (v - min) / (max - min) * (new_max - new_min) + new_min
                }
            }
            ColumnParams::ZScore { mean, std } => {
                if std == 0.0 {
                    0.0
                } else {
                    (v - mean) / std
                }
            }
            ColumnParams::DecimalScaling { factor } => v / factor,
        }
    }

    #[inline]
    fn invert(&self, v: f64) -> f64 {
        match *self {
            ColumnParams::MinMax {
                min,
                max,
                new_min,
                new_max,
            } => {
                if max == min {
                    min
                } else {
                    (v - new_min) / (new_max - new_min) * (max - min) + min
                }
            }
            ColumnParams::ZScore { mean, std } => v * std + mean,
            ColumnParams::DecimalScaling { factor } => v * factor,
        }
    }
}

/// A normalization fitted to a specific matrix's column statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct FittedNormalizer {
    method: Normalization,
    params: Vec<ColumnParams>,
}

impl FittedNormalizer {
    /// The method this normalizer was fitted with.
    pub fn method(&self) -> Normalization {
        self.method
    }

    /// Number of columns the normalizer was fitted to.
    pub fn n_cols(&self) -> usize {
        self.params.len()
    }

    /// Overrides the advisory [`method`](Self::method) tag without touching
    /// the fitted per-column parameters. Codecs that persist the method
    /// separately (the session key-file formats) use this to restore what
    /// [`from_text`](Self::from_text) cannot infer from z-score-shaped
    /// parameters alone (sample vs population vs robust fits).
    pub fn with_method(mut self, method: Normalization) -> Self {
        self.method = method;
        self
    }

    /// Applies the fitted normalization to a matrix with the same column
    /// layout.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFitted`] if the column count differs from the
    /// fitting matrix.
    pub fn transform(&self, m: &Matrix) -> Result<Matrix> {
        self.check_cols(m)?;
        let mut out = m.clone();
        self.transform_rows_in_place(out.as_mut_slice())?;
        Ok(out)
    }

    /// Inverts the normalization (legitimate-owner path).
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFitted`] if the column count differs from the
    /// fitting matrix.
    pub fn inverse_transform(&self, m: &Matrix) -> Result<Matrix> {
        self.check_cols(m)?;
        let mut out = m.clone();
        self.invert_rows_in_place(out.as_mut_slice())?;
        Ok(out)
    }

    /// Applies the fitted normalization in place to a row-major slice of
    /// complete rows (`rows.len()` must be a multiple of
    /// [`n_cols`](Self::n_cols)).
    ///
    /// This is the primitive under [`transform`](Self::transform), exposed
    /// so batch processors can normalize disjoint row chunks independently
    /// (the release session fans chunks out over the shared thread pool);
    /// the arithmetic is elementwise per row, so any chunking produces
    /// bit-identical output to the whole-matrix call.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFitted`] if `rows.len()` is not a multiple of
    /// the fitted column count.
    pub fn transform_rows_in_place(&self, rows: &mut [f64]) -> Result<()> {
        self.check_row_slice(rows)?;
        for row in rows.chunks_exact_mut(self.params.len()) {
            for (v, p) in row.iter_mut().zip(&self.params) {
                *v = p.apply(*v);
            }
        }
        Ok(())
    }

    /// Inverts the fitted normalization in place on a row-major slice of
    /// complete rows — the chunked counterpart of
    /// [`inverse_transform`](Self::inverse_transform).
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFitted`] if `rows.len()` is not a multiple of
    /// the fitted column count.
    pub fn invert_rows_in_place(&self, rows: &mut [f64]) -> Result<()> {
        self.check_row_slice(rows)?;
        for row in rows.chunks_exact_mut(self.params.len()) {
            for (v, p) in row.iter_mut().zip(&self.params) {
                *v = p.invert(*v);
            }
        }
        Ok(())
    }

    fn check_row_slice(&self, rows: &[f64]) -> Result<()> {
        if self.params.is_empty() || !rows.len().is_multiple_of(self.params.len()) {
            return Err(Error::NotFitted(format!(
                "slice of {} values is not whole rows of {} columns",
                rows.len(),
                self.params.len()
            )));
        }
        Ok(())
    }

    /// Serializes the fitted normalizer into `w` as a compact binary
    /// record: method tag, column count, then one tagged parameter entry
    /// per column with `f64` bit patterns. Unlike
    /// [`to_text`](Self::to_text)/[`from_text`](Self::from_text), this
    /// round-trips the struct **exactly** — including the advisory method
    /// tag and every float bit.
    ///
    /// The record carries no framing; the session key-file envelope adds
    /// magic, version, and checksum around it.
    pub fn encode_into(&self, w: &mut ByteWriter) {
        match self.method {
            Normalization::MinMax { new_min, new_max } => {
                w.put_u8(0);
                w.put_f64(new_min);
                w.put_f64(new_max);
            }
            Normalization::ZScore {
                mode: VarianceMode::Sample,
            } => w.put_u8(1),
            Normalization::ZScore {
                mode: VarianceMode::Population,
            } => w.put_u8(2),
            Normalization::DecimalScaling => w.put_u8(3),
            Normalization::RobustZScore => w.put_u8(4),
        }
        w.put_usize(self.params.len());
        for p in &self.params {
            match *p {
                ColumnParams::MinMax {
                    min,
                    max,
                    new_min,
                    new_max,
                } => {
                    w.put_u8(0);
                    w.put_f64(min);
                    w.put_f64(max);
                    w.put_f64(new_min);
                    w.put_f64(new_max);
                }
                ColumnParams::ZScore { mean, std } => {
                    w.put_u8(1);
                    w.put_f64(mean);
                    w.put_f64(std);
                }
                ColumnParams::DecimalScaling { factor } => {
                    w.put_u8(2);
                    w.put_f64(factor);
                }
            }
        }
    }

    /// Decodes the record written by [`encode_into`](Self::encode_into),
    /// advancing `r` past it.
    ///
    /// # Errors
    ///
    /// Returns a typed [`DecodeError`] (never panics) for truncated input,
    /// unknown method/parameter tags, or a zero column count.
    pub fn decode_from(r: &mut ByteReader<'_>) -> DecodeResult<Self> {
        let tag_offset = r.position();
        let method = match r.take_u8()? {
            0 => Normalization::MinMax {
                new_min: r.take_f64()?,
                new_max: r.take_f64()?,
            },
            1 => Normalization::ZScore {
                mode: VarianceMode::Sample,
            },
            2 => Normalization::ZScore {
                mode: VarianceMode::Population,
            },
            3 => Normalization::DecimalScaling,
            4 => Normalization::RobustZScore,
            other => {
                return Err(DecodeError::Malformed {
                    offset: tag_offset,
                    message: format!("unknown normalization method tag {other}"),
                })
            }
        };
        let cols_offset = r.position();
        let cols = r.take_usize()?;
        if cols == 0 {
            return Err(DecodeError::Malformed {
                offset: cols_offset,
                message: "normalizer with zero columns".into(),
            });
        }
        let mut params = Vec::with_capacity(cols.min(1024));
        for _ in 0..cols {
            let tag_offset = r.position();
            let p = match r.take_u8()? {
                0 => ColumnParams::MinMax {
                    min: r.take_f64()?,
                    max: r.take_f64()?,
                    new_min: r.take_f64()?,
                    new_max: r.take_f64()?,
                },
                1 => ColumnParams::ZScore {
                    mean: r.take_f64()?,
                    std: r.take_f64()?,
                },
                2 => ColumnParams::DecimalScaling {
                    factor: r.take_f64()?,
                },
                other => {
                    return Err(DecodeError::Malformed {
                        offset: tag_offset,
                        message: format!("unknown column parameter tag {other}"),
                    })
                }
            };
            params.push(p);
        }
        Ok(FittedNormalizer { method, params })
    }

    fn check_cols(&self, m: &Matrix) -> Result<()> {
        if m.cols() != self.params.len() {
            return Err(Error::NotFitted(format!(
                "normalizer fitted for {} columns, input has {}",
                self.params.len(),
                m.cols()
            )));
        }
        Ok(())
    }

    /// Serializes the fitted parameters to a stable line-oriented text
    /// format (the owner-side companion of the transformation key):
    ///
    /// ```text
    /// rbt-normalizer v1 cols=3 method=zscore-sample
    /// zscore 4.8599999e1 1.7826945e1
    /// …
    /// ```
    ///
    /// The `method=` field carries the advisory [`method`](Self::method)
    /// tag that z-score-shaped parameters alone cannot distinguish (sample
    /// vs population vs robust fits), so the text form round-trips it just
    /// like the binary codec. Headers written before this field existed
    /// parse fine — see [`from_text`](Self::from_text).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!("rbt-normalizer v1 cols={}", self.params.len());
        if let Some(tag) = self.method.text_tag() {
            let _ = write!(out, " method={tag}");
        }
        out.push('\n');
        for p in &self.params {
            match *p {
                ColumnParams::MinMax {
                    min,
                    max,
                    new_min,
                    new_max,
                } => {
                    let _ = writeln!(
                        out,
                        "minmax {min:.17e} {max:.17e} {new_min:.17e} {new_max:.17e}"
                    );
                }
                ColumnParams::ZScore { mean, std } => {
                    let _ = writeln!(out, "zscore {mean:.17e} {std:.17e}");
                }
                ColumnParams::DecimalScaling { factor } => {
                    let _ = writeln!(out, "decimal {factor:.17e}");
                }
            }
        }
        out
    }

    /// Parses the format produced by [`to_text`](Self::to_text).
    ///
    /// Headers carrying a `method=` field restore the advisory
    /// [`method`](Self::method) tag exactly. Headers written before that
    /// field existed (plain `rbt-normalizer v1 cols=N`) still parse; the
    /// reconstructed normalizer then reports
    /// [`Normalization::zscore_paper`] when the parameters are
    /// z-score-shaped (transform/inverse behaviour is fully determined by
    /// the per-column parameters either way).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Parse`] for malformed input, including an unknown
    /// `method=` tag.
    pub fn from_text(text: &str) -> Result<Self> {
        let mut lines = text
            .lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty());
        let (_, header) = lines.next().ok_or(Error::Parse {
            line: 1,
            message: "empty normalizer".into(),
        })?;
        let bad_header = || Error::Parse {
            line: 1,
            message: format!("bad header {header:?}"),
        };
        let rest = header
            .trim()
            .strip_prefix("rbt-normalizer v1 cols=")
            .ok_or_else(bad_header)?;
        let mut fields = rest.split_whitespace();
        let cols = fields
            .next()
            .and_then(|f| f.parse::<usize>().ok())
            .ok_or_else(bad_header)?;
        let method_tag = match fields.next() {
            None => None,
            Some(f) => Some(f.strip_prefix("method=").ok_or_else(bad_header)?),
        };
        if fields.next().is_some() {
            return Err(bad_header());
        }
        let mut params = Vec::with_capacity(cols);
        let mut method = Normalization::zscore_paper();
        for (idx, line) in lines {
            let line_no = idx + 1;
            let parts: Vec<&str> = line.split_whitespace().collect();
            let floats = |want: usize| -> Result<Vec<f64>> {
                if parts.len() != want + 1 {
                    return Err(Error::Parse {
                        line: line_no,
                        message: format!("expected {} fields, found {}", want + 1, parts.len()),
                    });
                }
                parts[1..]
                    .iter()
                    .map(|raw| {
                        raw.parse::<f64>().map_err(|e| Error::Parse {
                            line: line_no,
                            message: format!("bad number {raw:?}: {e}"),
                        })
                    })
                    .collect()
            };
            match parts.first().copied() {
                Some("zscore") => {
                    let f = floats(2)?;
                    params.push(ColumnParams::ZScore {
                        mean: f[0],
                        std: f[1],
                    });
                }
                Some("minmax") => {
                    let f = floats(4)?;
                    method = Normalization::MinMax {
                        new_min: f[2],
                        new_max: f[3],
                    };
                    params.push(ColumnParams::MinMax {
                        min: f[0],
                        max: f[1],
                        new_min: f[2],
                        new_max: f[3],
                    });
                }
                Some("decimal") => {
                    let f = floats(1)?;
                    method = Normalization::DecimalScaling;
                    params.push(ColumnParams::DecimalScaling { factor: f[0] });
                }
                other => {
                    return Err(Error::Parse {
                        line: line_no,
                        message: format!("unknown parameter kind {other:?}"),
                    })
                }
            }
        }
        if params.len() != cols {
            return Err(Error::Parse {
                line: 1,
                message: format!("header declares {cols} columns, found {}", params.len()),
            });
        }
        // An explicit header tag overrides the params-derived guess — this
        // is what distinguishes sample/population/robust z-score fits,
        // whose per-column parameters all look alike.
        let method = match method_tag {
            // minmax/decimal params fully determine the method already.
            None | Some("minmax") | Some("decimal") => method,
            Some("zscore-sample") => Normalization::zscore_paper(),
            Some("zscore-population") => Normalization::ZScore {
                mode: VarianceMode::Population,
            },
            Some("robust") => Normalization::RobustZScore,
            Some(other) => {
                return Err(Error::Parse {
                    line: 1,
                    message: format!("unknown method tag {other:?}"),
                })
            }
        };
        Ok(FittedNormalizer { method, params })
    }
}

/// Fold state of a chained partitioned fit — see
/// [`Normalization::begin_partial_fit`].
#[derive(Debug, Clone, PartialEq)]
enum PartialState {
    /// Running per-column minima/maxima (min–max fits, single pass).
    MinMax { lo: Vec<f64>, hi: Vec<f64> },
    /// Pass 1 of a z-score fit: running per-column sums.
    ZScoreSums { sums: Vec<f64> },
    /// Pass 2 of a z-score fit: exact means plus running centred sums of
    /// squares.
    ZScoreCentered { means: Vec<f64>, ss: Vec<f64> },
    /// Running per-column `max |x|` (decimal scaling, single pass).
    Decimal { max_abs: Vec<f64> },
}

/// A chained accumulator for fitting a normalizer over horizontally
/// partitioned data, created by [`Normalization::begin_partial_fit`].
///
/// Fold partitions **in concatenation order**; the finished normalizer is
/// bit-identical to [`Normalization::fit`] on the pooled matrix. The
/// accumulator serializes ([`encode_into`](Self::encode_into) /
/// [`decode_from`](Self::decode_from)) so it can travel between data
/// owners — only aggregate statistics are carried, never rows.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialFit {
    method: Normalization,
    state: PartialState,
    rows: usize,
    rows_pass2: usize,
}

impl PartialFit {
    /// The method this accumulator fits.
    pub fn method(&self) -> Normalization {
        self.method
    }

    /// Number of columns being fitted.
    pub fn n_cols(&self) -> usize {
        match &self.state {
            PartialState::MinMax { lo, .. } => lo.len(),
            PartialState::ZScoreSums { sums } => sums.len(),
            PartialState::ZScoreCentered { means, .. } => means.len(),
            PartialState::Decimal { max_abs } => max_abs.len(),
        }
    }

    /// Rows folded so far (current pass).
    pub fn rows_folded(&self) -> usize {
        if matches!(self.state, PartialState::ZScoreCentered { .. }) {
            self.rows_pass2
        } else {
            self.rows
        }
    }

    /// Folds one partition's rows into the accumulator. The per-column
    /// update expressions and row order match the pooled fitters exactly,
    /// so splitting the fold at any row boundary changes nothing.
    ///
    /// # Errors
    ///
    /// * [`Error::Shape`] if `m.cols()` differs from the fitted width,
    /// * [`Error::InvalidArgument`] for NaN or infinite values.
    pub fn fold(&mut self, m: &Matrix) -> Result<()> {
        if m.cols() != self.n_cols() {
            return Err(Error::Shape(format!(
                "partial fit expects {} columns, partition has {}",
                self.n_cols(),
                m.cols()
            )));
        }
        if m.has_non_finite() {
            return Err(Error::InvalidArgument(
                "cannot fit a normalizer to NaN or infinite values".into(),
            ));
        }
        match &mut self.state {
            PartialState::MinMax { lo, hi } => {
                for row in m.row_iter() {
                    for ((l, h), &x) in lo.iter_mut().zip(hi.iter_mut()).zip(row) {
                        *l = l.min(x);
                        *h = h.max(x);
                    }
                }
                self.rows += m.rows();
            }
            PartialState::ZScoreSums { sums } => {
                for row in m.row_iter() {
                    for (s, &x) in sums.iter_mut().zip(row) {
                        *s += x;
                    }
                }
                self.rows += m.rows();
            }
            PartialState::ZScoreCentered { means, ss } => {
                for row in m.row_iter() {
                    for ((q, &mean), &x) in ss.iter_mut().zip(means.iter()).zip(row) {
                        *q += (x - mean) * (x - mean);
                    }
                }
                self.rows_pass2 += m.rows();
            }
            PartialState::Decimal { max_abs } => {
                for row in m.row_iter() {
                    for (a, &x) in max_abs.iter_mut().zip(row) {
                        *a = a.max(x.abs());
                    }
                }
                self.rows += m.rows();
            }
        }
        Ok(())
    }

    /// `true` while the accumulator still needs another chained pass over
    /// every partition before it can [`finish`](Self::finish) (z-score
    /// fits: the centred pass against the exact pooled means).
    pub fn needs_second_pass(&self) -> bool {
        matches!(self.state, PartialState::ZScoreSums { .. })
    }

    /// Transitions a two-pass fit from the sum pass to the centred pass.
    /// The exact means are fixed here (`sum / n`, the pooled fitters'
    /// expression); fold every partition again, in the same order.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArgument`] if no second pass is pending or
    /// no rows were folded.
    pub fn begin_second_pass(&mut self) -> Result<()> {
        let PartialState::ZScoreSums { sums } = &self.state else {
            return Err(Error::InvalidArgument(
                "no second pass pending for this accumulator".into(),
            ));
        };
        if self.rows == 0 {
            return Err(Error::InvalidArgument(
                "cannot compute means over zero rows".into(),
            ));
        }
        let n = self.rows as f64;
        let means: Vec<f64> = sums.iter().map(|s| s / n).collect();
        let ss = vec![0.0; means.len()];
        self.state = PartialState::ZScoreCentered { means, ss };
        Ok(())
    }

    /// Finalizes the accumulator into a [`FittedNormalizer`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArgument`] if no rows were folded, a second
    /// pass is still pending, or the two passes saw different row counts.
    pub fn finish(self) -> Result<FittedNormalizer> {
        if self.rows == 0 {
            return Err(Error::InvalidArgument(
                "cannot finish a partial fit over zero rows".into(),
            ));
        }
        let params = match self.state {
            PartialState::MinMax { lo, hi } => {
                let Normalization::MinMax { new_min, new_max } = self.method else {
                    return Err(Error::InvalidArgument(
                        "min-max state under a non-min-max method".into(),
                    ));
                };
                lo.iter()
                    .zip(&hi)
                    .map(|(&min, &max)| ColumnParams::MinMax {
                        min,
                        max,
                        new_min,
                        new_max,
                    })
                    .collect()
            }
            PartialState::ZScoreSums { .. } => {
                return Err(Error::InvalidArgument(
                    "z-score fit still needs its centred pass \
                     (begin_second_pass + fold every partition again)"
                        .into(),
                ))
            }
            PartialState::ZScoreCentered { means, ss } => {
                if self.rows_pass2 != self.rows {
                    return Err(Error::InvalidArgument(format!(
                        "centred pass folded {} rows, sum pass folded {}",
                        self.rows_pass2, self.rows
                    )));
                }
                let Normalization::ZScore { mode } = self.method else {
                    return Err(Error::InvalidArgument(
                        "z-score state under a non-z-score method".into(),
                    ));
                };
                means
                    .iter()
                    .zip(&ss)
                    .map(|(&mean, &q)| ColumnParams::ZScore {
                        mean,
                        std: (q / mode.divisor(self.rows)).sqrt(),
                    })
                    .collect()
            }
            PartialState::Decimal { max_abs } => max_abs
                .iter()
                .map(|&ma| {
                    let mut factor = 1.0;
                    while ma / factor >= 1.0 {
                        factor *= 10.0;
                    }
                    ColumnParams::DecimalScaling { factor }
                })
                .collect(),
        };
        Ok(FittedNormalizer {
            method: self.method,
            params,
        })
    }

    /// Serializes the accumulator (method, pass, fold state) so it can be
    /// carried between partition holders. Every float travels as its exact
    /// bit pattern.
    pub fn encode_into(&self, w: &mut ByteWriter) {
        match self.method {
            Normalization::MinMax { new_min, new_max } => {
                w.put_u8(0);
                w.put_f64(new_min);
                w.put_f64(new_max);
            }
            Normalization::ZScore {
                mode: VarianceMode::Sample,
            } => w.put_u8(1),
            Normalization::ZScore {
                mode: VarianceMode::Population,
            } => w.put_u8(2),
            Normalization::DecimalScaling => w.put_u8(3),
            Normalization::RobustZScore => w.put_u8(4),
        }
        w.put_usize(self.rows);
        w.put_usize(self.rows_pass2);
        let put_vec = |w: &mut ByteWriter, v: &[f64]| {
            w.put_usize(v.len());
            for &x in v {
                w.put_f64(x);
            }
        };
        match &self.state {
            PartialState::MinMax { lo, hi } => {
                w.put_u8(0);
                put_vec(w, lo);
                put_vec(w, hi);
            }
            PartialState::ZScoreSums { sums } => {
                w.put_u8(1);
                put_vec(w, sums);
            }
            PartialState::ZScoreCentered { means, ss } => {
                w.put_u8(2);
                put_vec(w, means);
                put_vec(w, ss);
            }
            PartialState::Decimal { max_abs } => {
                w.put_u8(3);
                put_vec(w, max_abs);
            }
        }
    }

    /// Decodes the record written by [`encode_into`](Self::encode_into).
    ///
    /// # Errors
    ///
    /// Returns a typed [`DecodeError`] for truncated input, unknown tags,
    /// zero columns, or state/method disagreement.
    pub fn decode_from(r: &mut ByteReader<'_>) -> DecodeResult<Self> {
        let tag_offset = r.position();
        let method = match r.take_u8()? {
            0 => Normalization::MinMax {
                new_min: r.take_f64()?,
                new_max: r.take_f64()?,
            },
            1 => Normalization::ZScore {
                mode: VarianceMode::Sample,
            },
            2 => Normalization::ZScore {
                mode: VarianceMode::Population,
            },
            3 => Normalization::DecimalScaling,
            other => {
                return Err(DecodeError::Malformed {
                    offset: tag_offset,
                    message: format!("unknown partial-fit method tag {other}"),
                })
            }
        };
        let rows = r.take_usize()?;
        let rows_pass2 = r.take_usize()?;
        fn take_vec(r: &mut ByteReader<'_>) -> DecodeResult<Vec<f64>> {
            let offset = r.position();
            let len = r.take_usize()?;
            if len == 0 {
                return Err(DecodeError::Malformed {
                    offset,
                    message: "partial fit with zero columns".into(),
                });
            }
            let mut v = Vec::with_capacity(len.min(4096));
            for _ in 0..len {
                v.push(r.take_f64()?);
            }
            Ok(v)
        }
        let state_offset = r.position();
        let state = match r.take_u8()? {
            0 => {
                let lo = take_vec(r)?;
                let hi = take_vec(r)?;
                if lo.len() != hi.len() {
                    return Err(DecodeError::Malformed {
                        offset: state_offset,
                        message: "min-max bounds of different widths".into(),
                    });
                }
                PartialState::MinMax { lo, hi }
            }
            1 => PartialState::ZScoreSums { sums: take_vec(r)? },
            2 => {
                let means = take_vec(r)?;
                let ss = take_vec(r)?;
                if means.len() != ss.len() {
                    return Err(DecodeError::Malformed {
                        offset: state_offset,
                        message: "centred state of different widths".into(),
                    });
                }
                PartialState::ZScoreCentered { means, ss }
            }
            3 => PartialState::Decimal {
                max_abs: take_vec(r)?,
            },
            other => {
                return Err(DecodeError::Malformed {
                    offset: state_offset,
                    message: format!("unknown partial-fit state tag {other}"),
                })
            }
        };
        let consistent = matches!(
            (&method, &state),
            (Normalization::MinMax { .. }, PartialState::MinMax { .. })
                | (
                    Normalization::ZScore { .. },
                    PartialState::ZScoreSums { .. } | PartialState::ZScoreCentered { .. }
                )
                | (Normalization::DecimalScaling, PartialState::Decimal { .. })
        );
        if !consistent {
            return Err(DecodeError::Malformed {
                offset: state_offset,
                message: "partial-fit state disagrees with its method".into(),
            });
        }
        Ok(PartialFit {
            method,
            state,
            rows,
            rows_pass2,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;

    #[test]
    fn zscore_reproduces_paper_table2() {
        // Table 1 → Table 2 with the sample (1/(N−1)) divisor.
        let raw = datasets::arrhythmia_sample();
        let (_, z) = Normalization::zscore_paper()
            .fit_transform(raw.matrix())
            .unwrap();
        let expected = datasets::arrhythmia_normalized_table2();
        assert!(
            z.approx_eq(expected.matrix(), 5e-5),
            "max diff {:?}",
            z.max_abs_diff(expected.matrix())
        );
    }

    #[test]
    fn zscore_population_differs_from_sample() {
        let raw = datasets::arrhythmia_sample();
        let (_, zs) = Normalization::ZScore {
            mode: VarianceMode::Sample,
        }
        .fit_transform(raw.matrix())
        .unwrap();
        let (_, zp) = Normalization::ZScore {
            mode: VarianceMode::Population,
        }
        .fit_transform(raw.matrix())
        .unwrap();
        assert!(zs.max_abs_diff(&zp).unwrap() > 0.1);
    }

    #[test]
    fn zscore_gives_zero_mean_unit_variance() {
        let raw = datasets::arrhythmia_sample();
        let (_, z) = Normalization::zscore_paper()
            .fit_transform(raw.matrix())
            .unwrap();
        for j in 0..z.cols() {
            let col = z.column(j);
            assert!(stats::mean(&col).unwrap().abs() < 1e-12);
            assert!((stats::variance(&col, VarianceMode::Sample).unwrap() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn min_max_maps_onto_target_range() {
        let m = Matrix::from_columns(&[&[10.0, 20.0, 30.0], &[-1.0, 0.0, 3.0]]).unwrap();
        let (_, t) = Normalization::min_max_unit().fit_transform(&m).unwrap();
        for j in 0..2 {
            let col = t.column(j);
            let (lo, hi) = stats::min_max(&col).unwrap();
            assert!((lo - 0.0).abs() < 1e-12 && (hi - 1.0).abs() < 1e-12);
        }
        // Custom range.
        let (_, t2) = (Normalization::MinMax {
            new_min: -2.0,
            new_max: 2.0,
        })
        .fit_transform(&m)
        .unwrap();
        let (lo, hi) = stats::min_max(&t2.column(0)).unwrap();
        assert!((lo + 2.0).abs() < 1e-12 && (hi - 2.0).abs() < 1e-12);
    }

    #[test]
    fn min_max_rejects_empty_range() {
        let m = Matrix::zeros(2, 1);
        assert!(matches!(
            (Normalization::MinMax {
                new_min: 1.0,
                new_max: 1.0
            })
            .fit(&m),
            Err(Error::InvalidArgument(_))
        ));
    }

    #[test]
    fn decimal_scaling_bounds() {
        let m = Matrix::from_columns(&[&[987.0, -123.0, 4.0]]).unwrap();
        let (_, t) = Normalization::DecimalScaling.fit_transform(&m).unwrap();
        for &v in t.as_slice() {
            assert!(v.abs() < 1.0);
        }
        assert!((t[(0, 0)] - 0.987).abs() < 1e-12);
    }

    #[test]
    fn inverse_round_trips() {
        let raw = datasets::arrhythmia_sample();
        for method in [
            Normalization::zscore_paper(),
            Normalization::min_max_unit(),
            Normalization::DecimalScaling,
            Normalization::ZScore {
                mode: VarianceMode::Population,
            },
        ] {
            let (fitted, t) = method.fit_transform(raw.matrix()).unwrap();
            let back = fitted.inverse_transform(&t).unwrap();
            assert!(
                back.approx_eq(raw.matrix(), 1e-9),
                "round trip failed for {method:?}"
            );
        }
    }

    #[test]
    fn constant_column_handled() {
        let m = Matrix::from_columns(&[&[5.0, 5.0, 5.0], &[1.0, 2.0, 3.0]]).unwrap();
        let (_, z) = Normalization::zscore_paper().fit_transform(&m).unwrap();
        assert_eq!(z.column(0), vec![0.0, 0.0, 0.0]);
        let (_, mm) = Normalization::min_max_unit().fit_transform(&m).unwrap();
        assert_eq!(mm.column(0), vec![0.5, 0.5, 0.5]);
    }

    #[test]
    fn robust_zscore_shrugs_off_outliers() {
        // Identical bulk, one catastrophic outlier appended.
        let clean: Vec<f64> = (0..50).map(|i| 10.0 + 0.1 * i as f64).collect();
        let mut dirty = clean.clone();
        dirty.push(1e6);
        let mc = Matrix::from_columns(&[&clean]).unwrap();
        let md = Matrix::from_columns(&[&dirty]).unwrap();
        let (_, zc) = Normalization::RobustZScore.fit_transform(&mc).unwrap();
        let (_, zd) = Normalization::RobustZScore.fit_transform(&md).unwrap();
        // The bulk's normalized values barely move despite the outlier
        // (the small residual shift comes from the even→odd median change).
        for i in 0..50 {
            assert!((zc[(i, 0)] - zd[(i, 0)]).abs() < 0.1, "row {i}");
        }
        // … whereas the classic z-score collapses the bulk to ~one point.
        let (_, sc) = Normalization::zscore_paper().fit_transform(&mc).unwrap();
        let (_, sd) = Normalization::zscore_paper().fit_transform(&md).unwrap();
        let classic_shift = (0..50)
            .map(|i| (sc[(i, 0)] - sd[(i, 0)]).abs())
            .fold(0.0, f64::max);
        assert!(classic_shift > 0.5, "classic shift {classic_shift}");
    }

    #[test]
    fn robust_zscore_round_trips() {
        let m = Matrix::from_columns(&[&[3.0, 7.0, -2.0, 100.0, 5.0]]).unwrap();
        let (fitted, t) = Normalization::RobustZScore.fit_transform(&m).unwrap();
        let back = fitted.inverse_transform(&t).unwrap();
        assert!(back.approx_eq(&m, 1e-9));
        // Median maps to zero.
        assert!((t[(4, 0)] - 0.0).abs() < 1e-12); // 5.0 is the median
    }

    #[test]
    fn robust_zscore_constant_column() {
        let m = Matrix::from_columns(&[&[2.0, 2.0, 2.0]]).unwrap();
        let (_, t) = Normalization::RobustZScore.fit_transform(&m).unwrap();
        assert_eq!(t.column(0), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn transform_checks_column_count() {
        let m = Matrix::zeros(3, 2);
        let fitted = Normalization::min_max_unit()
            .fit(&Matrix::from_columns(&[&[1.0, 2.0, 3.0]]).unwrap())
            .unwrap();
        assert!(matches!(fitted.transform(&m), Err(Error::NotFitted(_))));
        assert!(matches!(
            fitted.inverse_transform(&m),
            Err(Error::NotFitted(_))
        ));
    }

    #[test]
    fn normalizer_text_round_trip() {
        let raw = crate::datasets::arrhythmia_sample();
        for method in [
            Normalization::zscore_paper(),
            Normalization::min_max_unit(),
            Normalization::DecimalScaling,
            Normalization::RobustZScore,
        ] {
            let (fitted, t) = method.fit_transform(raw.matrix()).unwrap();
            let text = fitted.to_text();
            assert!(text.starts_with("rbt-normalizer v1 cols=3"));
            let parsed = FittedNormalizer::from_text(&text).unwrap();
            // Parsed normalizer behaves identically.
            let t2 = parsed.transform(raw.matrix()).unwrap();
            assert!(t.approx_eq(&t2, 1e-12), "{method:?}");
            let back = parsed.inverse_transform(&t).unwrap();
            assert!(back.approx_eq(raw.matrix(), 1e-9), "{method:?}");
        }
    }

    #[test]
    fn text_round_trip_preserves_advisory_method_tag() {
        // The binary codec always round-tripped the advisory method; the
        // text form used to lose it for the z-score-shaped fits. The
        // method= header field closes that gap for every shipped method.
        let raw = crate::datasets::arrhythmia_sample();
        for method in [
            Normalization::zscore_paper(),
            Normalization::ZScore {
                mode: VarianceMode::Population,
            },
            Normalization::min_max_unit(),
            Normalization::MinMax {
                new_min: -1.5,
                new_max: 4.25,
            },
            Normalization::DecimalScaling,
            Normalization::RobustZScore,
        ] {
            let (fitted, _) = method.fit_transform(raw.matrix()).unwrap();
            let parsed = FittedNormalizer::from_text(&fitted.to_text()).unwrap();
            assert_eq!(parsed.method(), method, "tag lost in text round trip");
            assert_eq!(parsed, fitted, "params changed in text round trip");
        }
    }

    #[test]
    fn from_text_accepts_pre_method_tag_headers() {
        // Files written before the method= field existed (and the session
        // format's reconstructed headers) must keep parsing.
        let legacy = "rbt-normalizer v1 cols=2\nzscore 1.0 2.0\nzscore 0.5 1.5\n";
        let parsed = FittedNormalizer::from_text(legacy).unwrap();
        assert_eq!(parsed.n_cols(), 2);
        assert_eq!(parsed.method(), Normalization::zscore_paper());
        // Unknown tags and malformed trailing fields are rejected.
        assert!(FittedNormalizer::from_text(
            "rbt-normalizer v1 cols=1 method=wavelet\nzscore 1.0 2.0\n"
        )
        .is_err());
        assert!(FittedNormalizer::from_text(
            "rbt-normalizer v1 cols=1 method=robust junk\nzscore 1.0 2.0\n"
        )
        .is_err());
        assert!(
            FittedNormalizer::from_text("rbt-normalizer v1 cols=1 robust\nzscore 1.0 2.0\n")
                .is_err()
        );
    }

    #[test]
    fn columnar_fit_is_bitwise_identical_to_per_column_scan() {
        // The chunked, row-streaming fitters must reproduce the strided
        // per-column stats walk bit for bit — including across a chunk
        // boundary (cols > FIT_CHUNK_COLS).
        let rows = 7;
        let cols = FIT_CHUNK_COLS * 2 + 3;
        let mut data = Vec::with_capacity(rows * cols);
        let mut x = 0.5f64;
        for _ in 0..rows * cols {
            // Deterministic, well-spread values (logistic map).
            x = 3.99 * x * (1.0 - x);
            data.push(200.0 * x - 100.0);
        }
        let m = Matrix::from_vec(rows, cols, data).unwrap();

        for method in [
            Normalization::zscore_paper(),
            Normalization::ZScore {
                mode: VarianceMode::Population,
            },
            Normalization::MinMax {
                new_min: -1.0,
                new_max: 3.0,
            },
            Normalization::DecimalScaling,
            Normalization::RobustZScore,
        ] {
            let fitted = method.fit(&m).unwrap();
            for j in 0..cols {
                let expected = match method {
                    Normalization::MinMax { new_min, new_max } => {
                        let (min, max) = stats::min_max_of(m.column_iter(j)).unwrap();
                        ColumnParams::MinMax {
                            min,
                            max,
                            new_min,
                            new_max,
                        }
                    }
                    Normalization::ZScore { mode } => ColumnParams::ZScore {
                        mean: stats::mean_of(m.column_iter(j)).unwrap(),
                        std: stats::variance_of(m.column_iter(j), mode).unwrap().sqrt(),
                    },
                    Normalization::DecimalScaling => {
                        let max_abs = m.column_iter(j).fold(0.0f64, |a, v| a.max(v.abs()));
                        let mut factor = 1.0;
                        while max_abs / factor >= 1.0 {
                            factor *= 10.0;
                        }
                        ColumnParams::DecimalScaling { factor }
                    }
                    Normalization::RobustZScore => {
                        let col: Vec<f64> = m.column_iter(j).collect();
                        let med = median(&col);
                        let deviations: Vec<f64> = col.iter().map(|v| (v - med).abs()).collect();
                        ColumnParams::ZScore {
                            mean: med,
                            std: 1.4826 * median(&deviations),
                        }
                    }
                };
                assert_eq!(fitted.params[j], expected, "{method:?} column {j}");
            }
        }
    }

    #[test]
    fn fit_rejects_non_finite_values() {
        // Library error path: NaN/∞ must surface as a typed error, never a
        // panic (the robust fit used to panic in its median sort).
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let m = Matrix::from_columns(&[&[1.0, bad, 3.0]]).unwrap();
            for method in [
                Normalization::zscore_paper(),
                Normalization::min_max_unit(),
                Normalization::DecimalScaling,
                Normalization::RobustZScore,
            ] {
                assert!(
                    matches!(method.fit(&m), Err(Error::InvalidArgument(_))),
                    "{method:?} with {bad}"
                );
            }
        }
    }

    #[test]
    fn normalizer_text_rejects_malformed() {
        assert!(FittedNormalizer::from_text("").is_err());
        assert!(FittedNormalizer::from_text("wrong header").is_err());
        assert!(FittedNormalizer::from_text("rbt-normalizer v1 cols=1\nwiggle 1 2").is_err());
        assert!(FittedNormalizer::from_text("rbt-normalizer v1 cols=1\nzscore 1").is_err());
        assert!(FittedNormalizer::from_text("rbt-normalizer v1 cols=2\nzscore 1 2").is_err());
        assert!(FittedNormalizer::from_text("rbt-normalizer v1 cols=1\nzscore x 2").is_err());
    }

    #[test]
    fn binary_codec_round_trips_exactly() {
        let raw = crate::datasets::arrhythmia_sample();
        for method in [
            Normalization::zscore_paper(),
            Normalization::ZScore {
                mode: VarianceMode::Population,
            },
            Normalization::min_max_unit(),
            Normalization::MinMax {
                new_min: -3.5,
                new_max: 12.25,
            },
            Normalization::DecimalScaling,
            Normalization::RobustZScore,
        ] {
            let (fitted, _) = method.fit_transform(raw.matrix()).unwrap();
            let mut w = ByteWriter::new();
            fitted.encode_into(&mut w);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            let back = FittedNormalizer::decode_from(&mut r).unwrap();
            r.expect_end().unwrap();
            // Struct-exact: the advisory method survives, unlike from_text.
            assert_eq!(back, fitted, "{method:?}");
            assert_eq!(back.method(), method, "{method:?}");
        }
    }

    #[test]
    fn binary_codec_rejects_corruption() {
        let raw = crate::datasets::arrhythmia_sample();
        let (fitted, _) = Normalization::zscore_paper()
            .fit_transform(raw.matrix())
            .unwrap();
        let mut w = ByteWriter::new();
        fitted.encode_into(&mut w);
        let bytes = w.into_bytes();
        // Every truncation point fails with a typed error, no panic.
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(FittedNormalizer::decode_from(&mut r).is_err(), "cut {cut}");
        }
        // Unknown method / parameter tags.
        let mut bad_method = bytes.clone();
        bad_method[0] = 99;
        assert!(matches!(
            FittedNormalizer::decode_from(&mut ByteReader::new(&bad_method)),
            Err(DecodeError::Malformed { offset: 0, .. })
        ));
        let mut bad_param = bytes.clone();
        bad_param[9] = 77; // first column's parameter tag (method u8 + cols u64)
        assert!(matches!(
            FittedNormalizer::decode_from(&mut ByteReader::new(&bad_param)),
            Err(DecodeError::Malformed { offset: 9, .. })
        ));
    }

    #[test]
    fn rows_in_place_matches_matrix_transform() {
        let raw = crate::datasets::arrhythmia_sample();
        let (fitted, t) = Normalization::zscore_paper()
            .fit_transform(raw.matrix())
            .unwrap();
        let mut rows = raw.matrix().as_slice().to_vec();
        fitted.transform_rows_in_place(&mut rows).unwrap();
        assert_eq!(rows, t.as_slice());
        fitted.invert_rows_in_place(&mut rows).unwrap();
        let back = Matrix::from_vec(raw.n_rows(), raw.n_cols(), rows).unwrap();
        assert!(back.approx_eq(raw.matrix(), 1e-9));
        // Ragged slices are rejected.
        let mut ragged = vec![0.0; 4];
        assert!(matches!(
            fitted.transform_rows_in_place(&mut ragged),
            Err(Error::NotFitted(_))
        ));
    }

    #[test]
    fn with_method_overrides_advisory_tag() {
        let m = Matrix::from_columns(&[&[3.0, 7.0, -2.0]]).unwrap();
        let (fitted, t) = Normalization::RobustZScore.fit_transform(&m).unwrap();
        let restored = FittedNormalizer::from_text(&fitted.to_text())
            .unwrap()
            .with_method(Normalization::RobustZScore);
        assert_eq!(restored.method(), Normalization::RobustZScore);
        assert!(restored.transform(&m).unwrap().approx_eq(&t, 0.0));
    }

    #[test]
    fn fit_rejects_empty() {
        assert!(Normalization::zscore_paper()
            .fit(&Matrix::zeros(0, 0))
            .is_err());
    }

    #[test]
    fn applying_to_new_data_uses_fitted_params() {
        let train = Matrix::from_columns(&[&[0.0, 10.0]]).unwrap();
        let fitted = Normalization::min_max_unit().fit(&train).unwrap();
        let test = Matrix::from_columns(&[&[5.0, 20.0]]).unwrap();
        let t = fitted.transform(&test).unwrap();
        // 5 → 0.5 within the fitted [0,10] range; 20 extrapolates to 2.0.
        assert!((t[(0, 0)] - 0.5).abs() < 1e-12);
        assert!((t[(1, 0)] - 2.0).abs() < 1e-12);
    }

    /// A deterministic 101 × 5 matrix with irrational-ish values, large
    /// enough that float addition order matters.
    fn chained_fit_fixture() -> Matrix {
        let mut vals = Vec::with_capacity(101 * 5);
        for i in 0..101 {
            for j in 0..5 {
                let base = (i * 7 + j * 3) % 13;
                vals.push((base as f64 - 6.0) * 0.37 + ((i * 5 + j) as f64).sin());
            }
        }
        Matrix::from_vec(101, 5, vals).unwrap()
    }

    fn row_block(m: &Matrix, lo: usize, hi: usize) -> Matrix {
        let rows: Vec<&[f64]> = (lo..hi).map(|i| m.row(i)).collect();
        Matrix::from_rows(&rows).unwrap()
    }

    /// Runs a chained partial fit over the given row splits and returns the
    /// finished normalizer.
    fn run_chain(method: Normalization, m: &Matrix, cuts: &[usize]) -> FittedNormalizer {
        let blocks: Vec<Matrix> = {
            let mut edges = vec![0];
            edges.extend_from_slice(cuts);
            edges.push(m.rows());
            edges.windows(2).map(|w| row_block(m, w[0], w[1])).collect()
        };
        let mut acc = method.begin_partial_fit(m.cols()).unwrap();
        for b in &blocks {
            acc.fold(b).unwrap();
        }
        if acc.needs_second_pass() {
            acc.begin_second_pass().unwrap();
            for b in &blocks {
                acc.fold(b).unwrap();
            }
        }
        acc.finish().unwrap()
    }

    #[test]
    fn chained_partial_fit_bitwise_matches_pooled_fit() {
        let m = chained_fit_fixture();
        let methods = [
            Normalization::min_max_unit(),
            Normalization::MinMax {
                new_min: -3.0,
                new_max: 2.0,
            },
            Normalization::zscore_paper(),
            Normalization::ZScore {
                mode: VarianceMode::Population,
            },
            Normalization::DecimalScaling,
        ];
        // Partition boundaries everywhere: singleton first block, uneven
        // splits, a split inside every fold position that could matter.
        let splits: &[&[usize]] = &[&[], &[1], &[50], &[1, 2], &[13, 14, 99], &[33, 66]];
        for method in methods {
            let pooled = method.fit(&m).unwrap();
            let mut pooled_bytes = ByteWriter::new();
            pooled.encode_into(&mut pooled_bytes);
            for cuts in splits {
                let chained = run_chain(method, &m, cuts);
                let mut chained_bytes = ByteWriter::new();
                chained.encode_into(&mut chained_bytes);
                // Byte-level equality pins every float bit pattern, not just
                // `==` (which would let -0.0 slip past 0.0).
                assert_eq!(
                    pooled_bytes.as_bytes(),
                    chained_bytes.as_bytes(),
                    "{method:?} with cuts {cuts:?}"
                );
            }
        }
    }

    #[test]
    fn partial_fit_serialization_round_trips_mid_chain() {
        let m = chained_fit_fixture();
        let a = row_block(&m, 0, 40);
        let b = row_block(&m, 40, 101);
        let method = Normalization::zscore_paper();

        let mut acc = method.begin_partial_fit(5).unwrap();
        acc.fold(&a).unwrap();
        // Ship the accumulator to the "next owner" and back, byte-exact.
        let mut w = ByteWriter::new();
        acc.encode_into(&mut w);
        let mut r = ByteReader::new(w.as_bytes());
        let mut acc2 = PartialFit::decode_from(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(acc, acc2);
        acc2.fold(&b).unwrap();
        acc2.begin_second_pass().unwrap();
        acc2.fold(&a).unwrap();
        acc2.fold(&b).unwrap();
        assert_eq!(acc2.finish().unwrap(), method.fit(&m).unwrap());
    }

    #[test]
    fn partial_fit_decode_rejects_malformed() {
        // Unknown method tag.
        let mut r = ByteReader::new(&[9]);
        assert!(PartialFit::decode_from(&mut r).is_err());
        // Method/state disagreement: z-score method with decimal state.
        let mut w = ByteWriter::new();
        w.put_u8(1); // zscore-sample
        w.put_usize(3);
        w.put_usize(0);
        w.put_u8(3); // decimal state
        w.put_usize(1);
        w.put_f64(1.0);
        let mut r = ByteReader::new(w.as_bytes());
        assert!(PartialFit::decode_from(&mut r).is_err());
        // Truncation.
        let mut w = ByteWriter::new();
        Normalization::min_max_unit()
            .begin_partial_fit(2)
            .unwrap()
            .encode_into(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..bytes.len() - 3]);
        assert!(PartialFit::decode_from(&mut r).is_err());
    }

    #[test]
    fn partial_fit_misuse_is_typed() {
        let m = chained_fit_fixture();
        // Robust fits have no chainable sufficient statistic.
        assert!(matches!(
            Normalization::RobustZScore.begin_partial_fit(5),
            Err(Error::InvalidArgument(_))
        ));
        assert!(Normalization::min_max_unit().begin_partial_fit(0).is_err());
        assert!(Normalization::MinMax {
            new_min: 1.0,
            new_max: 1.0
        }
        .begin_partial_fit(2)
        .is_err());
        // Width mismatch and non-finite values are rejected at fold time.
        let mut acc = Normalization::zscore_paper().begin_partial_fit(4).unwrap();
        assert!(matches!(acc.fold(&m), Err(Error::Shape(_))));
        let mut acc = Normalization::zscore_paper().begin_partial_fit(1).unwrap();
        let bad = Matrix::from_columns(&[&[1.0, f64::NAN]]).unwrap();
        assert!(matches!(acc.fold(&bad), Err(Error::InvalidArgument(_))));
        // Z-score cannot finish before the centred pass…
        let mut acc = Normalization::zscore_paper().begin_partial_fit(5).unwrap();
        acc.fold(&m).unwrap();
        assert!(acc.clone().finish().is_err());
        // …and the centred pass must re-fold exactly the pass-1 rows.
        acc.begin_second_pass().unwrap();
        acc.fold(&row_block(&m, 0, 50)).unwrap();
        assert!(matches!(acc.finish(), Err(Error::InvalidArgument(_))));
        // Single-pass fits reject a second pass; empty fits reject finish.
        let mut acc = Normalization::min_max_unit().begin_partial_fit(2).unwrap();
        assert!(!acc.needs_second_pass());
        assert!(acc.begin_second_pass().is_err());
        assert!(acc.finish().is_err());
    }
}
