//! Built-in datasets, embedded from the paper.
//!
//! The paper's running example (§5.1) is a five-record sample of the UCI
//! Cardiac Arrhythmia database with three numerical attributes: `age`,
//! `weight` and `heart_rate`. Table 1 prints the raw values and Table 2 the
//! z-score-normalized values; both are embedded here verbatim so the
//! experiment harness can check our pipeline digit-for-digit against the
//! paper.

use crate::dataset::Dataset;
use rbt_linalg::Matrix;

/// Object IDs of the paper's Table 1.
pub const ARRHYTHMIA_IDS: [u64; 5] = [1237, 3420, 2543, 4461, 2863];

/// Column names of the paper's Table 1.
pub const ARRHYTHMIA_COLUMNS: [&str; 3] = ["age", "weight", "heart_rate"];

/// Raw attribute values of the paper's Table 1 (row-major).
pub const ARRHYTHMIA_RAW: [[f64; 3]; 5] = [
    [75.0, 80.0, 63.0],
    [56.0, 64.0, 53.0],
    [40.0, 52.0, 70.0],
    [28.0, 58.0, 76.0],
    [44.0, 90.0, 68.0],
];

/// Z-score-normalized values as printed in the paper's Table 2 (4 decimals,
/// sample divisor).
pub const ARRHYTHMIA_TABLE2: [[f64; 3]; 5] = [
    [1.4809, 0.7095, -0.3476],
    [0.4151, -0.3041, -1.5061],
    [-0.4824, -1.0642, 0.4634],
    [-1.1556, -0.6841, 1.1586],
    [-0.2580, 1.3430, 0.2317],
];

/// Transformed values as printed in the paper's Table 3 (after rotating
/// `[age, heart_rate]` by 312.47° and `[weight, age']` by 147.29°).
pub const ARRHYTHMIA_TABLE3: [[f64; 3]; 5] = [
    [-1.4405, 0.0819, 0.8577],
    [-1.0063, 1.0077, -0.7108],
    [1.1368, 0.5347, -0.0429],
    [1.7453, -0.3078, -0.0701],
    [-0.4353, -1.3165, -0.0339],
];

/// The strict lower triangle of the paper's Table 4 (= Table 6) — the
/// Euclidean dissimilarity matrix of the transformed (and of the normalized)
/// database. Row-major: d(2,1); d(3,1) d(3,2); …
pub const ARRHYTHMIA_TABLE4_LOWER: [&[f64]; 4] = [
    &[1.8723],
    &[2.7674, 2.2940],
    &[3.3409, 3.1164, 1.0396],
    &[1.9393, 2.4872, 2.4287, 2.4029],
];

/// The strict lower triangle of the paper's Table 5 — the dissimilarity
/// matrix after an attacker re-normalizes the released data (distances no
/// longer match Table 4, defeating that attack).
pub const ARRHYTHMIA_TABLE5_LOWER: [&[f64]; 4] = [
    &[3.0121],
    &[2.5196, 2.0314],
    &[2.8778, 2.7384, 1.0499],
    &[2.3604, 2.9205, 2.3811, 1.9492],
];

fn build(rows: &[[f64; 3]; 5]) -> Dataset {
    let row_slices: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    let matrix = Matrix::from_rows(&row_slices).expect("embedded table is well-formed");
    Dataset::new(
        matrix,
        ARRHYTHMIA_COLUMNS.iter().map(|s| s.to_string()).collect(),
    )
    .expect("embedded column names match")
    .with_ids(ARRHYTHMIA_IDS.to_vec())
    .expect("embedded ids match")
}

/// The raw Cardiac Arrhythmia sample — the paper's **Table 1**.
pub fn arrhythmia_sample() -> Dataset {
    build(&ARRHYTHMIA_RAW)
}

/// The normalized sample exactly as printed in the paper's **Table 2**
/// (values rounded to 4 decimals by the paper).
pub fn arrhythmia_normalized_table2() -> Dataset {
    build(&ARRHYTHMIA_TABLE2)
}

/// The transformed sample exactly as printed in the paper's **Table 3**
/// (values rounded to 4 decimals by the paper).
pub fn arrhythmia_transformed_table3() -> Dataset {
    build(&ARRHYTHMIA_TABLE3)
}

/// Expands one of the embedded lower-triangle tables into a condensed
/// upper-triangle buffer usable with
/// [`DissimilarityMatrix::from_condensed`](rbt_linalg::dissimilarity::DissimilarityMatrix::from_condensed).
pub fn lower_triangle_to_condensed(lower: &[&[f64]]) -> Vec<f64> {
    // lower[r] holds d(r+1, 0..=r); condensed wants (i,j) i<j row-major.
    let n = lower.len() + 1;
    let mut condensed = vec![0.0; n * (n - 1) / 2];
    let idx = |i: usize, j: usize| i * (2 * n - i - 1) / 2 + (j - i - 1);
    for (r, row) in lower.iter().enumerate() {
        let i_obj = r + 1;
        for (j_obj, &d) in row.iter().enumerate() {
            condensed[idx(j_obj, i_obj)] = d;
        }
    }
    condensed
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbt_linalg::dissimilarity::DissimilarityMatrix;
    use rbt_linalg::distance::Metric;

    #[test]
    fn sample_matches_paper_dimensions() {
        let ds = arrhythmia_sample();
        assert_eq!(ds.n_rows(), 5);
        assert_eq!(ds.n_cols(), 3);
        assert_eq!(ds.ids().unwrap(), &ARRHYTHMIA_IDS);
        assert_eq!(ds.columns(), &ARRHYTHMIA_COLUMNS);
    }

    #[test]
    fn table2_and_table3_have_same_dissimilarity() {
        // The paper's headline observation (§5.1): the dissimilarity matrix
        // of Table 2 equals that of Table 3 (to printing precision).
        let d2 = DissimilarityMatrix::from_matrix(
            arrhythmia_normalized_table2().matrix(),
            Metric::Euclidean,
        );
        let d3 = DissimilarityMatrix::from_matrix(
            arrhythmia_transformed_table3().matrix(),
            Metric::Euclidean,
        );
        assert!(d2.max_abs_diff(&d3).unwrap() < 2e-4);
    }

    #[test]
    fn table3_dissimilarity_matches_embedded_table4() {
        let d3 = DissimilarityMatrix::from_matrix(
            arrhythmia_transformed_table3().matrix(),
            Metric::Euclidean,
        );
        let table4 = DissimilarityMatrix::from_condensed(
            5,
            lower_triangle_to_condensed(&ARRHYTHMIA_TABLE4_LOWER),
        )
        .unwrap();
        assert!(
            d3.max_abs_diff(&table4).unwrap() < 2e-4,
            "diff = {:?}",
            d3.max_abs_diff(&table4)
        );
    }

    #[test]
    fn lower_triangle_expansion_layout() {
        let condensed = lower_triangle_to_condensed(&ARRHYTHMIA_TABLE4_LOWER);
        let dm = DissimilarityMatrix::from_condensed(5, condensed).unwrap();
        assert_eq!(dm.get(1, 0), 1.8723);
        assert_eq!(dm.get(4, 3), 2.4029);
        assert_eq!(dm.get(2, 1), 2.2940);
    }

    #[test]
    fn raw_age_column_matches_paper() {
        let ds = arrhythmia_sample();
        assert_eq!(
            ds.column_by_name("age").unwrap(),
            vec![75.0, 56.0, 40.0, 28.0, 44.0]
        );
    }
}
