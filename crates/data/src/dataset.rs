//! The labelled data-matrix container.
//!
//! A [`Dataset`] is the paper's data matrix (§3.2) plus the metadata the
//! running example carries: named attributes and optional object IDs
//! (Table 1's `ID` column). Suppressing the IDs is Step 2 of the paper's
//! privacy-preservation process (§5.3, *data anonymization*).

use crate::{Error, Result};
use rbt_linalg::Matrix;
use std::fmt;

/// A data matrix with named columns and optional per-row object IDs.
///
/// # Example
///
/// ```
/// use rbt_data::Dataset;
/// use rbt_linalg::Matrix;
///
/// let m = Matrix::from_rows(&[&[75.0, 63.0], &[56.0, 53.0]]).unwrap();
/// let ds = Dataset::new(m, vec!["age".into(), "heart_rate".into()]).unwrap()
///     .with_ids(vec![1237, 3420]).unwrap();
/// assert_eq!(ds.column_by_name("age").unwrap(), vec![75.0, 56.0]);
/// let anon = ds.anonymized();
/// assert!(anon.ids().is_none());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    matrix: Matrix,
    columns: Vec<String>,
    ids: Option<Vec<u64>>,
}

impl Dataset {
    /// Creates a dataset from a matrix and column names.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Shape`] if `columns.len() != matrix.cols()`.
    pub fn new(matrix: Matrix, columns: Vec<String>) -> Result<Self> {
        if columns.len() != matrix.cols() {
            return Err(Error::Shape(format!(
                "{} column names for a matrix with {} columns",
                columns.len(),
                matrix.cols()
            )));
        }
        Ok(Dataset {
            matrix,
            columns,
            ids: None,
        })
    }

    /// Creates a dataset with auto-generated column names `a0, a1, …`.
    pub fn from_matrix(matrix: Matrix) -> Self {
        let columns = (0..matrix.cols()).map(|j| format!("a{j}")).collect();
        Dataset {
            matrix,
            columns,
            ids: None,
        }
    }

    /// Attaches object IDs (consumes and returns the dataset).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Shape`] if `ids.len() != rows`.
    pub fn with_ids(mut self, ids: Vec<u64>) -> Result<Self> {
        if ids.len() != self.matrix.rows() {
            return Err(Error::Shape(format!(
                "{} ids for {} rows",
                ids.len(),
                self.matrix.rows()
            )));
        }
        self.ids = Some(ids);
        Ok(self)
    }

    /// The underlying data matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.matrix
    }

    /// Mutable access to the underlying data matrix.
    pub fn matrix_mut(&mut self) -> &mut Matrix {
        &mut self.matrix
    }

    /// Consumes the dataset, returning the matrix.
    pub fn into_matrix(self) -> Matrix {
        self.matrix
    }

    /// Replaces the matrix, keeping names/IDs.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Shape`] if the new matrix's shape disagrees with the
    /// column names or IDs.
    pub fn replace_matrix(&mut self, matrix: Matrix) -> Result<()> {
        if matrix.cols() != self.columns.len() {
            return Err(Error::Shape(format!(
                "replacement has {} columns, dataset names {}",
                matrix.cols(),
                self.columns.len()
            )));
        }
        if let Some(ids) = &self.ids {
            if ids.len() != matrix.rows() {
                return Err(Error::Shape(format!(
                    "replacement has {} rows, dataset has {} ids",
                    matrix.rows(),
                    ids.len()
                )));
            }
        }
        self.matrix = matrix;
        Ok(())
    }

    /// Number of objects (rows).
    pub fn n_rows(&self) -> usize {
        self.matrix.rows()
    }

    /// Number of attributes (columns).
    pub fn n_cols(&self) -> usize {
        self.matrix.cols()
    }

    /// The column names, in order.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The object IDs, if attached.
    pub fn ids(&self) -> Option<&[u64]> {
        self.ids.as_deref()
    }

    /// Index of a column by name.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownColumn`] if the name is absent.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| c == name)
            .ok_or_else(|| Error::UnknownColumn(name.to_string()))
    }

    /// Copies a column's values by name.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownColumn`] if the name is absent.
    pub fn column_by_name(&self, name: &str) -> Result<Vec<f64>> {
        Ok(self.matrix.column(self.column_index(name)?))
    }

    /// Returns a copy with the object IDs removed — §5.3 Step 2
    /// (*data anonymization*).
    pub fn anonymized(&self) -> Dataset {
        Dataset {
            matrix: self.matrix.clone(),
            columns: self.columns.clone(),
            ids: None,
        }
    }

    /// Projects onto the named columns, in the given order.
    ///
    /// This is §4.1's *suppressing identifiers* pre-processing: attributes
    /// not subjected to clustering are dropped.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownColumn`] for any missing name.
    pub fn select(&self, names: &[&str]) -> Result<Dataset> {
        let indices: Vec<usize> = names
            .iter()
            .map(|n| self.column_index(n))
            .collect::<Result<_>>()?;
        let matrix = self.matrix.select_columns(&indices)?;
        Ok(Dataset {
            matrix,
            columns: names.iter().map(|s| s.to_string()).collect(),
            ids: self.ids.clone(),
        })
    }
}

impl fmt::Display for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ids.is_some() {
            write!(f, "{:>8}", "ID")?;
        }
        for c in &self.columns {
            write!(f, " {c:>12}")?;
        }
        writeln!(f)?;
        for i in 0..self.n_rows() {
            if let Some(ids) = &self.ids {
                write!(f, "{:>8}", ids[i])?;
            }
            for &v in self.matrix.row(i) {
                write!(f, " {v:>12.4}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        let m = Matrix::from_rows(&[&[75.0, 80.0, 63.0], &[56.0, 64.0, 53.0]]).unwrap();
        Dataset::new(m, vec!["age".into(), "weight".into(), "heart_rate".into()])
            .unwrap()
            .with_ids(vec![1237, 3420])
            .unwrap()
    }

    #[test]
    fn construction_validates_shapes() {
        let m = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        assert!(Dataset::new(m.clone(), vec!["a".into()]).is_err());
        let ds = Dataset::new(m.clone(), vec!["a".into(), "b".into()]).unwrap();
        assert!(ds.clone().with_ids(vec![1, 2]).is_err());
        assert!(ds.with_ids(vec![1]).is_ok());
    }

    #[test]
    fn from_matrix_autonames() {
        let ds = Dataset::from_matrix(Matrix::zeros(2, 3));
        assert_eq!(ds.columns(), &["a0", "a1", "a2"]);
    }

    #[test]
    fn column_lookup() {
        let ds = sample();
        assert_eq!(ds.column_index("weight").unwrap(), 1);
        assert_eq!(ds.column_by_name("heart_rate").unwrap(), vec![63.0, 53.0]);
        assert!(matches!(
            ds.column_by_name("salary"),
            Err(Error::UnknownColumn(_))
        ));
    }

    #[test]
    fn anonymized_strips_ids_only() {
        let ds = sample();
        let anon = ds.anonymized();
        assert!(anon.ids().is_none());
        assert_eq!(anon.matrix(), ds.matrix());
        assert_eq!(anon.columns(), ds.columns());
    }

    #[test]
    fn select_projects_and_reorders() {
        let ds = sample();
        let proj = ds.select(&["heart_rate", "age"]).unwrap();
        assert_eq!(proj.columns(), &["heart_rate", "age"]);
        assert_eq!(proj.matrix().row(0), &[63.0, 75.0]);
        assert_eq!(proj.ids(), ds.ids());
        assert!(ds.select(&["nope"]).is_err());
    }

    #[test]
    fn replace_matrix_checks_shape() {
        let mut ds = sample();
        assert!(ds.replace_matrix(Matrix::zeros(2, 2)).is_err());
        assert!(ds.replace_matrix(Matrix::zeros(3, 3)).is_err()); // id mismatch
        assert!(ds.replace_matrix(Matrix::zeros(2, 3)).is_ok());
    }

    #[test]
    fn display_contains_headers_and_ids() {
        let s = sample().to_string();
        assert!(s.contains("ID"));
        assert!(s.contains("heart_rate"));
        assert!(s.contains("1237"));
    }
}
