//! Datasets, normalization, and synthetic workload generators for the RBT
//! privacy-preserving clustering suite.
//!
//! Implements the data layer of the paper:
//!
//! * [`dataset`] — the labelled data-matrix container (Table 1's layout:
//!   object IDs + named numerical attributes), including the identifier
//!   suppression of §5.3 Step 2 (data anonymization),
//! * [`normalize`] — min–max (Eq. 3) and z-score (Eq. 4) normalization, the
//!   mandatory pre-processing step of §4.1 / Figure 1 Step 1,
//! * [`datasets`] — the Cardiac Arrhythmia sample the paper's running
//!   example uses (Table 1, embedded verbatim),
//! * [`synth`] — seeded synthetic generators (Gaussian mixtures, uniform
//!   cubes, rings) standing in for the full UCI database in scale
//!   experiments,
//! * [`csv`] — a small, dependency-free CSV codec for sharing transformed
//!   data,
//! * [`rng`] — seeded RNG helpers and a Box–Muller Gaussian sampler.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod csv;
pub mod dataset;
pub mod datasets;
pub mod normalize;
pub mod rng;
pub mod synth;

pub use dataset::Dataset;
pub use normalize::{FittedNormalizer, Normalization, PartialFit};

use std::fmt;

/// Errors produced by the data layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// An underlying linear-algebra error.
    Linalg(rbt_linalg::Error),
    /// A column name was not found in the dataset.
    UnknownColumn(String),
    /// Two parts of a dataset disagreed on length/shape.
    Shape(String),
    /// CSV input could not be parsed.
    Parse {
        /// 1-based line number of the offending record.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A normalization was applied to data it was not fitted for.
    NotFitted(String),
    /// A numeric argument was invalid.
    InvalidArgument(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Linalg(e) => write!(f, "linear algebra error: {e}"),
            Error::UnknownColumn(name) => write!(f, "unknown column: {name:?}"),
            Error::Shape(msg) => write!(f, "shape error: {msg}"),
            Error::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            Error::NotFitted(msg) => write!(f, "normalizer not fitted: {msg}"),
            Error::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rbt_linalg::Error> for Error {
    fn from(e: rbt_linalg::Error) -> Self {
        Error::Linalg(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;
