//! A small, dependency-free CSV codec for [`Dataset`]s.
//!
//! The sharing scenario of the paper ends with the owner *releasing* the
//! transformed data matrix; CSV is the interchange format the examples and
//! the bench harness use. The dialect is deliberately simple: comma
//! separator, `\n` or `\r\n` line endings, a mandatory header row, no
//! quoting (attribute names must not contain commas), and an optional
//! leading `id` column (case-insensitive) holding unsigned integers.

use crate::dataset::Dataset;
use crate::{Error, Result};
use rbt_linalg::Matrix;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// Serializes a dataset to CSV text. IDs, when present, become a leading
/// `id` column.
pub fn to_csv(ds: &Dataset) -> String {
    let mut out = String::new();
    if ds.ids().is_some() {
        out.push_str("id");
        if ds.n_cols() > 0 {
            out.push(',');
        }
    }
    out.push_str(&ds.columns().join(","));
    out.push('\n');
    for i in 0..ds.n_rows() {
        if let Some(ids) = ds.ids() {
            let _ = write!(out, "{}", ids[i]);
            if ds.n_cols() > 0 {
                out.push(',');
            }
        }
        let row = ds.matrix().row(i);
        for (j, v) in row.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{v}");
        }
        out.push('\n');
    }
    out
}

/// Parses a dataset from CSV text (inverse of [`to_csv`]).
///
/// # Errors
///
/// Returns [`Error::Parse`] for an empty input, ragged rows, or unparsable
/// numbers.
pub fn from_csv(text: &str) -> Result<Dataset> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (_, header) = lines.next().ok_or(Error::Parse {
        line: 1,
        message: "empty input".into(),
    })?;
    let mut names: Vec<&str> = header.split(',').map(str::trim).collect();
    let has_ids = names.first().is_some_and(|n| n.eq_ignore_ascii_case("id"));
    if has_ids {
        names.remove(0);
    }
    if names.iter().any(|n| n.is_empty()) {
        return Err(Error::Parse {
            line: 1,
            message: "empty column name in header".into(),
        });
    }

    let n_cols = names.len();
    let mut values: Vec<f64> = Vec::new();
    let mut ids: Vec<u64> = Vec::new();
    let mut n_rows = 0usize;

    for (idx, line) in lines {
        let line_no = idx + 1;
        let mut fields = line.split(',').map(str::trim);
        if has_ids {
            let id_field = fields.next().ok_or(Error::Parse {
                line: line_no,
                message: "missing id field".into(),
            })?;
            let id = id_field.parse::<u64>().map_err(|e| Error::Parse {
                line: line_no,
                message: format!("bad id {id_field:?}: {e}"),
            })?;
            ids.push(id);
        }
        let mut count = 0usize;
        for field in fields {
            let v = field.parse::<f64>().map_err(|e| Error::Parse {
                line: line_no,
                message: format!("bad number {field:?}: {e}"),
            })?;
            values.push(v);
            count += 1;
        }
        if count != n_cols {
            return Err(Error::Parse {
                line: line_no,
                message: format!("expected {n_cols} value fields, found {count}"),
            });
        }
        n_rows += 1;
    }

    let matrix = Matrix::from_vec(n_rows, n_cols, values).map_err(Error::Linalg)?;
    let ds = Dataset::new(matrix, names.iter().map(|s| s.to_string()).collect())?;
    if has_ids {
        ds.with_ids(ids)
    } else {
        Ok(ds)
    }
}

/// Writes a dataset to a CSV file.
///
/// # Errors
///
/// Returns [`Error::Parse`] wrapping the I/O error message (line 0).
pub fn write_file(ds: &Dataset, path: &Path) -> Result<()> {
    fs::write(path, to_csv(ds)).map_err(|e| Error::Parse {
        line: 0,
        message: format!("io error writing {}: {e}", path.display()),
    })
}

/// Reads a dataset from a CSV file.
///
/// # Errors
///
/// Returns [`Error::Parse`] for I/O or syntax problems.
pub fn read_file(path: &Path) -> Result<Dataset> {
    let text = fs::read_to_string(path).map_err(|e| Error::Parse {
        line: 0,
        message: format!("io error reading {}: {e}", path.display()),
    })?;
    from_csv(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::arrhythmia_sample;

    #[test]
    fn round_trip_with_ids() {
        let ds = arrhythmia_sample();
        let text = to_csv(&ds);
        assert!(text.starts_with("id,age,weight,heart_rate\n"));
        let back = from_csv(&text).unwrap();
        assert_eq!(back.columns(), ds.columns());
        assert_eq!(back.ids(), ds.ids());
        assert!(back.matrix().approx_eq(ds.matrix(), 1e-12));
    }

    #[test]
    fn round_trip_without_ids() {
        let ds = arrhythmia_sample().anonymized();
        let text = to_csv(&ds);
        assert!(text.starts_with("age,weight,heart_rate\n"));
        let back = from_csv(&text).unwrap();
        assert!(back.ids().is_none());
        assert!(back.matrix().approx_eq(ds.matrix(), 1e-12));
    }

    #[test]
    fn parses_crlf_and_blank_lines() {
        let text = "age,weight\r\n1.5,2\r\n\r\n3,4.25\r\n";
        let ds = from_csv(text).unwrap();
        assert_eq!(ds.n_rows(), 2);
        assert_eq!(ds.matrix().row(1), &[3.0, 4.25]);
    }

    #[test]
    fn rejects_empty_and_ragged() {
        assert!(matches!(from_csv(""), Err(Error::Parse { .. })));
        assert!(matches!(
            from_csv("a,b\n1,2\n3\n"),
            Err(Error::Parse { line: 3, .. })
        ));
        assert!(matches!(
            from_csv("a,b\n1,2,3\n"),
            Err(Error::Parse { line: 2, .. })
        ));
    }

    #[test]
    fn rejects_bad_numbers_and_ids() {
        assert!(matches!(
            from_csv("a\nfoo\n"),
            Err(Error::Parse { line: 2, .. })
        ));
        assert!(matches!(
            from_csv("id,a\n-3,1.0\n"),
            Err(Error::Parse { line: 2, .. })
        ));
        assert!(matches!(
            from_csv("a,\n1,2\n"),
            Err(Error::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("rbt-data-csv-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.csv");
        let ds = arrhythmia_sample();
        write_file(&ds, &path).unwrap();
        let back = read_file(&path).unwrap();
        assert_eq!(back.ids(), ds.ids());
        assert!(back.matrix().approx_eq(ds.matrix(), 1e-12));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_missing_file_errors() {
        assert!(read_file(Path::new("/nonexistent/rbt.csv")).is_err());
    }
}
