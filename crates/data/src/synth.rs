//! Seeded synthetic workload generators.
//!
//! The paper's scale claims (Theorem 1's `O(m·n)` runtime, Theorem 2's
//! database-size independence, Corollary 1's algorithm independence) need
//! datasets larger than the embedded five-record sample. The full UCI
//! Cardiac Arrhythmia file is not available offline, so these generators
//! produce the closest synthetic equivalents: labelled Gaussian mixtures
//! (the canonical clustering workload), uniform hypercubes (no structure —
//! worst case for clustering, fine for runtime sweeps), and concentric
//! rings (non-convex clusters that defeat k-means but suit DBSCAN,
//! exercising Corollary 1 across algorithm families).

use crate::rng::standard_normal;
use crate::{Error, Result};
use rand::Rng;
use rbt_linalg::Matrix;

/// A generated dataset together with its ground-truth cluster labels.
#[derive(Debug, Clone)]
pub struct LabelledData {
    /// The data matrix (`m × n`).
    pub matrix: Matrix,
    /// Ground-truth cluster assignment per row.
    pub labels: Vec<usize>,
}

/// Specification of one Gaussian component.
#[derive(Debug, Clone)]
pub struct GaussianComponent {
    /// Component centre (dimension = dataset dimension).
    pub center: Vec<f64>,
    /// Per-axis standard deviation (isotropic if all equal).
    pub std: f64,
    /// Relative weight (need not sum to one across components).
    pub weight: f64,
}

/// Generator for a mixture of isotropic Gaussians.
#[derive(Debug, Clone)]
pub struct GaussianMixture {
    components: Vec<GaussianComponent>,
    dim: usize,
}

impl GaussianMixture {
    /// Creates a mixture from explicit components.
    ///
    /// # Errors
    ///
    /// * [`Error::Shape`] if the components' centres disagree in dimension,
    /// * [`Error::InvalidArgument`] for empty components, non-positive
    ///   weights or non-positive standard deviations.
    pub fn new(components: Vec<GaussianComponent>) -> Result<Self> {
        let first = components
            .first()
            .ok_or_else(|| Error::InvalidArgument("mixture needs at least one component".into()))?;
        let dim = first.center.len();
        for (i, c) in components.iter().enumerate() {
            if c.center.len() != dim {
                return Err(Error::Shape(format!(
                    "component {i} has dimension {}, expected {dim}",
                    c.center.len()
                )));
            }
            if c.std <= 0.0 || !c.std.is_finite() {
                return Err(Error::InvalidArgument(format!(
                    "component {i} has non-positive std {}",
                    c.std
                )));
            }
            if c.weight <= 0.0 || !c.weight.is_finite() {
                return Err(Error::InvalidArgument(format!(
                    "component {i} has non-positive weight {}",
                    c.weight
                )));
            }
        }
        Ok(GaussianMixture { components, dim })
    }

    /// A standard benchmark mixture: `k` well-separated clusters arranged on
    /// a ring of radius `separation` in `dim` dimensions (first two axes),
    /// unit weights, standard deviation `std`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArgument`] for `k == 0` or `dim < 2`.
    pub fn well_separated(k: usize, dim: usize, separation: f64, std: f64) -> Result<Self> {
        if k == 0 {
            return Err(Error::InvalidArgument("k must be positive".into()));
        }
        if dim < 2 {
            return Err(Error::InvalidArgument("dim must be at least 2".into()));
        }
        let components = (0..k)
            .map(|i| {
                let angle = 2.0 * std::f64::consts::PI * i as f64 / k as f64;
                let mut center = vec![0.0; dim];
                center[0] = separation * angle.cos();
                center[1] = separation * angle.sin();
                GaussianComponent {
                    center,
                    std,
                    weight: 1.0,
                }
            })
            .collect();
        GaussianMixture::new(components)
    }

    /// Number of components.
    pub fn k(&self) -> usize {
        self.components.len()
    }

    /// Data dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Draws `n` points; labels record the generating component.
    pub fn sample<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> LabelledData {
        let total_weight: f64 = self.components.iter().map(|c| c.weight).sum();
        let mut data = Vec::with_capacity(n * self.dim);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let mut pick = rng.random_range(0.0..total_weight);
            let mut idx = 0;
            for (i, c) in self.components.iter().enumerate() {
                if pick < c.weight {
                    idx = i;
                    break;
                }
                pick -= c.weight;
                idx = i;
            }
            let c = &self.components[idx];
            data.extend(c.center.iter().map(|&mu| mu + c.std * standard_normal(rng)));
            labels.push(idx);
        }
        LabelledData {
            matrix: Matrix::from_vec(n, self.dim, data).expect("generator shape is consistent"),
            labels,
        }
    }
}

/// Uniform points in the hypercube `[lo, hi]^dim` (unlabelled structure;
/// labels are all zero).
pub fn uniform_cube<R: Rng + ?Sized>(
    n: usize,
    dim: usize,
    lo: f64,
    hi: f64,
    rng: &mut R,
) -> LabelledData {
    let mut data = Vec::with_capacity(n * dim);
    for _ in 0..n * dim {
        data.push(rng.random_range(lo..hi));
    }
    LabelledData {
        matrix: Matrix::from_vec(n, dim, data).expect("generator shape is consistent"),
        labels: vec![0; n],
    }
}

/// Two concentric 2-D rings (annuli) — non-convex clusters that k-means
/// cannot separate but density-based methods can. `noise` is the radial
/// standard deviation.
pub fn two_rings<R: Rng + ?Sized>(
    n_per_ring: usize,
    r_inner: f64,
    r_outer: f64,
    noise: f64,
    rng: &mut R,
) -> LabelledData {
    let mut data = Vec::with_capacity(n_per_ring * 4);
    let mut labels = Vec::with_capacity(n_per_ring * 2);
    for (label, radius) in [(0usize, r_inner), (1, r_outer)] {
        for _ in 0..n_per_ring {
            let angle = rng.random_range(0.0..std::f64::consts::TAU);
            let r = radius + noise * standard_normal(rng);
            data.push(r * angle.cos());
            data.push(r * angle.sin());
            labels.push(label);
        }
    }
    LabelledData {
        matrix: Matrix::from_vec(n_per_ring * 2, 2, data).expect("generator shape is consistent"),
        labels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;
    use rbt_linalg::stats::{column_means, VarianceMode};

    #[test]
    fn mixture_validates_input() {
        assert!(GaussianMixture::new(vec![]).is_err());
        let bad_dim = vec![
            GaussianComponent {
                center: vec![0.0, 0.0],
                std: 1.0,
                weight: 1.0,
            },
            GaussianComponent {
                center: vec![0.0],
                std: 1.0,
                weight: 1.0,
            },
        ];
        assert!(GaussianMixture::new(bad_dim).is_err());
        let bad_std = vec![GaussianComponent {
            center: vec![0.0],
            std: 0.0,
            weight: 1.0,
        }];
        assert!(GaussianMixture::new(bad_std).is_err());
        let bad_weight = vec![GaussianComponent {
            center: vec![0.0],
            std: 1.0,
            weight: -1.0,
        }];
        assert!(GaussianMixture::new(bad_weight).is_err());
    }

    #[test]
    fn well_separated_layout() {
        let gm = GaussianMixture::well_separated(4, 3, 10.0, 0.5).unwrap();
        assert_eq!(gm.k(), 4);
        assert_eq!(gm.dim(), 3);
        assert!(GaussianMixture::well_separated(0, 2, 1.0, 1.0).is_err());
        assert!(GaussianMixture::well_separated(2, 1, 1.0, 1.0).is_err());
    }

    #[test]
    fn sample_shapes_and_determinism() {
        let gm = GaussianMixture::well_separated(3, 2, 8.0, 0.3).unwrap();
        let a = gm.sample(100, &mut seeded(5));
        let b = gm.sample(100, &mut seeded(5));
        assert_eq!(a.matrix, b.matrix);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.matrix.shape(), (100, 2));
        assert_eq!(a.labels.len(), 100);
        assert!(a.labels.iter().all(|&l| l < 3));
    }

    #[test]
    fn sample_component_means_are_near_centers() {
        let gm = GaussianMixture::new(vec![GaussianComponent {
            center: vec![5.0, -3.0],
            std: 0.5,
            weight: 1.0,
        }])
        .unwrap();
        let d = gm.sample(20_000, &mut seeded(11));
        let means = column_means(&d.matrix).unwrap();
        assert!((means[0] - 5.0).abs() < 0.05);
        assert!((means[1] + 3.0).abs() < 0.05);
    }

    #[test]
    fn weights_bias_component_frequency() {
        let gm = GaussianMixture::new(vec![
            GaussianComponent {
                center: vec![0.0, 0.0],
                std: 1.0,
                weight: 9.0,
            },
            GaussianComponent {
                center: vec![100.0, 0.0],
                std: 1.0,
                weight: 1.0,
            },
        ])
        .unwrap();
        let d = gm.sample(10_000, &mut seeded(3));
        let heavy = d.labels.iter().filter(|&&l| l == 0).count();
        assert!(
            (heavy as f64 / 10_000.0 - 0.9).abs() < 0.03,
            "heavy fraction {}",
            heavy as f64 / 10_000.0
        );
    }

    #[test]
    fn uniform_cube_bounds() {
        let d = uniform_cube(1000, 3, -2.0, 2.0, &mut seeded(8));
        assert_eq!(d.matrix.shape(), (1000, 3));
        assert!(d
            .matrix
            .as_slice()
            .iter()
            .all(|&x| (-2.0..2.0).contains(&x)));
        // Variance of U(-2,2) is 16/12 ≈ 1.333.
        let v = rbt_linalg::stats::column_variances(&d.matrix, VarianceMode::Population).unwrap();
        assert!((v[0] - 16.0 / 12.0).abs() < 0.1);
    }

    #[test]
    fn two_rings_radii() {
        let d = two_rings(500, 2.0, 8.0, 0.05, &mut seeded(2));
        assert_eq!(d.matrix.shape(), (1000, 2));
        for (row, &label) in d.matrix.row_iter().zip(&d.labels) {
            let r = row[0].hypot(row[1]);
            let expected = if label == 0 { 2.0 } else { 8.0 };
            assert!((r - expected).abs() < 0.5, "r={r} label={label}");
        }
    }
}
