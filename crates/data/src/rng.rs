//! Seeded randomness helpers.
//!
//! Every randomized API in the workspace takes an explicit RNG so that
//! experiments are reproducible run-to-run. This module adds the one
//! distribution `rand` itself does not ship: a standard normal sampler
//! (Marsaglia polar method), used by the Gaussian-mixture generator and the
//! additive-noise baselines.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

/// A deterministic RNG from a 64-bit seed.
///
/// # Example
///
/// ```
/// use rand::RngExt;
/// let mut a = rbt_data::rng::seeded(42);
/// let mut b = rbt_data::rng::seeded(42);
/// assert_eq!(a.random::<u64>(), b.random::<u64>());
/// ```
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Samples one standard normal variate via the Marsaglia polar method.
pub fn standard_normal<R: Rng + RngExt + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u = rng.random_range(-1.0f64..1.0);
        let v = rng.random_range(-1.0f64..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Samples `n` i.i.d. normal variates with the given mean and standard
/// deviation.
pub fn normal_vec<R: Rng + ?Sized>(rng: &mut R, n: usize, mean: f64, std: f64) -> Vec<f64> {
    (0..n).map(|_| mean + std * standard_normal(rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbt_linalg::stats::{mean, variance, VarianceMode};

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(7);
        let mut b = seeded(7);
        for _ in 0..16 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded(1);
        let mut b = seeded(2);
        let xs: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = seeded(123);
        let xs: Vec<f64> = (0..60_000).map(|_| standard_normal(&mut rng)).collect();
        let m = mean(&xs).unwrap();
        let v = variance(&xs, VarianceMode::Population).unwrap();
        assert!(m.abs() < 0.02, "mean {m}");
        assert!((v - 1.0).abs() < 0.03, "variance {v}");
    }

    #[test]
    fn normal_vec_respects_parameters() {
        let mut rng = seeded(9);
        let xs = normal_vec(&mut rng, 50_000, 10.0, 2.0);
        assert_eq!(xs.len(), 50_000);
        let m = mean(&xs).unwrap();
        let v = variance(&xs, VarianceMode::Population).unwrap();
        assert!((m - 10.0).abs() < 0.05, "mean {m}");
        assert!((v - 4.0).abs() < 0.15, "variance {v}");
    }
}
