//! Property tests for the key-file codec: round trips are bit-identical
//! for random keys, normalizers, and configs; corrupted bytes (truncation,
//! bad magic, any flipped byte — checksum included) are rejected with
//! typed errors, never panics.

use proptest::prelude::*;
use rbt_core::codec::{self, CodecError};
use rbt_core::{
    Error, PairingStrategy, PairwiseSecurityThreshold, RbtConfig, ReleaseSession, RotationStep,
    ThresholdPolicy, TransformationKey,
};
use rbt_data::{FittedNormalizer, Normalization};
use rbt_linalg::{Matrix, VarianceMode};

fn key_strategy() -> impl Strategy<Value = TransformationKey> {
    (2usize..8).prop_flat_map(|n| {
        prop::collection::vec(
            (
                0usize..n,
                1usize..n,
                -720.0..720.0f64,
                0.0..10.0f64,
                0.0..10.0f64,
            ),
            1..6,
        )
        .prop_map(move |raw| {
            let steps = raw
                .into_iter()
                .map(
                    |(a, off, theta_degrees, achieved_var1, achieved_var2)| RotationStep {
                        i: a,
                        j: (a + off) % n,
                        theta_degrees,
                        achieved_var1,
                        achieved_var2,
                    },
                )
                .collect();
            TransformationKey::new(steps, n).expect("constructed steps are in range and distinct")
        })
    })
}

fn normalizer_strategy() -> impl Strategy<Value = FittedNormalizer> {
    (2usize..12, 1usize..6, 0usize..6).prop_flat_map(|(rows, cols, which)| {
        prop::collection::vec(-1e6..1e6f64, rows * cols).prop_map(move |data| {
            let m = Matrix::from_vec(rows, cols, data).unwrap();
            let method = match which {
                0 => Normalization::zscore_paper(),
                1 => Normalization::ZScore {
                    mode: VarianceMode::Population,
                },
                2 => Normalization::min_max_unit(),
                3 => Normalization::MinMax {
                    new_min: -2.0,
                    new_max: 2.0,
                },
                4 => Normalization::DecimalScaling,
                _ => Normalization::RobustZScore,
            };
            method.fit(&m).expect("non-empty matrix fits")
        })
    })
}

fn config_strategy() -> impl Strategy<Value = RbtConfig> {
    (
        0usize..3,
        2usize..9,
        any::<bool>(),
        0.0..5.0f64,
        16usize..5000,
    )
        .prop_map(|(pairing_kind, n, per_pair, rho, grid)| {
            let pairing = match pairing_kind {
                0 => PairingStrategy::Sequential,
                1 => PairingStrategy::RandomShuffle,
                _ => {
                    let mut pairs: Vec<(usize, usize)> =
                        (0..n / 2).map(|t| (2 * t, 2 * t + 1)).collect();
                    if n % 2 == 1 {
                        pairs.push((n - 1, 0));
                    }
                    PairingStrategy::Explicit(pairs)
                }
            };
            let n_pairs = n.div_ceil(2);
            let thresholds = if per_pair {
                ThresholdPolicy::PerPair(
                    (0..n_pairs)
                        .map(|t| {
                            PairwiseSecurityThreshold::new(rho + t as f64 * 0.125, rho).unwrap()
                        })
                        .collect(),
                )
            } else {
                ThresholdPolicy::Uniform(PairwiseSecurityThreshold::uniform(rho).unwrap())
            };
            RbtConfig::uniform(PairwiseSecurityThreshold::uniform(0.1).unwrap())
                .with_pairing(pairing)
                .with_thresholds(thresholds)
                .with_variance_mode(if per_pair {
                    VarianceMode::Sample
                } else {
                    VarianceMode::Population
                })
                .with_solver_grid(grid)
        })
}

/// Bitwise comparison of two keys (stricter than `PartialEq`, which uses
/// float equality and would conflate `-0.0` with `0.0`).
fn assert_keys_bit_identical(a: &TransformationKey, b: &TransformationKey) {
    assert_eq!(a.n_attributes(), b.n_attributes());
    assert_eq!(a.steps().len(), b.steps().len());
    for (x, y) in a.steps().iter().zip(b.steps()) {
        assert_eq!((x.i, x.j), (y.i, y.j));
        assert_eq!(x.theta_degrees.to_bits(), y.theta_degrees.to_bits());
        assert_eq!(x.achieved_var1.to_bits(), y.achieved_var1.to_bits());
        assert_eq!(x.achieved_var2.to_bits(), y.achieved_var2.to_bits());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn key_binary_round_trip_is_bit_identical(key in key_strategy()) {
        let bytes = codec::encode_key(&key);
        let back = codec::decode_key(&bytes).unwrap();
        assert_keys_bit_identical(&back, &key);
        // Canonical encoding: re-encoding reproduces the same bytes.
        prop_assert_eq!(codec::encode_key(&back), bytes);
    }

    #[test]
    fn normalizer_binary_round_trip_is_bit_identical(normalizer in normalizer_strategy()) {
        let bytes = codec::encode_normalizer(&normalizer);
        let back = codec::decode_normalizer(&bytes).unwrap();
        prop_assert_eq!(&back, &normalizer);
        prop_assert_eq!(back.method(), normalizer.method());
        prop_assert_eq!(codec::encode_normalizer(&back), bytes);
    }

    #[test]
    fn config_binary_round_trip_is_exact(config in config_strategy()) {
        let bytes = codec::encode_config(&config);
        let back = codec::decode_config(&bytes).unwrap();
        prop_assert_eq!(&back, &config);
        prop_assert_eq!(codec::encode_config(&back), bytes);
    }

    #[test]
    fn truncated_key_bytes_are_typed_errors(key in key_strategy(), frac in 0.0..1.0f64) {
        let bytes = codec::encode_key(&key);
        let cut = ((bytes.len() as f64) * frac) as usize;
        match codec::decode_key(&bytes[..cut.min(bytes.len() - 1)]) {
            Err(Error::Codec(_)) => {}
            other => prop_assert!(false, "expected codec error, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn flipped_key_byte_is_rejected(key in key_strategy(), pos in 0.0..1.0f64, bit in 0u8..8) {
        let mut bytes = codec::encode_key(&key);
        let idx = ((bytes.len() as f64) * pos) as usize % bytes.len();
        bytes[idx] ^= 1 << bit;
        prop_assert!(codec::decode_key(&bytes).is_err(), "flip at {}", idx);
    }

    #[test]
    fn bad_magic_is_rejected(key in key_strategy(), byte in any::<u8>()) {
        let mut bytes = codec::encode_key(&key);
        if byte != bytes[0] {
            bytes[0] = byte;
            prop_assert!(matches!(
                codec::decode_key(&bytes),
                Err(Error::Codec(CodecError::BadMagic { .. }))
            ));
        }
    }

    #[test]
    fn flipped_checksum_byte_is_rejected(key in key_strategy(), which in 0usize..4, bit in 0u8..8) {
        let mut bytes = codec::encode_key(&key);
        let idx = bytes.len() - 4 + which;
        bytes[idx] ^= 1 << bit;
        prop_assert!(matches!(
            codec::decode_key(&bytes),
            Err(Error::Codec(CodecError::ChecksumMismatch { .. }))
        ));
    }

    #[test]
    fn session_round_trips_through_both_formats(
        key in key_strategy(),
        rows in 2usize..10,
        suppress in any::<bool>(),
    ) {
        // A normalizer fitted for the key's width, plus drift bounds.
        let n = key.n_attributes();
        let m = Matrix::from_vec(rows, n, (0..rows * n).map(|k| k as f64).collect()).unwrap();
        let (normalizer, normalized) = Normalization::zscore_paper().fit_transform(&m).unwrap();
        let session = ReleaseSession::new(key, normalizer)
            .unwrap()
            .with_drift_bounds(rbt_core::DriftBounds::from_normalized(&normalized).unwrap())
            .unwrap()
            .with_id_suppression(suppress);

        let from_bytes = ReleaseSession::from_bytes(&session.to_bytes()).unwrap();
        let from_text = ReleaseSession::from_text(&session.to_text().unwrap()).unwrap();
        for back in [&from_bytes, &from_text] {
            assert_keys_bit_identical(back.key(), session.key());
            prop_assert_eq!(back.normalizer(), session.normalizer());
            prop_assert_eq!(back.drift_bounds(), session.drift_bounds());
            prop_assert_eq!(back.suppresses_ids(), session.suppresses_ids());
        }
        // Text round trip of the *text itself* is canonical too.
        prop_assert_eq!(from_text.to_text().unwrap(), session.to_text().unwrap());
    }
}
