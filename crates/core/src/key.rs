//! The transformation key — the data owner's secret.
//!
//! §5.2 frames RBT's computational security around what an attacker would
//! have to guess: the attribute pairs, their order, and the angle drawn for
//! each pair from a continuous interval. A [`TransformationKey`] records
//! exactly those choices, so the owner can (a) audit what was released,
//! (b) re-apply the identical transformation to new rows, and (c) invert
//! the release. Keys serialize to a small line-oriented text format
//! (`Display`/`FromStr`) to stay within the approved dependency set.

use crate::{Error, Result};
use rbt_linalg::matrix::apply_steps_in_rows;
use rbt_linalg::{Matrix, Rotation2};
use std::fmt;
use std::str::FromStr;

/// One recorded rotation step.
#[derive(Debug, Clone, PartialEq)]
pub struct RotationStep {
    /// Index of the first attribute of the pair (first rotated coordinate).
    pub i: usize,
    /// Index of the second attribute of the pair.
    pub j: usize,
    /// Clockwise rotation angle, degrees.
    pub theta_degrees: f64,
    /// `Var(Ai − Ai')` achieved at this angle (diagnostic; not required to
    /// invert the key).
    pub achieved_var1: f64,
    /// `Var(Aj − Aj')` achieved at this angle.
    pub achieved_var2: f64,
}

/// The ordered list of rotations applied by one RBT run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TransformationKey {
    steps: Vec<RotationStep>,
    n_attributes: usize,
}

impl TransformationKey {
    /// Creates a key from explicit steps.
    ///
    /// # Errors
    ///
    /// Returns [`Error::KeyMismatch`] if a step references an attribute
    /// `>= n_attributes` or pairs an attribute with itself.
    pub fn new(steps: Vec<RotationStep>, n_attributes: usize) -> Result<Self> {
        for (t, s) in steps.iter().enumerate() {
            if s.i >= n_attributes || s.j >= n_attributes {
                return Err(Error::KeyMismatch(format!(
                    "step {t} references attribute out of range (n = {n_attributes})"
                )));
            }
            if s.i == s.j {
                return Err(Error::KeyMismatch(format!(
                    "step {t} pairs {} with itself",
                    s.i
                )));
            }
        }
        Ok(TransformationKey {
            steps,
            n_attributes,
        })
    }

    /// The recorded steps, in application order.
    pub fn steps(&self) -> &[RotationStep] {
        &self.steps
    }

    /// Number of attributes of the matrices this key applies to.
    pub fn n_attributes(&self) -> usize {
        self.n_attributes
    }

    /// Precomputed `(i, j, cos θ, sin θ)` tuples for every step, in
    /// application order — the form the fused row sweep
    /// ([`apply_steps_in_rows`]) consumes. The release session precomputes
    /// this once per batch instead of re-deriving angles per step.
    pub fn forward_sweep(&self) -> Vec<(usize, usize, f64, f64)> {
        self.steps
            .iter()
            .map(|st| {
                let (s, c) = Rotation2::from_degrees(st.theta_degrees)
                    .radians()
                    .sin_cos();
                (st.i, st.j, c, s)
            })
            .collect()
    }

    /// Precomputed `(i, j, cos θ, sin θ)` tuples of the *inverse* rotations
    /// in reverse order — the sweep that undoes [`apply`](Self::apply).
    pub fn inverse_sweep(&self) -> Vec<(usize, usize, f64, f64)> {
        self.steps
            .iter()
            .rev()
            .map(|st| {
                let (s, c) = Rotation2::from_degrees(st.theta_degrees)
                    .inverse()
                    .radians()
                    .sin_cos();
                (st.i, st.j, c, s)
            })
            .collect()
    }

    /// Applies the key's rotations, in order, to a matrix with the same
    /// attribute layout (e.g. fresh rows arriving after the initial
    /// release). The matrix must already be normalized with the same
    /// parameters as the original fit.
    ///
    /// All steps are applied per block of rows in one fused sweep
    /// ([`apply_steps_in_rows`]): a `p`-step key costs one trip through the
    /// matrix, not `p`. Each `(row, step)` update is row-local and keeps
    /// its per-row order, so the result is bit-identical to `p` successive
    /// whole-matrix [`Matrix::rotate_column_pair`] sweeps — which in turn
    /// match the extract–rotate–write-back path bit-for-bit.
    ///
    /// # Errors
    ///
    /// Returns [`Error::KeyMismatch`] if the column count differs.
    pub fn apply(&self, normalized: &Matrix) -> Result<Matrix> {
        self.check(normalized)?;
        let mut out = normalized.clone();
        let steps = self.forward_sweep();
        if !steps.is_empty() {
            let n_cols = out.cols();
            apply_steps_in_rows(out.as_mut_slice(), n_cols, &steps);
        }
        Ok(out)
    }

    /// Undoes the transformation (owner-side): applies the inverse rotations
    /// in reverse order, as one fused sweep like [`apply`](Self::apply).
    ///
    /// # Errors
    ///
    /// Returns [`Error::KeyMismatch`] if the column count differs.
    pub fn invert(&self, transformed: &Matrix) -> Result<Matrix> {
        self.check(transformed)?;
        let mut out = transformed.clone();
        let steps = self.inverse_sweep();
        if !steps.is_empty() {
            let n_cols = out.cols();
            apply_steps_in_rows(out.as_mut_slice(), n_cols, &steps);
        }
        Ok(out)
    }

    /// The composite `n × n` orthogonal matrix the key is equivalent to
    /// (the product of its Givens rotations, in application order). Row
    /// vectors transform as `x' = x · Rᵀ`.
    ///
    /// Left-multiplying by a Givens matrix only touches two rows, so the
    /// product is accumulated with [`Matrix::rotate_row_pair`] — `O(p·n)`
    /// row updates instead of `p` full `n × n` matmuls (`O(p·n³)`), with
    /// the same per-element accumulation order as the matmul it replaces.
    ///
    /// # Errors
    ///
    /// Returns [`Error::KeyMismatch`] on an out-of-range step (cannot occur
    /// for a validated key).
    pub fn composite_matrix(&self) -> Result<Matrix> {
        let n = self.n_attributes;
        let mut acc = Matrix::identity(n);
        for step in &self.steps {
            let (s, c) = Rotation2::from_degrees(step.theta_degrees)
                .radians()
                .sin_cos();
            acc.rotate_row_pair(step.i, step.j, c, s)
                .map_err(|e| Error::KeyMismatch(e.to_string()))?;
        }
        Ok(acc)
    }

    fn check(&self, m: &Matrix) -> Result<()> {
        if m.cols() != self.n_attributes {
            return Err(Error::KeyMismatch(format!(
                "key fitted for {} attributes, matrix has {}",
                self.n_attributes,
                m.cols()
            )));
        }
        Ok(())
    }
}

impl fmt::Display for TransformationKey {
    /// Line-oriented text format:
    ///
    /// ```text
    /// rbt-key v1 n=3
    /// rotate 0 2 312.47 0.318 0.9805
    /// rotate 1 0 147.29 2.9714 6.9274
    /// ```
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "rbt-key v1 n={}", self.n_attributes)?;
        for s in &self.steps {
            writeln!(
                f,
                "rotate {} {} {:.17e} {:.17e} {:.17e}",
                s.i, s.j, s.theta_degrees, s.achieved_var1, s.achieved_var2
            )?;
        }
        Ok(())
    }
}

impl FromStr for TransformationKey {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self> {
        let mut lines = s.lines().enumerate().filter(|(_, l)| !l.trim().is_empty());
        let (_, header) = lines.next().ok_or(Error::KeyParse {
            line: 1,
            message: "empty key".into(),
        })?;
        let header = header.trim();
        let n_attributes = header
            .strip_prefix("rbt-key v1 n=")
            .and_then(|rest| rest.parse::<usize>().ok())
            .ok_or(Error::KeyParse {
                line: 1,
                message: format!("bad header {header:?}"),
            })?;
        let mut steps = Vec::new();
        for (idx, line) in lines {
            let line_no = idx + 1;
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("rotate") => {}
                other => {
                    return Err(Error::KeyParse {
                        line: line_no,
                        message: format!("expected 'rotate', found {other:?}"),
                    })
                }
            }
            let mut field = |name: &str| -> Result<&str> {
                parts.next().ok_or(Error::KeyParse {
                    line: line_no,
                    message: format!("missing field {name}"),
                })
            };
            let i = field("i")?.parse::<usize>().map_err(|e| Error::KeyParse {
                line: line_no,
                message: format!("bad i: {e}"),
            })?;
            let j = field("j")?.parse::<usize>().map_err(|e| Error::KeyParse {
                line: line_no,
                message: format!("bad j: {e}"),
            })?;
            let float = |name: &str, raw: &str| -> Result<f64> {
                raw.parse::<f64>().map_err(|e| Error::KeyParse {
                    line: line_no,
                    message: format!("bad {name}: {e}"),
                })
            };
            let theta_raw = field("theta")?;
            let v1_raw = field("var1")?;
            let v2_raw = field("var2")?;
            let theta_degrees = float("theta", theta_raw)?;
            let achieved_var1 = float("var1", v1_raw)?;
            let achieved_var2 = float("var2", v2_raw)?;
            if parts.next().is_some() {
                return Err(Error::KeyParse {
                    line: line_no,
                    message: "trailing fields".into(),
                });
            }
            steps.push(RotationStep {
                i,
                j,
                theta_degrees,
                achieved_var1,
                achieved_var2,
            });
        }
        TransformationKey::new(steps, n_attributes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::approx_constant)] // 0.318 is the paper's printed value, not 1/pi
    fn paper_key() -> TransformationKey {
        TransformationKey::new(
            vec![
                RotationStep {
                    i: 0,
                    j: 2,
                    theta_degrees: 312.47,
                    achieved_var1: 0.318,
                    achieved_var2: 0.9805,
                },
                RotationStep {
                    i: 1,
                    j: 0,
                    theta_degrees: 147.29,
                    achieved_var1: 2.9714,
                    achieved_var2: 6.9274,
                },
            ],
            3,
        )
        .unwrap()
    }

    #[test]
    fn new_validates_steps() {
        let bad_range = TransformationKey::new(
            vec![RotationStep {
                i: 0,
                j: 9,
                theta_degrees: 1.0,
                achieved_var1: 0.0,
                achieved_var2: 0.0,
            }],
            3,
        );
        assert!(matches!(bad_range, Err(Error::KeyMismatch(_))));
        let self_pair = TransformationKey::new(
            vec![RotationStep {
                i: 1,
                j: 1,
                theta_degrees: 1.0,
                achieved_var1: 0.0,
                achieved_var2: 0.0,
            }],
            3,
        );
        assert!(matches!(self_pair, Err(Error::KeyMismatch(_))));
    }

    #[test]
    fn apply_then_invert_round_trips() {
        let key = paper_key();
        let data = Matrix::from_rows(&[
            &[1.4809, 0.7095, -0.3476],
            &[0.4151, -0.3041, -1.5061],
            &[-0.4824, -1.0642, 0.4634],
        ])
        .unwrap();
        let transformed = key.apply(&data).unwrap();
        assert!(transformed.max_abs_diff(&data).unwrap() > 0.1);
        let back = key.invert(&transformed).unwrap();
        assert!(back.approx_eq(&data, 1e-12));
    }

    #[test]
    fn apply_checks_shape() {
        let key = paper_key();
        assert!(matches!(
            key.apply(&Matrix::zeros(2, 2)),
            Err(Error::KeyMismatch(_))
        ));
        assert!(matches!(
            key.invert(&Matrix::zeros(2, 5)),
            Err(Error::KeyMismatch(_))
        ));
    }

    #[test]
    fn composite_matrix_matches_stepwise_application() {
        let key = paper_key();
        let data = Matrix::from_rows(&[&[1.0, -0.5, 0.25], &[0.1, 2.0, -1.0]]).unwrap();
        let stepwise = key.apply(&data).unwrap();
        let r = key.composite_matrix().unwrap();
        assert!(rbt_linalg::rotation::is_orthogonal(&r, 1e-12));
        let via_matrix = data.matmul(&r.transpose()).unwrap();
        assert!(stepwise.approx_eq(&via_matrix, 1e-10));
    }

    #[test]
    fn display_parse_round_trip() {
        let key = paper_key();
        let text = key.to_string();
        assert!(text.starts_with("rbt-key v1 n=3\n"));
        let parsed: TransformationKey = text.parse().unwrap();
        assert_eq!(parsed.n_attributes(), 3);
        assert_eq!(parsed.steps().len(), 2);
        for (a, b) in parsed.steps().iter().zip(key.steps()) {
            assert_eq!(a.i, b.i);
            assert_eq!(a.j, b.j);
            assert!((a.theta_degrees - b.theta_degrees).abs() < 1e-15);
        }
    }

    #[test]
    fn parse_rejects_malformed_keys() {
        assert!(matches!(
            "".parse::<TransformationKey>(),
            Err(Error::KeyParse { .. })
        ));
        assert!(matches!(
            "not-a-key".parse::<TransformationKey>(),
            Err(Error::KeyParse { line: 1, .. })
        ));
        assert!(matches!(
            "rbt-key v1 n=3\nrotate 0 1".parse::<TransformationKey>(),
            Err(Error::KeyParse { line: 2, .. })
        ));
        assert!(matches!(
            "rbt-key v1 n=3\nrotate 0 1 x 0 0".parse::<TransformationKey>(),
            Err(Error::KeyParse { line: 2, .. })
        ));
        assert!(matches!(
            "rbt-key v1 n=3\nrotate 0 1 1.0 0 0 extra".parse::<TransformationKey>(),
            Err(Error::KeyParse { line: 2, .. })
        ));
        // Header/step disagreement surfaces as KeyMismatch from `new`.
        assert!(matches!(
            "rbt-key v1 n=2\nrotate 0 5 1.0 0 0".parse::<TransformationKey>(),
            Err(Error::KeyMismatch(_))
        ));
    }

    #[test]
    fn empty_key_is_identity() {
        let key = TransformationKey::new(vec![], 3).unwrap();
        let data = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]).unwrap();
        assert_eq!(key.apply(&data).unwrap(), data);
        assert!(key
            .composite_matrix()
            .unwrap()
            .approx_eq(&Matrix::identity(3), 0.0));
    }
}
