//! Extension: reflection-based distortion — the paper's third isometry
//! class (§3.1) as a drop-in enlargement of the RBT keyspace.
//!
//! §3.1 lists three isometry families: translations, rotations, and
//! **reflections** ("map all points to their mirror images"). The paper
//! only builds on rotations; this module completes the picture. For a pair
//! `(X, Y)` reflected across the line at angle φ:
//!
//! ```text
//! X' = X·cos2φ + Y·sin2φ        D1 = X − X' = (1−cos2φ)·X − sin2φ·Y
//! Y' = X·sin2φ − Y·cos2φ        D2 = Y − Y' = −sin2φ·X + (1+cos2φ)·Y
//!
//! Var(D1) = (1−cos2φ)²·Var(X) + sin²2φ·Var(Y) − 2(1−cos2φ)·sin2φ·Cov
//! Var(D2) = sin²2φ·Var(X) + (1+cos2φ)²·Var(Y) − 2·sin2φ·(1+cos2φ)·Cov
//! ```
//!
//! The same security-range machinery applies, so [`HybridIsometry`] can
//! flip a fair coin per pair between a rotation and a reflection: each
//! step stays an exact isometry, Corollary 1 still holds verbatim, and an
//! attacker enumerating the key must now also guess one bit per pair (and
//! cannot assume the composite map has determinant +1).

use crate::security::{PairVarianceProfile, PairwiseSecurityThreshold, SecurityRange};
use crate::{Error, Result};
use rand::Rng;
use rbt_linalg::rotation::Reflection2;
use rbt_linalg::{Matrix, Rotation2};
use std::fmt;
use std::str::FromStr;

/// `Var(X − X')` under reflection across the axis at `phi_degrees`.
pub fn reflection_var_diff_first(p: &PairVarianceProfile, phi_degrees: f64) -> f64 {
    let (s, c) = (2.0 * phi_degrees.to_radians()).sin_cos();
    let a = 1.0 - c;
    a * a * p.var_x + s * s * p.var_y - 2.0 * a * s * p.cov_xy
}

/// `Var(Y − Y')` under reflection across the axis at `phi_degrees`.
pub fn reflection_var_diff_second(p: &PairVarianceProfile, phi_degrees: f64) -> f64 {
    let (s, c) = (2.0 * phi_degrees.to_radians()).sin_cos();
    let b = 1.0 + c;
    s * s * p.var_x + b * b * p.var_y - 2.0 * s * b * p.cov_xy
}

/// `true` when the reflection axis angle satisfies the threshold on both
/// attributes.
pub fn reflection_satisfies(
    p: &PairVarianceProfile,
    phi_degrees: f64,
    pst: &PairwiseSecurityThreshold,
) -> bool {
    reflection_var_diff_first(p, phi_degrees) >= pst.rho1
        && reflection_var_diff_second(p, phi_degrees) >= pst.rho2
}

/// Security range for the reflection axis: the set of φ in `[0°, 180°)`
/// (reflections repeat with period 180°) meeting the threshold.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] for `grid < 8`.
pub fn reflection_security_range(
    p: &PairVarianceProfile,
    pst: &PairwiseSecurityThreshold,
    grid: usize,
) -> Result<SecurityRange> {
    if grid < 8 {
        return Err(Error::InvalidParameter(format!(
            "grid must be at least 8, got {grid}"
        )));
    }
    let feasible = |phi: f64| reflection_satisfies(p, phi, pst);
    let step = 180.0 / grid as f64;
    let refine = |mut lo: f64, mut hi: f64| -> f64 {
        let lo_feasible = feasible(lo);
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if feasible(mid) == lo_feasible {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    };
    let mut intervals = Vec::new();
    let mut current = feasible(0.0).then_some(0.0f64);
    let mut prev_t = 0.0;
    let mut prev_f = feasible(0.0);
    for k in 1..=grid {
        let t = if k == grid { 180.0 } else { k as f64 * step };
        let f = feasible(t.min(179.999_999_999));
        if f != prev_f {
            let boundary = refine(prev_t, t);
            if f {
                current = Some(boundary);
            } else if let Some(start) = current.take() {
                intervals.push((start, boundary));
            }
        }
        prev_t = t;
        prev_f = f;
    }
    if let Some(start) = current.take() {
        intervals.push((start, 180.0));
    }
    SecurityRange::from_intervals(intervals)
}

/// One step of the hybrid isometry key: a rotation or a reflection.
#[derive(Debug, Clone, PartialEq)]
pub enum IsometryStep {
    /// Clockwise plane rotation of the pair by θ degrees.
    Rotate {
        /// First attribute index.
        i: usize,
        /// Second attribute index.
        j: usize,
        /// Clockwise angle, degrees.
        theta_degrees: f64,
    },
    /// Reflection of the pair across the axis at φ degrees.
    Reflect {
        /// First attribute index.
        i: usize,
        /// Second attribute index.
        j: usize,
        /// Axis angle, degrees.
        phi_degrees: f64,
    },
}

impl IsometryStep {
    /// The attribute pair this step acts on.
    pub fn pair(&self) -> (usize, usize) {
        match *self {
            IsometryStep::Rotate { i, j, .. } | IsometryStep::Reflect { i, j, .. } => (i, j),
        }
    }

    fn apply(&self, xs: &mut [f64], ys: &mut [f64]) -> Result<()> {
        match *self {
            IsometryStep::Rotate { theta_degrees, .. } => {
                Rotation2::from_degrees(theta_degrees).apply_columns(xs, ys)?
            }
            IsometryStep::Reflect { phi_degrees, .. } => {
                Reflection2::from_degrees(phi_degrees).apply_columns(xs, ys)?
            }
        }
        Ok(())
    }

    fn unapply(&self, xs: &mut [f64], ys: &mut [f64]) -> Result<()> {
        match *self {
            IsometryStep::Rotate { theta_degrees, .. } => Rotation2::from_degrees(theta_degrees)
                .inverse()
                .apply_columns(xs, ys)?,
            // Reflections are involutions: applying again inverts.
            IsometryStep::Reflect { phi_degrees, .. } => {
                Reflection2::from_degrees(phi_degrees).apply_columns(xs, ys)?
            }
        }
        Ok(())
    }
}

/// Ordered list of hybrid isometry steps — the `v2` key format.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IsometryKey {
    steps: Vec<IsometryStep>,
    n_attributes: usize,
}

impl IsometryKey {
    /// Creates a key from explicit steps.
    ///
    /// # Errors
    ///
    /// Returns [`Error::KeyMismatch`] for out-of-range or self-paired
    /// attribute indices.
    pub fn new(steps: Vec<IsometryStep>, n_attributes: usize) -> Result<Self> {
        for (t, s) in steps.iter().enumerate() {
            let (i, j) = s.pair();
            if i >= n_attributes || j >= n_attributes {
                return Err(Error::KeyMismatch(format!(
                    "step {t} references attribute out of range (n = {n_attributes})"
                )));
            }
            if i == j {
                return Err(Error::KeyMismatch(format!(
                    "step {t} pairs {i} with itself"
                )));
            }
        }
        Ok(IsometryKey {
            steps,
            n_attributes,
        })
    }

    /// The steps, in application order.
    pub fn steps(&self) -> &[IsometryStep] {
        &self.steps
    }

    /// Number of attributes this key applies to.
    pub fn n_attributes(&self) -> usize {
        self.n_attributes
    }

    /// Applies the key to a normalized matrix.
    ///
    /// # Errors
    ///
    /// Returns [`Error::KeyMismatch`] on a column-count mismatch.
    pub fn apply(&self, normalized: &Matrix) -> Result<Matrix> {
        self.check(normalized)?;
        let mut out = normalized.clone();
        let mut xs = Vec::with_capacity(out.rows());
        let mut ys = Vec::with_capacity(out.rows());
        for step in &self.steps {
            let (i, j) = step.pair();
            out.column_into(i, &mut xs);
            out.column_into(j, &mut ys);
            step.apply(&mut xs, &mut ys)?;
            out.set_column(i, &xs)?;
            out.set_column(j, &ys)?;
        }
        Ok(out)
    }

    /// Inverts the key (reverse order, inverse steps).
    ///
    /// # Errors
    ///
    /// Returns [`Error::KeyMismatch`] on a column-count mismatch.
    pub fn invert(&self, transformed: &Matrix) -> Result<Matrix> {
        self.check(transformed)?;
        let mut out = transformed.clone();
        let mut xs = Vec::with_capacity(out.rows());
        let mut ys = Vec::with_capacity(out.rows());
        for step in self.steps.iter().rev() {
            let (i, j) = step.pair();
            out.column_into(i, &mut xs);
            out.column_into(j, &mut ys);
            step.unapply(&mut xs, &mut ys)?;
            out.set_column(i, &xs)?;
            out.set_column(j, &ys)?;
        }
        Ok(out)
    }

    fn check(&self, m: &Matrix) -> Result<()> {
        if m.cols() != self.n_attributes {
            return Err(Error::KeyMismatch(format!(
                "key fitted for {} attributes, matrix has {}",
                self.n_attributes,
                m.cols()
            )));
        }
        Ok(())
    }
}

impl fmt::Display for IsometryKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "rbt-key v2 n={}", self.n_attributes)?;
        for s in &self.steps {
            match *s {
                IsometryStep::Rotate {
                    i,
                    j,
                    theta_degrees,
                } => writeln!(f, "rotate {i} {j} {theta_degrees:.17e}")?,
                IsometryStep::Reflect { i, j, phi_degrees } => {
                    writeln!(f, "reflect {i} {j} {phi_degrees:.17e}")?
                }
            }
        }
        Ok(())
    }
}

impl FromStr for IsometryKey {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self> {
        let mut lines = s.lines().enumerate().filter(|(_, l)| !l.trim().is_empty());
        let (_, header) = lines.next().ok_or(Error::KeyParse {
            line: 1,
            message: "empty key".into(),
        })?;
        let n_attributes = header
            .trim()
            .strip_prefix("rbt-key v2 n=")
            .and_then(|rest| rest.parse::<usize>().ok())
            .ok_or(Error::KeyParse {
                line: 1,
                message: format!("bad header {header:?}"),
            })?;
        let mut steps = Vec::new();
        for (idx, line) in lines {
            let line_no = idx + 1;
            let parts: Vec<&str> = line.split_whitespace().collect();
            if parts.len() != 4 {
                return Err(Error::KeyParse {
                    line: line_no,
                    message: format!("expected 4 fields, found {}", parts.len()),
                });
            }
            let parse_idx = |raw: &str, name: &str| -> Result<usize> {
                raw.parse().map_err(|e| Error::KeyParse {
                    line: line_no,
                    message: format!("bad {name}: {e}"),
                })
            };
            let i = parse_idx(parts[1], "i")?;
            let j = parse_idx(parts[2], "j")?;
            let angle: f64 = parts[3].parse().map_err(|e| Error::KeyParse {
                line: line_no,
                message: format!("bad angle: {e}"),
            })?;
            steps.push(match parts[0] {
                "rotate" => IsometryStep::Rotate {
                    i,
                    j,
                    theta_degrees: angle,
                },
                "reflect" => IsometryStep::Reflect {
                    i,
                    j,
                    phi_degrees: angle,
                },
                other => {
                    return Err(Error::KeyParse {
                        line: line_no,
                        message: format!("unknown step kind {other:?}"),
                    })
                }
            });
        }
        IsometryKey::new(steps, n_attributes)
    }
}

/// The hybrid transformer: per pair, flips a fair coin between a rotation
/// and a reflection, then draws the angle from the corresponding security
/// range.
#[derive(Debug, Clone)]
pub struct HybridIsometry {
    config: crate::method::RbtConfig,
}

/// Output of a hybrid run.
#[derive(Debug, Clone)]
pub struct HybridOutput {
    /// The released matrix.
    pub transformed: Matrix,
    /// The v2 key.
    pub key: IsometryKey,
}

impl HybridIsometry {
    /// Creates a hybrid transformer reusing the RBT configuration
    /// (pairing, thresholds, variance mode, solver grid).
    pub fn new(config: crate::method::RbtConfig) -> Self {
        HybridIsometry { config }
    }

    /// Runs the hybrid algorithm on a normalized matrix.
    ///
    /// # Errors
    ///
    /// Same conditions as
    /// [`RbtTransformer::transform`](crate::method::RbtTransformer::transform);
    /// a pair whose *chosen* isometry family has an empty security range
    /// falls back to the other family before erroring.
    pub fn transform<R: Rng + ?Sized>(
        &self,
        normalized: &Matrix,
        rng: &mut R,
    ) -> Result<HybridOutput> {
        let n = normalized.cols();
        let pairs = self.config.pairing.pairs(n, rng)?;
        let thresholds = self.config.thresholds_for(pairs.len())?;

        let mut out = normalized.clone();
        let mut steps = Vec::with_capacity(pairs.len());
        let mut xs: Vec<f64> = Vec::with_capacity(out.rows());
        let mut ys: Vec<f64> = Vec::with_capacity(out.rows());

        for (&(i, j), pst) in pairs.iter().zip(&thresholds) {
            out.column_into(i, &mut xs);
            out.column_into(j, &mut ys);
            let profile = PairVarianceProfile::from_columns(&xs, &ys, self.config.variance_mode)?;

            let prefer_reflection: bool = rng.random();
            let rotation_range =
                crate::security::security_range(&profile, pst, self.config.solver_grid)?;
            let reflection_range =
                reflection_security_range(&profile, pst, self.config.solver_grid)?;

            let step = match (
                prefer_reflection,
                reflection_range.is_empty(),
                rotation_range.is_empty(),
            ) {
                (true, false, _) | (false, _, true) if !reflection_range.is_empty() => {
                    IsometryStep::Reflect {
                        i,
                        j,
                        phi_degrees: reflection_range.sample(rng)?,
                    }
                }
                (_, _, false) => IsometryStep::Rotate {
                    i,
                    j,
                    theta_degrees: rotation_range.sample(rng)?,
                },
                _ => {
                    let (max_var1, max_var2) =
                        crate::security::max_achievable(&profile, self.config.solver_grid);
                    return Err(Error::EmptySecurityRange {
                        i,
                        j,
                        rho1: pst.rho1,
                        rho2: pst.rho2,
                        max_var1,
                        max_var2,
                    });
                }
            };
            step.apply(&mut xs, &mut ys)?;
            out.set_column(i, &xs)?;
            out.set_column(j, &ys)?;
            steps.push(step);
        }

        Ok(HybridOutput {
            transformed: out,
            key: IsometryKey::new(steps, n)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isometry::dissimilarity_drift;
    use crate::method::RbtConfig;
    use rand::SeedableRng;
    use rbt_data::{datasets, Normalization};
    use rbt_linalg::stats;
    use rbt_linalg::stats::VarianceMode;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn normalized_sample() -> Matrix {
        Normalization::zscore_paper()
            .fit_transform(datasets::arrhythmia_sample().matrix())
            .unwrap()
            .1
    }

    #[test]
    fn reflection_closed_form_matches_empirical() {
        let x = [1.2, -0.7, 0.3, 2.2, -1.5];
        let y = [0.4, 1.1, -0.9, 0.0, 0.5];
        let mode = VarianceMode::Sample;
        let p = PairVarianceProfile::from_columns(&x, &y, mode).unwrap();
        for phi in [5.0, 33.3, 88.8, 120.0, 179.0] {
            let f = Reflection2::from_degrees(phi);
            let mut xr = x.to_vec();
            let mut yr = y.to_vec();
            f.apply_columns(&mut xr, &mut yr).unwrap();
            let v1 = stats::variance_of_difference(&x, &xr, mode).unwrap();
            let v2 = stats::variance_of_difference(&y, &yr, mode).unwrap();
            assert!(
                (v1 - reflection_var_diff_first(&p, phi)).abs() < 1e-10,
                "first at {phi}"
            );
            assert!(
                (v2 - reflection_var_diff_second(&p, phi)).abs() < 1e-10,
                "second at {phi}"
            );
        }
    }

    #[test]
    fn reflection_range_samples_satisfy() {
        let z = normalized_sample();
        let p = PairVarianceProfile::from_columns(&z.column(0), &z.column(2), VarianceMode::Sample)
            .unwrap();
        let pst = PairwiseSecurityThreshold::uniform(0.3).unwrap();
        let range = reflection_security_range(&p, &pst, 1440).unwrap();
        assert!(!range.is_empty());
        let mut r = rng(5);
        for _ in 0..200 {
            let phi = range.sample(&mut r).unwrap();
            assert!(reflection_satisfies(&p, phi, &pst), "phi = {phi}");
        }
    }

    #[test]
    fn reflection_range_respects_bounds() {
        let z = normalized_sample();
        let p = PairVarianceProfile::from_columns(&z.column(0), &z.column(1), VarianceMode::Sample)
            .unwrap();
        let pst = PairwiseSecurityThreshold::uniform(0.1).unwrap();
        let range = reflection_security_range(&p, &pst, 1440).unwrap();
        for &(lo, hi) in range.intervals() {
            assert!((0.0..=180.0).contains(&lo));
            assert!((0.0..=180.0).contains(&hi));
        }
        assert!(reflection_security_range(&p, &pst, 4).is_err());
    }

    #[test]
    fn hybrid_is_isometric_and_invertible() {
        let z = normalized_sample();
        let hybrid = HybridIsometry::new(RbtConfig::uniform(
            PairwiseSecurityThreshold::uniform(0.25).unwrap(),
        ));
        for seed in 0..8 {
            let out = hybrid.transform(&z, &mut rng(seed)).unwrap();
            assert!(
                dissimilarity_drift(&z, &out.transformed) < 1e-9,
                "seed {seed}"
            );
            let back = out.key.invert(&out.transformed).unwrap();
            assert!(back.approx_eq(&z, 1e-10), "seed {seed}");
        }
    }

    #[test]
    fn hybrid_actually_uses_both_families() {
        let z = normalized_sample();
        let hybrid = HybridIsometry::new(RbtConfig::uniform(
            PairwiseSecurityThreshold::uniform(0.25).unwrap(),
        ));
        let mut saw_rotate = false;
        let mut saw_reflect = false;
        for seed in 0..32 {
            let out = hybrid.transform(&z, &mut rng(seed)).unwrap();
            for step in out.key.steps() {
                match step {
                    IsometryStep::Rotate { .. } => saw_rotate = true,
                    IsometryStep::Reflect { .. } => saw_reflect = true,
                }
            }
        }
        assert!(saw_rotate && saw_reflect);
    }

    #[test]
    fn v2_key_text_round_trip() {
        let key = IsometryKey::new(
            vec![
                IsometryStep::Rotate {
                    i: 0,
                    j: 2,
                    theta_degrees: 312.47,
                },
                IsometryStep::Reflect {
                    i: 1,
                    j: 0,
                    phi_degrees: 73.21,
                },
            ],
            3,
        )
        .unwrap();
        let text = key.to_string();
        assert!(text.starts_with("rbt-key v2 n=3\n"));
        let parsed: IsometryKey = text.parse().unwrap();
        assert_eq!(parsed.steps().len(), 2);
        assert_eq!(parsed.steps()[1].pair(), (1, 0));
        let data = normalized_sample();
        assert!(key
            .apply(&data)
            .unwrap()
            .approx_eq(&parsed.apply(&data).unwrap(), 1e-12));
    }

    #[test]
    fn v2_key_parse_errors() {
        assert!(matches!(
            "".parse::<IsometryKey>(),
            Err(Error::KeyParse { .. })
        ));
        assert!(matches!(
            "rbt-key v1 n=3".parse::<IsometryKey>(),
            Err(Error::KeyParse { line: 1, .. })
        ));
        assert!(matches!(
            "rbt-key v2 n=3\nwiggle 0 1 1.0".parse::<IsometryKey>(),
            Err(Error::KeyParse { line: 2, .. })
        ));
        assert!(matches!(
            "rbt-key v2 n=3\nrotate 0 1".parse::<IsometryKey>(),
            Err(Error::KeyParse { line: 2, .. })
        ));
        assert!(matches!(
            "rbt-key v2 n=2\nreflect 0 5 1.0".parse::<IsometryKey>(),
            Err(Error::KeyMismatch(_))
        ));
    }

    #[test]
    fn key_validation_rejects_bad_steps() {
        assert!(IsometryKey::new(
            vec![IsometryStep::Reflect {
                i: 1,
                j: 1,
                phi_degrees: 0.0
            }],
            3
        )
        .is_err());
        assert!(IsometryKey::new(
            vec![IsometryStep::Rotate {
                i: 0,
                j: 7,
                theta_degrees: 0.0
            }],
            3
        )
        .is_err());
    }

    #[test]
    fn reflection_step_is_involution_via_key() {
        let key = IsometryKey::new(
            vec![IsometryStep::Reflect {
                i: 0,
                j: 1,
                phi_degrees: 40.0,
            }],
            3,
        )
        .unwrap();
        let z = normalized_sample();
        let once = key.apply(&z).unwrap();
        let twice = key.apply(&once).unwrap();
        assert!(twice.approx_eq(&z, 1e-12));
    }
}
