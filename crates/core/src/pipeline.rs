//! The end-to-end release pipeline of the paper's Figure 1:
//! raw data → (Step 1) normalization → (Step 2) RBT distortion → release.
//!
//! §5.3 adds an anonymization step (suppressing object IDs) between
//! normalization and release; [`Pipeline::run`] performs all three and
//! returns both the releasable dataset and the owner-side secrets (fitted
//! normalizer + transformation key).

use crate::method::{RbtConfig, RbtTransformer};
use crate::Result;
use rand::Rng;
use rbt_data::{Dataset, FittedNormalizer, Normalization};

/// Figure 1's two-step transformation plus §5.3's anonymization.
#[derive(Debug, Clone)]
pub struct Pipeline {
    normalization: Normalization,
    config: RbtConfig,
    suppress_ids: bool,
}

/// Everything a pipeline run produces.
#[derive(Debug, Clone)]
pub struct PipelineOutput {
    /// The dataset to release: normalized, rotated, optionally ID-stripped.
    pub released: Dataset,
    /// The normalized (pre-rotation) dataset — owner-side intermediate.
    pub normalized: Dataset,
    /// Owner-side secret: the fitted normalization parameters.
    pub normalizer: FittedNormalizer,
    /// Owner-side secret: the rotation key.
    pub key: crate::key::TransformationKey,
}

impl Pipeline {
    /// Creates a pipeline with the paper's defaults: z-score normalization
    /// (sample divisor) and ID suppression on release.
    pub fn new(config: RbtConfig) -> Self {
        Pipeline {
            normalization: Normalization::zscore_paper(),
            config,
            suppress_ids: true,
        }
    }

    /// Replaces the normalization method (e.g. min–max per Eq. 3).
    pub fn with_normalization(mut self, normalization: Normalization) -> Self {
        self.normalization = normalization;
        self
    }

    /// Controls §5.3 Step 2 — whether object IDs are stripped from the
    /// released dataset (`true` by default).
    pub fn with_id_suppression(mut self, suppress: bool) -> Self {
        self.suppress_ids = suppress;
        self
    }

    /// Runs normalize → distort → (anonymize) on a dataset.
    ///
    /// Normalization fits stream each column ([`rbt_linalg::Matrix::column_iter`])
    /// and each RBT step is a fused in-place column-pair sweep, so the whole
    /// release costs `O(m·n)` for the fits plus `O(p·m)` for the `p`
    /// rotations, with no per-step buffers.
    ///
    /// # Errors
    ///
    /// Propagates normalization errors ([`crate::Error::Data`]) and RBT
    /// errors (see [`RbtTransformer::transform`]).
    pub fn run<R: Rng + ?Sized>(&self, data: &Dataset, rng: &mut R) -> Result<PipelineOutput> {
        let (normalizer, normalized_matrix) = self.normalization.fit_transform(data.matrix())?;

        let mut normalized = data.clone();
        normalized
            .replace_matrix(normalized_matrix.clone())
            .map_err(crate::Error::Data)?;

        let rbt = RbtTransformer::new(self.config.clone());
        let out = rbt.transform(&normalized_matrix, rng)?;

        let mut released = data.clone();
        released
            .replace_matrix(out.transformed)
            .map_err(crate::Error::Data)?;
        if self.suppress_ids {
            released = released.anonymized();
        }

        Ok(PipelineOutput {
            released,
            normalized,
            normalizer,
            key: out.key,
        })
    }

    /// Owner-side recovery: undoes the rotations and the normalization of a
    /// released matrix, returning raw-scale values.
    ///
    /// # Errors
    ///
    /// Propagates key/normalizer shape mismatches.
    pub fn recover(
        output: &PipelineOutput,
        released: &rbt_linalg::Matrix,
    ) -> Result<rbt_linalg::Matrix> {
        let normalized = output.key.invert(released)?;
        Ok(output.normalizer.inverse_transform(&normalized)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isometry::dissimilarity_drift;
    use crate::security::PairwiseSecurityThreshold;
    use rand::SeedableRng;
    use rbt_data::datasets;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn pipeline() -> Pipeline {
        Pipeline::new(RbtConfig::uniform(
            PairwiseSecurityThreshold::uniform(0.25).unwrap(),
        ))
    }

    #[test]
    fn run_produces_anonymized_isometric_release() {
        let raw = datasets::arrhythmia_sample();
        let out = pipeline().run(&raw, &mut rng(1)).unwrap();
        // IDs stripped (§5.3 Step 2).
        assert!(out.released.ids().is_none());
        assert_eq!(out.released.columns(), raw.columns());
        // Distances preserved w.r.t. the normalized data (Theorem 2).
        assert!(dissimilarity_drift(out.normalized.matrix(), out.released.matrix()) < 1e-9);
        // Values actually distorted.
        assert!(
            out.released
                .matrix()
                .max_abs_diff(out.normalized.matrix())
                .unwrap()
                > 1e-3
        );
    }

    #[test]
    fn id_suppression_can_be_disabled() {
        let raw = datasets::arrhythmia_sample();
        let out = pipeline()
            .with_id_suppression(false)
            .run(&raw, &mut rng(2))
            .unwrap();
        assert_eq!(out.released.ids(), raw.ids());
    }

    #[test]
    fn min_max_normalization_variant() {
        let raw = datasets::arrhythmia_sample();
        let out = pipeline()
            .with_normalization(Normalization::min_max_unit())
            .run(&raw, &mut rng(3))
            .unwrap();
        assert!(dissimilarity_drift(out.normalized.matrix(), out.released.matrix()) < 1e-9);
    }

    #[test]
    fn recover_round_trips_to_raw() {
        let raw = datasets::arrhythmia_sample();
        let out = pipeline().run(&raw, &mut rng(4)).unwrap();
        let recovered = Pipeline::recover(&out, out.released.matrix()).unwrap();
        assert!(recovered.approx_eq(raw.matrix(), 1e-8));
    }

    #[test]
    fn unsatisfiable_threshold_propagates() {
        let raw = datasets::arrhythmia_sample();
        let p = Pipeline::new(RbtConfig::uniform(
            PairwiseSecurityThreshold::uniform(1e6).unwrap(),
        ));
        assert!(matches!(
            p.run(&raw, &mut rng(0)),
            Err(crate::Error::EmptySecurityRange { .. })
        ));
    }
}
