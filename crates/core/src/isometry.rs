//! Theorem 2 checks: RBT is an isometry of the n-dimensional space.
//!
//! The paper proves (Theorem 2) that successive pairwise rotations preserve
//! all inter-object distances, and concludes (Corollary 1) that clustering
//! results are invariant. These helpers quantify how close a transformation
//! comes to that ideal, both for RBT (drift ~ machine epsilon) and for the
//! baselines in `rbt-transform` (drift is large — that is the point of the
//! comparison benches).

use rbt_linalg::dissimilarity::DissimilarityMatrix;
use rbt_linalg::distance::Metric;
use rbt_linalg::Matrix;

/// Maximum absolute change of any pairwise Euclidean distance between
/// `before` and `after`.
///
/// Returns `f64::INFINITY` if the shapes disagree (different object counts
/// cannot be isometric images of each other).
pub fn dissimilarity_drift(before: &Matrix, after: &Matrix) -> f64 {
    dissimilarity_drift_with(before, after, Metric::Euclidean)
}

/// [`dissimilarity_drift`] under an arbitrary metric — Manhattan drift is
/// *not* ~0 under rotation, which the experiment suite demonstrates.
pub fn dissimilarity_drift_with(before: &Matrix, after: &Matrix, metric: Metric) -> f64 {
    if before.rows() != after.rows() {
        return f64::INFINITY;
    }
    let threads = rbt_linalg::pool::default_threads();
    let a = DissimilarityMatrix::from_matrix_parallel(before, metric, threads);
    let b = DissimilarityMatrix::from_matrix_parallel(after, metric, threads);
    a.max_abs_diff(&b).unwrap_or(f64::INFINITY)
}

/// `true` when every pairwise Euclidean distance is preserved within `tol`.
pub fn is_isometric(before: &Matrix, after: &Matrix, tol: f64) -> bool {
    dissimilarity_drift(before, after) <= tol
}

/// Relative drift: maximum of `|d' − d| / max(d, floor)` over all pairs —
/// scale-free, so thresholds transfer across datasets. `floor` guards the
/// division for near-coincident points.
pub fn relative_drift(before: &Matrix, after: &Matrix, floor: f64) -> f64 {
    if before.rows() != after.rows() {
        return f64::INFINITY;
    }
    let threads = rbt_linalg::pool::default_threads();
    let a = DissimilarityMatrix::from_matrix_parallel(before, Metric::Euclidean, threads);
    let b = DissimilarityMatrix::from_matrix_parallel(after, Metric::Euclidean, threads);
    a.condensed()
        .iter()
        .zip(b.condensed())
        .map(|(x, y)| (x - y).abs() / x.max(floor))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbt_linalg::Rotation2;

    fn sample() -> Matrix {
        Matrix::from_rows(&[
            &[1.0, 2.0, 3.0],
            &[-1.0, 0.5, 2.0],
            &[4.0, -2.0, 0.0],
            &[0.0, 0.0, 1.0],
        ])
        .unwrap()
    }

    fn rotate_pair(m: &Matrix, i: usize, j: usize, degrees: f64) -> Matrix {
        let mut out = m.clone();
        let mut xs = out.column(i);
        let mut ys = out.column(j);
        Rotation2::from_degrees(degrees)
            .apply_columns(&mut xs, &mut ys)
            .unwrap();
        out.set_column(i, &xs).unwrap();
        out.set_column(j, &ys).unwrap();
        out
    }

    #[test]
    fn rotation_has_negligible_drift() {
        let m = sample();
        let r = rotate_pair(&m, 0, 2, 123.4);
        assert!(dissimilarity_drift(&m, &r) < 1e-12);
        assert!(is_isometric(&m, &r, 1e-12));
        assert!(relative_drift(&m, &r, 1e-9) < 1e-12);
    }

    #[test]
    fn composed_rotations_still_isometric() {
        let m = sample();
        let r1 = rotate_pair(&m, 0, 1, 312.47);
        let r2 = rotate_pair(&r1, 2, 0, 147.29);
        assert!(dissimilarity_drift(&m, &r2) < 1e-12);
    }

    #[test]
    fn scaling_is_not_isometric() {
        let m = sample();
        let scaled = m.map(|x| 2.0 * x);
        assert!(dissimilarity_drift(&m, &scaled) > 1.0);
        assert!(!is_isometric(&m, &scaled, 1e-6));
    }

    #[test]
    fn translation_is_isometric_but_noise_is_not() {
        let m = sample();
        let translated = m.map(|x| x + 5.0);
        assert!(dissimilarity_drift(&m, &translated) < 1e-12);
        let noisy = {
            let mut out = m.clone();
            out[(0, 0)] += 0.3;
            out
        };
        assert!(dissimilarity_drift(&m, &noisy) > 0.1);
    }

    #[test]
    fn manhattan_drift_nonzero_under_rotation() {
        let m = sample();
        let r = rotate_pair(&m, 0, 1, 45.0);
        assert!(dissimilarity_drift_with(&m, &r, Metric::Manhattan) > 1e-3);
        assert!(dissimilarity_drift_with(&m, &r, Metric::Euclidean) < 1e-12);
    }

    #[test]
    fn shape_mismatch_is_infinite() {
        let m = sample();
        let fewer = m.select_rows(&[0, 1]).unwrap();
        assert_eq!(dissimilarity_drift(&m, &fewer), f64::INFINITY);
        assert_eq!(relative_drift(&m, &fewer, 1e-9), f64::INFINITY);
    }
}
