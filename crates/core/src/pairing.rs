//! Attribute-pair selection (§4.3, Step 1).
//!
//! The algorithm distorts `k = ⌈n/2⌉` pairs of attributes. The paper leaves
//! the pairing to the security administrator ("the pairs are not selected
//! sequentially … in any order of his choice"); what matters is that
//! **every attribute is distorted**, and that with an odd `n` the leftover
//! attribute is paired with an attribute that has *already been distorted*
//! (which is then distorted a second time — exactly what the running
//! example does with `age`).

use crate::{Error, Result};
use rand::seq::SliceRandom;
use rand::Rng;

/// How attribute pairs are chosen.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum PairingStrategy {
    /// `(0,1), (2,3), …`; an odd trailing attribute is paired with
    /// attribute 0 (already distorted by the first pair).
    #[default]
    Sequential,
    /// A uniformly random perfect matching; an odd trailing attribute is
    /// paired with a random already-distorted attribute. This is the
    /// security posture the paper recommends — the pairing is part of the
    /// secret.
    RandomShuffle,
    /// An explicit, administrator-chosen pairing (the paper's default
    /// framing). Must cover every attribute; later pairs may re-use
    /// attributes distorted by earlier pairs.
    Explicit(Vec<(usize, usize)>),
}

impl PairingStrategy {
    /// Produces the ordered list of attribute pairs for `n` attributes.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidParameter`] for `n < 2`,
    /// * [`Error::InvalidPairing`] if an explicit pairing is malformed
    ///   (out-of-range or self-paired indices, attributes never distorted,
    ///   or an attribute re-used before it has been distorted).
    pub fn pairs<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Result<Vec<(usize, usize)>> {
        if n < 2 {
            return Err(Error::InvalidParameter(format!(
                "RBT needs at least 2 attributes, got {n}"
            )));
        }
        let pairs = match self {
            PairingStrategy::Sequential => {
                let mut pairs: Vec<(usize, usize)> =
                    (0..n / 2).map(|t| (2 * t, 2 * t + 1)).collect();
                if n % 2 == 1 {
                    pairs.push((n - 1, 0));
                }
                pairs
            }
            PairingStrategy::RandomShuffle => {
                let mut order: Vec<usize> = (0..n).collect();
                order.shuffle(rng);
                let mut pairs: Vec<(usize, usize)> =
                    order.chunks_exact(2).map(|c| (c[0], c[1])).collect();
                if n % 2 == 1 {
                    let leftover = order[n - 1];
                    // Any already-distorted attribute is a valid partner.
                    let partner = order[rng.random_range(0..n - 1)];
                    pairs.push((leftover, partner));
                }
                pairs
            }
            PairingStrategy::Explicit(pairs) => pairs.clone(),
        };
        validate_pairs(&pairs, n)?;
        Ok(pairs)
    }
}

/// Checks the paper's pairing rules:
/// indices in range, no self-pairs, every attribute distorted at least
/// once, and any attribute appearing a second time must already have been
/// distorted by an earlier pair.
pub fn validate_pairs(pairs: &[(usize, usize)], n: usize) -> Result<()> {
    if pairs.is_empty() {
        return Err(Error::InvalidPairing("no pairs selected".into()));
    }
    let mut distorted = vec![false; n];
    for (t, &(i, j)) in pairs.iter().enumerate() {
        for &idx in &[i, j] {
            if idx >= n {
                return Err(Error::InvalidPairing(format!(
                    "pair {t} references attribute {idx}, but there are only {n}"
                )));
            }
        }
        if i == j {
            return Err(Error::InvalidPairing(format!(
                "pair {t} pairs attribute {i} with itself"
            )));
        }
        // The paper allows re-distorting only attributes that are already
        // distorted ("the last attribute selected is distorted along with
        // any other attribute already distorted").
        if distorted[i] && distorted[j] {
            // Both already distorted: a redundant extra rotation. Allowed —
            // it only adds security.
        }
        distorted[i] = true;
        distorted[j] = true;
    }
    if let Some(missed) = distorted.iter().position(|&d| !d) {
        return Err(Error::InvalidPairing(format!(
            "attribute {missed} is never distorted"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn sequential_even() {
        let pairs = PairingStrategy::Sequential.pairs(4, &mut rng(0)).unwrap();
        assert_eq!(pairs, vec![(0, 1), (2, 3)]);
    }

    #[test]
    fn sequential_odd_chains_to_distorted() {
        let pairs = PairingStrategy::Sequential.pairs(5, &mut rng(0)).unwrap();
        assert_eq!(pairs, vec![(0, 1), (2, 3), (4, 0)]);
        // k = (n+1)/2 pairs for odd n, as the paper prescribes.
        assert_eq!(pairs.len(), 3);
    }

    #[test]
    fn sequential_minimum() {
        let pairs = PairingStrategy::Sequential.pairs(2, &mut rng(0)).unwrap();
        assert_eq!(pairs, vec![(0, 1)]);
        assert!(PairingStrategy::Sequential.pairs(1, &mut rng(0)).is_err());
        assert!(PairingStrategy::Sequential.pairs(0, &mut rng(0)).is_err());
    }

    #[test]
    fn random_shuffle_covers_everything() {
        for n in [2usize, 3, 4, 5, 8, 9, 17] {
            for seed in 0..5 {
                let pairs = PairingStrategy::RandomShuffle
                    .pairs(n, &mut rng(seed))
                    .unwrap();
                assert_eq!(pairs.len(), n.div_ceil(2), "n={n}");
                validate_pairs(&pairs, n).unwrap();
            }
        }
    }

    #[test]
    fn random_shuffle_varies_with_seed() {
        let a = PairingStrategy::RandomShuffle
            .pairs(8, &mut rng(1))
            .unwrap();
        let b = PairingStrategy::RandomShuffle
            .pairs(8, &mut rng(2))
            .unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn explicit_paper_pairing_is_valid() {
        // The running example: pair1 = [age, heart_rate] = (0, 2),
        // pair2 = [weight, age] = (1, 0) — age re-used after distortion.
        let strategy = PairingStrategy::Explicit(vec![(0, 2), (1, 0)]);
        let pairs = strategy.pairs(3, &mut rng(0)).unwrap();
        assert_eq!(pairs, vec![(0, 2), (1, 0)]);
    }

    #[test]
    fn explicit_validation_errors() {
        let out_of_range = PairingStrategy::Explicit(vec![(0, 5)]);
        assert!(matches!(
            out_of_range.pairs(3, &mut rng(0)),
            Err(Error::InvalidPairing(_))
        ));
        let self_pair = PairingStrategy::Explicit(vec![(1, 1), (0, 2)]);
        assert!(matches!(
            self_pair.pairs(3, &mut rng(0)),
            Err(Error::InvalidPairing(_))
        ));
        let missing = PairingStrategy::Explicit(vec![(0, 1)]);
        assert!(matches!(
            missing.pairs(3, &mut rng(0)),
            Err(Error::InvalidPairing(_))
        ));
        let empty = PairingStrategy::Explicit(vec![]);
        assert!(matches!(
            empty.pairs(3, &mut rng(0)),
            Err(Error::InvalidPairing(_))
        ));
    }

    #[test]
    fn redundant_re_rotation_is_allowed() {
        let strategy = PairingStrategy::Explicit(vec![(0, 1), (2, 3), (0, 2)]);
        assert!(strategy.pairs(4, &mut rng(0)).is_ok());
    }
}
