//! Constants and replay of the paper's running example (§5.1).
//!
//! The example distorts the Cardiac Arrhythmia sample (Table 1) with:
//!
//! * pair 1 = `[age, heart_rate]` = columns `(0, 2)`, threshold
//!   `PST1 = (0.30, 0.55)`, chosen angle θ₁ = 312.47°,
//! * pair 2 = `[weight, age]` = columns `(1, 0)`, threshold
//!   `PST2 = (2.30, 2.30)`, chosen angle θ₂ = 147.29° — note that the `age`
//!   column entering pair 2 is the **already-rotated** `age'`, per the
//!   odd-`n` chaining rule.
//!
//! [`run_example`] replays the whole §5.1 computation from the raw Table 1
//! values and returns every intermediate artifact, which the experiment
//! harness prints as Tables 2–6 and checks digit-for-digit against the
//! embedded copies in `rbt_data::datasets`.

use crate::key::TransformationKey;
use crate::method::{RbtConfig, RbtTransformer, ThresholdPolicy};
use crate::pairing::PairingStrategy;
use crate::security::{PairVarianceProfile, PairwiseSecurityThreshold};
use crate::Result;
use rbt_data::{datasets, Dataset, FittedNormalizer, Normalization};
use rbt_linalg::stats::VarianceMode;
use rbt_linalg::{Matrix, Rotation2};

/// θ for pair 1 `[age, heart_rate]` (§5.1).
pub const THETA1_DEGREES: f64 = 312.47;

/// θ for pair 2 `[weight, age']` (§5.1).
pub const THETA2_DEGREES: f64 = 147.29;

/// Column indices of pair 1: `(age, heart_rate)`.
pub const PAIR1: (usize, usize) = (0, 2);

/// Column indices of pair 2: `(weight, age)`.
pub const PAIR2: (usize, usize) = (1, 0);

/// `PST1 = (0.30, 0.55)`.
pub fn pst1() -> PairwiseSecurityThreshold {
    PairwiseSecurityThreshold::new(0.30, 0.55).expect("paper constants are valid")
}

/// `PST2 = (2.30, 2.30)`.
pub fn pst2() -> PairwiseSecurityThreshold {
    PairwiseSecurityThreshold::uniform(2.30).expect("paper constants are valid")
}

/// Security-range endpoints the paper reads off Figure 2, degrees.
///
/// **Erratum:** the paper's lower endpoint (48.03°) is inconsistent with
/// its own constraints: at 48.03° the heart-rate curve gives
/// `Var(hr − hr') ≈ 0.32 < ρ2 = 0.55`. The upper endpoint is exact — it is
/// where `Var(age − age')` falls to ρ1 = 0.30 — and every other number in
/// §5.1 (Tables 2–6, both achieved variances, both Figure 3 endpoints)
/// reproduces under our formulas, so the 48.03° is a one-off error in the
/// paper's graphical reading. See [`FIGURE2_RANGE_MEASURED`].
pub const FIGURE2_RANGE: (f64, f64) = (48.03, 314.97);

/// The joint-feasibility boundary our solver (and a direct scan of the
/// paper's own variance constraints) actually finds for Figure 2: the lower
/// endpoint is where `Var(hr − hr')` rises through ρ2 = 0.55.
pub const FIGURE2_RANGE_MEASURED: (f64, f64) = (82.69, 314.97);

/// Security-range endpoints the paper reads off Figure 3, degrees.
/// (Both endpoints reproduce exactly.)
pub const FIGURE3_RANGE: (f64, f64) = (118.74, 258.70);

/// The exact z-score normalization of Table 1 (full precision, not the
/// 4-decimal rounding the paper prints as Table 2).
pub fn normalized_exact() -> Matrix {
    let raw = datasets::arrhythmia_sample();
    Normalization::zscore_paper()
        .fit_transform(raw.matrix())
        .expect("embedded sample is non-degenerate")
        .1
}

/// Variance profile of pair 1 `(age, heart_rate)` on the normalized data —
/// the curves plotted in the paper's Figure 2.
pub fn pair1_profile() -> PairVarianceProfile {
    let normalized = normalized_exact();
    PairVarianceProfile::from_columns(
        &normalized.column(PAIR1.0),
        &normalized.column(PAIR1.1),
        VarianceMode::Sample,
    )
    .expect("columns are well-formed")
}

/// Variance profile of pair 2 `(weight, age')` where `age'` is the output
/// of pair 1's rotation — the curves plotted in the paper's Figure 3.
pub fn pair2_profile() -> PairVarianceProfile {
    let after_pair1 = after_first_rotation();
    PairVarianceProfile::from_columns(
        &after_pair1.column(PAIR2.0),
        &after_pair1.column(PAIR2.1),
        VarianceMode::Sample,
    )
    .expect("columns are well-formed")
}

/// The normalized matrix after pair 1's rotation only.
pub fn after_first_rotation() -> Matrix {
    let mut m = normalized_exact();
    let mut xs = m.column(PAIR1.0);
    let mut ys = m.column(PAIR1.1);
    Rotation2::from_degrees(THETA1_DEGREES)
        .apply_columns(&mut xs, &mut ys)
        .expect("equal-length columns");
    m.set_column(PAIR1.0, &xs).expect("in range");
    m.set_column(PAIR1.1, &ys).expect("in range");
    m
}

/// Every artifact of the §5.1 running example.
#[derive(Debug, Clone)]
pub struct PaperExample {
    /// Table 1 — the raw sample.
    pub raw: Dataset,
    /// The fitted z-score normalizer (sample divisor).
    pub normalizer: FittedNormalizer,
    /// Table 2 — the normalized sample (full precision).
    pub normalized: Matrix,
    /// Table 3 — the transformed sample (full precision).
    pub transformed: Matrix,
    /// The transformation key ((0,2) @ 312.47°, then (1,0) @ 147.29°).
    pub key: TransformationKey,
}

/// Replays §5.1 end to end from the raw Table 1 values.
///
/// # Errors
///
/// Propagates any internal error; none occur for the embedded constants
/// (covered by tests).
pub fn run_example() -> Result<PaperExample> {
    let raw = datasets::arrhythmia_sample();
    let (normalizer, normalized) = Normalization::zscore_paper().fit_transform(raw.matrix())?;

    let config = RbtConfig::uniform(pst1())
        .with_pairing(PairingStrategy::Explicit(vec![PAIR1, PAIR2]))
        .with_thresholds(ThresholdPolicy::PerPair(vec![pst1(), pst2()]));
    // Angles are fixed by the paper, so the RNG (needed only by the pairing
    // API) never influences the output.
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let out = RbtTransformer::new(config).transform_with_angles(
        &normalized,
        &[THETA1_DEGREES, THETA2_DEGREES],
        &mut rng,
    )?;

    Ok(PaperExample {
        raw,
        normalizer,
        normalized,
        transformed: out.transformed,
        key: out.key,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbt_linalg::dissimilarity::DissimilarityMatrix;
    use rbt_linalg::distance::Metric;

    #[test]
    fn normalized_matches_printed_table2() {
        let exact = normalized_exact();
        let printed = datasets::arrhythmia_normalized_table2();
        // The paper rounds to 4 decimals.
        assert!(exact.approx_eq(printed.matrix(), 5e-5));
    }

    #[test]
    fn transformed_matches_printed_table3() {
        let example = run_example().unwrap();
        let printed = datasets::arrhythmia_transformed_table3();
        assert!(
            example.transformed.approx_eq(printed.matrix(), 5e-4),
            "max diff {:?}",
            example.transformed.max_abs_diff(printed.matrix())
        );
    }

    #[test]
    fn dissimilarity_matches_printed_table4() {
        let example = run_example().unwrap();
        let dm = DissimilarityMatrix::from_matrix(&example.transformed, Metric::Euclidean);
        let table4 = DissimilarityMatrix::from_condensed(
            5,
            datasets::lower_triangle_to_condensed(&datasets::ARRHYTHMIA_TABLE4_LOWER),
        )
        .unwrap();
        assert!(
            dm.max_abs_diff(&table4).unwrap() < 5e-4,
            "max diff {:?}",
            dm.max_abs_diff(&table4)
        );
    }

    #[test]
    fn normalized_and_transformed_share_dissimilarity() {
        // The paper's headline §5.1 outcome: the dissimilarity matrices of
        // Table 2 and Table 3 are identical.
        let example = run_example().unwrap();
        let before = DissimilarityMatrix::from_matrix(&example.normalized, Metric::Euclidean);
        let after = DissimilarityMatrix::from_matrix(&example.transformed, Metric::Euclidean);
        assert!(before.max_abs_diff(&after).unwrap() < 1e-12);
    }

    #[test]
    #[allow(clippy::approx_constant)] // 0.318 is the paper's printed value, not 1/pi
    fn key_records_paper_choices() {
        let example = run_example().unwrap();
        let steps = example.key.steps();
        assert_eq!(steps.len(), 2);
        assert_eq!((steps[0].i, steps[0].j), PAIR1);
        assert_eq!(steps[0].theta_degrees, THETA1_DEGREES);
        assert_eq!((steps[1].i, steps[1].j), PAIR2);
        assert_eq!(steps[1].theta_degrees, THETA2_DEGREES);
        // §5.1's achieved variances (paper prints 0.318 to 3 decimals;
        // exact value 0.31872).
        assert!((steps[0].achieved_var1 - 0.318).abs() < 1e-3);
        assert!((steps[0].achieved_var2 - 0.9805).abs() < 5e-4);
        assert!((steps[1].achieved_var1 - 2.9714).abs() < 1e-3);
        assert!((steps[1].achieved_var2 - 6.9274).abs() < 1e-3);
    }

    #[test]
    fn key_inverts_back_to_normalized_and_raw() {
        let example = run_example().unwrap();
        let normalized_back = example.key.invert(&example.transformed).unwrap();
        assert!(normalized_back.approx_eq(&example.normalized, 1e-10));
        let raw_back = example
            .normalizer
            .inverse_transform(&normalized_back)
            .unwrap();
        assert!(raw_back.approx_eq(example.raw.matrix(), 1e-8));
    }

    #[test]
    fn transformed_column_variances_match_section52() {
        // §5.2 lists the released data's variances as [1.9039, 0.7840, 0.3122]
        // (sample divisor), contrasting with [1, 1, 1] before distortion.
        let example = run_example().unwrap();
        let vars = rbt_linalg::stats::column_variances(&example.transformed, VarianceMode::Sample)
            .unwrap();
        assert!((vars[0] - 1.9039).abs() < 1e-3, "vars {vars:?}");
        assert!((vars[1] - 0.7840).abs() < 1e-3, "vars {vars:?}");
        assert!((vars[2] - 0.3122).abs() < 1e-3, "vars {vars:?}");
    }
}
