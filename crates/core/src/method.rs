//! The RBT algorithm (§4.3, Step 2) — Definition 3's `RBT = (D, fr)`.
//!
//! Given a **normalized** data matrix, the transformer:
//!
//! 1. selects attribute pairs ([`PairingStrategy`]),
//! 2. for each pair, derives the variance curves as a function of θ
//!    (step 2a–2b), solves the **security range** (step 2c),
//! 3. draws θ uniformly at random from that range,
//! 4. rotates the two columns in place (step 2d), and
//! 5. records the step in a [`TransformationKey`].
//!
//! The loop visits each pair once and each step costs `O(m)` plus the
//! solver's `O(grid)`, giving the `O(m·n)` total of Theorem 1 (the bench
//! suite's `rbt_scaling` target measures exactly this).

use crate::key::{RotationStep, TransformationKey};
use crate::pairing::PairingStrategy;
use crate::security::{
    max_achievable, security_range, PairVarianceProfile, PairwiseSecurityThreshold, DEFAULT_GRID,
};
use crate::{Error, Result};
use rand::Rng;
use rbt_linalg::stats::VarianceMode;
use rbt_linalg::{Matrix, Rotation2};

/// How thresholds are assigned to pairs.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ThresholdPolicy {
    /// One threshold shared by every pair.
    Uniform(PairwiseSecurityThreshold),
    /// One threshold per pair, in pairing order (the paper's running
    /// example: `PST1 = (0.30, 0.55)`, `PST2 = (2.30, 2.30)`).
    PerPair(Vec<PairwiseSecurityThreshold>),
}

impl From<PairwiseSecurityThreshold> for ThresholdPolicy {
    /// A single threshold means "uniform across every pair".
    fn from(pst: PairwiseSecurityThreshold) -> Self {
        ThresholdPolicy::Uniform(pst)
    }
}

impl ThresholdPolicy {
    fn resolve(&self, n_pairs: usize) -> Result<Vec<PairwiseSecurityThreshold>> {
        match self {
            ThresholdPolicy::Uniform(pst) => Ok(vec![*pst; n_pairs]),
            ThresholdPolicy::PerPair(list) => {
                if list.len() != n_pairs {
                    return Err(Error::InvalidParameter(format!(
                        "{} thresholds for {n_pairs} pairs",
                        list.len()
                    )));
                }
                Ok(list.clone())
            }
        }
    }
}

/// Configuration of an RBT run.
#[derive(Debug, Clone, PartialEq)]
pub struct RbtConfig {
    /// Pair-selection strategy (§4.3 Step 1).
    pub pairing: PairingStrategy,
    /// Threshold assignment (§4.2, Pairwise-Security Threshold).
    pub thresholds: ThresholdPolicy,
    /// Variance divisor; [`VarianceMode::Sample`] matches the paper's
    /// numbers.
    pub variance_mode: VarianceMode,
    /// Grid resolution of the security-range solver.
    pub solver_grid: usize,
}

impl RbtConfig {
    /// A configuration with a single threshold for all pairs, sequential
    /// pairing, paper-matching variance mode, and the default solver grid.
    pub fn uniform(pst: PairwiseSecurityThreshold) -> Self {
        RbtConfig {
            pairing: PairingStrategy::Sequential,
            thresholds: ThresholdPolicy::Uniform(pst),
            variance_mode: VarianceMode::Sample,
            solver_grid: DEFAULT_GRID,
        }
    }

    /// Replaces the pairing strategy.
    pub fn with_pairing(mut self, pairing: PairingStrategy) -> Self {
        self.pairing = pairing;
        self
    }

    /// Replaces the threshold policy.
    pub fn with_thresholds(mut self, thresholds: ThresholdPolicy) -> Self {
        self.thresholds = thresholds;
        self
    }

    /// Replaces the variance mode.
    pub fn with_variance_mode(mut self, mode: VarianceMode) -> Self {
        self.variance_mode = mode;
        self
    }

    /// Replaces the solver grid resolution.
    pub fn with_solver_grid(mut self, grid: usize) -> Self {
        self.solver_grid = grid;
        self
    }

    /// Resolves the threshold policy against a pair count (shared with the
    /// reflection extension).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if a per-pair list disagrees
    /// with `n_pairs`.
    pub fn thresholds_for(&self, n_pairs: usize) -> Result<Vec<PairwiseSecurityThreshold>> {
        self.thresholds.resolve(n_pairs)
    }
}

/// Output of an RBT run: the released matrix plus the owner's secret key.
#[derive(Debug, Clone)]
pub struct RbtOutput {
    /// The transformed (released) data matrix `D'`.
    pub transformed: Matrix,
    /// The secret transformation key (pairs, angles, achieved variances).
    pub key: TransformationKey,
}

/// The RBT transformer.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use rbt_core::{RbtConfig, RbtTransformer, PairwiseSecurityThreshold};
/// use rbt_data::{datasets, Normalization};
///
/// let raw = datasets::arrhythmia_sample();
/// let (_, normalized) = Normalization::zscore_paper()
///     .fit_transform(raw.matrix()).unwrap();
///
/// let config = RbtConfig::uniform(PairwiseSecurityThreshold::uniform(0.3).unwrap());
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let out = RbtTransformer::new(config).transform(&normalized, &mut rng).unwrap();
///
/// // Distances are preserved (Theorem 2) …
/// let diff = rbt_core::isometry::dissimilarity_drift(&normalized, &out.transformed);
/// assert!(diff < 1e-9);
/// // … while every attribute meets its security threshold.
/// for step in out.key.steps() {
///     assert!(step.achieved_var1 >= 0.3 && step.achieved_var2 >= 0.3);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct RbtTransformer {
    config: RbtConfig,
}

impl RbtTransformer {
    /// Creates a transformer with the given configuration.
    pub fn new(config: RbtConfig) -> Self {
        RbtTransformer { config }
    }

    /// The configuration.
    pub fn config(&self) -> &RbtConfig {
        &self.config
    }

    /// Runs the RBT algorithm on a normalized data matrix.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidParameter`] for fewer than 2 columns or a
    ///   threshold/pair count mismatch,
    /// * [`Error::InvalidPairing`] for a malformed explicit pairing,
    /// * [`Error::EmptySecurityRange`] when a pair cannot meet its
    ///   threshold at any angle (the error reports the maximum achievable
    ///   variances so the administrator can pick a feasible PST).
    pub fn transform<R: Rng + ?Sized>(
        &self,
        normalized: &Matrix,
        rng: &mut R,
    ) -> Result<RbtOutput> {
        if normalized.has_non_finite() {
            return Err(Error::InvalidParameter(
                "input matrix contains NaN or infinite values".into(),
            ));
        }
        let n = normalized.cols();
        let pairs = self.config.pairing.pairs(n, rng)?;
        let thresholds = self.config.thresholds.resolve(pairs.len())?;

        let mut out = normalized.clone();
        let mut steps = Vec::with_capacity(pairs.len());
        let mut xs: Vec<f64> = Vec::with_capacity(out.rows());
        let mut ys: Vec<f64> = Vec::with_capacity(out.rows());

        for (&(i, j), pst) in pairs.iter().zip(&thresholds) {
            out.column_into(i, &mut xs);
            out.column_into(j, &mut ys);
            let profile = PairVarianceProfile::from_columns(&xs, &ys, self.config.variance_mode)?;
            let range = security_range(&profile, pst, self.config.solver_grid)?;
            if range.is_empty() {
                let (max_var1, max_var2) = max_achievable(&profile, self.config.solver_grid);
                return Err(Error::EmptySecurityRange {
                    i,
                    j,
                    rho1: pst.rho1,
                    rho2: pst.rho2,
                    max_var1,
                    max_var2,
                });
            }
            let theta = range.sample(rng)?;
            // Fused in-place column sweep: bit-identical to rotating the
            // extracted columns and writing them back, without the
            // write-back passes.
            let (s, c) = Rotation2::from_degrees(theta).radians().sin_cos();
            out.rotate_column_pair(i, j, c, s)
                .map_err(|e| Error::InvalidParameter(e.to_string()))?;
            steps.push(RotationStep {
                i,
                j,
                theta_degrees: theta,
                achieved_var1: profile.var_diff_first(theta),
                achieved_var2: profile.var_diff_second(theta),
            });
        }

        let key = TransformationKey::new(steps, n)?;
        Ok(RbtOutput {
            transformed: out,
            key,
        })
    }

    /// Runs the algorithm with **fixed angles** instead of random draws —
    /// used to replay the paper's running example and for regression tests.
    /// Angles are taken per pair, in pairing order; thresholds are still
    /// checked (an angle outside its pair's security range is an error).
    ///
    /// # Errors
    ///
    /// As [`transform`](Self::transform), plus [`Error::InvalidParameter`]
    /// if `angles.len()` disagrees with the pairing or an angle violates
    /// its pair's threshold.
    pub fn transform_with_angles<R: Rng + ?Sized>(
        &self,
        normalized: &Matrix,
        angles: &[f64],
        rng: &mut R,
    ) -> Result<RbtOutput> {
        let n = normalized.cols();
        let pairs = self.config.pairing.pairs(n, rng)?;
        if angles.len() != pairs.len() {
            return Err(Error::InvalidParameter(format!(
                "{} angles for {} pairs",
                angles.len(),
                pairs.len()
            )));
        }
        let thresholds = self.config.thresholds.resolve(pairs.len())?;

        let mut out = normalized.clone();
        let mut steps = Vec::with_capacity(pairs.len());
        let mut xs: Vec<f64> = Vec::with_capacity(out.rows());
        let mut ys: Vec<f64> = Vec::with_capacity(out.rows());

        for ((&(i, j), pst), &theta) in pairs.iter().zip(&thresholds).zip(angles) {
            out.column_into(i, &mut xs);
            out.column_into(j, &mut ys);
            let profile = PairVarianceProfile::from_columns(&xs, &ys, self.config.variance_mode)?;
            if !profile.satisfies(theta, pst) {
                return Err(Error::InvalidParameter(format!(
                    "angle {theta}° violates PST ({}, {}) for pair ({i}, {j}): \
                     achieved ({:.4}, {:.4})",
                    pst.rho1,
                    pst.rho2,
                    profile.var_diff_first(theta),
                    profile.var_diff_second(theta),
                )));
            }
            let (s, c) = Rotation2::from_degrees(theta).radians().sin_cos();
            out.rotate_column_pair(i, j, c, s)
                .map_err(|e| Error::InvalidParameter(e.to_string()))?;
            steps.push(RotationStep {
                i,
                j,
                theta_degrees: theta,
                achieved_var1: profile.var_diff_first(theta),
                achieved_var2: profile.var_diff_second(theta),
            });
        }

        let key = TransformationKey::new(steps, n)?;
        Ok(RbtOutput {
            transformed: out,
            key,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isometry::dissimilarity_drift;
    use rand::SeedableRng;
    use rbt_data::{datasets, Normalization};

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn normalized_sample() -> Matrix {
        let raw = datasets::arrhythmia_sample();
        Normalization::zscore_paper()
            .fit_transform(raw.matrix())
            .unwrap()
            .1
    }

    fn default_config() -> RbtConfig {
        RbtConfig::uniform(PairwiseSecurityThreshold::uniform(0.25).unwrap())
    }

    #[test]
    fn transform_preserves_distances() {
        let normalized = normalized_sample();
        let out = RbtTransformer::new(default_config())
            .transform(&normalized, &mut rng(3))
            .unwrap();
        assert!(dissimilarity_drift(&normalized, &out.transformed) < 1e-9);
    }

    #[test]
    fn transform_meets_thresholds() {
        let normalized = normalized_sample();
        let out = RbtTransformer::new(default_config())
            .transform(&normalized, &mut rng(5))
            .unwrap();
        for step in out.key.steps() {
            assert!(step.achieved_var1 >= 0.25, "step {step:?}");
            assert!(step.achieved_var2 >= 0.25, "step {step:?}");
        }
    }

    #[test]
    fn odd_attribute_count_distorts_every_column() {
        let normalized = normalized_sample(); // 3 columns
        let out = RbtTransformer::new(default_config())
            .transform(&normalized, &mut rng(11))
            .unwrap();
        // Every column must differ from the original.
        for j in 0..3 {
            let orig = normalized.column(j);
            let released = out.transformed.column(j);
            let moved = orig
                .iter()
                .zip(&released)
                .any(|(a, b)| (a - b).abs() > 1e-6);
            assert!(moved, "column {j} unchanged");
        }
        // Sequential pairing on 3 columns: (0,1) then (2,0).
        assert_eq!(out.key.steps().len(), 2);
    }

    #[test]
    fn key_inverts_the_release() {
        let normalized = normalized_sample();
        let out = RbtTransformer::new(default_config())
            .transform(&normalized, &mut rng(23))
            .unwrap();
        let recovered = out.key.invert(&out.transformed).unwrap();
        assert!(recovered.approx_eq(&normalized, 1e-10));
    }

    #[test]
    fn per_pair_thresholds_enforced() {
        let normalized = normalized_sample();
        let config = default_config().with_thresholds(ThresholdPolicy::PerPair(vec![
            PairwiseSecurityThreshold::new(0.30, 0.55).unwrap(),
            PairwiseSecurityThreshold::uniform(2.30).unwrap(),
        ]));
        let out = RbtTransformer::new(config)
            .transform(&normalized, &mut rng(2))
            .unwrap();
        let s = out.key.steps();
        assert!(s[0].achieved_var1 >= 0.30 && s[0].achieved_var2 >= 0.55);
        assert!(s[1].achieved_var1 >= 2.30 && s[1].achieved_var2 >= 2.30);
    }

    #[test]
    fn threshold_count_mismatch_rejected() {
        let normalized = normalized_sample();
        let config = default_config().with_thresholds(ThresholdPolicy::PerPair(vec![
            PairwiseSecurityThreshold::uniform(0.3).unwrap(),
        ]));
        assert!(matches!(
            RbtTransformer::new(config).transform(&normalized, &mut rng(0)),
            Err(Error::InvalidParameter(_))
        ));
    }

    #[test]
    fn unsatisfiable_threshold_reports_max_achievable() {
        let normalized = normalized_sample();
        let config = RbtConfig::uniform(PairwiseSecurityThreshold::uniform(50.0).unwrap());
        match RbtTransformer::new(config).transform(&normalized, &mut rng(0)) {
            Err(Error::EmptySecurityRange {
                max_var1, max_var2, ..
            }) => {
                assert!(max_var1 > 0.0 && max_var1 < 50.0);
                assert!(max_var2 > 0.0 && max_var2 < 50.0);
            }
            other => panic!("expected EmptySecurityRange, got {other:?}"),
        }
    }

    #[test]
    fn non_finite_input_rejected() {
        let mut normalized = normalized_sample();
        normalized[(1, 2)] = f64::NAN;
        assert!(matches!(
            RbtTransformer::new(default_config()).transform(&normalized, &mut rng(0)),
            Err(Error::InvalidParameter(_))
        ));
        normalized[(1, 2)] = f64::NEG_INFINITY;
        assert!(matches!(
            RbtTransformer::new(default_config()).transform(&normalized, &mut rng(0)),
            Err(Error::InvalidParameter(_))
        ));
    }

    #[test]
    fn too_few_columns_rejected() {
        let one_col = Matrix::from_columns(&[&[1.0, 2.0, 3.0]]).unwrap();
        assert!(matches!(
            RbtTransformer::new(default_config()).transform(&one_col, &mut rng(0)),
            Err(Error::InvalidParameter(_))
        ));
    }

    #[test]
    fn different_seeds_give_different_releases() {
        let normalized = normalized_sample();
        let t = RbtTransformer::new(default_config());
        let a = t.transform(&normalized, &mut rng(1)).unwrap();
        let b = t.transform(&normalized, &mut rng(2)).unwrap();
        assert!(a.transformed.max_abs_diff(&b.transformed).unwrap() > 1e-6);
        // … but both preserve distances.
        assert!(dissimilarity_drift(&normalized, &a.transformed) < 1e-9);
        assert!(dissimilarity_drift(&normalized, &b.transformed) < 1e-9);
    }

    #[test]
    fn fixed_angles_replay_and_validation() {
        let normalized = normalized_sample();
        let config = default_config().with_pairing(PairingStrategy::Explicit(vec![(0, 2), (1, 0)]));
        let t = RbtTransformer::new(config);
        // The paper's angles satisfy a loose uniform threshold.
        let out = t
            .transform_with_angles(&normalized, &[312.47, 147.29], &mut rng(0))
            .unwrap();
        assert_eq!(out.key.steps()[0].theta_degrees, 312.47);
        // θ = 0 is the identity rotation: violates any positive threshold.
        assert!(matches!(
            t.transform_with_angles(&normalized, &[0.0, 147.29], &mut rng(0)),
            Err(Error::InvalidParameter(_))
        ));
        // Angle count mismatch.
        assert!(matches!(
            t.transform_with_angles(&normalized, &[312.47], &mut rng(0)),
            Err(Error::InvalidParameter(_))
        ));
    }

    #[test]
    fn random_pairing_still_preserves_distances() {
        let normalized = normalized_sample();
        let config = default_config().with_pairing(PairingStrategy::RandomShuffle);
        let out = RbtTransformer::new(config)
            .transform(&normalized, &mut rng(9))
            .unwrap();
        assert!(dissimilarity_drift(&normalized, &out.transformed) < 1e-9);
    }
}
