//! The versioned key-file codec — how the owner's secrets leave the
//! process.
//!
//! A one-shot release (Figure 1) can keep the [`TransformationKey`] and
//! fitted normalizer in memory, but a production owner releasing *new*
//! records under the *same* secrets must persist them between runs. This
//! module defines the binary envelope every persisted record travels in:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"RBTS"
//! 4       2     format version (little-endian u16, currently 1)
//! 6       1     record kind (key / normalizer / config / session)
//! 7       8     payload length (little-endian u64)
//! 15      n     payload (record-specific, see below)
//! 15+n    4     CRC-32 over bytes [0, 15+n)
//! ```
//!
//! Payloads are built from [`rbt_linalg::codec`] primitives: fixed-width
//! little-endian integers and raw `f64` bit patterns, so a round trip is
//! **bit-identical** — no decimal formatting in the loop. The trailing
//! CRC-32 covers the header too, so any single flipped byte (magic,
//! version, length, payload, or the checksum itself) and any truncation is
//! rejected with a typed [`CodecError`]; decoding never panics. The
//! human-readable companion format lives on
//! [`crate::session::ReleaseSession::to_text`].

use crate::key::{RotationStep, TransformationKey};
use crate::method::{RbtConfig, ThresholdPolicy};
use crate::pairing::PairingStrategy;
use crate::security::PairwiseSecurityThreshold;
use crate::{Error, Result};
use rbt_data::FittedNormalizer;
use rbt_linalg::codec::{crc32, ByteReader, ByteWriter, DecodeError};
use rbt_linalg::stats::VarianceMode;
use std::fmt;

/// The four magic bytes opening every binary key file.
pub const MAGIC: [u8; 4] = *b"RBTS";

/// The current format version.
pub const FORMAT_VERSION: u16 = 1;

/// What a sealed envelope contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RecordKind {
    /// A [`TransformationKey`] on its own.
    Key,
    /// A [`FittedNormalizer`] on its own.
    Normalizer,
    /// An [`RbtConfig`] (pairing + threshold metadata) on its own.
    Config,
    /// A full release session: key, normalizer, optional config and drift
    /// bounds, ID-suppression flag.
    Session,
    /// A fitted privacy-transform method other than the RBT session: a
    /// method-name tag followed by a method-specific payload. The release
    /// API layer uses this kind so every registered method — hybrid
    /// isometries, baselines — persists inside the same sealed envelope.
    Method,
}

impl RecordKind {
    fn to_u8(self) -> u8 {
        match self {
            RecordKind::Key => 1,
            RecordKind::Normalizer => 2,
            RecordKind::Config => 3,
            RecordKind::Session => 4,
            RecordKind::Method => 5,
        }
    }
}

/// Why a key file could not be decoded (or, for text forms, parsed).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CodecError {
    /// The input does not start with the `RBTS` magic.
    BadMagic {
        /// The bytes found instead (zero-padded when shorter than 4).
        found: [u8; 4],
    },
    /// The format version is newer than this build understands.
    UnsupportedVersion {
        /// The version field that was read.
        found: u16,
    },
    /// The envelope holds a different record kind than the caller asked
    /// for.
    WrongKind {
        /// The kind the caller expected.
        expected: RecordKind,
        /// The kind byte found in the envelope.
        found: u8,
    },
    /// The trailing CRC-32 does not match the envelope contents.
    ChecksumMismatch {
        /// The checksum stored in the file.
        stored: u32,
        /// The checksum computed over the received bytes.
        computed: u32,
    },
    /// A low-level byte-stream failure (truncation, bad tag, …).
    Byte(DecodeError),
    /// A structurally valid envelope carried semantically invalid contents.
    Invalid {
        /// What was wrong.
        message: String,
    },
    /// A failure in the line-oriented text form.
    Text {
        /// 1-based index into the non-empty lines of the input.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic { found } => {
                write!(f, "bad magic {found:?} (expected {MAGIC:?})")
            }
            CodecError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported format version {found} (this build reads {FORMAT_VERSION})"
                )
            }
            CodecError::WrongKind { expected, found } => {
                write!(
                    f,
                    "envelope holds record kind {found}, expected {expected:?}"
                )
            }
            CodecError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: file says {stored:08x}, contents hash to {computed:08x}"
            ),
            CodecError::Byte(e) => write!(f, "byte stream error: {e}"),
            CodecError::Invalid { message } => write!(f, "invalid record: {message}"),
            CodecError::Text { line, message } => {
                write!(f, "text parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for CodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodecError::Byte(e) => Some(e),
            _ => None,
        }
    }
}

impl CodecError {
    /// A [`CodecError::BadMagic`] describing the first bytes of `bytes`
    /// (zero-padded when shorter than 4).
    pub(crate) fn bad_magic(bytes: &[u8]) -> Self {
        let mut found = [0u8; 4];
        found[..bytes.len().min(4)].copy_from_slice(&bytes[..bytes.len().min(4)]);
        CodecError::BadMagic { found }
    }
}

impl From<DecodeError> for CodecError {
    fn from(e: DecodeError) -> Self {
        CodecError::Byte(e)
    }
}

impl From<DecodeError> for Error {
    fn from(e: DecodeError) -> Self {
        Error::Codec(CodecError::Byte(e))
    }
}

impl From<CodecError> for Error {
    fn from(e: CodecError) -> Self {
        Error::Codec(e)
    }
}

/// Wraps `payload` in the magic/version/kind/length envelope and appends
/// the CRC-32.
pub(crate) fn seal(kind: RecordKind, payload: &[u8]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_bytes(&MAGIC);
    w.put_u16(FORMAT_VERSION);
    w.put_u8(kind.to_u8());
    w.put_usize(payload.len());
    w.put_bytes(payload);
    let checksum = crc32(w.as_bytes());
    w.put_u32(checksum);
    w.into_bytes()
}

/// Verifies magic, checksum, version, kind, and length, returning the
/// payload slice.
///
/// The order matters: the magic identifies the file type, then the
/// trailing CRC-32 (covering everything before it) is verified over the
/// *whole* input, so any flipped byte — version, kind, length, payload,
/// or the checksum itself — reports as corruption; only an intact file of
/// a newer format reaches the `UnsupportedVersion` / `WrongKind` paths.
pub(crate) fn open(bytes: &[u8], expected: RecordKind) -> Result<&[u8]> {
    if bytes.len() < 4 || bytes[..4] != MAGIC {
        return Err(CodecError::bad_magic(bytes).into());
    }
    // Smallest well-formed envelope: header (15) + empty payload + CRC (4).
    if bytes.len() < 19 {
        return Err(CodecError::Byte(DecodeError::Truncated {
            offset: bytes.len(),
            needed: 19,
            available: bytes.len(),
        })
        .into());
    }
    let body_end = bytes.len() - 4;
    let stored = u32::from_le_bytes([
        bytes[body_end],
        bytes[body_end + 1],
        bytes[body_end + 2],
        bytes[body_end + 3],
    ]);
    let computed = crc32(&bytes[..body_end]);
    if stored != computed {
        return Err(CodecError::ChecksumMismatch { stored, computed }.into());
    }
    let mut r = ByteReader::new(&bytes[4..body_end]);
    let version = r.take_u16().map_err(CodecError::from)?;
    if version != FORMAT_VERSION {
        return Err(CodecError::UnsupportedVersion { found: version }.into());
    }
    let kind = r.take_u8().map_err(CodecError::from)?;
    if kind != expected.to_u8() {
        return Err(CodecError::WrongKind {
            expected,
            found: kind,
        }
        .into());
    }
    let len = r.take_usize().map_err(CodecError::from)?;
    if len != r.remaining() {
        return Err(CodecError::Invalid {
            message: format!(
                "length field says {len} payload bytes, envelope holds {}",
                r.remaining()
            ),
        }
        .into());
    }
    r.take_bytes(len).map_err(|e| CodecError::from(e).into())
}

/// Sanity-caps a decoded element count against the bytes actually present,
/// so a corrupted count cannot trigger a huge allocation.
pub(crate) fn check_count(r: &ByteReader<'_>, count: usize, min_bytes_each: usize) -> Result<()> {
    if count.saturating_mul(min_bytes_each) > r.remaining() {
        return Err(CodecError::Invalid {
            message: format!(
                "count {count} needs at least {} bytes, {} remain",
                count.saturating_mul(min_bytes_each),
                r.remaining()
            ),
        }
        .into());
    }
    Ok(())
}

pub(crate) fn write_key_record(w: &mut ByteWriter, key: &TransformationKey) {
    w.put_usize(key.n_attributes());
    w.put_usize(key.steps().len());
    for s in key.steps() {
        w.put_usize(s.i);
        w.put_usize(s.j);
        w.put_f64(s.theta_degrees);
        w.put_f64(s.achieved_var1);
        w.put_f64(s.achieved_var2);
    }
}

pub(crate) fn read_key_record(r: &mut ByteReader<'_>) -> Result<TransformationKey> {
    let n_attributes = r.take_usize().map_err(CodecError::from)?;
    let n_steps = r.take_usize().map_err(CodecError::from)?;
    check_count(r, n_steps, 40)?;
    let mut steps = Vec::with_capacity(n_steps);
    for _ in 0..n_steps {
        steps.push(RotationStep {
            i: r.take_usize().map_err(CodecError::from)?,
            j: r.take_usize().map_err(CodecError::from)?,
            theta_degrees: r.take_f64().map_err(CodecError::from)?,
            achieved_var1: r.take_f64().map_err(CodecError::from)?,
            achieved_var2: r.take_f64().map_err(CodecError::from)?,
        });
    }
    // `new` re-validates index ranges, so a tampered-but-checksummed
    // payload still cannot produce an inconsistent key.
    TransformationKey::new(steps, n_attributes)
}

pub(crate) fn write_config_record(w: &mut ByteWriter, config: &RbtConfig) {
    match &config.pairing {
        PairingStrategy::Sequential => w.put_u8(0),
        PairingStrategy::RandomShuffle => w.put_u8(1),
        PairingStrategy::Explicit(pairs) => {
            w.put_u8(2);
            w.put_usize(pairs.len());
            for &(i, j) in pairs {
                w.put_usize(i);
                w.put_usize(j);
            }
        }
    }
    match &config.thresholds {
        ThresholdPolicy::Uniform(pst) => {
            w.put_u8(0);
            w.put_f64(pst.rho1);
            w.put_f64(pst.rho2);
        }
        ThresholdPolicy::PerPair(list) => {
            w.put_u8(1);
            w.put_usize(list.len());
            for pst in list {
                w.put_f64(pst.rho1);
                w.put_f64(pst.rho2);
            }
        }
    }
    w.put_u8(match config.variance_mode {
        VarianceMode::Population => 0,
        VarianceMode::Sample => 1,
    });
    w.put_usize(config.solver_grid);
}

pub(crate) fn read_config_record(r: &mut ByteReader<'_>) -> Result<RbtConfig> {
    let pairing = match r.take_u8().map_err(CodecError::from)? {
        0 => PairingStrategy::Sequential,
        1 => PairingStrategy::RandomShuffle,
        2 => {
            let n = r.take_usize().map_err(CodecError::from)?;
            check_count(r, n, 16)?;
            let mut pairs = Vec::with_capacity(n);
            for _ in 0..n {
                let i = r.take_usize().map_err(CodecError::from)?;
                let j = r.take_usize().map_err(CodecError::from)?;
                pairs.push((i, j));
            }
            PairingStrategy::Explicit(pairs)
        }
        other => {
            return Err(CodecError::Invalid {
                message: format!("unknown pairing tag {other}"),
            }
            .into())
        }
    };
    let thresholds = match r.take_u8().map_err(CodecError::from)? {
        0 => ThresholdPolicy::Uniform(PairwiseSecurityThreshold::new(
            r.take_f64().map_err(CodecError::from)?,
            r.take_f64().map_err(CodecError::from)?,
        )?),
        1 => {
            let n = r.take_usize().map_err(CodecError::from)?;
            check_count(r, n, 16)?;
            let mut list = Vec::with_capacity(n);
            for _ in 0..n {
                list.push(PairwiseSecurityThreshold::new(
                    r.take_f64().map_err(CodecError::from)?,
                    r.take_f64().map_err(CodecError::from)?,
                )?);
            }
            ThresholdPolicy::PerPair(list)
        }
        other => {
            return Err(CodecError::Invalid {
                message: format!("unknown threshold tag {other}"),
            }
            .into())
        }
    };
    let variance_mode = match r.take_u8().map_err(CodecError::from)? {
        0 => VarianceMode::Population,
        1 => VarianceMode::Sample,
        other => {
            return Err(CodecError::Invalid {
                message: format!("unknown variance mode tag {other}"),
            }
            .into())
        }
    };
    let solver_grid = r.take_usize().map_err(CodecError::from)?;
    Ok(RbtConfig {
        pairing,
        thresholds,
        variance_mode,
        solver_grid,
    })
}

/// Wraps an arbitrary record payload in the sealed `RBTS` envelope
/// (magic, version, kind, length, trailing CRC-32).
///
/// This is the public codec hook for the release-API layer: any fitted
/// privacy-transform method can serialize its state as a payload and ride
/// the same envelope (and corruption guarantees) as the built-in
/// key/normalizer/session records.
pub fn seal_envelope(kind: RecordKind, payload: &[u8]) -> Vec<u8> {
    seal(kind, payload)
}

/// Verifies magic, checksum, version, and kind of a sealed envelope and
/// returns the payload slice — the decoding counterpart of
/// [`seal_envelope`].
///
/// # Errors
///
/// Returns [`Error::Codec`] for framing or corruption problems (bad magic,
/// checksum mismatch, unsupported version, wrong kind, bad length).
pub fn open_envelope(bytes: &[u8], expected: RecordKind) -> Result<&[u8]> {
    open(bytes, expected)
}

/// Encodes a [`TransformationKey`] into a sealed binary envelope.
pub fn encode_key(key: &TransformationKey) -> Vec<u8> {
    let mut w = ByteWriter::new();
    write_key_record(&mut w, key);
    seal(RecordKind::Key, w.as_bytes())
}

/// Decodes the envelope written by [`encode_key`].
///
/// # Errors
///
/// [`Error::Codec`] for framing/corruption problems,
/// [`Error::KeyMismatch`] for a structurally valid but inconsistent key.
pub fn decode_key(bytes: &[u8]) -> Result<TransformationKey> {
    let payload = open(bytes, RecordKind::Key)?;
    let mut r = ByteReader::new(payload);
    let key = read_key_record(&mut r)?;
    r.expect_end().map_err(CodecError::from)?;
    Ok(key)
}

/// Encodes a [`FittedNormalizer`] into a sealed binary envelope.
pub fn encode_normalizer(normalizer: &FittedNormalizer) -> Vec<u8> {
    let mut w = ByteWriter::new();
    normalizer.encode_into(&mut w);
    seal(RecordKind::Normalizer, w.as_bytes())
}

/// Decodes the envelope written by [`encode_normalizer`].
///
/// # Errors
///
/// Returns [`Error::Codec`] for framing/corruption problems or unknown
/// parameter tags.
pub fn decode_normalizer(bytes: &[u8]) -> Result<FittedNormalizer> {
    let payload = open(bytes, RecordKind::Normalizer)?;
    let mut r = ByteReader::new(payload);
    let normalizer = FittedNormalizer::decode_from(&mut r).map_err(CodecError::from)?;
    r.expect_end().map_err(CodecError::from)?;
    Ok(normalizer)
}

/// Encodes an [`RbtConfig`] into a sealed binary envelope.
pub fn encode_config(config: &RbtConfig) -> Vec<u8> {
    let mut w = ByteWriter::new();
    write_config_record(&mut w, config);
    seal(RecordKind::Config, w.as_bytes())
}

/// Decodes the envelope written by [`encode_config`].
///
/// # Errors
///
/// [`Error::Codec`] for framing/corruption problems,
/// [`Error::InvalidParameter`] for an out-of-range threshold.
pub fn decode_config(bytes: &[u8]) -> Result<RbtConfig> {
    let payload = open(bytes, RecordKind::Config)?;
    let mut r = ByteReader::new(payload);
    let config = read_config_record(&mut r)?;
    r.expect_end().map_err(CodecError::from)?;
    Ok(config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;

    fn paper_key() -> TransformationKey {
        paper::run_example().unwrap().key
    }

    #[test]
    fn key_envelope_round_trips_bit_identically() {
        let key = paper_key();
        let bytes = encode_key(&key);
        assert_eq!(&bytes[..4], b"RBTS");
        let back = decode_key(&bytes).unwrap();
        assert_eq!(back.n_attributes(), key.n_attributes());
        for (a, b) in back.steps().iter().zip(key.steps()) {
            assert_eq!(a.theta_degrees.to_bits(), b.theta_degrees.to_bits());
            assert_eq!(a.achieved_var1.to_bits(), b.achieved_var1.to_bits());
            assert_eq!(a.achieved_var2.to_bits(), b.achieved_var2.to_bits());
            assert_eq!((a.i, a.j), (b.i, b.j));
        }
    }

    #[test]
    fn normalizer_envelope_round_trips() {
        let example = paper::run_example().unwrap();
        let bytes = encode_normalizer(&example.normalizer);
        let back = decode_normalizer(&bytes).unwrap();
        assert_eq!(back, example.normalizer);
    }

    #[test]
    fn config_envelope_round_trips() {
        let config = RbtConfig::uniform(PairwiseSecurityThreshold::uniform(0.3).unwrap())
            .with_pairing(PairingStrategy::Explicit(vec![(0, 2), (1, 0)]))
            .with_thresholds(ThresholdPolicy::PerPair(vec![paper::pst1(), paper::pst2()]))
            .with_solver_grid(1234);
        let bytes = encode_config(&config);
        let back = decode_config(&bytes).unwrap();
        assert_eq!(back, config);
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let key = paper_key();
        let mut bytes = encode_key(&key);
        bytes[0] = b'X';
        assert!(matches!(
            decode_key(&bytes),
            Err(Error::Codec(CodecError::BadMagic { .. }))
        ));
        let mut bytes = encode_key(&key);
        bytes[4] = 0xFF; // version low byte
        assert!(matches!(
            decode_key(&bytes),
            Err(Error::Codec(CodecError::ChecksumMismatch { .. }))
        ));
        // An intact envelope of a *future* version is UnsupportedVersion:
        // rebuild the checksum after bumping the version field.
        let mut bytes = encode_key(&key);
        bytes[4] = 2;
        let body_end = bytes.len() - 4;
        let fixed = crc32(&bytes[..body_end]);
        bytes[body_end..].copy_from_slice(&fixed.to_le_bytes());
        assert!(matches!(
            decode_key(&bytes),
            Err(Error::Codec(CodecError::UnsupportedVersion { found: 2 }))
        ));
    }

    #[test]
    fn wrong_kind_rejected() {
        let example = paper::run_example().unwrap();
        let bytes = encode_normalizer(&example.normalizer);
        assert!(matches!(
            decode_key(&bytes),
            Err(Error::Codec(CodecError::WrongKind { .. }))
        ));
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let bytes = encode_key(&paper_key());
        for cut in 0..bytes.len() {
            match decode_key(&bytes[..cut]) {
                Err(Error::Codec(_)) => {}
                other => panic!("cut {cut}: expected codec error, got {other:?}"),
            }
        }
    }

    #[test]
    fn every_single_byte_flip_is_rejected() {
        let bytes = encode_key(&paper_key());
        for idx in 0..bytes.len() {
            let mut corrupted = bytes.clone();
            corrupted[idx] ^= 0x01;
            assert!(decode_key(&corrupted).is_err(), "flip at byte {idx}");
        }
    }

    #[test]
    fn tampered_step_indices_still_validated() {
        // Build a payload whose step references column 9 of a 3-column key,
        // with a *correct* checksum: decode must fail in key validation.
        let mut w = ByteWriter::new();
        w.put_usize(3);
        w.put_usize(1);
        w.put_usize(9);
        w.put_usize(1);
        w.put_f64(45.0);
        w.put_f64(0.0);
        w.put_f64(0.0);
        let bytes = seal(RecordKind::Key, w.as_bytes());
        assert!(matches!(decode_key(&bytes), Err(Error::KeyMismatch(_))));
    }
}
