//! # rbt-core — the Rotation-Based Transformation method
//!
//! This crate is the reproduction of the primary contribution of
//! Oliveira & Zaïane, *"Achieving Privacy Preservation When Sharing Data For
//! Clustering"* (2004): a spatial data transformation that protects
//! attribute values released for clustering while preserving **all**
//! pairwise distances, so that any distance-based clustering algorithm
//! returns exactly the same clusters on the transformed data (Theorem 2 and
//! Corollary 1 of the paper).
//!
//! The method (Definitions 2 and 3):
//!
//! 1. the data matrix is normalized ([`pipeline`] wires this up per the
//!    paper's Figure 1),
//! 2. attributes are distorted **two at a time** by a plane rotation
//!    (Eq. 1; [`rbt_linalg::Rotation2`]),
//! 3. each pair's rotation angle θ is drawn at random from the **security
//!    range** — the set of angles meeting the *Pairwise-Security Threshold*
//!    `Var(Ai − Ai') ≥ ρ1 ∧ Var(Aj − Aj') ≥ ρ2` ([`security`]),
//! 4. with an odd number of attributes, the last one is paired with an
//!    already-distorted attribute ([`pairing`]).
//!
//! The modules:
//!
//! * [`security`] — closed-form `Var(A − A')(θ)`, the security-range solver,
//!   and the scale-invariant security level `Sec = Var(X−X')/Var(X)`,
//! * [`pairing`] — attribute-pair selection strategies (§4.3 Step 1),
//! * [`method`] — the RBT algorithm itself (§4.3 Step 2) producing a
//!   transformed matrix plus a [`key::TransformationKey`],
//! * [`key`] — the owner-side secret (pairs, angles); serializable,
//!   invertible,
//! * [`pipeline`] — normalize-then-distort (Figure 1) over `rbt-data`
//!   datasets,
//! * [`session`] — streaming release sessions: persisted secrets applied
//!   to arriving out-of-sample batches, with drift accounting,
//! * [`codec`] — the versioned, checksummed key-file codec (binary
//!   envelope; the text form lives on [`session::ReleaseSession`]),
//! * [`isometry`] — Theorem 2 checks: dissimilarity-matrix preservation,
//! * [`paper`] — the constants of the paper's running example (§5.1) and a
//!   function reproducing Tables 2–6 from Table 1.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod codec;
pub mod isometry;
pub mod key;
pub mod method;
pub mod pairing;
pub mod paper;
pub mod pipeline;
pub mod reflection;
pub mod security;
pub mod session;

pub use key::{RotationStep, TransformationKey};
pub use method::{RbtConfig, RbtOutput, RbtTransformer, ThresholdPolicy};
pub use pairing::PairingStrategy;
pub use pipeline::{Pipeline, PipelineOutput};
pub use security::{PairMoments, PairVarianceProfile, PairwiseSecurityThreshold, SecurityRange};
pub use session::{DriftBounds, ReleaseSession, SessionBatch};

use std::fmt;

/// Errors produced by the RBT method.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// An underlying linear-algebra error.
    Linalg(rbt_linalg::Error),
    /// An underlying data-layer error.
    Data(rbt_data::Error),
    /// A parameter was invalid.
    InvalidParameter(String),
    /// The requested pairwise-security threshold is unsatisfiable for a
    /// pair: no rotation angle achieves it.
    EmptySecurityRange {
        /// Index of the first attribute of the pair.
        i: usize,
        /// Index of the second attribute of the pair.
        j: usize,
        /// The threshold that could not be met.
        rho1: f64,
        /// The threshold that could not be met.
        rho2: f64,
        /// Maximum of `Var(Ai − Ai')` over all angles (what *was* achievable).
        max_var1: f64,
        /// Maximum of `Var(Aj − Aj')` over all angles.
        max_var2: f64,
    },
    /// A pairing did not cover every attribute, or was malformed.
    InvalidPairing(String),
    /// A key was applied to data with an incompatible shape.
    KeyMismatch(String),
    /// A serialized key could not be parsed.
    KeyParse {
        /// 1-based line number of the offending entry.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A persisted key file could not be decoded (bad magic, unsupported
    /// version, checksum mismatch, truncation, malformed record, …).
    Codec(codec::CodecError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Linalg(e) => write!(f, "linear algebra error: {e}"),
            Error::Data(e) => write!(f, "data error: {e}"),
            Error::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            Error::EmptySecurityRange {
                i,
                j,
                rho1,
                rho2,
                max_var1,
                max_var2,
            } => write!(
                f,
                "empty security range for pair ({i}, {j}): PST ({rho1}, {rho2}) unsatisfiable \
                 (max achievable variances: {max_var1:.4}, {max_var2:.4})"
            ),
            Error::InvalidPairing(msg) => write!(f, "invalid pairing: {msg}"),
            Error::KeyMismatch(msg) => write!(f, "key mismatch: {msg}"),
            Error::KeyParse { line, message } => {
                write!(f, "key parse error at line {line}: {message}")
            }
            Error::Codec(e) => write!(f, "codec error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Linalg(e) => Some(e),
            Error::Data(e) => Some(e),
            Error::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rbt_linalg::Error> for Error {
    fn from(e: rbt_linalg::Error) -> Self {
        Error::Linalg(e)
    }
}

impl From<rbt_data::Error> for Error {
    fn from(e: rbt_data::Error) -> Self {
        Error::Data(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;
