//! Streaming release sessions — the same secrets applied to arriving data.
//!
//! The paper's Figure 1 pipeline is a one-shot release: fit a normalizer,
//! draw a [`TransformationKey`], rotate, publish. A production data owner
//! instead keeps releasing *new* records under the *same* secrets, the
//! session shape the outsourced-clustering literature assumes (multi-user
//! and multi-server k-means over a stable owner-side transformation). A
//! [`ReleaseSession`] packages exactly that:
//!
//! * it wraps the fitted secrets (key + normalizer) with
//!   [`transform_batch`](ReleaseSession::transform_batch) /
//!   [`invert_batch`](ReleaseSession::invert_batch) for out-of-sample
//!   records — and with the zero-copy
//!   [`transform_batch_into`](ReleaseSession::transform_batch_into) /
//!   [`invert_batch_into`](ReleaseSession::invert_batch_into) variants
//!   that fill a caller-reusable output matrix so a steady-state stream
//!   allocates nothing per batch (plus an opt-in f32 release,
//!   [`transform_batch_f32_into`](ReleaseSession::transform_batch_f32_into)),
//! * batches are processed in bounded row chunks fanned out over the
//!   shared [`rbt_linalg::pool`]; all rotation steps are applied to each
//!   chunk in one fused sweep ([`apply_steps_in_rows`]) — normalization
//!   and every rotation step are row-local and keep their per-row order,
//!   so any chunk size and thread count produces output **bit-identical**
//!   to running the one-shot [`crate::Pipeline`] on the concatenated data
//!   (pinned by the conformance battery),
//! * it counts **drift**: records whose normalized values fall outside the
//!   per-column min–max range observed on the fitting data, the first
//!   sign that the fitted normalization no longer represents the stream,
//! * it persists: [`to_bytes`](ReleaseSession::to_bytes) /
//!   [`to_text`](ReleaseSession::to_text) produce the checksummed key-file
//!   formats of [`crate::codec`], so the secrets can leave the process and
//!   come back for tomorrow's batch.

use crate::codec::{self, CodecError, RecordKind};
use crate::key::TransformationKey;
use crate::method::RbtConfig;
use crate::pipeline::PipelineOutput;
use crate::{Error, Result};
use rbt_data::{Dataset, FittedNormalizer, Normalization};
use rbt_linalg::codec::{crc32, ByteReader, ByteWriter};
use rbt_linalg::matrix::apply_steps_in_rows;
use rbt_linalg::pool::{self, Pool};
use rbt_linalg::stats::VarianceMode;
use rbt_linalg::Matrix;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default maximum number of rows per processing chunk.
pub const DEFAULT_CHUNK_ROWS: usize = 4096;

/// Per-column `[min, max]` of the *normalized* fitting data — the
/// reference against which arriving batches are drift-checked.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftBounds {
    mins: Vec<f64>,
    maxs: Vec<f64>,
}

impl DriftBounds {
    /// Computes the bounds from a normalized fitting matrix, in a single
    /// row-major pass: every column's accumulator folds its elements in
    /// row order with the same `f64::min`/`f64::max` as
    /// [`rbt_linalg::stats::min_max_of`] over
    /// [`Matrix::column_iter`], so the bounds are bit-identical to the
    /// strided per-column scan this replaces — without re-streaming the
    /// matrix once per column.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Linalg`] for a matrix with no rows and
    /// [`Error::InvalidParameter`] for one with no columns.
    pub fn from_normalized(normalized: &Matrix) -> Result<Self> {
        if normalized.cols() == 0 {
            return Err(Error::InvalidParameter(
                "drift bounds need at least one column".into(),
            ));
        }
        if normalized.rows() == 0 {
            return Err(rbt_linalg::Error::Empty.into());
        }
        let mut mins = vec![f64::INFINITY; normalized.cols()];
        let mut maxs = vec![f64::NEG_INFINITY; normalized.cols()];
        for row in normalized.row_iter() {
            for ((lo, hi), &x) in mins.iter_mut().zip(maxs.iter_mut()).zip(row) {
                *lo = lo.min(x);
                *hi = hi.max(x);
            }
        }
        Ok(DriftBounds { mins, maxs })
    }

    /// Builds bounds from explicit per-column minima and maxima.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for empty or mismatched vectors
    /// or any `min > max`.
    pub fn new(mins: Vec<f64>, maxs: Vec<f64>) -> Result<Self> {
        if mins.is_empty() || mins.len() != maxs.len() {
            return Err(Error::InvalidParameter(format!(
                "drift bounds need matching non-empty columns ({} mins, {} maxs)",
                mins.len(),
                maxs.len()
            )));
        }
        // NaN bounds must be rejected too, hence the explicit partial_cmp
        // (plain `lo <= hi` would let them through when negated).
        let ordered = |lo: &f64, hi: &f64| {
            matches!(
                lo.partial_cmp(hi),
                Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
            )
        };
        if mins.iter().zip(&maxs).any(|(lo, hi)| !ordered(lo, hi)) {
            return Err(Error::InvalidParameter(
                "drift bounds need min <= max per column".into(),
            ));
        }
        Ok(DriftBounds { mins, maxs })
    }

    /// Number of columns covered.
    pub fn n_cols(&self) -> usize {
        self.mins.len()
    }

    /// Per-column minima.
    pub fn mins(&self) -> &[f64] {
        &self.mins
    }

    /// Per-column maxima.
    pub fn maxs(&self) -> &[f64] {
        &self.maxs
    }

    /// Whether every value of a normalized row lies inside its column's
    /// fitted `[min, max]`. NaNs count as out of range.
    pub fn row_in_range(&self, row: &[f64]) -> bool {
        row.len() == self.mins.len()
            && row
                .iter()
                .zip(self.mins.iter().zip(&self.maxs))
                .all(|(v, (lo, hi))| *v >= *lo && *v <= *hi)
    }
}

/// One transformed batch: the releasable dataset plus drift accounting.
#[derive(Debug, Clone)]
pub struct SessionBatch {
    /// The released data: normalized with the session's fitted parameters,
    /// rotated with its key, optionally ID-stripped.
    pub released: Dataset,
    /// How many of this batch's records had at least one normalized value
    /// outside the fitted min–max range (0 when the session carries no
    /// [`DriftBounds`]).
    pub out_of_range_rows: usize,
}

/// A long-lived release session: fitted secrets plus batch machinery.
#[derive(Debug, Clone)]
pub struct ReleaseSession {
    key: TransformationKey,
    normalizer: FittedNormalizer,
    config: Option<RbtConfig>,
    drift: Option<DriftBounds>,
    suppress_ids: bool,
    chunk_rows: usize,
    threads: usize,
    records_seen: u64,
    records_out_of_range: u64,
}

impl ReleaseSession {
    /// Creates a session from a key and the normalizer it was fitted with.
    ///
    /// # Errors
    ///
    /// Returns [`Error::KeyMismatch`] when the two disagree on the number
    /// of attributes.
    pub fn new(key: TransformationKey, normalizer: FittedNormalizer) -> Result<Self> {
        if key.n_attributes() != normalizer.n_cols() {
            return Err(Error::KeyMismatch(format!(
                "key covers {} attributes, normalizer {} columns",
                key.n_attributes(),
                normalizer.n_cols()
            )));
        }
        Ok(ReleaseSession {
            key,
            normalizer,
            config: None,
            drift: None,
            suppress_ids: true,
            chunk_rows: DEFAULT_CHUNK_ROWS,
            threads: pool::default_threads(),
            records_seen: 0,
            records_out_of_range: 0,
        })
    }

    /// Builds a session straight from a [`crate::Pipeline::run`] output,
    /// deriving [`DriftBounds`] from the normalized fitting data.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches (cannot occur for a genuine pipeline
    /// output).
    pub fn from_pipeline_output(out: &PipelineOutput) -> Result<Self> {
        ReleaseSession::new(out.key.clone(), out.normalizer.clone())?
            .with_drift_bounds(DriftBounds::from_normalized(out.normalized.matrix())?)
    }

    /// Attaches the [`RbtConfig`] the key was drawn under (metadata for
    /// audits; not needed to transform).
    pub fn with_config(mut self, config: RbtConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Attaches drift bounds.
    ///
    /// # Errors
    ///
    /// Returns [`Error::KeyMismatch`] when the column count disagrees with
    /// the key.
    pub fn with_drift_bounds(mut self, bounds: DriftBounds) -> Result<Self> {
        if bounds.n_cols() != self.key.n_attributes() {
            return Err(Error::KeyMismatch(format!(
                "drift bounds cover {} columns, key {} attributes",
                bounds.n_cols(),
                self.key.n_attributes()
            )));
        }
        self.drift = Some(bounds);
        Ok(self)
    }

    /// Controls §5.3 Step 2 on released batches — whether object IDs are
    /// stripped (`true` by default).
    pub fn with_id_suppression(mut self, suppress: bool) -> Self {
        self.suppress_ids = suppress;
        self
    }

    /// Sets the maximum rows per processing chunk (clamped to ≥ 1).
    /// Chunking bounds per-thread working sets; it never changes output.
    pub fn with_chunk_rows(mut self, chunk_rows: usize) -> Self {
        self.chunk_rows = chunk_rows.max(1);
        self
    }

    /// Sets the thread budget for batch processing (clamped to ≥ 1;
    /// defaults to [`pool::default_threads`]).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The session's transformation key.
    pub fn key(&self) -> &TransformationKey {
        &self.key
    }

    /// The session's fitted normalizer.
    pub fn normalizer(&self) -> &FittedNormalizer {
        &self.normalizer
    }

    /// The config metadata, when attached.
    pub fn config(&self) -> Option<&RbtConfig> {
        self.config.as_ref()
    }

    /// The drift bounds, when attached.
    pub fn drift_bounds(&self) -> Option<&DriftBounds> {
        self.drift.as_ref()
    }

    /// Whether released batches are ID-stripped.
    pub fn suppresses_ids(&self) -> bool {
        self.suppress_ids
    }

    /// Maximum rows per processing chunk.
    pub fn chunk_rows(&self) -> usize {
        self.chunk_rows
    }

    /// Thread budget for batch processing.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Total records transformed over the session's lifetime (counters are
    /// runtime state — they reset when a session is decoded from a file).
    pub fn records_seen(&self) -> u64 {
        self.records_seen
    }

    /// Total records whose normalized values fell outside the fitted
    /// min–max range.
    pub fn records_out_of_range(&self) -> u64 {
        self.records_out_of_range
    }

    /// Transforms a batch of out-of-sample records: normalize with the
    /// *fitted* parameters, apply the key's rotations, optionally strip
    /// IDs. Rows are processed in chunks of at most
    /// [`chunk_rows`](Self::chunk_rows) rows across
    /// [`threads`](Self::threads) pool threads; output is bit-identical to
    /// the one-shot pipeline for every chunk/thread configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::KeyMismatch`] when the batch's column count
    /// disagrees with the session.
    pub fn transform_batch(&mut self, batch: &Dataset) -> Result<SessionBatch> {
        let mut matrix = Matrix::zeros(0, 0);
        let out_of_range_rows = self.transform_batch_into(batch, &mut matrix)?;
        // Build the released dataset around the transformed matrix directly
        // — cloning the input dataset just to replace its matrix would copy
        // the batch a second time on the streaming hot path.
        let mut released = Dataset::new(matrix, batch.columns().to_vec()).map_err(Error::Data)?;
        if !self.suppress_ids {
            if let Some(ids) = batch.ids() {
                released = released.with_ids(ids.to_vec()).map_err(Error::Data)?;
            }
        }
        Ok(SessionBatch {
            released,
            out_of_range_rows,
        })
    }

    /// Owner-side inverse of [`transform_batch`](Self::transform_batch):
    /// undoes the rotations and the normalization of a released batch,
    /// returning raw-scale values (IDs, if present, are kept).
    ///
    /// # Errors
    ///
    /// Returns [`Error::KeyMismatch`] when the batch's column count
    /// disagrees with the session.
    pub fn invert_batch(&self, released: &Dataset) -> Result<Dataset> {
        let mut matrix = Matrix::zeros(0, 0);
        self.invert_batch_into(released, &mut matrix)?;
        let mut recovered =
            Dataset::new(matrix, released.columns().to_vec()).map_err(Error::Data)?;
        if let Some(ids) = released.ids() {
            recovered = recovered.with_ids(ids.to_vec()).map_err(Error::Data)?;
        }
        Ok(recovered)
    }

    /// Zero-copy variant of [`transform_batch`](Self::transform_batch):
    /// writes the released matrix into `out`, reusing its backing buffer
    /// when it is already large enough, and returns the batch's
    /// out-of-range row count. A steady-state stream that feeds the same
    /// `out` back in allocates **nothing** per batch. Values are
    /// bit-identical to `transform_batch(batch).released.matrix()`; the
    /// session counters are updated the same way.
    ///
    /// Column metadata and IDs are the caller's concern here — this is
    /// the raw matrix path for high-throughput streaming.
    ///
    /// # Errors
    ///
    /// Returns [`Error::KeyMismatch`] when the batch's column count
    /// disagrees with the session.
    pub fn transform_batch_into(&mut self, batch: &Dataset, out: &mut Matrix) -> Result<usize> {
        self.check_cols(batch.matrix())?;
        out.copy_from(batch.matrix());
        let out_of_range_rows = self.forward_in_place(out);
        self.records_seen += batch.n_rows() as u64;
        self.records_out_of_range += out_of_range_rows as u64;
        Ok(out_of_range_rows)
    }

    /// Zero-copy variant of [`invert_batch`](Self::invert_batch): writes
    /// the recovered raw-scale matrix into `out`, reusing its backing
    /// buffer when it is already large enough. Values are bit-identical
    /// to `invert_batch(released)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::KeyMismatch`] when the batch's column count
    /// disagrees with the session.
    pub fn invert_batch_into(&self, released: &Dataset, out: &mut Matrix) -> Result<()> {
        self.check_cols(released.matrix())?;
        out.copy_from(released.matrix());
        self.inverse_in_place(out);
        Ok(())
    }

    /// Single-precision release: runs the exact f64 forward transform of
    /// [`transform_batch_into`](Self::transform_batch_into) in `scratch`,
    /// then quantizes into `out` (cleared and refilled; row-major, same
    /// shape as the batch). Returns the out-of-range row count and
    /// updates the session counters.
    ///
    /// # Tolerance contract
    ///
    /// Every element of `out` is **bitwise** equal to the corresponding
    /// f64 release value converted with `as f32` (IEEE 754
    /// round-to-nearest-even). The relative quantization error versus the
    /// f64 release is therefore at most 2⁻²⁴ (≈ 6.0 × 10⁻⁸) per value,
    /// plus flush-to-minimum effects below `f32::MIN_POSITIVE` — far
    /// inside the distance-preservation slack of the transform itself.
    /// Owner-side inversion should use the f64 path; the f32 release
    /// exists to halve the wire/storage footprint for receivers.
    ///
    /// # Errors
    ///
    /// Returns [`Error::KeyMismatch`] when the batch's column count
    /// disagrees with the session.
    pub fn transform_batch_f32_into(
        &mut self,
        batch: &Dataset,
        scratch: &mut Matrix,
        out: &mut Vec<f32>,
    ) -> Result<usize> {
        let out_of_range_rows = self.transform_batch_into(batch, scratch)?;
        out.clear();
        out.extend(scratch.as_slice().iter().map(|&x| x as f32));
        Ok(out_of_range_rows)
    }

    /// Forward transform of `out` in place (normalize → drift count →
    /// fused rotation sweep); assumes the column count was checked.
    /// Returns the out-of-range row count.
    fn forward_in_place(&self, out: &mut Matrix) -> usize {
        let n_cols = out.cols();
        if out.rows() == 0 {
            return 0;
        }
        // The key's own (cos, sin) per step — the same values the one-shot
        // paths use, applied as one fused per-row sweep.
        let steps = self.key.forward_sweep();
        let bounds = self.element_bounds(out.rows(), n_cols);
        let out_of_range = AtomicUsize::new(0);
        let normalizer = &self.normalizer;
        let drift = self.drift.as_ref();
        Pool::new(self.threads).for_each_chunk_mut(out.as_mut_slice(), &bounds, |_, _, chunk| {
            normalizer
                .transform_rows_in_place(chunk)
                .expect("chunk boundaries are whole rows of the checked width");
            if let Some(b) = drift {
                let n = chunk
                    .chunks_exact(n_cols)
                    .filter(|row| !b.row_in_range(row))
                    .count();
                if n > 0 {
                    out_of_range.fetch_add(n, Ordering::Relaxed);
                }
            }
            apply_steps_in_rows(chunk, n_cols, &steps);
        });
        out_of_range.load(Ordering::Relaxed)
    }

    /// Inverse transform of `out` in place (fused inverse sweep →
    /// denormalize); assumes the column count was checked.
    fn inverse_in_place(&self, out: &mut Matrix) {
        let n_cols = out.cols();
        if out.rows() == 0 {
            return;
        }
        // Inverse rotations in reverse order — the same (cos, sin) the
        // whole-matrix `TransformationKey::invert` uses.
        let steps = self.key.inverse_sweep();
        let bounds = self.element_bounds(out.rows(), n_cols);
        let normalizer = &self.normalizer;
        Pool::new(self.threads).for_each_chunk_mut(out.as_mut_slice(), &bounds, |_, _, chunk| {
            apply_steps_in_rows(chunk, n_cols, &steps);
            normalizer
                .invert_rows_in_place(chunk)
                .expect("chunk boundaries are whole rows of the checked width");
        });
    }

    /// Row-aligned element boundaries with at most
    /// [`chunk_rows`](Self::chunk_rows) rows per chunk.
    fn element_bounds(&self, n_rows: usize, n_cols: usize) -> Vec<usize> {
        let n_chunks = n_rows.div_ceil(self.chunk_rows);
        pool::even_chunks(n_rows, n_chunks)
            .into_iter()
            .map(|r| r * n_cols)
            .collect()
    }

    fn check_cols(&self, m: &Matrix) -> Result<()> {
        if m.cols() != self.key.n_attributes() {
            return Err(Error::KeyMismatch(format!(
                "session fitted for {} attributes, batch has {}",
                self.key.n_attributes(),
                m.cols()
            )));
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Persistence
    // ------------------------------------------------------------------

    /// Serializes the session (secrets + metadata, not runtime counters or
    /// chunk/thread knobs) into the sealed binary envelope of
    /// [`crate::codec`].
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        codec::write_key_record(&mut w, &self.key);
        self.normalizer.encode_into(&mut w);
        w.put_bool(self.config.is_some());
        if let Some(config) = &self.config {
            codec::write_config_record(&mut w, config);
        }
        w.put_bool(self.drift.is_some());
        if let Some(drift) = &self.drift {
            w.put_usize(drift.n_cols());
            for (lo, hi) in drift.mins.iter().zip(&drift.maxs) {
                w.put_f64(*lo);
                w.put_f64(*hi);
            }
        }
        w.put_bool(self.suppress_ids);
        codec::seal(RecordKind::Session, w.as_bytes())
    }

    /// Decodes the envelope written by [`to_bytes`](Self::to_bytes).
    ///
    /// # Errors
    ///
    /// [`Error::Codec`] for framing/corruption problems; key/normalizer
    /// validation errors for inconsistent (but checksummed) contents.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let payload = codec::open(bytes, RecordKind::Session)?;
        let mut r = ByteReader::new(payload);
        let key = codec::read_key_record(&mut r)?;
        let normalizer = FittedNormalizer::decode_from(&mut r).map_err(CodecError::from)?;
        let config = if r.take_bool().map_err(CodecError::from)? {
            Some(codec::read_config_record(&mut r)?)
        } else {
            None
        };
        let drift = if r.take_bool().map_err(CodecError::from)? {
            let cols = r.take_usize().map_err(CodecError::from)?;
            codec::check_count(&r, cols, 16)?;
            let mut mins = Vec::with_capacity(cols);
            let mut maxs = Vec::with_capacity(cols);
            for _ in 0..cols {
                mins.push(r.take_f64().map_err(CodecError::from)?);
                maxs.push(r.take_f64().map_err(CodecError::from)?);
            }
            Some(DriftBounds::new(mins, maxs)?)
        } else {
            None
        };
        let suppress_ids = r.take_bool().map_err(CodecError::from)?;
        r.expect_end().map_err(CodecError::from)?;

        let mut session = ReleaseSession::new(key, normalizer)?;
        if let Some(config) = config {
            session = session.with_config(config);
        }
        if let Some(drift) = drift {
            session = session.with_drift_bounds(drift)?;
        }
        Ok(session.with_id_suppression(suppress_ids))
    }

    /// Serializes the session to the human-readable, checksummed text
    /// form:
    ///
    /// ```text
    /// rbt-session v1
    /// key n=3 steps=2
    /// rotate 0 2 3.12470000000000027e2 … …
    /// normalizer method=zscore-sample
    /// param zscore 4.85999999999999943e1 1.78269458778902041e1
    /// …
    /// config variance=sample grid=3600
    /// pairing explicit
    /// pair 0 2
    /// …
    /// thresholds per-pair
    /// pst 2.99999999999999989e-1 5.50000000000000044e-1
    /// …
    /// drift cols=3
    /// range -1.26620297443029371e0 1.46215096606798721e0
    /// …
    /// suppress-ids true
    /// checksum 9f1c2ab3
    /// ```
    ///
    /// Floats print with 17 fractional digits, which round-trips every
    /// finite `f64` exactly; the final line is the CRC-32 (hex) of all
    /// preceding non-empty lines joined with `\n`, so hand edits are
    /// detected just like bit flips in the binary form.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Codec`] if the normalizer's method has no stable
    /// text tag (cannot occur for the methods this workspace ships).
    pub fn to_text(&self) -> Result<String> {
        let mut body = String::from("rbt-session v1\n");
        let _ = writeln!(
            body,
            "key n={} steps={}",
            self.key.n_attributes(),
            self.key.steps().len()
        );
        for s in self.key.steps() {
            let _ = writeln!(
                body,
                "rotate {} {} {:.17e} {:.17e} {:.17e}",
                s.i, s.j, s.theta_degrees, s.achieved_var1, s.achieved_var2
            );
        }
        let _ = writeln!(
            body,
            "normalizer method={}",
            method_tag(self.normalizer.method())?
        );
        for line in self.normalizer.to_text().lines().skip(1) {
            let _ = writeln!(body, "param {line}");
        }
        if let Some(config) = &self.config {
            let variance = match config.variance_mode {
                VarianceMode::Population => "population",
                VarianceMode::Sample => "sample",
            };
            let _ = writeln!(
                body,
                "config variance={variance} grid={}",
                config.solver_grid
            );
            match &config.pairing {
                crate::pairing::PairingStrategy::Sequential => {
                    let _ = writeln!(body, "pairing sequential");
                }
                crate::pairing::PairingStrategy::RandomShuffle => {
                    let _ = writeln!(body, "pairing random-shuffle");
                }
                crate::pairing::PairingStrategy::Explicit(pairs) => {
                    let _ = writeln!(body, "pairing explicit");
                    for &(i, j) in pairs {
                        let _ = writeln!(body, "pair {i} {j}");
                    }
                }
            }
            match &config.thresholds {
                crate::method::ThresholdPolicy::Uniform(pst) => {
                    let _ = writeln!(body, "thresholds uniform");
                    let _ = writeln!(body, "pst {:.17e} {:.17e}", pst.rho1, pst.rho2);
                }
                crate::method::ThresholdPolicy::PerPair(list) => {
                    let _ = writeln!(body, "thresholds per-pair");
                    for pst in list {
                        let _ = writeln!(body, "pst {:.17e} {:.17e}", pst.rho1, pst.rho2);
                    }
                }
            }
        }
        if let Some(drift) = &self.drift {
            let _ = writeln!(body, "drift cols={}", drift.n_cols());
            for (lo, hi) in drift.mins.iter().zip(&drift.maxs) {
                let _ = writeln!(body, "range {lo:.17e} {hi:.17e}");
            }
        }
        let _ = writeln!(body, "suppress-ids {}", self.suppress_ids);
        let checksum = crc32(text_checksum_content(&body).as_bytes());
        let _ = writeln!(body, "checksum {checksum:08x}");
        Ok(body)
    }

    /// Parses the form produced by [`to_text`](Self::to_text), verifying
    /// the trailing checksum first.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Codec`] with [`CodecError::Text`] /
    /// [`CodecError::ChecksumMismatch`] / [`CodecError::UnsupportedVersion`]
    /// for malformed, tampered, or future-version input.
    pub fn from_text(text: &str) -> Result<Self> {
        let lines: Vec<&str> = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .collect();
        let text_err =
            |line: usize, message: String| -> Error { CodecError::Text { line, message }.into() };
        if lines.len() < 2 {
            return Err(text_err(1, "input too short for a session".into()));
        }
        // Checksum line first, so tampering reports as corruption rather
        // than a confusing downstream parse error.
        let last = lines.len() - 1;
        let stored = lines[last]
            .strip_prefix("checksum ")
            .and_then(|h| u32::from_str_radix(h.trim(), 16).ok())
            .ok_or_else(|| {
                text_err(
                    last + 1,
                    format!("expected checksum line, found {:?}", lines[last]),
                )
            })?;
        let computed = crc32(lines[..last].join("\n").as_bytes());
        if stored != computed {
            return Err(CodecError::ChecksumMismatch { stored, computed }.into());
        }

        let mut cursor = Cursor {
            lines: &lines[..last],
            pos: 0,
        };
        let header = cursor.next_line()?;
        if header != "rbt-session v1" {
            if let Some(v) = header
                .strip_prefix("rbt-session v")
                .and_then(|rest| rest.parse::<u16>().ok())
            {
                return Err(CodecError::UnsupportedVersion { found: v }.into());
            }
            return Err(text_err(1, format!("bad header {header:?}")));
        }

        // key n=<n> steps=<k>
        let (line_no, fields) = cursor.tagged_fields("key", 2)?;
        let n_attributes = parse_kv(&fields[0], "n", line_no)?;
        let n_steps: usize = parse_kv(&fields[1], "steps", line_no)?;
        let mut steps = Vec::with_capacity(n_steps.min(1024));
        for _ in 0..n_steps {
            let (line_no, f) = cursor.tagged_fields("rotate", 5)?;
            steps.push(crate::key::RotationStep {
                i: parse_field(&f[0], "i", line_no)?,
                j: parse_field(&f[1], "j", line_no)?,
                theta_degrees: parse_field(&f[2], "theta", line_no)?,
                achieved_var1: parse_field(&f[3], "var1", line_no)?,
                achieved_var2: parse_field(&f[4], "var2", line_no)?,
            });
        }
        let key = TransformationKey::new(steps, n_attributes)?;

        // normalizer method=<tag> + param lines
        let (line_no, fields) = cursor.tagged_fields("normalizer", 1)?;
        let tag: String = parse_kv(&fields[0], "method", line_no)?;
        let mut param_lines: Vec<&str> = Vec::new();
        while let Some(line) = cursor.peek() {
            match line.strip_prefix("param ") {
                Some(rest) => {
                    param_lines.push(rest);
                    cursor.pos += 1;
                }
                None => break,
            }
        }
        // Rebuild the normalizer's own text form, method tag included, so
        // its parser owns tag validation and method restoration.
        let normalizer_text = format!(
            "rbt-normalizer v1 cols={} method={tag}\n{}",
            param_lines.len(),
            param_lines.join("\n")
        );
        let normalizer = FittedNormalizer::from_text(&normalizer_text)
            .map_err(|e| text_err(line_no, format!("normalizer section: {e}")))?;

        // Optional config section.
        let mut config = None;
        if cursor.peek().is_some_and(|l| l.starts_with("config ")) {
            let (line_no, fields) = cursor.tagged_fields("config", 2)?;
            let variance = match parse_kv::<String>(&fields[0], "variance", line_no)?.as_str() {
                "population" => VarianceMode::Population,
                "sample" => VarianceMode::Sample,
                other => {
                    return Err(text_err(
                        line_no,
                        format!("unknown variance mode {other:?}"),
                    ))
                }
            };
            let grid: usize = parse_kv(&fields[1], "grid", line_no)?;
            let (line_no, fields) = cursor.tagged_fields("pairing", 1)?;
            let pairing = match fields[0].as_str() {
                "sequential" => crate::pairing::PairingStrategy::Sequential,
                "random-shuffle" => crate::pairing::PairingStrategy::RandomShuffle,
                "explicit" => {
                    let mut pairs = Vec::new();
                    while cursor.peek().is_some_and(|l| l.starts_with("pair ")) {
                        let (line_no, f) = cursor.tagged_fields("pair", 2)?;
                        pairs.push((
                            parse_field(&f[0], "i", line_no)?,
                            parse_field(&f[1], "j", line_no)?,
                        ));
                    }
                    crate::pairing::PairingStrategy::Explicit(pairs)
                }
                other => return Err(text_err(line_no, format!("unknown pairing {other:?}"))),
            };
            let (line_no, fields) = cursor.tagged_fields("thresholds", 1)?;
            let per_pair = match fields[0].as_str() {
                "uniform" => false,
                "per-pair" => true,
                other => return Err(text_err(line_no, format!("unknown thresholds {other:?}"))),
            };
            let mut psts = Vec::new();
            while cursor.peek().is_some_and(|l| l.starts_with("pst ")) {
                let (line_no, f) = cursor.tagged_fields("pst", 2)?;
                psts.push(crate::security::PairwiseSecurityThreshold::new(
                    parse_field(&f[0], "rho1", line_no)?,
                    parse_field(&f[1], "rho2", line_no)?,
                )?);
            }
            let thresholds = if per_pair {
                crate::method::ThresholdPolicy::PerPair(psts)
            } else {
                let [pst] = psts[..] else {
                    return Err(text_err(
                        line_no,
                        format!(
                            "uniform thresholds need exactly one pst line, found {}",
                            psts.len()
                        ),
                    ));
                };
                crate::method::ThresholdPolicy::Uniform(pst)
            };
            config = Some(RbtConfig {
                pairing,
                thresholds,
                variance_mode: variance,
                solver_grid: grid,
            });
        }

        // Optional drift section.
        let mut drift = None;
        if cursor.peek().is_some_and(|l| l.starts_with("drift ")) {
            let (line_no, fields) = cursor.tagged_fields("drift", 1)?;
            let cols: usize = parse_kv(&fields[0], "cols", line_no)?;
            let mut mins = Vec::with_capacity(cols.min(1024));
            let mut maxs = Vec::with_capacity(cols.min(1024));
            for _ in 0..cols {
                let (line_no, f) = cursor.tagged_fields("range", 2)?;
                mins.push(parse_field(&f[0], "min", line_no)?);
                maxs.push(parse_field(&f[1], "max", line_no)?);
            }
            drift = Some(DriftBounds::new(mins, maxs)?);
        }

        let (line_no, fields) = cursor.tagged_fields("suppress-ids", 1)?;
        let suppress_ids = match fields[0].as_str() {
            "true" => true,
            "false" => false,
            other => {
                return Err(text_err(
                    line_no,
                    format!("bad suppress-ids value {other:?}"),
                ))
            }
        };
        if let Some(extra) = cursor.peek() {
            return Err(text_err(
                cursor.pos + 1,
                format!("unexpected trailing line {extra:?}"),
            ));
        }

        let mut session = ReleaseSession::new(key, normalizer)?;
        if let Some(config) = config {
            session = session.with_config(config);
        }
        if let Some(drift) = drift {
            session = session.with_drift_bounds(drift)?;
        }
        Ok(session.with_id_suppression(suppress_ids))
    }

    /// Decodes a key file in either format: binary envelopes are sniffed
    /// by their `RBTS` magic, anything else is parsed as text.
    ///
    /// # Errors
    ///
    /// As [`from_bytes`](Self::from_bytes) / [`from_text`](Self::from_text);
    /// non-UTF-8 input without the magic reports [`CodecError::BadMagic`].
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        if bytes.starts_with(&codec::MAGIC) {
            return ReleaseSession::from_bytes(bytes);
        }
        match std::str::from_utf8(bytes) {
            Ok(text) => ReleaseSession::from_text(text),
            Err(_) => Err(CodecError::bad_magic(bytes).into()),
        }
    }
}

/// The exact byte content the text checksum covers: every non-empty
/// trimmed line so far, joined with `\n` (whitespace-only edits therefore
/// do not invalidate a file, semantic edits do).
fn text_checksum_content(body: &str) -> String {
    body.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .collect::<Vec<_>>()
        .join("\n")
}

/// Maps a normalization method to its stable text tag (shared with the
/// normalizer's own text format via [`Normalization::text_tag`]).
fn method_tag(method: Normalization) -> Result<&'static str> {
    method.text_tag().ok_or_else(|| {
        CodecError::Invalid {
            message: format!("normalization method {method:?} has no text tag"),
        }
        .into()
    })
}

/// Line cursor over the verified (pre-checksum) text lines.
struct Cursor<'a> {
    lines: &'a [&'a str],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<&'a str> {
        self.lines.get(self.pos).copied()
    }

    fn next_line(&mut self) -> Result<&'a str> {
        let line = self.peek().ok_or(CodecError::Text {
            line: self.pos + 1,
            message: "unexpected end of input".into(),
        })?;
        self.pos += 1;
        Ok(line)
    }

    /// Consumes a line expected to start with `tag` followed by exactly
    /// `n_fields` whitespace-separated fields; returns (1-based line
    /// number, fields).
    fn tagged_fields(&mut self, tag: &str, n_fields: usize) -> Result<(usize, Vec<String>)> {
        let line_no = self.pos + 1;
        let line = self.next_line()?;
        let mut parts = line.split_whitespace();
        if parts.next() != Some(tag) {
            return Err(CodecError::Text {
                line: line_no,
                message: format!("expected {tag:?} line, found {line:?}"),
            }
            .into());
        }
        let fields: Vec<String> = parts.map(str::to_string).collect();
        if fields.len() != n_fields {
            return Err(CodecError::Text {
                line: line_no,
                message: format!(
                    "{tag:?} line needs {n_fields} fields, found {}",
                    fields.len()
                ),
            }
            .into());
        }
        Ok((line_no, fields))
    }
}

/// Parses a `key=value` field.
fn parse_kv<T: std::str::FromStr>(field: &str, name: &str, line: usize) -> Result<T> {
    field
        .strip_prefix(name)
        .and_then(|rest| rest.strip_prefix('='))
        .and_then(|v| v.parse::<T>().ok())
        .ok_or_else(|| {
            CodecError::Text {
                line,
                message: format!("expected {name}=<value>, found {field:?}"),
            }
            .into()
        })
}

/// Parses a bare field.
fn parse_field<T: std::str::FromStr>(field: &str, name: &str, line: usize) -> Result<T> {
    field.parse::<T>().map_err(|_| {
        CodecError::Text {
            line,
            message: format!("bad {name}: {field:?}"),
        }
        .into()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::{RbtConfig, ThresholdPolicy};
    use crate::pairing::PairingStrategy;
    use crate::pipeline::Pipeline;
    use crate::security::PairwiseSecurityThreshold;
    use rand::SeedableRng;
    use rbt_data::datasets;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn pipeline() -> Pipeline {
        Pipeline::new(RbtConfig::uniform(
            PairwiseSecurityThreshold::uniform(0.25).unwrap(),
        ))
    }

    fn fitted_session() -> (ReleaseSession, crate::pipeline::PipelineOutput) {
        let raw = datasets::arrhythmia_sample();
        let out = pipeline().run(&raw, &mut rng(7)).unwrap();
        let session = ReleaseSession::from_pipeline_output(&out).unwrap();
        (session, out)
    }

    #[test]
    fn transform_batch_matches_one_shot_release_bitwise() {
        let (mut session, out) = fitted_session();
        let raw = datasets::arrhythmia_sample();
        for chunk_rows in [1, 2, 5, 100] {
            for threads in [1, 3] {
                let mut s = session
                    .clone()
                    .with_chunk_rows(chunk_rows)
                    .with_threads(threads);
                let batch = s.transform_batch(&raw).unwrap();
                assert!(
                    batch
                        .released
                        .matrix()
                        .approx_eq(out.released.matrix(), 0.0),
                    "chunk_rows={chunk_rows} threads={threads}"
                );
                assert!(batch.released.ids().is_none());
            }
        }
        // And drift is zero on the fitting data itself.
        let batch = session.transform_batch(&raw).unwrap();
        assert_eq!(batch.out_of_range_rows, 0);
        assert_eq!(session.records_seen(), 5);
        assert_eq!(session.records_out_of_range(), 0);
    }

    #[test]
    fn invert_batch_recovers_raw_values() {
        let (mut session, _) = fitted_session();
        let raw = datasets::arrhythmia_sample();
        let batch = session.transform_batch(&raw).unwrap();
        let recovered = session.invert_batch(&batch.released).unwrap();
        assert!(recovered.matrix().approx_eq(raw.matrix(), 1e-9));
    }

    #[test]
    fn into_variants_match_allocating_paths_bitwise() {
        let (session, _) = fitted_session();
        let raw = datasets::arrhythmia_sample();
        for chunk_rows in [1, 2, 5, 100] {
            for threads in [1, 3] {
                let mut a = session
                    .clone()
                    .with_chunk_rows(chunk_rows)
                    .with_threads(threads);
                let mut b = a.clone();
                let batch = a.transform_batch(&raw).unwrap();
                let mut out = Matrix::zeros(0, 0);
                let oor = b.transform_batch_into(&raw, &mut out).unwrap();
                assert!(
                    out.approx_eq(batch.released.matrix(), 0.0),
                    "chunk_rows={chunk_rows} threads={threads}"
                );
                assert_eq!(oor, batch.out_of_range_rows);
                assert_eq!(a.records_seen(), b.records_seen());
                assert_eq!(a.records_out_of_range(), b.records_out_of_range());

                let recovered = a.invert_batch(&batch.released).unwrap();
                let mut inv = Matrix::zeros(0, 0);
                b.invert_batch_into(&batch.released, &mut inv).unwrap();
                assert!(inv.approx_eq(recovered.matrix(), 0.0));
            }
        }
    }

    #[test]
    fn into_buffers_are_reused_across_batches() {
        let (mut session, _) = fitted_session();
        let raw = datasets::arrhythmia_sample();
        let mut out = Matrix::zeros(0, 0);
        session.transform_batch_into(&raw, &mut out).unwrap();
        let ptr = out.as_slice().as_ptr();
        for _ in 0..3 {
            session.transform_batch_into(&raw, &mut out).unwrap();
            assert_eq!(
                out.as_slice().as_ptr(),
                ptr,
                "same-shape batches must reuse the output allocation"
            );
        }
    }

    #[test]
    fn f32_release_is_the_f64_release_rounded_once() {
        let (session, _) = fitted_session();
        let raw = datasets::arrhythmia_sample();
        let mut a = session.clone();
        let f64_batch = a.transform_batch(&raw).unwrap();
        let mut b = session;
        let mut scratch = Matrix::zeros(0, 0);
        let mut out32 = Vec::new();
        let oor = b
            .transform_batch_f32_into(&raw, &mut scratch, &mut out32)
            .unwrap();
        assert_eq!(oor, f64_batch.out_of_range_rows);
        assert_eq!(out32.len(), raw.n_rows() * raw.n_cols());
        for (&q, &x) in out32.iter().zip(f64_batch.released.matrix().as_slice()) {
            assert_eq!(q.to_bits(), (x as f32).to_bits());
        }
        assert_eq!(b.records_seen(), a.records_seen());
    }

    #[test]
    fn degenerate_columns_never_signal_drift() {
        // A constant column normalizes to a single value v, so the fitted
        // bounds collapse to [v, v]. Rows carrying exactly v must stay in
        // range — a degenerate column can never flag drift on its own.
        let normalized = Matrix::from_rows(&[&[0.0, -1.0], &[0.0, 0.5], &[0.0, 1.0]]).unwrap();
        let bounds = DriftBounds::from_normalized(&normalized).unwrap();
        for row in normalized.row_iter() {
            assert!(bounds.row_in_range(row));
        }
        // Drift in the non-degenerate column is still caught, and any
        // deviation in the degenerate one is too.
        assert!(!bounds.row_in_range(&[0.0, 2.0]));
        assert!(!bounds.row_in_range(&[1e-300, 0.0]));
    }

    #[test]
    fn out_of_sample_rows_are_flagged_as_drift() {
        let (mut session, _) = fitted_session();
        // A record far outside the fitted value ranges.
        let outlier = Dataset::new(
            Matrix::from_rows(&[&[1e4, 1e4, 1e4], &[75.0, 80.0, 63.0]]).unwrap(),
            datasets::ARRHYTHMIA_COLUMNS
                .iter()
                .map(|s| s.to_string())
                .collect(),
        )
        .unwrap();
        let batch = session.transform_batch(&outlier).unwrap();
        assert_eq!(batch.out_of_range_rows, 1);
        assert_eq!(session.records_out_of_range(), 1);
        assert_eq!(session.records_seen(), 2);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let (mut session, _) = fitted_session();
        let empty = Dataset::from_matrix(Matrix::zeros(0, 3));
        let batch = session.transform_batch(&empty).unwrap();
        assert_eq!(batch.released.n_rows(), 0);
        assert_eq!(batch.out_of_range_rows, 0);
        assert_eq!(session.records_seen(), 0);
    }

    #[test]
    fn shape_mismatch_is_typed() {
        let (mut session, _) = fitted_session();
        let wrong = Dataset::from_matrix(Matrix::zeros(2, 5));
        assert!(matches!(
            session.transform_batch(&wrong),
            Err(Error::KeyMismatch(_))
        ));
        assert!(matches!(
            session.invert_batch(&wrong),
            Err(Error::KeyMismatch(_))
        ));
    }

    #[test]
    fn new_rejects_mismatched_secrets() {
        let (_, out) = fitted_session();
        let other = rbt_data::Normalization::zscore_paper()
            .fit(&Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 5.0]]).unwrap())
            .unwrap();
        assert!(matches!(
            ReleaseSession::new(out.key.clone(), other),
            Err(Error::KeyMismatch(_))
        ));
    }

    fn assert_sessions_equal(a: &ReleaseSession, b: &ReleaseSession) {
        assert_eq!(a.key(), b.key());
        assert_eq!(a.normalizer(), b.normalizer());
        assert_eq!(a.config(), b.config());
        assert_eq!(a.drift_bounds(), b.drift_bounds());
        assert_eq!(a.suppresses_ids(), b.suppresses_ids());
    }

    #[test]
    fn binary_round_trip_preserves_everything() {
        let (session, _) = fitted_session();
        let session = session.with_config(
            RbtConfig::uniform(PairwiseSecurityThreshold::uniform(0.25).unwrap())
                .with_pairing(PairingStrategy::Explicit(vec![(0, 2), (1, 0)]))
                .with_thresholds(ThresholdPolicy::PerPair(vec![
                    crate::paper::pst1(),
                    crate::paper::pst2(),
                ])),
        );
        let bytes = session.to_bytes();
        let back = ReleaseSession::from_bytes(&bytes).unwrap();
        assert_sessions_equal(&back, &session);
        // decode() sniffs the magic.
        assert_sessions_equal(&ReleaseSession::decode(&bytes).unwrap(), &session);
    }

    #[test]
    fn text_round_trip_preserves_everything() {
        let (session, _) = fitted_session();
        let session = session
            .with_config(RbtConfig::uniform(
                PairwiseSecurityThreshold::uniform(0.25).unwrap(),
            ))
            .with_id_suppression(false);
        let text = session.to_text().unwrap();
        assert!(text.starts_with("rbt-session v1\n"));
        let back = ReleaseSession::from_text(&text).unwrap();
        assert_sessions_equal(&back, &session);
        assert_sessions_equal(&ReleaseSession::decode(text.as_bytes()).unwrap(), &session);
        // The decoded session transforms bit-identically.
        let raw = datasets::arrhythmia_sample();
        let mut a = session.clone();
        let mut b = back;
        assert!(a
            .transform_batch(&raw)
            .unwrap()
            .released
            .matrix()
            .approx_eq(b.transform_batch(&raw).unwrap().released.matrix(), 0.0));
    }

    #[test]
    fn text_round_trip_preserves_method_tag_for_every_normalization() {
        // The advisory normalization method must survive the text form for
        // every shipped method — population/robust fits produce z-score-
        // shaped parameters that the tag alone distinguishes.
        let raw = datasets::arrhythmia_sample();
        for method in [
            Normalization::zscore_paper(),
            Normalization::ZScore {
                mode: VarianceMode::Population,
            },
            Normalization::min_max_unit(),
            Normalization::DecimalScaling,
            Normalization::RobustZScore,
        ] {
            // A small threshold: min–max/decimal scaling shrink variances
            // well below the z-score tests' 0.25.
            let out = Pipeline::new(RbtConfig::uniform(
                PairwiseSecurityThreshold::uniform(1e-4).unwrap(),
            ))
            .with_normalization(method)
            .run(&raw, &mut rng(13))
            .unwrap();
            let session = ReleaseSession::from_pipeline_output(&out).unwrap();
            let text = session.to_text().unwrap();
            let back = ReleaseSession::from_text(&text).unwrap();
            assert_eq!(
                back.normalizer().method(),
                method,
                "method tag lost through session text form"
            );
            assert_sessions_equal(&back, &session);
        }
    }

    #[test]
    fn text_tampering_is_detected() {
        let (session, _) = fitted_session();
        let text = session.to_text().unwrap();
        // Flip one digit of the first rotation angle.
        let tampered = text.replacen("rotate 0", "rotate 1", 1);
        assert!(matches!(
            ReleaseSession::from_text(&tampered),
            Err(Error::Codec(CodecError::ChecksumMismatch { .. }))
        ));
        // Corrupt the checksum itself.
        let idx = text.rfind("checksum ").unwrap() + "checksum ".len();
        let mut broken = text.clone().into_bytes();
        broken[idx] = if broken[idx] == b'0' { b'1' } else { b'0' };
        assert!(ReleaseSession::from_text(std::str::from_utf8(&broken).unwrap()).is_err());
        // Dropped line.
        let dropped: String = text
            .lines()
            .filter(|l| !l.starts_with("suppress-ids"))
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(ReleaseSession::from_text(&dropped).is_err());
        // Future version (valid checksum, bumped header).
        let future = {
            let body: String = text
                .lines()
                .filter(|l| !l.starts_with("checksum"))
                .map(|l| format!("{l}\n"))
                .collect::<String>()
                .replacen("rbt-session v1", "rbt-session v9", 1);
            let sum = crc32(text_checksum_content(&body).as_bytes());
            format!("{body}checksum {sum:08x}\n")
        };
        assert!(matches!(
            ReleaseSession::from_text(&future),
            Err(Error::Codec(CodecError::UnsupportedVersion { found: 9 }))
        ));
    }

    #[test]
    fn whitespace_edits_do_not_break_the_checksum() {
        let (session, _) = fitted_session();
        let text = session.to_text().unwrap();
        let padded: String = text.lines().flat_map(|l| ["  ", l, "  \n", "\n"]).collect();
        let back = ReleaseSession::from_text(&padded).unwrap();
        assert_eq!(back.key(), session.key());
    }

    #[test]
    fn drift_bounds_validation() {
        assert!(DriftBounds::new(vec![], vec![]).is_err());
        assert!(DriftBounds::new(vec![0.0], vec![1.0, 2.0]).is_err());
        assert!(DriftBounds::new(vec![2.0], vec![1.0]).is_err());
        let b = DriftBounds::new(vec![0.0, -1.0], vec![1.0, 1.0]).unwrap();
        assert!(b.row_in_range(&[0.5, 0.0]));
        assert!(!b.row_in_range(&[1.5, 0.0]));
        assert!(!b.row_in_range(&[f64::NAN, 0.0]));
        assert!(!b.row_in_range(&[0.5]));
    }
}
