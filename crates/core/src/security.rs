//! Pairwise-security thresholds, the closed-form variance curves of
//! Figures 2–3, and the security-range solver.
//!
//! For a pair of attributes `(X, Y)` rotated clockwise by θ (Eq. 1):
//!
//! ```text
//! X' =  X·cosθ + Y·sinθ        D1 = X − X' = (1−cosθ)·X − sinθ·Y
//! Y' = −X·sinθ + Y·cosθ        D2 = Y − Y' =  sinθ·X + (1−cosθ)·Y
//!
//! Var(D1) = (1−cosθ)²·Var(X) + sin²θ·Var(Y) − 2(1−cosθ)·sinθ·Cov(X,Y)
//! Var(D2) = sin²θ·Var(X) + (1−cosθ)²·Var(Y) + 2·sinθ·(1−cosθ)·Cov(X,Y)
//! ```
//!
//! Both curves depend on the data only through `Var(X)`, `Var(Y)` and
//! `Cov(X, Y)` — the [`PairVarianceProfile`]. The paper finds the feasible
//! angles graphically (its Figures 2 and 3); [`security_range`] computes the
//! same set exactly as a union of closed arcs via a dense scan plus
//! bisection refinement of every boundary.

use crate::{Error, Result};
use rand::Rng;
use rbt_linalg::stats::{self, VarianceMode};

/// The paper's *Pairwise-Security Threshold* `PST(ρ1, ρ2)` (Definition 2):
/// the distortion of a pair `(Ai, Aj)` must satisfy
/// `Var(Ai − Ai') ≥ ρ1` and `Var(Aj − Aj') ≥ ρ2`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairwiseSecurityThreshold {
    /// Minimum variance of the first attribute's perturbation.
    pub rho1: f64,
    /// Minimum variance of the second attribute's perturbation.
    pub rho2: f64,
}

impl PairwiseSecurityThreshold {
    /// Creates a threshold.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] unless both thresholds are
    /// positive and finite (the paper requires `ρ1, ρ2 > 0`).
    pub fn new(rho1: f64, rho2: f64) -> Result<Self> {
        for (name, v) in [("rho1", rho1), ("rho2", rho2)] {
            if v.is_nan() || v <= 0.0 || !v.is_finite() {
                return Err(Error::InvalidParameter(format!(
                    "{name} must be positive and finite, got {v}"
                )));
            }
        }
        Ok(PairwiseSecurityThreshold { rho1, rho2 })
    }

    /// The symmetric threshold `PST(ρ, ρ)`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`new`](Self::new).
    pub fn uniform(rho: f64) -> Result<Self> {
        Self::new(rho, rho)
    }
}

/// Second-moment summary of an attribute pair: everything the variance
/// curves depend on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairVarianceProfile {
    /// `Var(X)` of the first attribute.
    pub var_x: f64,
    /// `Var(Y)` of the second attribute.
    pub var_y: f64,
    /// `Cov(X, Y)`.
    pub cov_xy: f64,
}

impl PairVarianceProfile {
    /// Computes the profile from two attribute columns.
    ///
    /// # Errors
    ///
    /// Propagates [`rbt_linalg::Error`] for empty or mismatched columns.
    pub fn from_columns(x: &[f64], y: &[f64], mode: VarianceMode) -> Result<Self> {
        Ok(PairVarianceProfile {
            var_x: stats::variance(x, mode)?,
            var_y: stats::variance(y, mode)?,
            cov_xy: stats::covariance(x, y, mode)?,
        })
    }

    /// `Var(X − X')` as a function of the clockwise rotation angle, in
    /// degrees — the first curve of the paper's Figures 2–3.
    pub fn var_diff_first(&self, theta_degrees: f64) -> f64 {
        let (s, c) = theta_degrees.to_radians().sin_cos();
        let a = 1.0 - c;
        a * a * self.var_x + s * s * self.var_y - 2.0 * a * s * self.cov_xy
    }

    /// `Var(Y − Y')` as a function of the clockwise rotation angle, in
    /// degrees — the second curve of the paper's Figures 2–3.
    pub fn var_diff_second(&self, theta_degrees: f64) -> f64 {
        let (s, c) = theta_degrees.to_radians().sin_cos();
        let a = 1.0 - c;
        s * s * self.var_x + a * a * self.var_y + 2.0 * s * a * self.cov_xy
    }

    /// `true` when the angle satisfies the threshold on both attributes.
    pub fn satisfies(&self, theta_degrees: f64, pst: &PairwiseSecurityThreshold) -> bool {
        self.var_diff_first(theta_degrees) >= pst.rho1
            && self.var_diff_second(theta_degrees) >= pst.rho2
    }

    /// Samples both curves on a regular grid — the series plotted in the
    /// paper's Figures 2 and 3. Returns `(θ, Var(X−X'), Var(Y−Y'))` triples
    /// covering `[0°, 360°]` inclusive.
    pub fn variance_curves(&self, n_points: usize) -> Vec<(f64, f64, f64)> {
        let n = n_points.max(2);
        (0..n)
            .map(|k| {
                let theta = 360.0 * k as f64 / (n - 1) as f64;
                (
                    theta,
                    self.var_diff_first(theta),
                    self.var_diff_second(theta),
                )
            })
            .collect()
    }
}

/// Fold phase of a [`PairMoments`] accumulator.
#[derive(Debug, Clone, Copy, PartialEq)]
enum PairPhase {
    /// Pass 1: running sums of both columns.
    Sums {
        /// Running `Σ x`.
        sum_x: f64,
        /// Running `Σ y`.
        sum_y: f64,
    },
    /// Pass 2: exact means plus running centred second moments.
    Centered {
        /// Exact pooled mean of the first column.
        mean_x: f64,
        /// Exact pooled mean of the second column.
        mean_y: f64,
        /// Running `Σ (x − mean_x)²`.
        ss_x: f64,
        /// Running `Σ (y − mean_y)²`.
        ss_y: f64,
        /// Running `Σ (x − mean_x)(y − mean_y)`.
        ss_xy: f64,
        /// Rows folded in this pass.
        count2: usize,
    },
}

/// Chained two-pass accumulator for a [`PairVarianceProfile`] over
/// horizontally partitioned columns.
///
/// The pooled profile ([`PairVarianceProfile::from_columns`]) is built from
/// plain sequential left folds (sum → mean, then centred sums of
/// squares/products), so carrying this accumulator across partition
/// boundaries — folding each partition's rows **in concatenation order**,
/// one pass for the sums and one for the centred moments — produces the
/// **bit-identical** profile without any party revealing its rows. This is
/// the statistic the federated release protocol chains through the data
/// owners to fit one joint rotation key that matches the pooled
/// single-owner fit exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairMoments {
    count: usize,
    phase: PairPhase,
}

impl Default for PairMoments {
    fn default() -> Self {
        Self::new()
    }
}

impl PairMoments {
    /// A fresh accumulator at the start of pass 1.
    pub fn new() -> Self {
        PairMoments {
            count: 0,
            phase: PairPhase::Sums {
                sum_x: 0.0,
                sum_y: 0.0,
            },
        }
    }

    /// Rows folded so far in the current pass.
    pub fn rows_folded(&self) -> usize {
        match self.phase {
            PairPhase::Sums { .. } => self.count,
            PairPhase::Centered { count2, .. } => count2,
        }
    }

    /// Folds one partition's pair columns. Update expressions and row order
    /// match [`rbt_linalg::stats`]'s sequential folds exactly.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for mismatched column lengths or
    /// non-finite values.
    pub fn fold(&mut self, x: &[f64], y: &[f64]) -> Result<()> {
        if x.len() != y.len() {
            return Err(Error::InvalidParameter(format!(
                "pair columns of different lengths ({} vs {})",
                x.len(),
                y.len()
            )));
        }
        if x.iter().chain(y).any(|v| !v.is_finite()) {
            return Err(Error::InvalidParameter(
                "pair columns contain NaN or infinite values".into(),
            ));
        }
        match &mut self.phase {
            PairPhase::Sums { sum_x, sum_y } => {
                for &v in x {
                    *sum_x += v;
                }
                for &v in y {
                    *sum_y += v;
                }
                self.count += x.len();
            }
            PairPhase::Centered {
                mean_x,
                mean_y,
                ss_x,
                ss_y,
                ss_xy,
                count2,
            } => {
                for &v in x {
                    *ss_x += (v - *mean_x) * (v - *mean_x);
                }
                for &v in y {
                    *ss_y += (v - *mean_y) * (v - *mean_y);
                }
                for (&xv, &yv) in x.iter().zip(y) {
                    *ss_xy += (xv - *mean_x) * (yv - *mean_y);
                }
                *count2 += x.len();
            }
        }
        Ok(())
    }

    /// `true` while the centred pass is still ahead.
    pub fn needs_second_pass(&self) -> bool {
        matches!(self.phase, PairPhase::Sums { .. })
    }

    /// Fixes the exact pooled means (`sum / n`, the same expression
    /// [`rbt_linalg::stats::mean`] uses) and transitions to the centred
    /// pass; fold every partition again, in the same order.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if the centred pass already
    /// started or no rows were folded.
    pub fn begin_second_pass(&mut self) -> Result<()> {
        let PairPhase::Sums { sum_x, sum_y } = self.phase else {
            return Err(Error::InvalidParameter(
                "centred pass already begun for this pair".into(),
            ));
        };
        if self.count == 0 {
            return Err(Error::InvalidParameter(
                "cannot compute pair means over zero rows".into(),
            ));
        }
        let n = self.count as f64;
        self.phase = PairPhase::Centered {
            mean_x: sum_x / n,
            mean_y: sum_y / n,
            ss_x: 0.0,
            ss_y: 0.0,
            ss_xy: 0.0,
            count2: 0,
        };
        Ok(())
    }

    /// Finalizes into the profile — bit-identical to
    /// [`PairVarianceProfile::from_columns`] on the pooled columns.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if the centred pass never ran or
    /// the two passes folded different row counts.
    pub fn finish(self, mode: VarianceMode) -> Result<PairVarianceProfile> {
        let PairPhase::Centered {
            ss_x,
            ss_y,
            ss_xy,
            count2,
            ..
        } = self.phase
        else {
            return Err(Error::InvalidParameter(
                "pair profile still needs its centred pass".into(),
            ));
        };
        if count2 != self.count {
            return Err(Error::InvalidParameter(format!(
                "centred pass folded {count2} rows, sum pass folded {}",
                self.count
            )));
        }
        let div = mode.divisor(self.count);
        Ok(PairVarianceProfile {
            var_x: ss_x / div,
            var_y: ss_y / div,
            cov_xy: ss_xy / div,
        })
    }

    /// Serializes the accumulator (pass, counts, every float bit-exact) so
    /// it can be carried between partition holders.
    pub fn encode_into(&self, w: &mut rbt_linalg::codec::ByteWriter) {
        w.put_usize(self.count);
        match self.phase {
            PairPhase::Sums { sum_x, sum_y } => {
                w.put_u8(0);
                w.put_f64(sum_x);
                w.put_f64(sum_y);
            }
            PairPhase::Centered {
                mean_x,
                mean_y,
                ss_x,
                ss_y,
                ss_xy,
                count2,
            } => {
                w.put_u8(1);
                w.put_f64(mean_x);
                w.put_f64(mean_y);
                w.put_f64(ss_x);
                w.put_f64(ss_y);
                w.put_f64(ss_xy);
                w.put_usize(count2);
            }
        }
    }

    /// Decodes the record written by [`encode_into`](Self::encode_into).
    ///
    /// # Errors
    ///
    /// Returns a typed [`rbt_linalg::codec::DecodeError`] for truncation or
    /// an unknown phase tag.
    pub fn decode_from(
        r: &mut rbt_linalg::codec::ByteReader<'_>,
    ) -> rbt_linalg::codec::DecodeResult<Self> {
        let count = r.take_usize()?;
        let tag_offset = r.position();
        let phase = match r.take_u8()? {
            0 => PairPhase::Sums {
                sum_x: r.take_f64()?,
                sum_y: r.take_f64()?,
            },
            1 => PairPhase::Centered {
                mean_x: r.take_f64()?,
                mean_y: r.take_f64()?,
                ss_x: r.take_f64()?,
                ss_y: r.take_f64()?,
                ss_xy: r.take_f64()?,
                count2: r.take_usize()?,
            },
            other => {
                return Err(rbt_linalg::codec::DecodeError::Malformed {
                    offset: tag_offset,
                    message: format!("unknown pair-moments phase tag {other}"),
                })
            }
        };
        Ok(PairMoments { count, phase })
    }
}

/// The *security range* (§4.3, step 2c): the set of rotation angles that
/// satisfy a pairwise-security threshold, as a union of disjoint closed
/// arcs within `[0°, 360°)`.
#[derive(Debug, Clone, PartialEq)]
pub struct SecurityRange {
    /// Disjoint feasible arcs `(start, end)` in degrees, `start <= end`,
    /// sorted ascending. An arc wrapping 360° is split into two entries.
    intervals: Vec<(f64, f64)>,
}

impl SecurityRange {
    /// Builds a range from explicit disjoint arcs (used by the reflection
    /// extension, whose solver works on `[0°, 180°)`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for malformed arcs (NaN, reversed
    /// endpoints, or out-of-order intervals).
    pub fn from_intervals(intervals: Vec<(f64, f64)>) -> Result<Self> {
        let mut prev_end = f64::NEG_INFINITY;
        for &(a, b) in &intervals {
            if a.is_nan() || b.is_nan() || a > b || a < prev_end {
                return Err(Error::InvalidParameter(format!(
                    "malformed interval list at ({a}, {b})"
                )));
            }
            prev_end = b;
        }
        Ok(SecurityRange { intervals })
    }

    /// The feasible arcs, in degrees.
    pub fn intervals(&self) -> &[(f64, f64)] {
        &self.intervals
    }

    /// `true` when no angle is feasible.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Total angular measure (degrees) of the feasible set.
    pub fn measure(&self) -> f64 {
        self.intervals.iter().map(|(a, b)| b - a).sum()
    }

    /// `true` when `theta` (degrees, any real value) lies in the range.
    pub fn contains(&self, theta_degrees: f64) -> bool {
        let t = theta_degrees.rem_euclid(360.0);
        self.intervals
            .iter()
            .any(|&(a, b)| t >= a - 1e-12 && t <= b + 1e-12)
    }

    /// Draws an angle uniformly at random from the feasible set (step 2c of
    /// the algorithm: "we randomly select a real number in this range").
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if the range is empty.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<f64> {
        let total = self.measure();
        if self.intervals.is_empty() || total <= 0.0 {
            return Err(Error::InvalidParameter(
                "cannot sample from an empty security range".into(),
            ));
        }
        let mut target = rng.random_range(0.0..total);
        for &(a, b) in &self.intervals {
            let w = b - a;
            if target < w {
                return Ok(a + target);
            }
            target -= w;
        }
        // Floating-point edge: return the end of the last arc.
        Ok(self.intervals.last().expect("non-empty").1)
    }
}

/// Default grid resolution for [`security_range`] (quarter-degree steps
/// before refinement).
pub const DEFAULT_GRID: usize = 1440;

/// Computes the security range of a pair under a threshold.
///
/// # Example
///
/// ```
/// use rbt_core::security::{security_range, PairVarianceProfile,
///                          PairwiseSecurityThreshold, DEFAULT_GRID};
///
/// // Unit-variance, uncorrelated pair: Var(A − A')(θ) = 2(1 − cos θ).
/// let profile = PairVarianceProfile { var_x: 1.0, var_y: 1.0, cov_xy: 0.0 };
/// let pst = PairwiseSecurityThreshold::uniform(2.0).unwrap();
/// let range = security_range(&profile, &pst, DEFAULT_GRID).unwrap();
/// // 2(1 − cos θ) ≥ 2  ⇔  θ ∈ [90°, 270°].
/// let (lo, hi) = range.intervals()[0];
/// assert!((lo - 90.0).abs() < 0.01 && (hi - 270.0).abs() < 0.01);
/// ```
///
/// The feasibility predicate is scanned on a `grid`-point uniform grid over
/// `[0°, 360°)` and every feasible/infeasible boundary is refined by
/// bisection to ~1e-9°. The curves are trigonometric polynomials of degree
/// 2 in θ, so any feasible arc wider than `360/grid` degrees is found; the
/// default grid (0.25°) is far finer than any structure the curves can
/// have.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] for `grid < 8`.
pub fn security_range(
    profile: &PairVarianceProfile,
    pst: &PairwiseSecurityThreshold,
    grid: usize,
) -> Result<SecurityRange> {
    if grid < 8 {
        return Err(Error::InvalidParameter(format!(
            "grid must be at least 8, got {grid}"
        )));
    }
    let feasible = |t: f64| profile.satisfies(t, pst);
    let step = 360.0 / grid as f64;

    // Refine a boundary inside (lo, hi) where feasibility flips.
    let refine = |mut lo: f64, mut hi: f64| -> f64 {
        let lo_feasible = feasible(lo);
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if feasible(mid) == lo_feasible {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    };

    let mut intervals: Vec<(f64, f64)> = Vec::new();
    let mut current_start: Option<f64> = None;
    let mut prev_t = 0.0;
    let mut prev_feasible = feasible(0.0);
    if prev_feasible {
        current_start = Some(0.0);
    }
    for k in 1..=grid {
        let t = if k == grid { 360.0 } else { k as f64 * step };
        let f = feasible(t.min(359.999_999_999));
        if f != prev_feasible {
            let boundary = refine(prev_t, t);
            if f {
                current_start = Some(boundary);
            } else if let Some(start) = current_start.take() {
                intervals.push((start, boundary));
            }
        }
        prev_t = t;
        prev_feasible = f;
    }
    if let Some(start) = current_start.take() {
        intervals.push((start, 360.0));
    }

    // Merge a wrap-around pair [0, x] + [y, 360] into canonical split form
    // only if both exist and everything is feasible at the seam; the split
    // representation is already what we want, so nothing more to do.
    // Degenerate full-circle case: single interval [0, 360].
    Ok(SecurityRange { intervals })
}

/// Maximum achievable `(Var(X−X'), Var(Y−Y'))` over all angles — used for
/// the diagnostics in [`Error::EmptySecurityRange`].
pub fn max_achievable(profile: &PairVarianceProfile, grid: usize) -> (f64, f64) {
    let grid = grid.max(8);
    let mut best = (0.0f64, 0.0f64);
    for k in 0..grid {
        let t = 360.0 * k as f64 / grid as f64;
        best.0 = best.0.max(profile.var_diff_first(t));
        best.1 = best.1.max(profile.var_diff_second(t));
    }
    best
}

/// Per-attribute **end-to-end** security levels
/// `Sec_j = Var(Xj − Xj') / Var(Xj)` between the normalized input and the
/// final release.
///
/// This exposes a subtlety the paper does not discuss: the PST is enforced
/// **per rotation step**, but an attribute that is re-rotated by a later
/// pair (the odd-`n` chaining rule, or any explicit re-use) can end up
/// with an end-to-end displacement *below* the per-step thresholds — the
/// second rotation may partially undo the first. Administrators should
/// audit releases with this function, not only with the per-step values
/// recorded in the key.
///
/// # Errors
///
/// Propagates [`rbt_linalg::Error`] for shape mismatches and
/// [`Error::InvalidParameter`] for constant attributes.
pub fn end_to_end_security(
    normalized: &rbt_linalg::Matrix,
    transformed: &rbt_linalg::Matrix,
    mode: VarianceMode,
) -> Result<Vec<f64>> {
    if normalized.shape() != transformed.shape() {
        return Err(Error::InvalidParameter(format!(
            "shape mismatch: {:?} vs {:?}",
            normalized.shape(),
            transformed.shape()
        )));
    }
    (0..normalized.cols())
        .map(|j| security_level(&normalized.column(j), &transformed.column(j), mode))
        .collect()
}

/// The traditional scale-invariant security level of the statistical-DB
/// literature the paper adopts (§4.2): `Sec = Var(X − Y) / Var(X)` where
/// `X` is the original attribute and `Y` its perturbed version.
///
/// # Errors
///
/// Propagates [`rbt_linalg::Error`] for empty/mismatched input, and returns
/// [`Error::InvalidParameter`] when `Var(X) = 0`.
pub fn security_level(original: &[f64], perturbed: &[f64], mode: VarianceMode) -> Result<f64> {
    let vx = stats::variance(original, mode)?;
    if vx == 0.0 {
        return Err(Error::InvalidParameter(
            "security level undefined for a constant attribute".into(),
        ));
    }
    let vd = stats::variance_of_difference(original, perturbed, mode)?;
    Ok(vd / vx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    /// Profile of the paper's first pair (age, heart_rate) from the exact
    /// z-scores (sample divisor) of Table 1.
    fn paper_pair1_profile() -> PairVarianceProfile {
        paper::pair1_profile()
    }

    #[test]
    fn pst_validation() {
        assert!(PairwiseSecurityThreshold::new(0.3, 0.55).is_ok());
        assert!(PairwiseSecurityThreshold::new(0.0, 1.0).is_err());
        assert!(PairwiseSecurityThreshold::new(1.0, -0.1).is_err());
        assert!(PairwiseSecurityThreshold::new(f64::NAN, 1.0).is_err());
        assert!(PairwiseSecurityThreshold::uniform(2.3).is_ok());
    }

    #[test]
    fn variance_curves_are_zero_at_zero_rotation() {
        let p = paper_pair1_profile();
        assert!(p.var_diff_first(0.0).abs() < 1e-12);
        assert!(p.var_diff_second(0.0).abs() < 1e-12);
        assert!(p.var_diff_first(360.0).abs() < 1e-10);
    }

    #[test]
    fn closed_form_matches_empirical_rotation() {
        // Validate the closed form against actually rotating the columns.
        let x = [1.2, -0.7, 0.3, 2.2, -1.5];
        let y = [0.4, 1.1, -0.9, 0.0, 0.5];
        let mode = VarianceMode::Sample;
        let p = PairVarianceProfile::from_columns(&x, &y, mode).unwrap();
        for theta in [10.0, 77.3, 147.29, 201.0, 312.47] {
            let rot = rbt_linalg::Rotation2::from_degrees(theta);
            let mut xr = x.to_vec();
            let mut yr = y.to_vec();
            rot.apply_columns(&mut xr, &mut yr).unwrap();
            let v1 = stats::variance_of_difference(&x, &xr, mode).unwrap();
            let v2 = stats::variance_of_difference(&y, &yr, mode).unwrap();
            assert!(
                (v1 - p.var_diff_first(theta)).abs() < 1e-10,
                "first curve at {theta}"
            );
            assert!(
                (v2 - p.var_diff_second(theta)).abs() < 1e-10,
                "second curve at {theta}"
            );
        }
    }

    #[test]
    fn paper_figure2_security_range_endpoints() {
        // Figure 2: the paper prints [48.03°, 314.97°] for PST1 = (0.30,
        // 0.55). The upper endpoint reproduces exactly (it is where
        // Var(age−age') = 0.30). The paper's lower endpoint is an erratum —
        // at 48.03° its own second constraint is violated
        // (Var(hr−hr') ≈ 0.32 < 0.55); the true joint boundary is 82.69°,
        // where Var(hr−hr') rises through 0.55. See paper::FIGURE2_RANGE.
        let p = paper_pair1_profile();
        let pst = PairwiseSecurityThreshold::new(0.30, 0.55).unwrap();
        let range = security_range(&p, &pst, DEFAULT_GRID).unwrap();
        assert_eq!(range.intervals().len(), 1, "{:?}", range.intervals());
        let (lo, hi) = range.intervals()[0];
        assert!((hi - paper::FIGURE2_RANGE.1).abs() < 0.05, "hi = {hi}");
        assert!(
            (lo - paper::FIGURE2_RANGE_MEASURED.0).abs() < 0.05,
            "lo = {lo}"
        );
        // Demonstrate the erratum: the paper's lower endpoint fails its own
        // threshold, while our boundary satisfies it.
        assert!(p.var_diff_second(paper::FIGURE2_RANGE.0) < 0.55);
        assert!(p.var_diff_second(lo + 1e-6) >= 0.55 - 1e-9);
        // The paper's chosen angle lies inside both versions of the range.
        assert!(range.contains(paper::THETA1_DEGREES));
    }

    #[test]
    #[allow(clippy::approx_constant)] // 0.318 is the paper's printed value, not 1/pi
    fn paper_achieved_variances_at_chosen_angle() {
        // §5.1: at θ = 312.47°, Var(age−age') = 0.318 and
        // Var(hr−hr') = 0.9805.
        // (The paper prints 0.318 — three decimals; the exact value is
        // 0.31872, so the comparison tolerance is 1e-3.)
        let p = paper_pair1_profile();
        assert!((p.var_diff_first(paper::THETA1_DEGREES) - 0.318).abs() < 1e-3);
        assert!((p.var_diff_second(paper::THETA1_DEGREES) - 0.9805).abs() < 5e-4);
    }

    #[test]
    fn paper_figure3_security_range_endpoints() {
        // Figure 3: feasible range [118.74°, 258.70°] for ρ1 = ρ2 = 2.30 on
        // the chained pair (weight, age').
        let p = paper::pair2_profile();
        let pst = PairwiseSecurityThreshold::uniform(2.30).unwrap();
        let range = security_range(&p, &pst, DEFAULT_GRID).unwrap();
        assert_eq!(range.intervals().len(), 1, "{:?}", range.intervals());
        let (lo, hi) = range.intervals()[0];
        assert!((lo - 118.74).abs() < 0.05, "lo = {lo}");
        assert!((hi - 258.70).abs() < 0.05, "hi = {hi}");
    }

    #[test]
    fn paper_pair2_achieved_variances() {
        // §5.1: at θ = 147.29°, Var(weight−weight') = 2.9714 and
        // Var(age−age') = 6.9274 (the already-rotated age column).
        let p = paper::pair2_profile();
        assert!((p.var_diff_first(paper::THETA2_DEGREES) - 2.9714).abs() < 1e-3);
        assert!((p.var_diff_second(paper::THETA2_DEGREES) - 6.9274).abs() < 1e-3);
    }

    #[test]
    fn sampled_angles_satisfy_threshold() {
        let p = paper_pair1_profile();
        let pst = PairwiseSecurityThreshold::new(0.30, 0.55).unwrap();
        let range = security_range(&p, &pst, DEFAULT_GRID).unwrap();
        let mut r = rng(17);
        for _ in 0..500 {
            let theta = range.sample(&mut r).unwrap();
            assert!(range.contains(theta));
            assert!(
                p.satisfies(theta, &pst),
                "sampled {theta} violates the threshold"
            );
        }
    }

    #[test]
    fn unsatisfiable_threshold_gives_empty_range() {
        let p = paper_pair1_profile();
        let pst = PairwiseSecurityThreshold::uniform(100.0).unwrap();
        let range = security_range(&p, &pst, DEFAULT_GRID).unwrap();
        assert!(range.is_empty());
        assert_eq!(range.measure(), 0.0);
        assert!(range.sample(&mut rng(0)).is_err());
        let (m1, m2) = max_achievable(&p, DEFAULT_GRID);
        assert!(m1 < 100.0 && m2 < 100.0);
    }

    #[test]
    fn tiny_threshold_gives_near_full_circle() {
        let p = paper_pair1_profile();
        let pst = PairwiseSecurityThreshold::uniform(1e-9).unwrap();
        let range = security_range(&p, &pst, DEFAULT_GRID).unwrap();
        // Everything except a sliver around 0°/360° is feasible.
        assert!(range.measure() > 359.0, "measure {}", range.measure());
    }

    #[test]
    fn lower_threshold_gives_broader_range() {
        // §5.2: "the lower the pairwise-security threshold … the broader the
        // security range".
        let p = paper_pair1_profile();
        let narrow = security_range(
            &p,
            &PairwiseSecurityThreshold::uniform(1.0).unwrap(),
            DEFAULT_GRID,
        )
        .unwrap();
        let broad = security_range(
            &p,
            &PairwiseSecurityThreshold::uniform(0.1).unwrap(),
            DEFAULT_GRID,
        )
        .unwrap();
        assert!(broad.measure() > narrow.measure());
    }

    #[test]
    fn contains_handles_wraparound_angles() {
        let p = paper_pair1_profile();
        let pst = PairwiseSecurityThreshold::new(0.30, 0.55).unwrap();
        let range = security_range(&p, &pst, DEFAULT_GRID).unwrap();
        assert!(range.contains(180.0));
        assert!(range.contains(180.0 + 360.0));
        assert!(range.contains(180.0 - 360.0));
        assert!(!range.contains(0.0));
    }

    #[test]
    fn solver_rejects_tiny_grid() {
        let p = paper_pair1_profile();
        let pst = PairwiseSecurityThreshold::uniform(0.1).unwrap();
        assert!(security_range(&p, &pst, 4).is_err());
    }

    #[test]
    fn curves_series_shape() {
        let p = paper_pair1_profile();
        let series = p.variance_curves(361);
        assert_eq!(series.len(), 361);
        assert_eq!(series[0].0, 0.0);
        assert_eq!(series[360].0, 360.0);
        // Peak of Var(X−X') for unit-variance anticorrelated data is > 2.
        let peak = series.iter().map(|s| s.1).fold(0.0, f64::max);
        assert!(peak > 2.0);
    }

    #[test]
    fn chained_rotations_can_undercut_per_step_thresholds() {
        // The phenomenon end_to_end_security exists to catch: rotate
        // (age, hr), then re-rotate age in pair (weight, age) with an angle
        // chosen so the composition nearly restores age. Each step meets a
        // healthy per-step variance, yet age's end-to-end Sec is tiny.
        use rbt_linalg::Rotation2;
        let z = crate::paper::normalized_exact();
        let mut m = z.clone();
        // Step 1: rotate (age, hr) by 187.5°.
        let mut xs = m.column(0);
        let mut ys = m.column(2);
        Rotation2::from_degrees(187.5)
            .apply_columns(&mut xs, &mut ys)
            .unwrap();
        m.set_column(0, &xs).unwrap();
        m.set_column(2, &ys).unwrap();
        // Step 2: rotate (weight, age) by ~189.2° — the CLI demo's actual
        // draw, which happens to move age back near its start.
        let mut ws = m.column(1);
        let mut age = m.column(0);
        Rotation2::from_degrees(189.17)
            .apply_columns(&mut ws, &mut age)
            .unwrap();
        m.set_column(1, &ws).unwrap();
        m.set_column(0, &age).unwrap();

        let secs = end_to_end_security(&z, &m, VarianceMode::Sample).unwrap();
        // weight and heart_rate keep strong end-to-end displacement…
        assert!(secs[1] > 1.0 && secs[2] > 1.0, "{secs:?}");
        // …but the doubly-rotated age collapses below any per-step rho.
        assert!(secs[0] < 0.15, "{secs:?}");
    }

    #[test]
    fn end_to_end_security_validates_shapes() {
        let z = crate::paper::normalized_exact();
        let fewer = z.select_columns(&[0, 1]).unwrap();
        assert!(end_to_end_security(&z, &fewer, VarianceMode::Sample).is_err());
        // Identity transform: all-zero security.
        let secs = end_to_end_security(&z, &z, VarianceMode::Sample).unwrap();
        assert!(secs.iter().all(|&s| s == 0.0));
    }

    #[test]
    fn chained_pair_moments_bitwise_match_from_columns() {
        // Long irrational-ish columns so float addition order matters.
        let x: Vec<f64> = (0..97).map(|i| ((i * 3 + 1) as f64).sin() * 1.7).collect();
        let y: Vec<f64> = (0..97).map(|i| ((i * 5 + 2) as f64).cos() - 0.4).collect();
        for mode in [VarianceMode::Sample, VarianceMode::Population] {
            let pooled = PairVarianceProfile::from_columns(&x, &y, mode).unwrap();
            for cuts in [vec![], vec![1], vec![48], vec![13, 14, 96], vec![32, 64]] {
                let mut edges = vec![0usize];
                edges.extend(&cuts);
                edges.push(x.len());
                let mut acc = PairMoments::new();
                for w in edges.windows(2) {
                    acc.fold(&x[w[0]..w[1]], &y[w[0]..w[1]]).unwrap();
                }
                acc.begin_second_pass().unwrap();
                for w in edges.windows(2) {
                    acc.fold(&x[w[0]..w[1]], &y[w[0]..w[1]]).unwrap();
                }
                let merged = acc.finish(mode).unwrap();
                assert_eq!(merged.var_x.to_bits(), pooled.var_x.to_bits(), "{cuts:?}");
                assert_eq!(merged.var_y.to_bits(), pooled.var_y.to_bits(), "{cuts:?}");
                assert_eq!(merged.cov_xy.to_bits(), pooled.cov_xy.to_bits(), "{cuts:?}");
            }
        }
    }

    #[test]
    fn pair_moments_serialization_round_trips_mid_chain() {
        let x = [1.5, -0.3, 2.2, 0.9];
        let y = [0.1, 1.1, -2.0, 0.4];
        let mut acc = PairMoments::new();
        acc.fold(&x[..2], &y[..2]).unwrap();
        let mut w = rbt_linalg::codec::ByteWriter::new();
        acc.encode_into(&mut w);
        let mut r = rbt_linalg::codec::ByteReader::new(w.as_bytes());
        let mut acc2 = PairMoments::decode_from(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(acc, acc2);
        acc2.fold(&x[2..], &y[2..]).unwrap();
        acc2.begin_second_pass().unwrap();
        acc2.fold(&x, &y).unwrap();
        let merged = acc2.finish(VarianceMode::Sample).unwrap();
        let pooled = PairVarianceProfile::from_columns(&x, &y, VarianceMode::Sample).unwrap();
        assert_eq!(merged, pooled);
        // Unknown phase tag is a typed decode error.
        let mut bad = rbt_linalg::codec::ByteWriter::new();
        bad.put_usize(4);
        bad.put_u8(7);
        let mut r = rbt_linalg::codec::ByteReader::new(bad.as_bytes());
        assert!(PairMoments::decode_from(&mut r).is_err());
    }

    #[test]
    fn pair_moments_misuse_is_typed() {
        let mut acc = PairMoments::new();
        // Mismatched lengths and non-finite values are rejected.
        assert!(acc.fold(&[1.0, 2.0], &[1.0]).is_err());
        assert!(acc.fold(&[f64::NAN], &[1.0]).is_err());
        // Cannot finish or restart passes out of order.
        assert!(acc.finish(VarianceMode::Sample).is_err());
        assert!(PairMoments::new().begin_second_pass().is_err()); // zero rows
        acc.fold(&[1.0, 2.0], &[3.0, 4.0]).unwrap();
        acc.begin_second_pass().unwrap();
        assert!(acc.begin_second_pass().is_err());
        // Centred pass must re-fold exactly the pass-1 rows.
        acc.fold(&[1.0], &[3.0]).unwrap();
        assert!(acc.finish(VarianceMode::Sample).is_err());
    }

    #[test]
    fn security_level_known_values() {
        let x = [1.0, 2.0, 3.0, 4.0];
        // Unperturbed: Sec = 0.
        assert_eq!(security_level(&x, &x, VarianceMode::Sample).unwrap(), 0.0);
        // Perturbation = −X (difference 2X): Var(2X)/Var(X) = 4.
        let neg: Vec<f64> = x.iter().map(|v| -v).collect();
        assert!((security_level(&x, &neg, VarianceMode::Sample).unwrap() - 4.0).abs() < 1e-12);
        assert!(security_level(&[1.0, 1.0], &[1.0, 2.0], VarianceMode::Sample).is_err());
    }
}
