//! The multi-tenant session registry: sealed key bytes as the source of
//! truth, a capacity-bounded LRU cache of decoded live sessions, and
//! per-tenant counters that survive eviction.
//!
//! Key bytes are registered per tenant (from `LoadKey` frames or a key
//! directory at startup) and validated through
//! [`rbt_api::decode_fitted`], so every method in the registry — RBT,
//! hybrid isometry, and the §5.2 baselines — is servable, not just RBT.
//! Decoded sessions are expensive relative to key bytes (matrices,
//! normalizer state), so at most `capacity` of them are resident; touching
//! a tenant whose session was evicted re-decodes it from the retained key
//! bytes, which round-trips exactly because a session's transform output
//! depends only on its persisted secrets, never on how often it has been
//! decoded.
//!
//! Counters ([`TenantMetrics`]) live *next to* the key bytes rather than
//! inside the session, because `ReleaseSession`'s own counters reset on
//! decode — an LRU eviction must not zero a tenant's drift history.
//!
//! Locking: the registry mutex (a non-poisoning `parking_lot` lock, so a
//! panicking connection thread cannot wedge every other tenant) is held
//! only to look up / decode / account; the per-tenant session lock is held
//! for the transform itself. Different tenants therefore transform in
//! parallel, while two requests for the same tenant serialize — which is
//! what keeps per-tenant drift accounting exact.

use std::collections::HashMap;
use std::fmt;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use rbt_api::{decode_fitted, FittedRbt, FittedTransform, RbtError};
use rbt_core::ReleaseSession;
use rbt_data::Dataset;

use crate::metrics::{RuntimeCounters, ServerStats, TenantMetrics, TenantStats};

/// Errors from registry operations, mapped onto the workspace error
/// taxonomy for wire `Error` responses and CLI exit codes.
#[derive(Debug)]
pub enum ServerError {
    /// No key registered under this tenant id.
    UnknownTenant {
        /// The tenant that was requested.
        tenant: String,
    },
    /// The underlying release machinery failed (codec, shape, data, …).
    Rbt(RbtError),
    /// A filesystem failure while loading a key directory.
    Io(std::io::Error),
}

impl ServerError {
    /// The error-family code carried in wire `Error` responses, matching
    /// the CLI exit-code taxonomy (unknown tenant is a usage error).
    pub fn code(&self) -> u8 {
        match self {
            ServerError::UnknownTenant { .. } => 2,
            ServerError::Rbt(e) => e.exit_code(),
            ServerError::Io(_) => 3,
        }
    }
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::UnknownTenant { tenant } => {
                write!(f, "no key loaded for tenant {tenant:?}")
            }
            ServerError::Rbt(e) => write!(f, "{e}"),
            ServerError::Io(e) => write!(f, "key directory: {e}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<RbtError> for ServerError {
    fn from(e: RbtError) -> Self {
        ServerError::Rbt(e)
    }
}

/// Registry result alias.
pub type ServerResult<T> = std::result::Result<T, ServerError>;

/// A decoded, resident session. RBT keys are unwrapped to the raw
/// [`ReleaseSession`] so the transform path can report per-batch
/// out-of-range (drift) rows; other methods run through the trait object
/// and report zero drift.
enum LiveTransform {
    /// An RBT (or hybrid-isometry front) session with drift accounting.
    /// Boxed so the variants are close in size.
    Rbt(Box<ReleaseSession>),
    /// Any other registered method.
    Other(Box<dyn FittedTransform>),
}

impl LiveTransform {
    fn transform(&mut self, batch: &Dataset) -> ServerResult<(Dataset, u64)> {
        match self {
            LiveTransform::Rbt(session) => {
                let out = session.transform_batch(batch).map_err(RbtError::from)?;
                Ok((out.released, out.out_of_range_rows as u64))
            }
            LiveTransform::Other(fitted) => Ok((fitted.transform_batch(batch)?, 0)),
        }
    }

    fn invert(&self, batch: &Dataset) -> ServerResult<Dataset> {
        match self {
            LiveTransform::Rbt(session) => {
                Ok(session.invert_batch(batch).map_err(RbtError::from)?)
            }
            LiveTransform::Other(fitted) => Ok(fitted.invert_batch(batch)?),
        }
    }
}

fn decode_live(key_bytes: &[u8]) -> ServerResult<(LiveTransform, &'static str, usize)> {
    let fitted = decode_fitted(key_bytes)?;
    let method = fitted.method_name();
    let n_attributes = fitted.n_attributes();
    let live = match fitted.as_any().downcast_ref::<FittedRbt>() {
        Some(rbt) => LiveTransform::Rbt(Box::new(rbt.session().clone())),
        None => LiveTransform::Other(fitted),
    };
    Ok((live, method, n_attributes))
}

struct TenantEntry {
    key_bytes: Vec<u8>,
    live: Option<Arc<Mutex<LiveTransform>>>,
    last_used: u64,
    metrics: TenantMetrics,
}

struct Inner {
    tenants: HashMap<String, TenantEntry>,
    /// Monotone use counter driving LRU ordering.
    clock: u64,
    total_evictions: u64,
}

impl Inner {
    /// Evicts least-recently-used live sessions (never `keep`) until at
    /// most `capacity` are resident. Key bytes and counters stay.
    fn enforce_capacity(&mut self, capacity: usize, keep: &str) {
        loop {
            let live = self.tenants.values().filter(|t| t.live.is_some()).count();
            if live <= capacity {
                return;
            }
            let victim = self
                .tenants
                .iter()
                .filter(|(name, t)| t.live.is_some() && name.as_str() != keep)
                .min_by_key(|(_, t)| t.last_used)
                .map(|(name, _)| name.clone());
            let Some(victim) = victim else { return };
            if let Some(entry) = self.tenants.get_mut(&victim) {
                entry.live = None;
                entry.metrics.evictions += 1;
                self.total_evictions += 1;
            }
        }
    }
}

/// The capacity-bounded multi-tenant session registry.
pub struct SessionRegistry {
    capacity: usize,
    inner: Mutex<Inner>,
    runtime: RuntimeCounters,
}

impl SessionRegistry {
    /// A registry keeping at most `capacity` decoded sessions resident
    /// (clamped to at least 1).
    pub fn new(capacity: usize) -> SessionRegistry {
        SessionRegistry {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                tenants: HashMap::new(),
                clock: 0,
                total_evictions: 0,
            }),
            runtime: RuntimeCounters::new(),
        }
    }

    /// The configured live-session capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The server-wide resilience counters, shared with the accept loop
    /// and every connection thread (lock-free increments).
    pub fn runtime(&self) -> &RuntimeCounters {
        &self.runtime
    }

    /// Registers (or replaces) a tenant's sealed key bytes. The key is
    /// decoded immediately — both to validate it and to make the tenant
    /// resident — and its method name and attribute count are returned.
    ///
    /// # Errors
    ///
    /// [`ServerError::Rbt`] when the bytes do not decode as a sealed key
    /// file of any registered method.
    pub fn load_key(&self, tenant: &str, key_bytes: Vec<u8>) -> ServerResult<(String, usize)> {
        let (live, method, n_attributes) = decode_live(&key_bytes)?;
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        // Re-registering a known tenant (key replacement, keystore reload)
        // folds its history forward instead of resetting it.
        let mut metrics = TenantMetrics::default();
        if let Some(old) = inner.tenants.remove(tenant) {
            metrics.merge(&old.metrics);
        }
        inner.tenants.insert(
            tenant.to_string(),
            TenantEntry {
                key_bytes,
                live: Some(Arc::new(Mutex::new(live))),
                last_used: clock,
                metrics,
            },
        );
        inner.enforce_capacity(self.capacity, tenant);
        Ok((method.to_string(), n_attributes))
    }

    /// Loads every file in `dir` as a tenant key, with the file stem as
    /// the tenant id. Files are loaded in name order so capacity eviction
    /// is deterministic. Returns the number of tenants registered.
    ///
    /// # Errors
    ///
    /// [`ServerError::Io`] when the directory cannot be read;
    /// [`ServerError::Rbt`] (codec family) when any file fails to decode —
    /// a corrupt key directory refuses to serve rather than serving a
    /// subset.
    pub fn load_dir(&self, dir: &Path) -> ServerResult<usize> {
        let mut paths: Vec<_> = std::fs::read_dir(dir)
            .map_err(ServerError::Io)?
            .collect::<std::io::Result<Vec<_>>>()
            .map_err(ServerError::Io)?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.is_file())
            .collect();
        paths.sort();
        let mut loaded = 0;
        for path in paths {
            let tenant = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("tenant")
                .to_string();
            let bytes = std::fs::read(&path).map_err(ServerError::Io)?;
            self.load_key(&tenant, bytes)?;
            loaded += 1;
        }
        Ok(loaded)
    }

    /// Checks out the tenant's live session, re-decoding from the retained
    /// key bytes after an eviction.
    fn checkout(&self, tenant: &str) -> ServerResult<Arc<Mutex<LiveTransform>>> {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        let entry = inner
            .tenants
            .get_mut(tenant)
            .ok_or_else(|| ServerError::UnknownTenant {
                tenant: tenant.to_string(),
            })?;
        entry.last_used = clock;
        if let Some(live) = &entry.live {
            return Ok(Arc::clone(live));
        }
        let (live, _, _) = decode_live(&entry.key_bytes)?;
        let handle = Arc::new(Mutex::new(live));
        // Re-borrow: decode_live ran without the entry borrowed so the
        // borrow checker is satisfied, but the registry lock was held
        // throughout, so the entry cannot have changed.
        if let Some(entry) = inner.tenants.get_mut(tenant) {
            entry.live = Some(Arc::clone(&handle));
        }
        inner.enforce_capacity(self.capacity, tenant);
        Ok(handle)
    }

    fn note(&self, tenant: &str, rows: u64, drift_rows: u64, elapsed_us: u64) {
        let mut inner = self.inner.lock();
        if let Some(entry) = inner.tenants.get_mut(tenant) {
            entry.metrics.requests += 1;
            entry.metrics.rows += rows;
            entry.metrics.drift_rows += drift_rows;
            entry.metrics.latency.record(elapsed_us);
        }
    }

    /// Transforms a batch under `tenant`'s session, returning the released
    /// batch and how many of its rows drifted out of the fitted range.
    ///
    /// # Errors
    ///
    /// [`ServerError::UnknownTenant`] for unregistered tenants, otherwise
    /// whatever the release machinery reports (shape mismatch, …).
    pub fn transform(&self, tenant: &str, batch: &Dataset) -> ServerResult<(Dataset, u64)> {
        let handle = self.checkout(tenant)?;
        let start = Instant::now();
        let result = handle.lock().transform(batch);
        let elapsed_us = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        match result {
            Ok((released, drift_rows)) => {
                self.note(tenant, batch.n_rows() as u64, drift_rows, elapsed_us);
                Ok((released, drift_rows))
            }
            Err(e) => Err(e),
        }
    }

    /// Inverts a previously released batch under `tenant`'s session
    /// (owner-side recovery).
    ///
    /// # Errors
    ///
    /// [`ServerError::UnknownTenant`] for unregistered tenants;
    /// [`RbtError::NotInvertible`] (as [`ServerError::Rbt`]) for methods
    /// that destroy information by design.
    pub fn invert(&self, tenant: &str, batch: &Dataset) -> ServerResult<Dataset> {
        let handle = self.checkout(tenant)?;
        let start = Instant::now();
        let result = handle.lock().invert(batch);
        let elapsed_us = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        match result {
            Ok(recovered) => {
                self.note(tenant, 0, 0, elapsed_us);
                Ok(recovered)
            }
            Err(e) => Err(e),
        }
    }

    /// Drops a tenant entirely: key bytes, live session, and counters.
    /// Returns whether the tenant existed.
    pub fn evict(&self, tenant: &str) -> bool {
        self.inner.lock().tenants.remove(tenant).is_some()
    }

    /// A stats snapshot, tenants sorted by id.
    pub fn stats(&self) -> ServerStats {
        let inner = self.inner.lock();
        let mut tenants: Vec<TenantStats> = inner
            .tenants
            .iter()
            .map(|(name, t)| TenantStats {
                tenant: name.clone(),
                live: t.live.is_some(),
                requests: t.metrics.requests,
                rows: t.metrics.rows,
                drift_rows: t.metrics.drift_rows,
                evictions: t.metrics.evictions,
                p50_us: t.metrics.latency.quantile_upper_us(0.50),
                p99_us: t.metrics.latency.quantile_upper_us(0.99),
            })
            .collect();
        tenants.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        ServerStats {
            capacity: self.capacity as u64,
            live_sessions: tenants.iter().filter(|t| t.live).count() as u64,
            known_tenants: tenants.len() as u64,
            total_evictions: inner.total_evictions,
            runtime: self.runtime.snapshot(),
            tenants,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rbt_api::{PrivacyTransform, RbtMethod};
    use rbt_core::{PairwiseSecurityThreshold, RbtConfig};
    use rbt_linalg::Matrix;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn fit_key(seed: u64) -> (Vec<u8>, Dataset) {
        let rows = 12;
        let cols = 3;
        let data: Vec<f64> = (0..rows * cols)
            .map(|i| ((i * 37) % 101) as f64 - 50.0)
            .collect();
        let ds = Dataset::new(
            Matrix::from_vec(rows, cols, data).unwrap(),
            vec!["a".to_string(), "b".to_string(), "c".to_string()],
        )
        .unwrap();
        let method = RbtMethod::new(RbtConfig::uniform(
            PairwiseSecurityThreshold::uniform(0.05).unwrap(),
        ));
        let fit = method.fit(&ds, &mut rng(seed)).unwrap();
        (fit.fitted.to_bytes().unwrap(), ds)
    }

    #[test]
    fn unknown_tenant_is_a_typed_usage_error() {
        let registry = SessionRegistry::new(2);
        let (_, ds) = fit_key(1);
        let err = registry.transform("ghost", &ds).unwrap_err();
        assert!(matches!(err, ServerError::UnknownTenant { .. }));
        assert_eq!(err.code(), 2);
    }

    #[test]
    fn corrupt_key_bytes_are_rejected_with_codec_code() {
        let registry = SessionRegistry::new(2);
        let (mut key, _) = fit_key(2);
        let mid = key.len() / 2;
        key[mid] ^= 0xFF;
        let err = registry.load_key("t", key).unwrap_err();
        assert_eq!(err.code(), 4, "corrupt key must map to the codec family");
    }

    #[test]
    fn lru_eviction_reload_round_trips_bitwise() {
        let registry = SessionRegistry::new(1);
        let (key_a, ds_a) = fit_key(3);
        let (key_b, ds_b) = fit_key(4);
        registry.load_key("a", key_a).unwrap();
        let (before, _) = registry.transform("a", &ds_a).unwrap();

        // Loading b evicts a (capacity 1); touching a evicts b back.
        registry.load_key("b", key_b).unwrap();
        registry.transform("b", &ds_b).unwrap();
        let stats = registry.stats();
        assert_eq!(stats.live_sessions, 1);
        assert_eq!(stats.known_tenants, 2);
        assert!(stats.total_evictions >= 1);

        let (after, _) = registry.transform("a", &ds_a).unwrap();
        assert!(before.matrix().approx_eq(after.matrix(), 0.0));

        // Counters survived the eviction round-trip.
        let row_a = registry
            .stats()
            .tenants
            .into_iter()
            .find(|t| t.tenant == "a")
            .unwrap();
        assert_eq!(row_a.requests, 2);
        assert_eq!(row_a.evictions, 1);
    }

    #[test]
    fn explicit_evict_forgets_the_tenant() {
        let registry = SessionRegistry::new(2);
        let (key, ds) = fit_key(5);
        registry.load_key("t", key).unwrap();
        assert!(registry.evict("t"));
        assert!(!registry.evict("t"));
        assert!(matches!(
            registry.transform("t", &ds),
            Err(ServerError::UnknownTenant { .. })
        ));
    }
}
