//! # rbt-server — the multi-tenant release daemon
//!
//! The paper's trust model has a data owner releasing transformed data to
//! an untrusted party; ROADMAP item 1 turns the one-shot CLI workflow into
//! a long-lived serving layer. This crate is that layer:
//!
//! * [`wire`] — the `RBTW` length-prefixed frame protocol (magic, version,
//!   opcode, u32 body length, CRC-32 trailer), built on
//!   [`rbt_linalg::codec`]'s typed, non-panicking primitives;
//! * [`SessionRegistry`] — sealed key bytes per tenant as the source of
//!   truth, an LRU-bounded cache of decoded live sessions (any method in
//!   the [`rbt_api`] registry, via
//!   [`decode_fitted`](rbt_api::decode_fitted)), and per-tenant counters
//!   (requests, rows, drift rows, evictions, p50/p99 service time) that
//!   survive eviction;
//! * [`Server`] — a blocking TCP daemon, one reader + one worker thread
//!   per connection with a bounded in-flight window for backpressure;
//! * [`Client`] — the blocking client the CLI, the bench load generator,
//!   and the integration battery drive the daemon with.
//!
//! The conformance contract, pinned by `tests/server_integration.rs` at
//! the workspace root: a batch transformed through the server is
//! **bit-identical** to the same batch transformed by an in-process
//! [`Pipeline`](rbt_core::Pipeline)/`ReleaseSession`, for every tenant,
//! under concurrency, before and after LRU eviction; and every malformed
//! frame or mid-frame disconnect is rejected with a typed error while the
//! server keeps serving.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod metrics;
pub mod registry;
pub mod server;
pub mod wire;

pub use client::{Client, ClientError, ClientResult};
pub use metrics::{LatencyHistogram, ServerStats, TenantMetrics, TenantStats};
pub use registry::{ServerError, ServerResult, SessionRegistry};
pub use server::Server;
pub use wire::{Frame, Opcode, Request, Response, WireError, WireResult};
