//! # rbt-server — the multi-tenant release daemon
//!
//! The paper's trust model has a data owner releasing transformed data to
//! an untrusted party; ROADMAP item 1 turns the one-shot CLI workflow into
//! a long-lived serving layer. This crate is that layer:
//!
//! * [`wire`] — the `RBTW` length-prefixed frame protocol (magic, version,
//!   opcode, u32 body length, CRC-32 trailer), built on
//!   [`rbt_linalg::codec`]'s typed, non-panicking primitives;
//! * [`SessionRegistry`] — sealed key bytes per tenant as the source of
//!   truth, an LRU-bounded cache of decoded live sessions (any method in
//!   the [`rbt_api`] registry, via
//!   [`decode_fitted`](rbt_api::decode_fitted)), and per-tenant counters
//!   (requests, rows, drift rows, evictions, p50/p99 service time) that
//!   survive eviction;
//! * [`Server`] — the TCP daemon, on either of two connection cores
//!   behind one API ([`ServerConfig::core`]): the default [`reactor`] —
//!   a readiness-polled event loop owning every socket plus a fixed
//!   compute pool, so thousands of connections ride a handful of OS
//!   threads — or the legacy thread-per-connection core; both with a
//!   bounded in-flight window for backpressure, deadline enforcement
//!   (idle reaper, stall budgets, per-opcode queue deadlines), a
//!   connection cap, and graceful drain that answers every in-flight
//!   request before saying `GoingAway`;
//! * [`Client`] — the blocking client the CLI, the bench load generator,
//!   and the integration battery drive the daemon with — now with
//!   reconnect + exponential backoff, idempotent retry keyed by echoed
//!   request ids, and a circuit breaker;
//! * [`KeyStore`] — crash-safe key persistence: atomic
//!   temp-fsync-rename writes behind an intent journal replayed on open,
//!   quarantine (never abort) for corrupt entries, hot reload into the
//!   registry;
//! * [`faults`] — a seeded, deterministic fault-injection harness
//!   ([`FaultPlan`]) the chaos battery wraps around the wire to prove the
//!   conformance contract holds under stalls, torn writes, and mid-frame
//!   disconnects.
//!
//! The conformance contract, pinned by `tests/server_integration.rs` and
//! `tests/server_chaos.rs` at the workspace root: a batch transformed
//! through the server is **bit-identical** to the same batch transformed
//! by an in-process [`Pipeline`](rbt_core::Pipeline)/`ReleaseSession`,
//! for every tenant, under concurrency, before and after LRU eviction,
//! and under injected faults; and every malformed frame or mid-frame
//! disconnect is rejected with a typed error while the server keeps
//! serving.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod faults;
pub mod keystore;
pub mod metrics;
#[cfg(unix)]
pub mod reactor;
pub mod registry;
pub mod server;
pub mod wire;

pub use client::{Client, ClientError, ClientResult, RetryPolicy};
pub use faults::{FaultPlan, FaultyStream};
pub use keystore::{KeyStore, ReloadReport, ReplayReport};
pub use metrics::{
    LatencyHistogram, RuntimeCounters, RuntimeSnapshot, ServerStats, TenantMetrics, TenantStats,
};
pub use registry::{ServerError, ServerResult, SessionRegistry};
pub use server::{ConnAccounting, ConnectionCore, DrainReport, Server, ServerConfig};
pub use wire::{
    Frame, FrameAssembler, FrameEvent, Opcode, Request, Response, WireError, WireResult,
    CODE_UNAVAILABLE,
};
