//! The blocking TCP server: one accept loop, one reader + one worker
//! thread per connection, a bounded in-flight window between them.
//!
//! Fault containment is the design center, mirroring the codec's
//! reject-don't-crash contract at the connection level:
//!
//! * a **malformed frame** (bad magic, checksum mismatch, oversized
//!   length…) desynchronizes the byte stream, so the server sends one
//!   typed `Error` frame and closes *that connection* — the listener and
//!   every other connection keep serving;
//! * a **well-framed but undecodable body** does not desynchronize
//!   framing, so the server answers with an `Error` response and keeps the
//!   connection open;
//! * a **disconnect** mid-frame or mid-response just ends the connection's
//!   threads; the registry (a non-poisoning lock) is untouched.
//!
//! Backpressure: the reader thread parses frames and hands them to the
//! worker over a `sync_channel` whose depth is the per-connection
//! *in-flight window*. A client that pipelines more requests than the
//! window eventually blocks in the kernel's TCP buffers — memory on the
//! server stays bounded per connection.

use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;

use crate::registry::{ServerError, SessionRegistry};
use crate::wire::{self, Frame, Request, Response, WireError};

/// How the server answers a failed request.
fn error_response(e: &ServerError) -> Response {
    Response::Error {
        code: e.code(),
        message: e.to_string(),
    }
}

/// Decodes and serves one well-framed request.
fn process_frame(registry: &SessionRegistry, frame: &Frame) -> Response {
    let request = match Request::from_frame(frame) {
        Ok(request) => request,
        // A valid frame with an undecodable body: framing is intact, so
        // answer and keep the connection.
        Err(e) => {
            return Response::Error {
                code: 4,
                message: format!("bad request body: {e}"),
            }
        }
    };
    match request {
        Request::LoadKey { tenant, key_bytes } => match registry.load_key(&tenant, key_bytes) {
            Ok((method, n_attributes)) => Response::Loaded {
                method,
                n_attributes: n_attributes as u64,
            },
            Err(e) => error_response(&e),
        },
        Request::Transform { tenant, batch } => match registry.transform(&tenant, &batch) {
            Ok((released, out_of_range_rows)) => Response::Transformed {
                released,
                out_of_range_rows,
            },
            Err(e) => error_response(&e),
        },
        Request::Invert { tenant, batch } => match registry.invert(&tenant, &batch) {
            Ok(recovered) => Response::Inverted { recovered },
            Err(e) => error_response(&e),
        },
        Request::Stats => Response::Stats(registry.stats()),
        Request::EvictTenant { tenant } => Response::Evicted {
            existed: registry.evict(&tenant),
        },
        Request::Ping => Response::Pong,
    }
}

fn handle_connection(stream: TcpStream, registry: Arc<SessionRegistry>, window: usize) {
    let Ok(mut read_half) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = mpsc::sync_channel::<Result<Frame, WireError>>(window.max(1));
    let reader = thread::spawn(move || loop {
        match wire::read_frame(&mut read_half) {
            Ok(Some(frame)) => {
                if tx.send(Ok(frame)).is_err() {
                    return; // worker gone
                }
            }
            Ok(None) => return, // clean disconnect between frames
            Err(e) => {
                let _ = tx.send(Err(e));
                return; // the stream is desynchronized; stop reading
            }
        }
    });
    let mut write_half = stream;
    for item in rx {
        match item {
            Ok(frame) => {
                let response = process_frame(&registry, &frame);
                if wire::write_frame(&mut write_half, &response.to_frame()).is_err() {
                    break; // client went away mid-response
                }
            }
            Err(e) => {
                // Malformed frame: answer with the typed rejection
                // (best-effort) and drop the connection.
                let response = Response::Error {
                    code: 4,
                    message: format!("malformed frame: {e}"),
                };
                let _ = wire::write_frame(&mut write_half, &response.to_frame());
                break;
            }
        }
    }
    // Unblock the reader if it is still parked in a socket read, then
    // reap it.
    let _ = write_half.shutdown(Shutdown::Both);
    let _ = reader.join();
}

/// A running release server. Dropping (or calling
/// [`shutdown`](Server::shutdown) on) the handle stops the accept loop;
/// connections already open run until their clients disconnect.
pub struct Server {
    addr: SocketAddr,
    registry: Arc<SessionRegistry>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts accepting connections, `window` requests in flight per
    /// connection.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn spawn(
        addr: &str,
        registry: Arc<SessionRegistry>,
        window: usize,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let accept_registry = Arc::clone(&registry);
        let accept_thread = thread::spawn(move || {
            for conn in listener.incoming() {
                if stop_flag.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let registry = Arc::clone(&accept_registry);
                thread::spawn(move || handle_connection(stream, registry, window));
            }
        });
        Ok(Server {
            addr: local,
            registry,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (with the OS-assigned port when spawned on
    /// port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared registry this server serves from.
    pub fn registry(&self) -> &Arc<SessionRegistry> {
        &self.registry
    }

    /// Blocks until the accept loop exits (i.e. until another thread calls
    /// nothing — the loop runs until the process ends). Used by
    /// `rbt-cli serve`.
    pub fn wait(mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }

    /// Stops accepting new connections and reaps the accept thread.
    pub fn shutdown(mut self) {
        self.stop_accepting();
    }

    fn stop_accepting(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop_accepting();
        }
    }
}
