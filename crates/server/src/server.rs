//! The blocking TCP server: one accept loop, one reader + one worker
//! thread per connection, a bounded in-flight window between them — plus
//! the fault-tolerance layer: deadlines, an idle reaper, a connection cap,
//! and graceful drain.
//!
//! Fault containment is the design center, mirroring the codec's
//! reject-don't-crash contract at the connection level:
//!
//! * a **malformed frame** (bad magic, checksum mismatch, oversized
//!   length…) desynchronizes the byte stream, so the server sends one
//!   typed `Error` frame and closes *that connection* — the listener and
//!   every other connection keep serving;
//! * a **well-framed but undecodable body** does not desynchronize
//!   framing, so the server answers with an `Error` response and keeps the
//!   connection open;
//! * a **disconnect** mid-frame or mid-response just ends the connection's
//!   threads; the registry (a non-poisoning lock) is untouched;
//! * an **idle connection** is reaped after
//!   [`ServerConfig::idle_timeout`]; a peer that goes silent *mid-frame*
//!   is cut after [`ServerConfig::stall_budget`] — no reader thread is
//!   ever parked forever;
//! * a request that waits in the window past its per-opcode deadline is
//!   **shed** with a typed `Deadline` frame instead of being served stale;
//! * past [`ServerConfig::max_conns`] active connections, new arrivals are
//!   refused with a typed `Error` (code 8, unavailable) frame instead of
//!   spawning threads without bound.
//!
//! Graceful drain ([`Server::shutdown`]): the listener stops accepting,
//! each reader finishes sweeping the frames already buffered on its socket
//! and stops at the first idle tick, each worker answers everything in its
//! window, sends a final `GoingAway` frame, and exits. Connections that
//! outlive [`ServerConfig::drain_deadline`] are force-severed. Every
//! connection thread is then joined, so the returned [`DrainReport`] can
//! account for every thread ever spawned — the chaos battery asserts
//! `spawned == joined` to prove no thread leaks.
//!
//! Backpressure: the reader thread parses frames and hands them to the
//! worker over a `sync_channel` whose depth is the per-connection
//! *in-flight window*. A client that pipelines more requests than the
//! window eventually blocks in the kernel's TCP buffers — memory on the
//! server stays bounded per connection.

use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use rbt_protocol::{FederationConfig, FederationHub, Message as FedMessage, ProtocolError};

use crate::keystore::KeyStore;
use crate::registry::{ServerError, SessionRegistry};
use crate::wire::{
    self, Frame, FrameEvent, Opcode, Request, Response, WireError, CODE_UNAVAILABLE,
};

/// Tuning for the serving core's fault-tolerance layer. The defaults are
/// production-shaped; tests shrink them to make timeouts observable.
#[derive(Clone)]
pub struct ServerConfig {
    /// Per-connection in-flight window (requests buffered between reader
    /// and worker).
    pub window: usize,
    /// Socket read timeout, which doubles as the polling tick for the
    /// idle reaper and the stall detector.
    pub read_tick: Duration,
    /// Reap a connection after this long with no new frame.
    pub idle_timeout: Duration,
    /// Cut a peer that has been silent *mid-frame* for this long.
    pub stall_budget: Duration,
    /// Socket write timeout for responses.
    pub write_timeout: Duration,
    /// How long [`Server::shutdown`] waits for in-flight connections
    /// before force-severing them.
    pub drain_deadline: Duration,
    /// Maximum concurrent connections; arrivals past the cap are refused
    /// with a typed `Error` (code 8) frame.
    pub max_conns: usize,
    /// Queue-wait budget for data-plane requests (`LoadKey`, `Transform`,
    /// `Invert`, `ReloadKeys`).
    pub data_deadline: Duration,
    /// Queue-wait budget for control-plane requests (`Ping`, `Stats`,
    /// `EvictTenant`).
    pub control_deadline: Duration,
    /// Key store backing the `ReloadKeys` opcode; without one the opcode
    /// answers with a capability error.
    pub keystore: Option<Arc<KeyStore>>,
    /// Concurrent federated release sessions the embedded
    /// [`FederationHub`] admits; `FedOpen` past the cap is refused with a
    /// typed error.
    pub max_fed_sessions: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            window: 8,
            read_tick: Duration::from_millis(50),
            idle_timeout: Duration::from_secs(60),
            stall_budget: Duration::from_secs(5),
            write_timeout: Duration::from_secs(10),
            drain_deadline: Duration::from_secs(5),
            max_conns: 256,
            data_deadline: Duration::from_secs(30),
            control_deadline: Duration::from_secs(10),
            keystore: None,
            max_fed_sessions: 16,
        }
    }
}

impl ServerConfig {
    /// The queue-wait budget for a request opcode.
    pub fn deadline_for(&self, opcode: Opcode) -> Duration {
        match opcode {
            Opcode::LoadKey
            | Opcode::Transform
            | Opcode::Invert
            | Opcode::ReloadKeys
            | Opcode::FedOpen
            | Opcode::FedMsg => self.data_deadline,
            _ => self.control_deadline,
        }
    }
}

/// What a completed [`Server::shutdown`] drain did, for leak accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DrainReport {
    /// Connection handler threads spawned over the server's lifetime.
    pub spawned: u64,
    /// Handler threads joined by the drain — the chaos battery asserts
    /// this equals `spawned` (no thread leaks).
    pub joined: u64,
    /// Connections force-severed at the drain deadline.
    pub forced: u64,
}

/// State shared by the accept loop and every connection thread.
struct Shared {
    registry: Arc<SessionRegistry>,
    config: ServerConfig,
    draining: AtomicBool,
    /// Clones of every live connection's stream, for force-severing at
    /// the drain deadline. Keyed by connection id.
    live_conns: Mutex<HashMap<u64, TcpStream>>,
    spawned: AtomicU64,
    finished: AtomicU64,
    /// Hosts federated release sessions behind the `Fed*` opcodes.
    hub: Mutex<FederationHub>,
}

/// How the server answers a failed request.
fn error_response(e: &ServerError) -> Response {
    Response::Error {
        code: e.code(),
        message: e.to_string(),
    }
}

/// Maps a federation protocol failure onto the wire error-code taxonomy:
/// codec failures are code 4, shape violations code 5, session/config
/// usage errors code 2, everything else (state-machine rejections, data
/// and method failures) code 3.
fn fed_error(e: &ProtocolError) -> Response {
    let code = match e {
        ProtocolError::Decode(_) => 4,
        ProtocolError::ShapeMismatch(_) => 5,
        ProtocolError::InvalidConfig(_)
        | ProtocolError::UnknownSession(_)
        | ProtocolError::SessionExists(_)
        | ProtocolError::OwnerOutOfRange { .. }
        | ProtocolError::SessionMismatch { .. } => 2,
        _ => 3,
    };
    Response::Error {
        code,
        message: format!("federation: {e}"),
    }
}

/// Serves one decoded request.
fn process_request(shared: &Shared, request: Request) -> Response {
    let registry = &shared.registry;
    match request {
        Request::LoadKey { tenant, key_bytes } => match registry.load_key(&tenant, key_bytes) {
            Ok((method, n_attributes)) => Response::Loaded {
                method,
                n_attributes: n_attributes as u64,
            },
            Err(e) => error_response(&e),
        },
        Request::Transform { tenant, batch } => match registry.transform(&tenant, &batch) {
            Ok((released, out_of_range_rows)) => Response::Transformed {
                released,
                out_of_range_rows,
            },
            Err(e) => error_response(&e),
        },
        Request::Invert { tenant, batch } => match registry.invert(&tenant, &batch) {
            Ok(recovered) => Response::Inverted { recovered },
            Err(e) => error_response(&e),
        },
        Request::Stats => Response::Stats(registry.stats()),
        Request::EvictTenant { tenant } => Response::Evicted {
            existed: registry.evict(&tenant),
        },
        Request::Ping => Response::Pong,
        Request::ReloadKeys => match &shared.config.keystore {
            Some(store) => match store.load_into(registry) {
                Ok(report) => {
                    registry.runtime().reloads.fetch_add(1, Ordering::Relaxed);
                    Response::Reloaded {
                        loaded: report.loaded,
                        quarantined: report.quarantined,
                    }
                }
                Err(e) => Response::Error {
                    code: 3,
                    message: format!("key directory reload failed: {e}"),
                },
            },
            None => Response::Error {
                code: 7,
                message: "this server was not started with a key store".to_string(),
            },
        },
        Request::FedOpen { config } => {
            let mut r = rbt_linalg::codec::ByteReader::new(&config);
            match FederationConfig::decode_from(&mut r).and_then(|cfg| {
                r.expect_end()?;
                Ok(cfg)
            }) {
                Ok(cfg) => {
                    let session = cfg.session;
                    match shared.hub.lock().open(cfg) {
                        Ok(()) => Response::FedOpened { session },
                        Err(e) => fed_error(&e),
                    }
                }
                Err(e) => Response::Error {
                    code: 4,
                    message: format!("federation: undecodable session config: {e}"),
                },
            }
        }
        Request::FedMsg {
            session,
            owner,
            messages,
        } => {
            let mut decoded = Vec::with_capacity(messages.len());
            for bytes in &messages {
                match FedMessage::decode(bytes) {
                    Ok(msg) => decoded.push(msg),
                    Err(e) => return fed_error(&ProtocolError::Decode(e)),
                }
            }
            match shared.hub.lock().exchange(session, owner, decoded) {
                Ok(outbound) => Response::FedMsgs {
                    messages: outbound.iter().map(FedMessage::encode).collect(),
                },
                Err(e) => fed_error(&e),
            }
        }
        Request::FedResult { session } => match shared.hub.lock().result(session) {
            Ok(Some(summary)) => Response::FedSummary {
                summary: Some(
                    FedMessage::JointDataset {
                        session,
                        summary: summary.clone(),
                    }
                    .encode(),
                ),
            },
            Ok(None) => Response::FedSummary { summary: None },
            Err(e) => fed_error(&e),
        },
        Request::FedClose { session } => Response::FedClosed {
            existed: shared.hub.lock().close(session),
        },
        // Goodbye is intercepted by the worker loop before this point.
        Request::Goodbye => Response::GoingAway {
            message: "goodbye".to_string(),
        },
    }
}

/// What the reader hands the worker per frame: arrival time (for the
/// queue-wait deadline) and the parse outcome.
type ReaderItem = (Instant, Result<Frame, WireError>);

fn run_reader(mut read_half: TcpStream, tx: mpsc::SyncSender<ReaderItem>, shared: &Shared) {
    let runtime = shared.registry.runtime();
    let tick = shared.config.read_tick;
    let mut idle = Duration::ZERO;
    loop {
        match wire::read_frame_patient(&mut read_half, shared.config.stall_budget) {
            Ok(FrameEvent::Frame(frame)) => {
                idle = Duration::ZERO;
                if tx.send((Instant::now(), Ok(frame))).is_err() {
                    return; // worker gone
                }
            }
            Ok(FrameEvent::Idle) => {
                // During a drain this is the signal that the final sweep
                // is done: every frame the client managed to send before
                // the drain began has been handed to the worker.
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
                idle += tick;
                if idle >= shared.config.idle_timeout {
                    runtime.idle_reaped.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
            Ok(FrameEvent::CleanEof) => {
                runtime.disconnects.fetch_add(1, Ordering::Relaxed);
                return;
            }
            Ok(FrameEvent::Stalled) => {
                runtime.stalled.fetch_add(1, Ordering::Relaxed);
                let _ = tx.send((
                    Instant::now(),
                    Err(WireError::Io {
                        kind: std::io::ErrorKind::TimedOut,
                        message: format!(
                            "peer stalled mid-frame past the {:?} budget",
                            shared.config.stall_budget
                        ),
                    }),
                ));
                return;
            }
            Err(e) => {
                // Version skew is the one parse failure that does NOT
                // desynchronize the stream: the checksum is verified
                // before the version, so the whole frame was consumed.
                // Report it and keep reading — a mixed-version client
                // loses one request, not the connection.
                if matches!(&e, WireError::UnsupportedVersion { .. }) {
                    idle = Duration::ZERO;
                    if tx.send((Instant::now(), Err(e))).is_err() {
                        return; // worker gone
                    }
                    continue;
                }
                if matches!(&e, WireError::Io { kind, .. } if *kind == std::io::ErrorKind::UnexpectedEof)
                {
                    runtime.disconnects.fetch_add(1, Ordering::Relaxed);
                }
                let _ = tx.send((Instant::now(), Err(e)));
                return; // the stream is desynchronized; stop reading
            }
        }
    }
}

fn handle_connection(stream: TcpStream, shared: Arc<Shared>, conn_id: u64) {
    let runtime_ok = stream
        .set_read_timeout(Some(shared.config.read_tick))
        .and_then(|_| stream.set_write_timeout(Some(shared.config.write_timeout)))
        .and_then(|_| stream.set_nodelay(true))
        .is_ok();
    let read_half = stream.try_clone();
    let (Ok(read_half), true) = (read_half, runtime_ok) else {
        shared.live_conns.lock().remove(&conn_id);
        shared.finished.fetch_add(1, Ordering::SeqCst);
        return;
    };

    let (tx, rx) = mpsc::sync_channel::<ReaderItem>(shared.config.window.max(1));
    let reader_shared = Arc::clone(&shared);
    let reader = thread::spawn(move || run_reader(read_half, tx, &reader_shared));

    let runtime = shared.registry.runtime();
    let mut write_half = stream;
    let mut said_goodbye = false;
    for (arrival, item) in rx {
        match item {
            Ok(frame) => {
                let request_id = frame.request_id;
                let request = match Request::from_frame(&frame) {
                    Ok(request) => request,
                    // A valid frame with an undecodable body: framing is
                    // intact, so answer and keep the connection.
                    Err(e) => {
                        let response = Response::Error {
                            code: 4,
                            message: format!("bad request body: {e}"),
                        };
                        let frame = response.to_frame().with_request_id(request_id);
                        if wire::write_frame(&mut write_half, &frame).is_err() {
                            break;
                        }
                        continue;
                    }
                };
                if matches!(request, Request::Goodbye) {
                    // A clean departure: no response owed, no error frame.
                    runtime.disconnects.fetch_add(1, Ordering::Relaxed);
                    said_goodbye = true;
                    break;
                }
                let waited = arrival.elapsed();
                let budget = shared.config.deadline_for(frame.opcode);
                let response = if waited > budget {
                    // Shed rather than serve stale: the client has either
                    // timed out already or would rather retry elsewhere.
                    runtime.deadlines_shed.fetch_add(1, Ordering::Relaxed);
                    Response::Deadline {
                        waited_ms: waited.as_millis().min(u128::from(u64::MAX)) as u64,
                        budget_ms: budget.as_millis().min(u128::from(u64::MAX)) as u64,
                    }
                } else {
                    process_request(&shared, request)
                };
                let frame = response.to_frame().with_request_id(request_id);
                if wire::write_frame(&mut write_half, &frame).is_err() {
                    break; // client went away mid-response
                }
            }
            Err(e) => {
                runtime.malformed.fetch_add(1, Ordering::Relaxed);
                // A frame from an unsupported protocol version was fully
                // consumed (checksum before version), so framing is
                // intact: answer with the typed rejection and keep
                // serving the connection.
                if matches!(&e, WireError::UnsupportedVersion { .. }) {
                    let response = Response::Error {
                        code: 4,
                        message: e.to_string(),
                    };
                    if wire::write_frame(&mut write_half, &response.to_frame()).is_err() {
                        break;
                    }
                    continue;
                }
                // Malformed frame or mid-frame stall: answer with the
                // typed rejection (best-effort) and drop the connection.
                let response = Response::Error {
                    code: 4,
                    message: format!("malformed frame: {e}"),
                };
                let _ = wire::write_frame(&mut write_half, &response.to_frame());
                break;
            }
        }
    }
    // The reader swept everything the client had sent and the worker
    // answered it all. On a drain, say GoingAway so the client knows this
    // connection is done rather than dead.
    if shared.draining.load(Ordering::SeqCst) && !said_goodbye {
        let farewell = Response::GoingAway {
            message: "server draining".to_string(),
        };
        if wire::write_frame(&mut write_half, &farewell.to_frame()).is_ok() {
            runtime.drained.fetch_add(1, Ordering::Relaxed);
        }
    }
    // Unblock the reader if it is still parked in a socket read, then
    // reap it.
    let _ = write_half.shutdown(Shutdown::Both);
    let _ = reader.join();
    shared.live_conns.lock().remove(&conn_id);
    shared.finished.fetch_add(1, Ordering::SeqCst);
}

/// Writes a best-effort refusal frame on a connection that will not be
/// served, then closes it.
fn refuse(mut stream: TcpStream, response: Response, write_timeout: Duration) {
    let _ = stream.set_write_timeout(Some(write_timeout));
    let _ = stream.set_nodelay(true);
    let _ = wire::write_frame(&mut stream, &response.to_frame());
    let _ = stream.shutdown(Shutdown::Both);
}

/// A running release server. [`shutdown`](Server::shutdown) drains
/// gracefully; dropping the handle just stops the accept loop and lets
/// open connections run on detached threads.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<thread::JoinHandle<()>>,
    handles: Arc<Mutex<Vec<thread::JoinHandle<()>>>>,
}

impl Server {
    /// Binds `addr` and starts accepting with default tuning and the
    /// given per-connection in-flight `window`. See
    /// [`spawn_with`](Server::spawn_with) for full control.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn spawn(
        addr: &str,
        registry: Arc<SessionRegistry>,
        window: usize,
    ) -> std::io::Result<Server> {
        Server::spawn_with(
            addr,
            registry,
            ServerConfig {
                window,
                ..ServerConfig::default()
            },
        )
    }

    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts accepting connections under `config`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn spawn_with(
        addr: &str,
        registry: Arc<SessionRegistry>,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let hub = Mutex::new(FederationHub::new(config.max_fed_sessions));
        let shared = Arc::new(Shared {
            registry,
            config,
            draining: AtomicBool::new(false),
            live_conns: Mutex::new(HashMap::new()),
            spawned: AtomicU64::new(0),
            finished: AtomicU64::new(0),
            hub,
        });
        let handles = Arc::new(Mutex::new(Vec::new()));

        let stop_flag = Arc::clone(&stop);
        let accept_shared = Arc::clone(&shared);
        let accept_handles = Arc::clone(&handles);
        let accept_thread = thread::spawn(move || {
            let mut next_conn_id = 0u64;
            for conn in listener.incoming() {
                if stop_flag.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let runtime = accept_shared.registry.runtime();
                if accept_shared.draining.load(Ordering::SeqCst) {
                    runtime.refused.fetch_add(1, Ordering::Relaxed);
                    refuse(
                        stream,
                        Response::GoingAway {
                            message: "server draining".to_string(),
                        },
                        accept_shared.config.write_timeout,
                    );
                    continue;
                }
                let active = accept_shared.spawned.load(Ordering::SeqCst)
                    - accept_shared.finished.load(Ordering::SeqCst);
                if active >= accept_shared.config.max_conns as u64 {
                    runtime.refused.fetch_add(1, Ordering::Relaxed);
                    refuse(
                        stream,
                        Response::Error {
                            code: CODE_UNAVAILABLE,
                            message: format!(
                                "server at capacity ({} connections)",
                                accept_shared.config.max_conns
                            ),
                        },
                        accept_shared.config.write_timeout,
                    );
                    continue;
                }
                runtime.accepted.fetch_add(1, Ordering::Relaxed);
                let conn_id = next_conn_id;
                next_conn_id += 1;
                if let Ok(clone) = stream.try_clone() {
                    accept_shared.live_conns.lock().insert(conn_id, clone);
                }
                accept_shared.spawned.fetch_add(1, Ordering::SeqCst);
                let conn_shared = Arc::clone(&accept_shared);
                let handle = thread::spawn(move || handle_connection(stream, conn_shared, conn_id));
                accept_handles.lock().push(handle);
            }
        });
        Ok(Server {
            addr: local,
            shared,
            stop,
            accept_thread: Some(accept_thread),
            handles,
        })
    }

    /// The bound address (with the OS-assigned port when spawned on
    /// port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared registry this server serves from.
    pub fn registry(&self) -> &Arc<SessionRegistry> {
        &self.shared.registry
    }

    /// Blocks until the accept loop exits. Used by `rbt-cli serve`.
    pub fn wait(mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }

    fn stop_accepting(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop only re-checks the flag after a connection
        // lands, so wake it with one.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }

    /// Gracefully drains the server: stops accepting, lets every
    /// in-flight request in the bounded window complete (up to
    /// [`ServerConfig::drain_deadline`]), sends each surviving client a
    /// `GoingAway` frame, force-severs stragglers at the deadline, and
    /// joins every connection thread. The report accounts for every
    /// thread spawned, so callers can assert nothing leaked.
    pub fn shutdown(mut self) -> DrainReport {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.stop_accepting();

        let deadline = Instant::now() + self.shared.config.drain_deadline;
        let mut forced = 0u64;
        loop {
            let active = self.shared.spawned.load(Ordering::SeqCst)
                - self.shared.finished.load(Ordering::SeqCst);
            if active == 0 {
                break;
            }
            if Instant::now() >= deadline {
                // Out of patience: cut the remaining sockets. Their
                // threads observe the reset and exit; responses past this
                // point are lost by design, bounded by the deadline.
                let conns = self.shared.live_conns.lock();
                forced = conns.len() as u64;
                for stream in conns.values() {
                    let _ = stream.shutdown(Shutdown::Both);
                }
                drop(conns);
                break;
            }
            thread::sleep(Duration::from_millis(2));
        }

        let handles: Vec<_> = std::mem::take(&mut *self.handles.lock());
        let mut joined = 0u64;
        for handle in handles {
            if handle.join().is_ok() {
                joined += 1;
            }
        }
        DrainReport {
            spawned: self.shared.spawned.load(Ordering::SeqCst),
            joined,
            forced,
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop_accepting();
        }
    }
}
