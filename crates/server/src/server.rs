//! The TCP server: the [`Server`] front door, its configuration, and the
//! legacy *threaded* connection core — one accept loop, one reader + one
//! worker thread per connection, a bounded in-flight window between them —
//! plus the fault-tolerance layer: deadlines, an idle reaper, a connection
//! cap, and graceful drain.
//!
//! On Unix the default core is the readiness-polled event loop in
//! [`crate::reactor`] (selected by [`ServerConfig::core`], overridable
//! with `RBT_SERVER_CORE=reactor|threaded`): one thread owns every
//! socket, a fixed pool does the compute, and all the semantics below —
//! response bytes, counters, drain behaviour — are preserved exactly.
//! The threaded core described here remains the portable fallback and
//! the reference the reactor is held to.
//!
//! Fault containment is the design center, mirroring the codec's
//! reject-don't-crash contract at the connection level:
//!
//! * a **malformed frame** (bad magic, checksum mismatch, oversized
//!   length…) desynchronizes the byte stream, so the server sends one
//!   typed `Error` frame and closes *that connection* — the listener and
//!   every other connection keep serving;
//! * a **well-framed but undecodable body** does not desynchronize
//!   framing, so the server answers with an `Error` response and keeps the
//!   connection open;
//! * a **disconnect** mid-frame or mid-response just ends the connection's
//!   threads; the registry (a non-poisoning lock) is untouched;
//! * an **idle connection** is reaped after
//!   [`ServerConfig::idle_timeout`]; a peer that goes silent *mid-frame*
//!   is cut after [`ServerConfig::stall_budget`] — no reader thread is
//!   ever parked forever;
//! * a request that waits in the window past its per-opcode deadline is
//!   **shed** with a typed `Deadline` frame instead of being served stale;
//! * past [`ServerConfig::max_conns`] active connections, new arrivals are
//!   refused with a typed `Error` (code 8, unavailable) frame instead of
//!   spawning threads without bound.
//!
//! Graceful drain ([`Server::shutdown`]): the listener stops accepting,
//! each reader finishes sweeping the frames already buffered on its socket
//! and stops at the first idle tick, each worker answers everything in its
//! window, sends a final `GoingAway` frame, and exits. Connections that
//! outlive [`ServerConfig::drain_deadline`] are force-severed. Every
//! connection thread is then joined, so the returned [`DrainReport`] can
//! account for every thread ever spawned — the chaos battery asserts
//! `spawned == joined` to prove no thread leaks.
//!
//! Backpressure: the reader thread parses frames and hands them to the
//! worker over a `sync_channel` whose depth is the per-connection
//! *in-flight window*. A client that pipelines more requests than the
//! window eventually blocks in the kernel's TCP buffers — memory on the
//! server stays bounded per connection.

use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex as StdMutex};
use std::thread;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use rbt_protocol::{FederationConfig, FederationHub, Message as FedMessage, ProtocolError};

use crate::keystore::KeyStore;
use crate::registry::{ServerError, SessionRegistry};
use crate::wire::{
    self, Frame, FrameEvent, Opcode, Request, Response, WireError, CODE_UNAVAILABLE,
};

/// Which connection core [`Server::spawn_with`] runs.
///
/// Both cores speak the same wire protocol through the same request
/// engine, enforce the same lifecycle semantics (idle reaper, stall
/// budget, queue-wait deadlines, connection cap, graceful drain), and
/// produce bitwise-identical responses; they differ only in how sockets
/// are multiplexed onto OS threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnectionCore {
    /// One reader thread plus one worker thread per connection — two OS
    /// threads per client. Simple, but caps concurrent connections at the
    /// thread budget.
    Threaded,
    /// One event-loop thread readiness-polling every socket plus a fixed
    /// worker pool for transform compute (see [`crate::reactor`]). Serves
    /// thousands of connections on a handful of threads. Falls back to
    /// [`ConnectionCore::Threaded`] on non-Unix targets, where the
    /// `poll(2)` shim is unavailable.
    Reactor,
}

impl ConnectionCore {
    /// The default core: [`ConnectionCore::Reactor`] on Unix, overridable
    /// with the `RBT_SERVER_CORE` environment variable (`threaded` or
    /// `reactor`, case-insensitive); [`ConnectionCore::Threaded`]
    /// elsewhere.
    pub fn from_env() -> ConnectionCore {
        match std::env::var("RBT_SERVER_CORE") {
            Ok(v) if v.eq_ignore_ascii_case("threaded") => ConnectionCore::Threaded,
            Ok(v) if v.eq_ignore_ascii_case("reactor") => ConnectionCore::Reactor,
            _ => {
                if cfg!(unix) {
                    ConnectionCore::Reactor
                } else {
                    ConnectionCore::Threaded
                }
            }
        }
    }
}

/// Mid-run connection accounting, exposed by [`Server::accounting`] so
/// tests can assert lifecycle invariants (handles reaped, live count
/// bounded) *while the server runs*, not only at shutdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnAccounting {
    /// Connections admitted over the server's lifetime.
    pub spawned: u64,
    /// Connections fully retired (socket closed, resources reclaimed).
    pub finished: u64,
    /// Connections currently being served (`spawned - finished`).
    pub live: u64,
    /// Finished-but-unreaped handler threads still parked in the join
    /// backlog. The threaded core reaps in its accept loop, so under churn
    /// this stays bounded by the arrival rate since the last accept; the
    /// reactor core has no per-connection threads and always reports 0.
    pub handle_backlog: u64,
}

/// Tuning for the serving core's fault-tolerance layer. The defaults are
/// production-shaped; tests shrink them to make timeouts observable.
#[derive(Clone)]
pub struct ServerConfig {
    /// Per-connection in-flight window (requests buffered between reader
    /// and worker).
    pub window: usize,
    /// Socket read timeout, which doubles as the polling tick for the
    /// idle reaper and the stall detector.
    pub read_tick: Duration,
    /// Reap a connection after this long with no new frame.
    pub idle_timeout: Duration,
    /// Cut a peer that has been silent *mid-frame* for this long.
    pub stall_budget: Duration,
    /// Socket write timeout for responses.
    pub write_timeout: Duration,
    /// How long [`Server::shutdown`] waits for in-flight connections
    /// before force-severing them.
    pub drain_deadline: Duration,
    /// Maximum concurrent connections; arrivals past the cap are refused
    /// with a typed `Error` (code 8) frame.
    pub max_conns: usize,
    /// Queue-wait budget for data-plane requests (`LoadKey`, `Transform`,
    /// `Invert`, `ReloadKeys`).
    pub data_deadline: Duration,
    /// Queue-wait budget for control-plane requests (`Ping`, `Stats`,
    /// `EvictTenant`).
    pub control_deadline: Duration,
    /// Key store backing the `ReloadKeys` opcode; without one the opcode
    /// answers with a capability error.
    pub keystore: Option<Arc<KeyStore>>,
    /// Concurrent federated release sessions the embedded
    /// [`FederationHub`] admits; `FedOpen` past the cap is refused with a
    /// typed error.
    pub max_fed_sessions: usize,
    /// Which connection core to run; defaults to
    /// [`ConnectionCore::from_env`].
    pub core: ConnectionCore,
    /// Worker threads the reactor core uses for transform compute; `0`
    /// (the default) sizes the pool with
    /// [`rbt_linalg::pool::default_threads`], which honours the
    /// `RBT_THREADS` environment variable. Ignored by the threaded core,
    /// which spawns its workers per connection.
    pub worker_threads: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            window: 8,
            read_tick: Duration::from_millis(50),
            idle_timeout: Duration::from_secs(60),
            stall_budget: Duration::from_secs(5),
            write_timeout: Duration::from_secs(10),
            drain_deadline: Duration::from_secs(5),
            max_conns: 256,
            data_deadline: Duration::from_secs(30),
            control_deadline: Duration::from_secs(10),
            keystore: None,
            max_fed_sessions: 16,
            core: ConnectionCore::from_env(),
            worker_threads: 0,
        }
    }
}

impl ServerConfig {
    /// The queue-wait budget for a request opcode.
    pub fn deadline_for(&self, opcode: Opcode) -> Duration {
        match opcode {
            Opcode::LoadKey
            | Opcode::Transform
            | Opcode::Invert
            | Opcode::ReloadKeys
            | Opcode::FedOpen
            | Opcode::FedMsg => self.data_deadline,
            _ => self.control_deadline,
        }
    }
}

/// What a completed [`Server::shutdown`] drain did, for leak accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DrainReport {
    /// Connection handler threads spawned over the server's lifetime.
    pub spawned: u64,
    /// Handler threads joined by the drain — the chaos battery asserts
    /// this equals `spawned` (no thread leaks).
    pub joined: u64,
    /// Connections force-severed at the drain deadline.
    pub forced: u64,
}

/// State shared by the accept loop and every connection handler — both
/// cores route through it, so counters and the request engine behave
/// identically regardless of [`ConnectionCore`].
pub(crate) struct Shared {
    pub(crate) registry: Arc<SessionRegistry>,
    pub(crate) config: ServerConfig,
    pub(crate) draining: AtomicBool,
    /// Clones of every live connection's stream, for force-severing at
    /// the drain deadline. Keyed by connection id. The threaded core only:
    /// the reactor owns its sockets and severs them directly (a clone per
    /// connection would double the file-descriptor bill).
    pub(crate) live_conns: Mutex<HashMap<u64, TcpStream>>,
    pub(crate) spawned: AtomicU64,
    pub(crate) finished: AtomicU64,
    /// Handler threads reaped mid-run by the accept loop (threaded core).
    pub(crate) joined: AtomicU64,
    /// Parked-wait signal for [`Server::shutdown`]: every connection
    /// retirement bumps `finished` and notifies, so the drain wakes
    /// event-driven instead of busy-polling.
    pub(crate) done_lock: StdMutex<()>,
    pub(crate) done_cv: Condvar,
    /// Hosts federated release sessions behind the `Fed*` opcodes.
    pub(crate) hub: Mutex<FederationHub>,
}

impl Shared {
    /// Marks one connection fully retired and wakes any parked drain.
    pub(crate) fn retire_conn(&self) {
        self.finished.fetch_add(1, Ordering::SeqCst);
        // Taking the lock orders this notify against a drain that has
        // checked the counters but not yet parked, so no wakeup is lost.
        let _guard = self.done_lock.lock().unwrap_or_else(|e| e.into_inner());
        self.done_cv.notify_all();
    }
}

/// How the server answers a failed request.
fn error_response(e: &ServerError) -> Response {
    Response::Error {
        code: e.code(),
        message: e.to_string(),
    }
}

/// Maps a federation protocol failure onto the wire error-code taxonomy:
/// codec failures are code 4, shape violations code 5, session/config
/// usage errors code 2, everything else (state-machine rejections, data
/// and method failures) code 3.
pub(crate) fn fed_error(e: &ProtocolError) -> Response {
    let code = match e {
        ProtocolError::Decode(_) => 4,
        ProtocolError::ShapeMismatch(_) => 5,
        ProtocolError::InvalidConfig(_)
        | ProtocolError::UnknownSession(_)
        | ProtocolError::SessionExists(_)
        | ProtocolError::OwnerOutOfRange { .. }
        | ProtocolError::SessionMismatch { .. } => 2,
        _ => 3,
    };
    Response::Error {
        code,
        message: format!("federation: {e}"),
    }
}

/// Serves one decoded request.
pub(crate) fn process_request(shared: &Shared, request: Request) -> Response {
    let registry = &shared.registry;
    match request {
        Request::LoadKey { tenant, key_bytes } => match registry.load_key(&tenant, key_bytes) {
            Ok((method, n_attributes)) => Response::Loaded {
                method,
                n_attributes: n_attributes as u64,
            },
            Err(e) => error_response(&e),
        },
        Request::Transform { tenant, batch } => match registry.transform(&tenant, &batch) {
            Ok((released, out_of_range_rows)) => Response::Transformed {
                released,
                out_of_range_rows,
            },
            Err(e) => error_response(&e),
        },
        Request::Invert { tenant, batch } => match registry.invert(&tenant, &batch) {
            Ok(recovered) => Response::Inverted { recovered },
            Err(e) => error_response(&e),
        },
        Request::Stats => Response::Stats(registry.stats()),
        Request::EvictTenant { tenant } => Response::Evicted {
            existed: registry.evict(&tenant),
        },
        Request::Ping => Response::Pong,
        Request::ReloadKeys => match &shared.config.keystore {
            Some(store) => match store.load_into(registry) {
                Ok(report) => {
                    registry.runtime().reloads.fetch_add(1, Ordering::Relaxed);
                    Response::Reloaded {
                        loaded: report.loaded,
                        quarantined: report.quarantined,
                    }
                }
                Err(e) => Response::Error {
                    code: 3,
                    message: format!("key directory reload failed: {e}"),
                },
            },
            None => Response::Error {
                code: 7,
                message: "this server was not started with a key store".to_string(),
            },
        },
        Request::FedOpen { config } => {
            let mut r = rbt_linalg::codec::ByteReader::new(&config);
            match FederationConfig::decode_from(&mut r).and_then(|cfg| {
                r.expect_end()?;
                Ok(cfg)
            }) {
                Ok(cfg) => {
                    let session = cfg.session;
                    match shared.hub.lock().open(cfg) {
                        Ok(()) => Response::FedOpened { session },
                        Err(e) => fed_error(&e),
                    }
                }
                Err(e) => Response::Error {
                    code: 4,
                    message: format!("federation: undecodable session config: {e}"),
                },
            }
        }
        Request::FedMsg {
            session,
            owner,
            messages,
        } => {
            let mut decoded = Vec::with_capacity(messages.len());
            for bytes in &messages {
                match FedMessage::decode(bytes) {
                    Ok(msg) => decoded.push(msg),
                    Err(e) => return fed_error(&ProtocolError::Decode(e)),
                }
            }
            match shared.hub.lock().exchange(session, owner, decoded) {
                Ok(outbound) => Response::FedMsgs {
                    messages: outbound.iter().map(FedMessage::encode).collect(),
                },
                Err(e) => fed_error(&e),
            }
        }
        Request::FedResult { session } => match shared.hub.lock().result(session) {
            Ok(Some(summary)) => Response::FedSummary {
                summary: Some(
                    FedMessage::JointDataset {
                        session,
                        summary: summary.clone(),
                    }
                    .encode(),
                ),
            },
            Ok(None) => Response::FedSummary { summary: None },
            Err(e) => fed_error(&e),
        },
        Request::FedClose { session } => Response::FedClosed {
            existed: shared.hub.lock().close(session),
        },
        // Goodbye is intercepted by the worker loop before this point.
        Request::Goodbye => Response::GoingAway {
            message: "goodbye".to_string(),
        },
    }
}

/// What the reader hands the worker per frame: arrival time (for the
/// queue-wait deadline) and the parse outcome.
type ReaderItem = (Instant, Result<Frame, WireError>);

fn run_reader(
    mut read_half: TcpStream,
    tx: mpsc::SyncSender<ReaderItem>,
    shared: &Shared,
    departed: &AtomicBool,
) {
    let runtime = shared.registry.runtime();
    let tick = shared.config.read_tick;
    let mut idle = Duration::ZERO;
    loop {
        match wire::read_frame_patient(&mut read_half, shared.config.stall_budget) {
            Ok(FrameEvent::Frame(frame)) => {
                idle = Duration::ZERO;
                if tx.send((Instant::now(), Ok(frame))).is_err() {
                    return; // worker gone
                }
            }
            Ok(FrameEvent::Idle) => {
                // During a drain this is the signal that the final sweep
                // is done: every frame the client managed to send before
                // the drain began has been handed to the worker.
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
                idle += tick;
                if idle >= shared.config.idle_timeout {
                    runtime.idle_reaped.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
            Ok(FrameEvent::CleanEof) => {
                // Count the departure once per connection: a client that
                // says `Goodbye` and then closes is one disconnect, not
                // two, no matter whether the worker's interception or
                // this EOF lands first.
                if !departed.swap(true, Ordering::SeqCst) {
                    runtime.disconnects.fetch_add(1, Ordering::Relaxed);
                }
                return;
            }
            Ok(FrameEvent::Stalled) => {
                runtime.stalled.fetch_add(1, Ordering::Relaxed);
                let _ = tx.send((
                    Instant::now(),
                    Err(WireError::Io {
                        kind: std::io::ErrorKind::TimedOut,
                        message: format!(
                            "peer stalled mid-frame past the {:?} budget",
                            shared.config.stall_budget
                        ),
                    }),
                ));
                return;
            }
            Err(e) => {
                // Version skew is the one parse failure that does NOT
                // desynchronize the stream: the checksum is verified
                // before the version, so the whole frame was consumed.
                // Report it and keep reading — a mixed-version client
                // loses one request, not the connection.
                if matches!(&e, WireError::UnsupportedVersion { .. }) {
                    idle = Duration::ZERO;
                    if tx.send((Instant::now(), Err(e))).is_err() {
                        return; // worker gone
                    }
                    continue;
                }
                if matches!(&e, WireError::Io { kind, .. } if *kind == std::io::ErrorKind::UnexpectedEof)
                    && !departed.swap(true, Ordering::SeqCst)
                {
                    runtime.disconnects.fetch_add(1, Ordering::Relaxed);
                }
                let _ = tx.send((Instant::now(), Err(e)));
                return; // the stream is desynchronized; stop reading
            }
        }
    }
}

fn handle_connection(stream: TcpStream, shared: Arc<Shared>, conn_id: u64) {
    let runtime_ok = stream
        .set_read_timeout(Some(shared.config.read_tick))
        .and_then(|_| stream.set_write_timeout(Some(shared.config.write_timeout)))
        .and_then(|_| stream.set_nodelay(true))
        .is_ok();
    let read_half = stream.try_clone();
    let (Ok(read_half), true) = (read_half, runtime_ok) else {
        shared.live_conns.lock().remove(&conn_id);
        shared.retire_conn();
        return;
    };

    let (tx, rx) = mpsc::sync_channel::<ReaderItem>(shared.config.window.max(1));
    // One departure per connection, whichever side (reader EOF or worker
    // Goodbye interception) observes it first.
    let departed = Arc::new(AtomicBool::new(false));
    let reader_shared = Arc::clone(&shared);
    let reader_departed = Arc::clone(&departed);
    let reader = thread::spawn(move || run_reader(read_half, tx, &reader_shared, &reader_departed));

    let runtime = shared.registry.runtime();
    let mut write_half = stream;
    let mut said_goodbye = false;
    for (arrival, item) in rx {
        match item {
            Ok(frame) => {
                let request_id = frame.request_id;
                let request = match Request::from_frame(&frame) {
                    Ok(request) => request,
                    // A valid frame with an undecodable body: framing is
                    // intact, so answer and keep the connection.
                    Err(e) => {
                        let response = Response::Error {
                            code: 4,
                            message: format!("bad request body: {e}"),
                        };
                        let frame = response.to_frame().with_request_id(request_id);
                        if wire::write_frame(&mut write_half, &frame).is_err() {
                            break;
                        }
                        continue;
                    }
                };
                if matches!(request, Request::Goodbye) {
                    // A clean departure: no response owed, no error frame.
                    if !departed.swap(true, Ordering::SeqCst) {
                        runtime.disconnects.fetch_add(1, Ordering::Relaxed);
                    }
                    said_goodbye = true;
                    break;
                }
                let waited = arrival.elapsed();
                let budget = shared.config.deadline_for(frame.opcode);
                let response = if waited > budget {
                    // Shed rather than serve stale: the client has either
                    // timed out already or would rather retry elsewhere.
                    runtime.deadlines_shed.fetch_add(1, Ordering::Relaxed);
                    Response::Deadline {
                        waited_ms: waited.as_millis().min(u128::from(u64::MAX)) as u64,
                        budget_ms: budget.as_millis().min(u128::from(u64::MAX)) as u64,
                    }
                } else {
                    process_request(&shared, request)
                };
                let frame = response.to_frame().with_request_id(request_id);
                if wire::write_frame(&mut write_half, &frame).is_err() {
                    break; // client went away mid-response
                }
            }
            Err(e) => {
                runtime.malformed.fetch_add(1, Ordering::Relaxed);
                // A frame from an unsupported protocol version was fully
                // consumed (checksum before version), so framing is
                // intact: answer with the typed rejection and keep
                // serving the connection.
                if matches!(&e, WireError::UnsupportedVersion { .. }) {
                    let response = Response::Error {
                        code: 4,
                        message: e.to_string(),
                    };
                    if wire::write_frame(&mut write_half, &response.to_frame()).is_err() {
                        break;
                    }
                    continue;
                }
                // Malformed frame or mid-frame stall: answer with the
                // typed rejection (best-effort) and drop the connection.
                let response = Response::Error {
                    code: 4,
                    message: format!("malformed frame: {e}"),
                };
                let _ = wire::write_frame(&mut write_half, &response.to_frame());
                break;
            }
        }
    }
    // The reader swept everything the client had sent and the worker
    // answered it all. On a drain, say GoingAway so the client knows this
    // connection is done rather than dead.
    if shared.draining.load(Ordering::SeqCst) && !said_goodbye {
        let farewell = Response::GoingAway {
            message: "server draining".to_string(),
        };
        if wire::write_frame(&mut write_half, &farewell.to_frame()).is_ok() {
            runtime.drained.fetch_add(1, Ordering::Relaxed);
        }
    }
    // Unblock the reader if it is still parked in a socket read, then
    // reap it.
    let _ = write_half.shutdown(Shutdown::Both);
    let _ = reader.join();
    shared.live_conns.lock().remove(&conn_id);
    shared.retire_conn();
}

/// Writes a best-effort refusal frame on a connection that will not be
/// served, then closes it.
pub(crate) fn refuse(mut stream: TcpStream, response: Response, write_timeout: Duration) {
    let _ = stream.set_write_timeout(Some(write_timeout));
    let _ = stream.set_nodelay(true);
    let _ = wire::write_frame(&mut stream, &response.to_frame());
    let _ = stream.shutdown(Shutdown::Both);
}

/// A running release server on either connection core.
/// [`shutdown`](Server::shutdown) drains gracefully; dropping the handle
/// just stops accepting (the threaded core lets open connections run on
/// detached threads; the reactor severs them).
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    core: CoreHandle,
}

/// Core-specific runtime state behind a [`Server`].
enum CoreHandle {
    Threaded {
        stop: Arc<AtomicBool>,
        accept_thread: Option<thread::JoinHandle<()>>,
        handles: Arc<Mutex<Vec<thread::JoinHandle<()>>>>,
    },
    #[cfg(unix)]
    Reactor(crate::reactor::ReactorHandle),
}

impl Server {
    /// Binds `addr` and starts accepting with default tuning and the
    /// given per-connection in-flight `window`. See
    /// [`spawn_with`](Server::spawn_with) for full control.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn spawn(
        addr: &str,
        registry: Arc<SessionRegistry>,
        window: usize,
    ) -> std::io::Result<Server> {
        Server::spawn_with(
            addr,
            registry,
            ServerConfig {
                window,
                ..ServerConfig::default()
            },
        )
    }

    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving under `config`, on the connection core selected by
    /// [`ServerConfig::core`]. [`ConnectionCore::Reactor`] silently falls
    /// back to the threaded core on non-Unix targets, where the `poll(2)`
    /// shim is unavailable.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn spawn_with(
        addr: &str,
        registry: Arc<SessionRegistry>,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let hub = Mutex::new(FederationHub::new(config.max_fed_sessions));
        let shared = Arc::new(Shared {
            registry,
            config,
            draining: AtomicBool::new(false),
            live_conns: Mutex::new(HashMap::new()),
            spawned: AtomicU64::new(0),
            finished: AtomicU64::new(0),
            joined: AtomicU64::new(0),
            done_lock: StdMutex::new(()),
            done_cv: Condvar::new(),
            hub,
        });
        #[cfg(unix)]
        if shared.config.core == ConnectionCore::Reactor {
            let (local, handle) = crate::reactor::spawn(addr, Arc::clone(&shared))?;
            return Ok(Server {
                addr: local,
                shared,
                core: CoreHandle::Reactor(handle),
            });
        }
        Server::spawn_threaded(addr, shared)
    }

    /// The thread-per-connection core: one accept loop, one reader + one
    /// worker thread per connection.
    fn spawn_threaded(addr: &str, shared: Arc<Shared>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let handles: Arc<Mutex<Vec<thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let stop_flag = Arc::clone(&stop);
        let accept_shared = Arc::clone(&shared);
        let accept_handles = Arc::clone(&handles);
        let accept_thread = thread::spawn(move || {
            let mut next_conn_id = 0u64;
            for conn in listener.incoming() {
                if stop_flag.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let runtime = accept_shared.registry.runtime();
                if accept_shared.draining.load(Ordering::SeqCst) {
                    runtime.refused.fetch_add(1, Ordering::Relaxed);
                    refuse(
                        stream,
                        Response::GoingAway {
                            message: "server draining".to_string(),
                        },
                        accept_shared.config.write_timeout,
                    );
                    continue;
                }
                let active = accept_shared.spawned.load(Ordering::SeqCst)
                    - accept_shared.finished.load(Ordering::SeqCst);
                if active >= accept_shared.config.max_conns as u64 {
                    runtime.refused.fetch_add(1, Ordering::Relaxed);
                    refuse(
                        stream,
                        Response::Error {
                            code: CODE_UNAVAILABLE,
                            message: format!(
                                "server at capacity ({} connections)",
                                accept_shared.config.max_conns
                            ),
                        },
                        accept_shared.config.write_timeout,
                    );
                    continue;
                }
                runtime.accepted.fetch_add(1, Ordering::Relaxed);
                let conn_id = next_conn_id;
                next_conn_id += 1;
                if let Ok(clone) = stream.try_clone() {
                    accept_shared.live_conns.lock().insert(conn_id, clone);
                }
                accept_shared.spawned.fetch_add(1, Ordering::SeqCst);
                let conn_shared = Arc::clone(&accept_shared);
                let handle = thread::spawn(move || handle_connection(stream, conn_shared, conn_id));
                let mut handles = accept_handles.lock();
                // Reap handler threads that already finished, so a
                // long-running daemon under connection churn keeps a
                // bounded join backlog instead of growing it until
                // shutdown.
                let mut i = 0;
                while i < handles.len() {
                    if handles[i].is_finished() {
                        let done = handles.swap_remove(i);
                        if done.join().is_ok() {
                            accept_shared.joined.fetch_add(1, Ordering::SeqCst);
                        }
                    } else {
                        i += 1;
                    }
                }
                handles.push(handle);
            }
        });
        Ok(Server {
            addr: local,
            shared,
            core: CoreHandle::Threaded {
                stop,
                accept_thread: Some(accept_thread),
                handles,
            },
        })
    }

    /// The bound address (with the OS-assigned port when spawned on
    /// port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared registry this server serves from.
    pub fn registry(&self) -> &Arc<SessionRegistry> {
        &self.shared.registry
    }

    /// Mid-run connection accounting: admissions, retirements, live
    /// count, and the handler-thread join backlog. Valid at any point in
    /// the server's life, so tests can assert lifecycle invariants under
    /// churn rather than only after [`Server::shutdown`].
    pub fn accounting(&self) -> ConnAccounting {
        let spawned = self.shared.spawned.load(Ordering::SeqCst);
        let finished = self.shared.finished.load(Ordering::SeqCst);
        let handle_backlog = match &self.core {
            // Only threads that have already finished count: handles of
            // still-running connections are live, not backlog.
            CoreHandle::Threaded { handles, .. } => {
                handles.lock().iter().filter(|h| h.is_finished()).count() as u64
            }
            #[cfg(unix)]
            CoreHandle::Reactor(_) => 0,
        };
        ConnAccounting {
            spawned,
            finished,
            live: spawned.saturating_sub(finished),
            handle_backlog,
        }
    }

    /// Blocks until the accept loop exits. Used by `rbt-cli serve`.
    pub fn wait(mut self) {
        match &mut self.core {
            CoreHandle::Threaded { accept_thread, .. } => {
                if let Some(handle) = accept_thread.take() {
                    let _ = handle.join();
                }
            }
            #[cfg(unix)]
            CoreHandle::Reactor(handle) => handle.wait(),
        }
    }

    fn stop_accepting(&mut self) {
        let addr = self.addr;
        if let CoreHandle::Threaded {
            stop,
            accept_thread,
            ..
        } = &mut self.core
        {
            stop.store(true, Ordering::SeqCst);
            // The accept loop only re-checks the flag after a connection
            // lands, so wake it with one.
            let _ = TcpStream::connect(addr);
            if let Some(handle) = accept_thread.take() {
                let _ = handle.join();
            }
        }
    }

    /// Gracefully drains the server: stops accepting, lets every
    /// in-flight request in the bounded window complete (up to
    /// [`ServerConfig::drain_deadline`]), sends each surviving client a
    /// `GoingAway` frame, force-severs stragglers at the deadline, and
    /// retires every connection. The report accounts for every connection
    /// ever admitted, so callers can assert nothing leaked.
    pub fn shutdown(mut self) -> DrainReport {
        self.shared.draining.store(true, Ordering::SeqCst);
        #[cfg(unix)]
        if let CoreHandle::Reactor(handle) = &mut self.core {
            return handle.shutdown(&self.shared);
        }
        self.stop_accepting();

        let deadline = Instant::now() + self.shared.config.drain_deadline;
        let mut forced = 0u64;
        {
            // Parked wait: each connection retirement bumps `finished`
            // and notifies `done_cv`, so the drain wakes exactly when the
            // count changes instead of busy-polling it.
            let mut guard = self
                .shared
                .done_lock
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            loop {
                let active = self.shared.spawned.load(Ordering::SeqCst)
                    - self.shared.finished.load(Ordering::SeqCst);
                if active == 0 {
                    break;
                }
                let now = Instant::now();
                if now >= deadline {
                    // Out of patience: cut the remaining sockets. Their
                    // threads observe the reset and exit; responses past
                    // this point are lost by design, bounded by the
                    // deadline.
                    let conns = self.shared.live_conns.lock();
                    forced = conns.len() as u64;
                    for stream in conns.values() {
                        let _ = stream.shutdown(Shutdown::Both);
                    }
                    break;
                }
                let (g, _) = self
                    .shared
                    .done_cv
                    .wait_timeout(guard, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                guard = g;
            }
        }

        let handles = match &self.core {
            CoreHandle::Threaded { handles, .. } => Arc::clone(handles),
            #[cfg(unix)]
            CoreHandle::Reactor(_) => unreachable!("reactor shutdown returned above"),
        };
        let backlog: Vec<_> = std::mem::take(&mut *handles.lock());
        let mut joined = self.shared.joined.load(Ordering::SeqCst);
        for handle in backlog {
            if handle.join().is_ok() {
                joined += 1;
            }
        }
        DrainReport {
            spawned: self.shared.spawned.load(Ordering::SeqCst),
            joined,
            forced,
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let accepting = match &self.core {
            CoreHandle::Threaded { accept_thread, .. } => accept_thread.is_some(),
            #[cfg(unix)]
            CoreHandle::Reactor(_) => false,
        };
        if accepting {
            self.stop_accepting();
        }
        #[cfg(unix)]
        if let CoreHandle::Reactor(handle) = &mut self.core {
            handle.abort();
        }
    }
}
