//! Per-tenant service counters and the stats snapshot the `Stats` opcode
//! returns.
//!
//! Latency is tracked in a fixed-size log₂-bucketed histogram (power-of-two
//! microsecond buckets), so recording is O(1), the registry lock is held
//! only briefly, and the quantiles survive millions of requests without
//! allocation. Quantile reads report the *upper bound* of the matching
//! bucket — at most 2× the true value, which is plenty for spotting a
//! tenant whose p99 has fallen off a cliff. (The bench harness computes
//! exact client-side percentiles from raw samples; this histogram is the
//! always-on server-side view.)

use rbt_linalg::codec::{ByteReader, ByteWriter, DecodeError};

/// Number of log₂ buckets: bucket `i` holds latencies in
/// `[2^(i-1), 2^i)` microseconds (bucket 0 holds 0–1 µs). The last bucket
/// absorbs everything from ~2^38 µs (~3 days) up.
const BUCKETS: usize = 40;

/// A log₂-bucketed latency histogram over microseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    total: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            counts: [0; BUCKETS],
            total: 0,
        }
    }

    fn bucket(us: u64) -> usize {
        ((64 - us.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// Records one service time, in microseconds.
    pub fn record(&mut self, us: u64) {
        self.counts[Self::bucket(us)] += 1;
        self.total += 1;
    }

    /// Samples recorded so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The upper bound (in microseconds) of the bucket containing the
    /// `q`-quantile, or 0 when nothing has been recorded. `q` is clamped
    /// to `[0, 1]`.
    pub fn quantile_upper_us(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((self.total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Bucket i covers [2^(i-1), 2^i); report the upper bound.
                return if i >= 63 { u64::MAX } else { (1u64 << i) - 1 };
            }
        }
        u64::MAX
    }
}

/// Counters for one tenant, kept by the registry *outside* the live
/// session so they survive capacity (LRU) eviction and reload.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantMetrics {
    /// Transform + invert requests served.
    pub requests: u64,
    /// Rows transformed (drift is only counted on the transform path).
    pub rows: u64,
    /// Rows that fell outside the fitted normalization range.
    pub drift_rows: u64,
    /// Times this tenant's live session was evicted to make room.
    pub evictions: u64,
    /// Service-time distribution.
    pub latency: LatencyHistogram,
}

/// A per-tenant stats row, as returned by the `Stats` opcode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantStats {
    /// Tenant identifier.
    pub tenant: String,
    /// Whether a decoded session is currently resident.
    pub live: bool,
    /// Transform + invert requests served.
    pub requests: u64,
    /// Rows transformed.
    pub rows: u64,
    /// Rows that fell outside the fitted normalization range.
    pub drift_rows: u64,
    /// Times this tenant's live session was LRU-evicted.
    pub evictions: u64,
    /// Median service time (bucket upper bound), microseconds.
    pub p50_us: u64,
    /// 99th-percentile service time (bucket upper bound), microseconds.
    pub p99_us: u64,
}

/// The full stats snapshot: server-level gauges plus one row per tenant,
/// sorted by tenant id for deterministic output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerStats {
    /// Maximum number of resident (decoded) sessions.
    pub capacity: u64,
    /// Currently resident sessions.
    pub live_sessions: u64,
    /// Registered tenants (resident or not).
    pub known_tenants: u64,
    /// LRU evictions since the server started.
    pub total_evictions: u64,
    /// Per-tenant rows.
    pub tenants: Vec<TenantStats>,
}

impl ServerStats {
    /// Appends the snapshot to a wire body.
    pub fn encode_into(&self, w: &mut ByteWriter) {
        w.put_u64(self.capacity);
        w.put_u64(self.live_sessions);
        w.put_u64(self.known_tenants);
        w.put_u64(self.total_evictions);
        w.put_usize(self.tenants.len());
        for t in &self.tenants {
            w.put_str(&t.tenant);
            w.put_bool(t.live);
            w.put_u64(t.requests);
            w.put_u64(t.rows);
            w.put_u64(t.drift_rows);
            w.put_u64(t.evictions);
            w.put_u64(t.p50_us);
            w.put_u64(t.p99_us);
        }
    }

    /// Reads a snapshot written by [`ServerStats::encode_into`].
    ///
    /// # Errors
    ///
    /// Returns the underlying [`DecodeError`] on truncated or malformed
    /// input, including a tenant count that exceeds the remaining bytes.
    pub fn decode_from(r: &mut ByteReader<'_>) -> Result<ServerStats, DecodeError> {
        let capacity = r.take_u64()?;
        let live_sessions = r.take_u64()?;
        let known_tenants = r.take_u64()?;
        let total_evictions = r.take_u64()?;
        let n = r.take_usize()?;
        // Each row is at least 53 bytes (4-byte name prefix + flag + 6 u64s).
        if n.checked_mul(53)
            .map(|need| need > r.remaining())
            .unwrap_or(true)
        {
            return Err(DecodeError::Malformed {
                offset: r.position(),
                message: format!("tenant count {n} exceeds the remaining input"),
            });
        }
        let mut tenants = Vec::with_capacity(n);
        for _ in 0..n {
            tenants.push(TenantStats {
                tenant: r.take_str()?.to_string(),
                live: r.take_bool()?,
                requests: r.take_u64()?,
                rows: r.take_u64()?,
                drift_rows: r.take_u64()?,
                evictions: r.take_u64()?,
                p50_us: r.take_u64()?,
                p99_us: r.take_u64()?,
            });
        }
        Ok(ServerStats {
            capacity,
            live_sessions,
            known_tenants,
            total_evictions,
            tenants,
        })
    }

    /// A small fixed snapshot for codec tests.
    #[cfg(test)]
    pub(crate) fn sample_for_tests() -> ServerStats {
        ServerStats {
            capacity: 4,
            live_sessions: 2,
            known_tenants: 3,
            total_evictions: 5,
            tenants: vec![
                TenantStats {
                    tenant: "hospital-a".to_string(),
                    live: true,
                    requests: 10,
                    rows: 1000,
                    drift_rows: 7,
                    evictions: 2,
                    p50_us: 127,
                    p99_us: 511,
                },
                TenantStats {
                    tenant: "hospital-b".to_string(),
                    live: false,
                    requests: 1,
                    rows: 5,
                    drift_rows: 0,
                    evictions: 3,
                    p50_us: 63,
                    p99_us: 63,
                },
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_monotone_and_quantiles_bound_the_samples() {
        let mut h = LatencyHistogram::new();
        for us in [0u64, 1, 2, 3, 10, 100, 1000, 10_000, 100_000] {
            h.record(us);
        }
        assert_eq!(h.total(), 9);
        // p100 upper bound must cover the largest sample.
        assert!(h.quantile_upper_us(1.0) >= 100_000);
        // p50 of this set sits at sample 10 → bucket upper bound 15.
        assert_eq!(h.quantile_upper_us(0.5), 15);
        // Empty histogram reports 0.
        assert_eq!(LatencyHistogram::new().quantile_upper_us(0.99), 0);
    }

    #[test]
    fn quantile_upper_bound_is_within_2x() {
        let mut h = LatencyHistogram::new();
        for _ in 0..1000 {
            h.record(300);
        }
        let p99 = h.quantile_upper_us(0.99);
        assert!((300..=600).contains(&p99), "p99 {p99} not within 2x of 300");
    }

    #[test]
    fn stats_round_trip() {
        let stats = ServerStats::sample_for_tests();
        let mut w = ByteWriter::new();
        stats.encode_into(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = ServerStats::decode_from(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(back, stats);
    }

    #[test]
    fn stats_oversized_tenant_count_is_rejected() {
        let stats = ServerStats::sample_for_tests();
        let mut w = ByteWriter::new();
        stats.encode_into(&mut w);
        let mut bytes = w.into_bytes();
        // The tenant count lives at offset 32; inflate it.
        bytes[32..40].copy_from_slice(&u64::MAX.to_le_bytes());
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            ServerStats::decode_from(&mut r),
            Err(DecodeError::Malformed { .. })
        ));
    }
}
