//! Per-tenant service counters and the stats snapshot the `Stats` opcode
//! returns.
//!
//! Latency is tracked in a fixed-size log₂-bucketed histogram (power-of-two
//! microsecond buckets), so recording is O(1), the registry lock is held
//! only briefly, and the quantiles survive millions of requests without
//! allocation. Quantile reads report the *upper bound* of the matching
//! bucket — at most 2× the true value, which is plenty for spotting a
//! tenant whose p99 has fallen off a cliff. (The bench harness computes
//! exact client-side percentiles from raw samples; this histogram is the
//! always-on server-side view.)

use std::sync::atomic::{AtomicU64, Ordering};

use rbt_linalg::codec::{ByteReader, ByteWriter, DecodeError};

/// Number of log₂ buckets: bucket `i` holds latencies in
/// `[2^(i-1), 2^i)` microseconds (bucket 0 holds 0–1 µs). The last bucket
/// absorbs everything from ~2^38 µs (~3 days) up.
const BUCKETS: usize = 40;

/// A log₂-bucketed latency histogram over microseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    total: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            counts: [0; BUCKETS],
            total: 0,
        }
    }

    fn bucket(us: u64) -> usize {
        ((64 - us.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// Records one service time, in microseconds.
    pub fn record(&mut self, us: u64) {
        self.counts[Self::bucket(us)] += 1;
        self.total += 1;
    }

    /// Samples recorded so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Folds another histogram into this one, bucket by bucket. Used when
    /// a tenant is re-registered (keystore reload, key replacement) so the
    /// service-time history is carried over rather than reset.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.total += other.total;
    }

    /// The upper bound (in microseconds) of the bucket containing the
    /// `q`-quantile, or 0 when nothing has been recorded. `q` is clamped
    /// to `[0, 1]`.
    pub fn quantile_upper_us(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((self.total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Bucket i covers [2^(i-1), 2^i); report the upper bound.
                return if i >= 63 { u64::MAX } else { (1u64 << i) - 1 };
            }
        }
        u64::MAX
    }
}

/// Counters for one tenant, kept by the registry *outside* the live
/// session so they survive capacity (LRU) eviction and reload.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantMetrics {
    /// Transform + invert requests served.
    pub requests: u64,
    /// Rows transformed (drift is only counted on the transform path).
    pub rows: u64,
    /// Rows that fell outside the fitted normalization range.
    pub drift_rows: u64,
    /// Times this tenant's live session was evicted to make room.
    pub evictions: u64,
    /// Service-time distribution.
    pub latency: LatencyHistogram,
}

impl TenantMetrics {
    /// Folds `other`'s counters into this one. The registry calls this when
    /// a tenant that already has history is re-registered, so eviction and
    /// reload never zero a tenant's counters.
    pub fn merge(&mut self, other: &TenantMetrics) {
        self.requests += other.requests;
        self.rows += other.rows;
        self.drift_rows += other.drift_rows;
        self.evictions += other.evictions;
        self.latency.merge(&other.latency);
    }
}

/// Server-wide resilience counters, updated lock-free by the accept loop
/// and every connection thread. The `Stats` opcode reports a
/// [`RuntimeSnapshot`] of these alongside the per-tenant rows.
#[derive(Debug, Default)]
pub struct RuntimeCounters {
    /// Connections accepted.
    pub accepted: AtomicU64,
    /// Connections refused because the server was at `max_conns` or
    /// draining.
    pub refused: AtomicU64,
    /// Connections reaped by the idle reaper.
    pub idle_reaped: AtomicU64,
    /// Connections severed because the peer stalled mid-frame.
    pub stalled: AtomicU64,
    /// Requests shed because they waited past their per-opcode deadline.
    pub deadlines_shed: AtomicU64,
    /// Malformed frames that closed a connection.
    pub malformed: AtomicU64,
    /// Connections that ended with a peer disconnect (clean or mid-frame).
    pub disconnects: AtomicU64,
    /// Connections that completed a graceful drain (got `GoingAway`).
    pub drained: AtomicU64,
    /// Key-directory hot reloads served.
    pub reloads: AtomicU64,
}

impl RuntimeCounters {
    /// A zeroed counter block.
    pub fn new() -> RuntimeCounters {
        RuntimeCounters::default()
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> RuntimeSnapshot {
        RuntimeSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            refused: self.refused.load(Ordering::Relaxed),
            idle_reaped: self.idle_reaped.load(Ordering::Relaxed),
            stalled: self.stalled.load(Ordering::Relaxed),
            deadlines_shed: self.deadlines_shed.load(Ordering::Relaxed),
            malformed: self.malformed.load(Ordering::Relaxed),
            disconnects: self.disconnects.load(Ordering::Relaxed),
            drained: self.drained.load(Ordering::Relaxed),
            reloads: self.reloads.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time values of [`RuntimeCounters`], carried in [`ServerStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeSnapshot {
    /// Connections accepted.
    pub accepted: u64,
    /// Connections refused (at capacity or draining).
    pub refused: u64,
    /// Connections reaped for idleness.
    pub idle_reaped: u64,
    /// Connections severed for stalling mid-frame.
    pub stalled: u64,
    /// Requests shed past their deadline.
    pub deadlines_shed: u64,
    /// Malformed frames that closed a connection.
    pub malformed: u64,
    /// Peer disconnects.
    pub disconnects: u64,
    /// Connections drained gracefully.
    pub drained: u64,
    /// Key-directory hot reloads served.
    pub reloads: u64,
}

/// A per-tenant stats row, as returned by the `Stats` opcode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantStats {
    /// Tenant identifier.
    pub tenant: String,
    /// Whether a decoded session is currently resident.
    pub live: bool,
    /// Transform + invert requests served.
    pub requests: u64,
    /// Rows transformed.
    pub rows: u64,
    /// Rows that fell outside the fitted normalization range.
    pub drift_rows: u64,
    /// Times this tenant's live session was LRU-evicted.
    pub evictions: u64,
    /// Median service time (bucket upper bound), microseconds.
    pub p50_us: u64,
    /// 99th-percentile service time (bucket upper bound), microseconds.
    pub p99_us: u64,
}

/// The full stats snapshot: server-level gauges plus one row per tenant,
/// sorted by tenant id for deterministic output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerStats {
    /// Maximum number of resident (decoded) sessions.
    pub capacity: u64,
    /// Currently resident sessions.
    pub live_sessions: u64,
    /// Registered tenants (resident or not).
    pub known_tenants: u64,
    /// LRU evictions since the server started.
    pub total_evictions: u64,
    /// Server-wide resilience counters.
    pub runtime: RuntimeSnapshot,
    /// Per-tenant rows.
    pub tenants: Vec<TenantStats>,
}

impl ServerStats {
    /// Appends the snapshot to a wire body.
    pub fn encode_into(&self, w: &mut ByteWriter) {
        w.put_u64(self.capacity);
        w.put_u64(self.live_sessions);
        w.put_u64(self.known_tenants);
        w.put_u64(self.total_evictions);
        w.put_u64(self.runtime.accepted);
        w.put_u64(self.runtime.refused);
        w.put_u64(self.runtime.idle_reaped);
        w.put_u64(self.runtime.stalled);
        w.put_u64(self.runtime.deadlines_shed);
        w.put_u64(self.runtime.malformed);
        w.put_u64(self.runtime.disconnects);
        w.put_u64(self.runtime.drained);
        w.put_u64(self.runtime.reloads);
        w.put_usize(self.tenants.len());
        for t in &self.tenants {
            w.put_str(&t.tenant);
            w.put_bool(t.live);
            w.put_u64(t.requests);
            w.put_u64(t.rows);
            w.put_u64(t.drift_rows);
            w.put_u64(t.evictions);
            w.put_u64(t.p50_us);
            w.put_u64(t.p99_us);
        }
    }

    /// Reads a snapshot written by [`ServerStats::encode_into`].
    ///
    /// # Errors
    ///
    /// Returns the underlying [`DecodeError`] on truncated or malformed
    /// input, including a tenant count that exceeds the remaining bytes.
    pub fn decode_from(r: &mut ByteReader<'_>) -> Result<ServerStats, DecodeError> {
        let capacity = r.take_u64()?;
        let live_sessions = r.take_u64()?;
        let known_tenants = r.take_u64()?;
        let total_evictions = r.take_u64()?;
        let runtime = RuntimeSnapshot {
            accepted: r.take_u64()?,
            refused: r.take_u64()?,
            idle_reaped: r.take_u64()?,
            stalled: r.take_u64()?,
            deadlines_shed: r.take_u64()?,
            malformed: r.take_u64()?,
            disconnects: r.take_u64()?,
            drained: r.take_u64()?,
            reloads: r.take_u64()?,
        };
        let n = r.take_usize()?;
        // Each row is at least 53 bytes (4-byte name prefix + flag + 6 u64s).
        if n.checked_mul(53)
            .map(|need| need > r.remaining())
            .unwrap_or(true)
        {
            return Err(DecodeError::Malformed {
                offset: r.position(),
                message: format!("tenant count {n} exceeds the remaining input"),
            });
        }
        let mut tenants = Vec::with_capacity(n);
        for _ in 0..n {
            tenants.push(TenantStats {
                tenant: r.take_str()?.to_string(),
                live: r.take_bool()?,
                requests: r.take_u64()?,
                rows: r.take_u64()?,
                drift_rows: r.take_u64()?,
                evictions: r.take_u64()?,
                p50_us: r.take_u64()?,
                p99_us: r.take_u64()?,
            });
        }
        Ok(ServerStats {
            capacity,
            live_sessions,
            known_tenants,
            total_evictions,
            runtime,
            tenants,
        })
    }

    /// A small fixed snapshot for codec tests.
    #[cfg(test)]
    pub(crate) fn sample_for_tests() -> ServerStats {
        ServerStats {
            capacity: 4,
            live_sessions: 2,
            known_tenants: 3,
            total_evictions: 5,
            runtime: RuntimeSnapshot {
                accepted: 11,
                refused: 1,
                idle_reaped: 2,
                stalled: 1,
                deadlines_shed: 3,
                malformed: 4,
                disconnects: 5,
                drained: 6,
                reloads: 7,
            },
            tenants: vec![
                TenantStats {
                    tenant: "hospital-a".to_string(),
                    live: true,
                    requests: 10,
                    rows: 1000,
                    drift_rows: 7,
                    evictions: 2,
                    p50_us: 127,
                    p99_us: 511,
                },
                TenantStats {
                    tenant: "hospital-b".to_string(),
                    live: false,
                    requests: 1,
                    rows: 5,
                    drift_rows: 0,
                    evictions: 3,
                    p50_us: 63,
                    p99_us: 63,
                },
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn histogram_buckets_are_monotone_and_quantiles_bound_the_samples() {
        let mut h = LatencyHistogram::new();
        for us in [0u64, 1, 2, 3, 10, 100, 1000, 10_000, 100_000] {
            h.record(us);
        }
        assert_eq!(h.total(), 9);
        // p100 upper bound must cover the largest sample.
        assert!(h.quantile_upper_us(1.0) >= 100_000);
        // p50 of this set sits at sample 10 → bucket upper bound 15.
        assert_eq!(h.quantile_upper_us(0.5), 15);
        // Empty histogram reports 0.
        assert_eq!(LatencyHistogram::new().quantile_upper_us(0.99), 0);
    }

    #[test]
    fn quantile_upper_bound_is_within_2x() {
        let mut h = LatencyHistogram::new();
        for _ in 0..1000 {
            h.record(300);
        }
        let p99 = h.quantile_upper_us(0.99);
        assert!((300..=600).contains(&p99), "p99 {p99} not within 2x of 300");
    }

    #[test]
    fn stats_round_trip() {
        let stats = ServerStats::sample_for_tests();
        let mut w = ByteWriter::new();
        stats.encode_into(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = ServerStats::decode_from(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(back, stats);
    }

    #[test]
    fn tenant_metrics_merge_sums_every_counter() {
        let mut a = TenantMetrics {
            requests: 3,
            rows: 30,
            drift_rows: 1,
            evictions: 2,
            latency: LatencyHistogram::new(),
        };
        a.latency.record(100);
        let mut b = TenantMetrics {
            requests: 5,
            rows: 50,
            drift_rows: 4,
            evictions: 0,
            latency: LatencyHistogram::new(),
        };
        b.latency.record(100);
        b.latency.record(9000);
        a.merge(&b);
        assert_eq!(a.requests, 8);
        assert_eq!(a.rows, 80);
        assert_eq!(a.drift_rows, 5);
        assert_eq!(a.evictions, 2);
        assert_eq!(a.latency.total(), 3);
        assert!(a.latency.quantile_upper_us(1.0) >= 9000);
    }

    #[test]
    fn runtime_counters_snapshot_reflects_increments() {
        let c = RuntimeCounters::new();
        c.accepted.fetch_add(3, Ordering::Relaxed);
        c.refused.fetch_add(1, Ordering::Relaxed);
        c.drained.fetch_add(2, Ordering::Relaxed);
        let snap = c.snapshot();
        assert_eq!(snap.accepted, 3);
        assert_eq!(snap.refused, 1);
        assert_eq!(snap.drained, 2);
        assert_eq!(snap.malformed, 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        // Bucket boundaries: below the saturation point of the last
        // bucket (2^39 µs, ~6 days), the reported quantile upper bound
        // always covers the sample and is within 2x above it (the
        // log2-bucket guarantee) for any sample >= 1 µs.
        #[test]
        fn bucket_upper_bound_brackets_every_sample(us in 0u64..1 << (BUCKETS - 1)) {
            let mut h = LatencyHistogram::new();
            h.record(us);
            let upper = h.quantile_upper_us(1.0);
            prop_assert!(upper >= us, "upper {upper} < sample {us}");
            if us >= 1 {
                prop_assert!(upper < us.saturating_mul(2),
                    "upper {upper} not within 2x of {us}");
            }
        }

        // Beyond the last bucket everything saturates into the same
        // terminal bucket — no panic, no wraparound.
        #[test]
        fn bucket_saturates_past_the_last_boundary(us in (1u64 << (BUCKETS - 1))..u64::MAX) {
            let mut h = LatencyHistogram::new();
            h.record(us);
            prop_assert_eq!(h.quantile_upper_us(1.0), (1u64 << (BUCKETS - 1)) - 1);
        }

        // Bucket assignment is monotone: a larger sample never lands in a
        // smaller bucket.
        #[test]
        fn bucket_assignment_is_monotone(a in 0u64..1 << 40, b in 0u64..1 << 40) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(LatencyHistogram::bucket(lo) <= LatencyHistogram::bucket(hi));
        }

        // Merging two histograms is exactly equivalent to recording every
        // sample into one histogram — the merge-on-eviction path cannot
        // lose or invent samples.
        #[test]
        fn merge_equals_recording_into_one(
            xs in prop::collection::vec(0u64..1 << 30, 0..64),
            ys in prop::collection::vec(0u64..1 << 30, 0..64),
        ) {
            let mut separate_a = LatencyHistogram::new();
            let mut separate_b = LatencyHistogram::new();
            let mut combined = LatencyHistogram::new();
            for &x in &xs {
                separate_a.record(x);
                combined.record(x);
            }
            for &y in &ys {
                separate_b.record(y);
                combined.record(y);
            }
            separate_a.merge(&separate_b);
            prop_assert_eq!(separate_a, combined);
        }

        // TenantMetrics::merge is associative-with-identity over the
        // counters: merging a default (zero) block changes nothing, and
        // merge order does not change the result.
        #[test]
        fn tenant_merge_identity_and_commutativity(
            reqs in 0u64..1000, rows in 0u64..100_000, drift in 0u64..1000,
            evs in 0u64..50, lat in prop::collection::vec(0u64..1 << 20, 0..16),
        ) {
            let mut m = TenantMetrics {
                requests: reqs, rows, drift_rows: drift, evictions: evs,
                latency: LatencyHistogram::new(),
            };
            for &l in &lat {
                m.latency.record(l);
            }
            let mut with_zero = m.clone();
            with_zero.merge(&TenantMetrics::default());
            prop_assert_eq!(&with_zero, &m);

            let mut zero_first = TenantMetrics::default();
            zero_first.merge(&m);
            prop_assert_eq!(&zero_first, &m);
        }

        // The stats codec round-trips arbitrary runtime snapshots.
        #[test]
        fn stats_codec_round_trips_arbitrary_runtime_counters(
            vals in prop::collection::vec(0u64..u64::MAX, 9)
        ) {
            let mut stats = ServerStats::sample_for_tests();
            stats.runtime = RuntimeSnapshot {
                accepted: vals[0], refused: vals[1], idle_reaped: vals[2],
                stalled: vals[3], deadlines_shed: vals[4], malformed: vals[5],
                disconnects: vals[6], drained: vals[7], reloads: vals[8],
            };
            let mut w = ByteWriter::new();
            stats.encode_into(&mut w);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            let back = ServerStats::decode_from(&mut r).unwrap();
            r.expect_end().unwrap();
            prop_assert_eq!(back, stats);
        }
    }

    #[test]
    fn stats_oversized_tenant_count_is_rejected() {
        let stats = ServerStats::sample_for_tests();
        let mut w = ByteWriter::new();
        stats.encode_into(&mut w);
        let mut bytes = w.into_bytes();
        // The tenant count follows the 4 server gauges and the 9 runtime
        // counters, i.e. at offset 13 × 8 = 104; inflate it.
        bytes[104..112].copy_from_slice(&u64::MAX.to_le_bytes());
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            ServerStats::decode_from(&mut r),
            Err(DecodeError::Malformed { .. })
        ));
    }
}
