//! The `RBTW` length-prefixed wire protocol.
//!
//! Every message on the socket is one *frame*:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"RBTW"
//! 4       2     protocol version (u16 LE, currently 2)
//! 6       1     opcode
//! 7       4     body length n (u32 LE)
//! 11      n     body (opcode-specific, ByteWriter/ByteReader encoded)
//! 11+n    4     CRC-32 (u32 LE) over bytes [0, 11+n)
//! ```
//!
//! **Version 2** prefixes every body with a `u64` *request id*: responses
//! echo the id of the request they answer, which is what makes the
//! client's reconnect-and-retry loop safe — a response can be matched to
//! its request even after the stream it originally travelled on has died.
//! Version 1 frames (no id prefix) are still decoded, with id 0, so
//! pre-resilience peers keep working against this build.
//!
//! The framing layer reuses [`rbt_linalg::codec`]'s primitives and inherits
//! its contract: malformed input is *rejected with a typed error*, never
//! panicked on. Streaming validation order is magic → length (bounded by
//! [`MAX_BODY_LEN`] **before** any allocation) → CRC over header+body →
//! version → opcode, so a frame with a valid checksum but an unknown
//! version is reported as [`WireError::UnsupportedVersion`] rather than as
//! corruption, while any flipped byte anywhere in the frame trips the CRC.

use std::fmt;
use std::io::{Read, Write};
use std::time::{Duration, Instant};

use rbt_data::Dataset;
use rbt_linalg::codec::{crc32, ByteReader, ByteWriter, DecodeError};
use rbt_linalg::Matrix;

use crate::metrics::ServerStats;

/// Frame magic: "RBT wire".
pub const MAGIC: [u8; 4] = *b"RBTW";
/// Current protocol version (2: request-id prefix in every body).
pub const WIRE_VERSION: u16 = 2;
/// Oldest protocol version this build still decodes.
pub const MIN_WIRE_VERSION: u16 = 1;
/// Fixed header size: magic + version + opcode + body length.
pub const HEADER_LEN: usize = 11;
/// CRC-32 trailer size.
pub const TRAILER_LEN: usize = 4;
/// Size of the version-2 request-id prefix inside the body.
pub const REQUEST_ID_LEN: usize = 8;
/// Upper bound on a frame body (64 MiB). Checked against the declared
/// length *before* the body is allocated, so a corrupted or hostile length
/// field cannot drive the server out of memory.
pub const MAX_BODY_LEN: u32 = 64 * 1024 * 1024;

/// Frame opcodes. Responses reuse the opcode of the request they answer;
/// failures use [`Opcode::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// Register (or replace) a tenant's sealed key file.
    LoadKey = 1,
    /// Transform an out-of-sample batch under a tenant's session.
    Transform = 2,
    /// Owner-side inverse of [`Opcode::Transform`].
    Invert = 3,
    /// Server and per-tenant counters.
    Stats = 4,
    /// Drop a tenant: key bytes, live session, and counters.
    EvictTenant = 5,
    /// Liveness check.
    Ping = 6,
    /// Either direction announcing a clean departure: the server sends it
    /// as its final frame while draining, the client as a goodbye before
    /// closing its socket.
    GoingAway = 7,
    /// Re-scan the key directory into the registry (hot reload).
    ReloadKeys = 8,
    /// The request was shed because its deadline expired before the
    /// server could start it (never a request).
    Deadline = 9,
    /// Open a federated release session on the server's hub.
    FedOpen = 10,
    /// Deliver an owner's outbound federation messages and drain its
    /// mailbox.
    FedMsg = 11,
    /// Poll a federated session for its joint clustering result.
    FedResult = 12,
    /// Close a federated session, dropping its state.
    FedClose = 13,
    /// Error response (never a request).
    Error = 15,
}

impl Opcode {
    fn from_u8(v: u8) -> Option<Opcode> {
        match v {
            1 => Some(Opcode::LoadKey),
            2 => Some(Opcode::Transform),
            3 => Some(Opcode::Invert),
            4 => Some(Opcode::Stats),
            5 => Some(Opcode::EvictTenant),
            6 => Some(Opcode::Ping),
            7 => Some(Opcode::GoingAway),
            8 => Some(Opcode::ReloadKeys),
            9 => Some(Opcode::Deadline),
            10 => Some(Opcode::FedOpen),
            11 => Some(Opcode::FedMsg),
            12 => Some(Opcode::FedResult),
            13 => Some(Opcode::FedClose),
            15 => Some(Opcode::Error),
            _ => None,
        }
    }
}

/// Errors produced while reading or decoding frames. Every variant is a
/// *rejection* — the framing layer never panics on wire input.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The first four bytes were not `RBTW`.
    BadMagic {
        /// What was found instead.
        found: [u8; 4],
    },
    /// The frame checksummed correctly but declares a version this build
    /// does not speak.
    UnsupportedVersion {
        /// The declared version.
        found: u16,
    },
    /// The frame checksummed correctly but carries an unknown opcode.
    UnknownOpcode {
        /// The declared opcode byte.
        found: u8,
    },
    /// The declared body length exceeds [`MAX_BODY_LEN`]. Raised before
    /// any allocation.
    Oversized {
        /// The declared body length.
        length: u32,
        /// The configured cap.
        limit: u32,
    },
    /// The CRC-32 trailer does not match the header + body.
    ChecksumMismatch {
        /// CRC stored in the trailer.
        stored: u32,
        /// CRC computed over the received bytes.
        computed: u32,
    },
    /// A frame body (or a buffered frame) failed byte-level decoding.
    Byte(DecodeError),
    /// The underlying stream failed (including EOF in the middle of a
    /// frame — a client that disconnected mid-send).
    Io {
        /// The I/O error kind.
        kind: std::io::ErrorKind,
        /// Human-readable detail.
        message: String,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic { found } => {
                write!(f, "bad frame magic {found:02x?}, expected \"RBTW\"")
            }
            WireError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported wire version {found} (this build speaks {MIN_WIRE_VERSION}..={WIRE_VERSION})"
                )
            }
            WireError::UnknownOpcode { found } => write!(f, "unknown opcode {found:#04x}"),
            WireError::Oversized { length, limit } => {
                write!(
                    f,
                    "declared body length {length} exceeds the {limit}-byte cap"
                )
            }
            WireError::ChecksumMismatch { stored, computed } => write!(
                f,
                "frame checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            WireError::Byte(e) => write!(f, "frame body: {e}"),
            WireError::Io { kind, message } => write!(f, "wire i/o ({kind:?}): {message}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<DecodeError> for WireError {
    fn from(e: DecodeError) -> Self {
        WireError::Byte(e)
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io {
            kind: e.kind(),
            message: e.to_string(),
        }
    }
}

/// Wire result alias.
pub type WireResult<T> = std::result::Result<T, WireError>;

fn malformed(offset: usize, message: impl Into<String>) -> WireError {
    WireError::Byte(DecodeError::Malformed {
        offset,
        message: message.into(),
    })
}

/// A decoded frame: opcode, request id, and raw body bytes. The body is
/// interpreted by [`Request::from_frame`] / [`Response::from_frame`]; the
/// request id is echoed by the server so clients can match a response to
/// its request across reconnects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The frame opcode.
    pub opcode: Opcode,
    /// The request id (0 for version-1 peers and unsolicited frames).
    pub request_id: u64,
    /// The opcode-specific body (request-id prefix already stripped).
    pub body: Vec<u8>,
}

impl Frame {
    /// A frame with the given opcode and body, request id 0.
    pub fn new(opcode: Opcode, body: Vec<u8>) -> Frame {
        Frame {
            opcode,
            request_id: 0,
            body,
        }
    }

    /// The same frame carrying `id` as its request id.
    pub fn with_request_id(mut self, id: u64) -> Frame {
        self.request_id = id;
        self
    }
}

/// Encodes a frame into a self-contained byte buffer (header + request-id
/// prefix + body + CRC-32 trailer), always at [`WIRE_VERSION`].
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_bytes(&MAGIC);
    w.put_u16(WIRE_VERSION);
    w.put_u8(frame.opcode as u8);
    w.put_u32((REQUEST_ID_LEN + frame.body.len()) as u32);
    w.put_u64(frame.request_id);
    w.put_bytes(&frame.body);
    let crc = crc32(w.as_bytes());
    w.put_u32(crc);
    w.into_bytes()
}

/// Header fields once magic and the length bound have been validated.
struct RawHeader {
    version: u16,
    opcode_byte: u8,
    body_len: usize,
}

fn parse_header(header: &[u8; HEADER_LEN]) -> WireResult<RawHeader> {
    let mut r = ByteReader::new(header);
    let magic = r.take_bytes(4)?;
    if magic != MAGIC {
        return Err(WireError::BadMagic {
            found: [magic[0], magic[1], magic[2], magic[3]],
        });
    }
    let version = r.take_u16()?;
    let opcode_byte = r.take_u8()?;
    let body_len = r.take_u32()?;
    if body_len > MAX_BODY_LEN {
        return Err(WireError::Oversized {
            length: body_len,
            limit: MAX_BODY_LEN,
        });
    }
    Ok(RawHeader {
        version,
        opcode_byte,
        body_len: body_len as usize,
    })
}

/// Validates CRC/version/opcode and splits the request-id prefix. `body`
/// excludes the trailer; `stored` is the trailer CRC.
fn finish_frame(
    header: &[u8; HEADER_LEN],
    raw: RawHeader,
    body: Vec<u8>,
    stored: u32,
) -> WireResult<Frame> {
    let mut crc_input = Vec::with_capacity(HEADER_LEN + body.len());
    crc_input.extend_from_slice(header);
    crc_input.extend_from_slice(&body);
    let computed = crc32(&crc_input);
    if stored != computed {
        return Err(WireError::ChecksumMismatch { stored, computed });
    }
    if !(MIN_WIRE_VERSION..=WIRE_VERSION).contains(&raw.version) {
        return Err(WireError::UnsupportedVersion { found: raw.version });
    }
    let opcode = Opcode::from_u8(raw.opcode_byte).ok_or(WireError::UnknownOpcode {
        found: raw.opcode_byte,
    })?;
    if raw.version >= 2 {
        if body.len() < REQUEST_ID_LEN {
            return Err(malformed(
                HEADER_LEN,
                format!(
                    "version-2 body of {} bytes cannot hold the request id",
                    body.len()
                ),
            ));
        }
        let mut id_bytes = [0u8; REQUEST_ID_LEN];
        id_bytes.copy_from_slice(&body[..REQUEST_ID_LEN]);
        Ok(Frame {
            opcode,
            request_id: u64::from_le_bytes(id_bytes),
            body: body[REQUEST_ID_LEN..].to_vec(),
        })
    } else {
        Ok(Frame {
            opcode,
            request_id: 0,
            body,
        })
    }
}

/// Decodes one frame from a buffer that must contain exactly one frame.
///
/// # Errors
///
/// Any deviation from the format — short input, bad magic, oversized or
/// inconsistent length, checksum mismatch, unknown version or opcode,
/// trailing bytes — returns the corresponding typed [`WireError`].
pub fn decode_frame(bytes: &[u8]) -> WireResult<Frame> {
    if bytes.len() < HEADER_LEN {
        return Err(WireError::Byte(DecodeError::Truncated {
            offset: 0,
            needed: HEADER_LEN,
            available: bytes.len(),
        }));
    }
    let mut header = [0u8; HEADER_LEN];
    header.copy_from_slice(&bytes[..HEADER_LEN]);
    let raw = parse_header(&header)?;
    let total = HEADER_LEN + raw.body_len + TRAILER_LEN;
    if bytes.len() < total {
        return Err(WireError::Byte(DecodeError::Truncated {
            offset: bytes.len(),
            needed: total,
            available: bytes.len(),
        }));
    }
    if bytes.len() > total {
        return Err(malformed(
            total,
            format!("{} trailing bytes after the frame", bytes.len() - total),
        ));
    }
    let body = bytes[HEADER_LEN..HEADER_LEN + raw.body_len].to_vec();
    let stored = u32::from_le_bytes([
        bytes[total - 4],
        bytes[total - 3],
        bytes[total - 2],
        bytes[total - 1],
    ]);
    finish_frame(&header, raw, body, stored)
}

/// Reads the next frame from a stream.
///
/// Returns `Ok(None)` on a clean end-of-stream (the peer closed between
/// frames); EOF in the *middle* of a frame is a disconnect and reported as
/// [`WireError::Io`] with [`std::io::ErrorKind::UnexpectedEof`]. The
/// declared body length is validated against [`MAX_BODY_LEN`] before the
/// body buffer is allocated.
///
/// # Errors
///
/// Typed [`WireError`] for every malformed frame or stream failure.
pub fn read_frame<R: Read>(stream: &mut R) -> WireResult<Option<Frame>> {
    let mut header = [0u8; HEADER_LEN];
    let mut filled = 0;
    while filled < HEADER_LEN {
        let n = stream.read(&mut header[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None); // clean EOF between frames
            }
            return Err(WireError::Io {
                kind: std::io::ErrorKind::UnexpectedEof,
                message: format!("peer closed after {filled} of {HEADER_LEN} header bytes"),
            });
        }
        filled += n;
    }
    let raw = parse_header(&header)?;
    let mut rest = vec![0u8; raw.body_len + TRAILER_LEN];
    stream.read_exact(&mut rest).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Io {
                kind: std::io::ErrorKind::UnexpectedEof,
                message: "peer closed mid-frame".to_string(),
            }
        } else {
            WireError::from(e)
        }
    })?;
    let stored = u32::from_le_bytes([
        rest[raw.body_len],
        rest[raw.body_len + 1],
        rest[raw.body_len + 2],
        rest[raw.body_len + 3],
    ]);
    rest.truncate(raw.body_len);
    finish_frame(&header, raw, rest, stored).map(Some)
}

/// What [`read_frame_patient`] observed on a stream whose socket read
/// timeout acts as the polling tick.
#[derive(Debug)]
pub enum FrameEvent {
    /// A complete, validated frame.
    Frame(Frame),
    /// The peer closed cleanly between frames.
    CleanEof,
    /// One tick elapsed with no byte of a new frame — the connection is
    /// idle. No stream state was consumed; the caller decides whether to
    /// keep waiting or reap the connection.
    Idle,
    /// The peer went silent *mid-frame* for longer than the stall budget —
    /// a wedged or malicious sender. The stream is desynchronized.
    Stalled,
}

fn is_tick(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Reads the next frame from a stream that has a socket read timeout set
/// (the *tick*), distinguishing an idle connection from a peer that
/// stalled mid-frame.
///
/// A timeout before the first byte of a frame returns
/// [`FrameEvent::Idle`] after one tick; once a frame has started, reads
/// are retried until the peer has been silent for `stall_budget` in
/// total, then [`FrameEvent::Stalled`] is returned. This is what lets the
/// server run an idle-connection reaper and a stalled-peer deadline off
/// plain blocking sockets, with no reader thread ever parked forever.
///
/// # Errors
///
/// Typed [`WireError`] for malformed frames and non-timeout stream
/// failures.
pub fn read_frame_patient<R: Read>(
    stream: &mut R,
    stall_budget: Duration,
) -> WireResult<FrameEvent> {
    let mut header = [0u8; HEADER_LEN];
    let mut filled = 0usize;
    let mut silent_since: Option<Instant> = None;
    while filled < HEADER_LEN {
        match stream.read(&mut header[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(FrameEvent::CleanEof);
                }
                return Err(WireError::Io {
                    kind: std::io::ErrorKind::UnexpectedEof,
                    message: format!("peer closed after {filled} of {HEADER_LEN} header bytes"),
                });
            }
            Ok(n) => {
                filled += n;
                silent_since = None;
            }
            Err(e) if is_tick(&e) => {
                if filled == 0 {
                    return Ok(FrameEvent::Idle);
                }
                let since = silent_since.get_or_insert_with(Instant::now);
                if since.elapsed() >= stall_budget {
                    return Ok(FrameEvent::Stalled);
                }
            }
            Err(e) => return Err(e.into()),
        }
    }
    let raw = parse_header(&header)?;
    let mut rest = vec![0u8; raw.body_len + TRAILER_LEN];
    let mut got = 0usize;
    while got < rest.len() {
        match stream.read(&mut rest[got..]) {
            Ok(0) => {
                return Err(WireError::Io {
                    kind: std::io::ErrorKind::UnexpectedEof,
                    message: "peer closed mid-frame".to_string(),
                });
            }
            Ok(n) => {
                got += n;
                silent_since = None;
            }
            Err(e) if is_tick(&e) => {
                let since = silent_since.get_or_insert_with(Instant::now);
                if since.elapsed() >= stall_budget {
                    return Ok(FrameEvent::Stalled);
                }
            }
            Err(e) => return Err(e.into()),
        }
    }
    let stored = u32::from_le_bytes([
        rest[raw.body_len],
        rest[raw.body_len + 1],
        rest[raw.body_len + 2],
        rest[raw.body_len + 3],
    ]);
    rest.truncate(raw.body_len);
    finish_frame(&header, raw, rest, stored).map(FrameEvent::Frame)
}

/// Incremental frame decoder for non-blocking sockets.
///
/// The blocking readers above own their stream and can loop until a frame
/// completes; a readiness-polled connection instead receives bytes in
/// arbitrary chunks whenever the socket is readable. [`FrameAssembler`]
/// buffers those chunks ([`FrameAssembler::push`]) and yields complete,
/// validated frames ([`FrameAssembler::next_frame`]) with exactly the same
/// validation order as [`read_frame`]: magic and length bound from the
/// header, then CRC over the whole frame, then version, then opcode.
///
/// Error recoverability mirrors the blocking path. A header-level error
/// (bad magic, oversized length) or a checksum mismatch leaves the byte
/// stream desynchronized — the caller must close the connection. A version
/// or opcode error is only reachable *after* the CRC proved the declared
/// length honest, so the offending frame has been fully consumed and the
/// assembler keeps working on whatever follows it.
#[derive(Debug, Default)]
pub struct FrameAssembler {
    buf: Vec<u8>,
    start: usize,
}

impl FrameAssembler {
    /// Creates an empty assembler.
    pub fn new() -> FrameAssembler {
        FrameAssembler::default()
    }

    /// Appends bytes read from the socket to the reassembly buffer.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact before growing: everything before `start` is consumed.
        if self.start > 0 && (self.start == self.buf.len() || self.start >= 4096) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// True while the buffer holds any unconsumed bytes — complete frames
    /// not yet extracted by [`FrameAssembler::next_frame`] count too. To
    /// decide whether a silent peer is *stalled* (owes bytes) or merely
    /// unread (back-pressured by the caller), use
    /// [`FrameAssembler::partial_frame`] instead.
    pub fn mid_frame(&self) -> bool {
        self.start < self.buf.len()
    }

    /// True when [`FrameAssembler::next_frame`] would yield something —
    /// a complete frame, or a typed error for bytes that can never become
    /// one — without any further `push`.
    pub fn frame_ready(&self) -> bool {
        let pending = &self.buf[self.start..];
        if pending.len() < HEADER_LEN {
            return false;
        }
        let mut header = [0u8; HEADER_LEN];
        header.copy_from_slice(&pending[..HEADER_LEN]);
        match parse_header(&header) {
            // An undecodable header is extractable as a (fatal) error.
            Err(_) => true,
            Ok(raw) => pending.len() >= HEADER_LEN + raw.body_len + TRAILER_LEN,
        }
    }

    /// True while the pending bytes begin an *incomplete* frame the peer
    /// still owes bytes for — the state in which a silent peer counts as
    /// stalled rather than idle, and an EOF is a mid-frame disconnect
    /// rather than clean. Complete-but-unextracted frames (e.g. held back
    /// by a full in-flight window) do not count: the peer owes nothing.
    pub fn partial_frame(&self) -> bool {
        self.mid_frame() && !self.frame_ready()
    }

    /// Yields the next complete frame, `None` if more bytes are needed.
    ///
    /// # Errors
    ///
    /// Typed [`WireError`] exactly as [`read_frame`] would produce for the
    /// same bytes. After [`WireError::UnsupportedVersion`] or
    /// [`WireError::UnknownOpcode`] the frame was fully consumed and the
    /// assembler remains usable; after any other error the stream is
    /// desynchronized and the connection should be closed.
    pub fn next_frame(&mut self) -> Option<WireResult<Frame>> {
        let pending = &self.buf[self.start..];
        if pending.len() < HEADER_LEN {
            return None;
        }
        let mut header = [0u8; HEADER_LEN];
        header.copy_from_slice(&pending[..HEADER_LEN]);
        let raw = match parse_header(&header) {
            Ok(raw) => raw,
            Err(e) => return Some(Err(e)),
        };
        let total = HEADER_LEN + raw.body_len + TRAILER_LEN;
        if pending.len() < total {
            return None;
        }
        let body = pending[HEADER_LEN..HEADER_LEN + raw.body_len].to_vec();
        let stored = u32::from_le_bytes([
            pending[total - 4],
            pending[total - 3],
            pending[total - 2],
            pending[total - 1],
        ]);
        let result = finish_frame(&header, raw, body, stored);
        match &result {
            // The CRC covered `total` bytes, so consuming them is safe even
            // when the version or opcode is unknown — resynchronization is
            // exact, matching the blocking reader.
            Ok(_)
            | Err(WireError::UnsupportedVersion { .. })
            | Err(WireError::UnknownOpcode { .. }) => self.start += total,
            // Checksum mismatch / short v2 body: the declared length is not
            // trustworthy; leave the buffer as-is for the caller to abandon.
            Err(_) => {}
        }
        Some(result)
    }
}

/// Writes one encoded frame to a stream and flushes it.
///
/// # Errors
///
/// Propagates stream failures as [`WireError::Io`].
pub fn write_frame<W: Write>(stream: &mut W, frame: &Frame) -> WireResult<()> {
    stream.write_all(&encode_frame(frame))?;
    stream.flush()?;
    Ok(())
}

/// Guards a decoded element count against the bytes actually remaining, so
/// a corrupted count is rejected before it can drive an allocation.
fn guard_count(
    r: &ByteReader<'_>,
    count: usize,
    min_elem_bytes: usize,
    what: &str,
) -> WireResult<()> {
    match count.checked_mul(min_elem_bytes) {
        Some(need) if need <= r.remaining() => Ok(()),
        _ => Err(malformed(
            r.position(),
            format!(
                "{what} count {count} exceeds the remaining {} bytes",
                r.remaining()
            ),
        )),
    }
}

/// Appends a dataset to the writer: row/column counts, column names,
/// optional record IDs, then the matrix as raw `f64` bit patterns —
/// lossless, which is what makes the server's responses bit-comparable to
/// the in-process `Pipeline` output.
pub fn encode_dataset(w: &mut ByteWriter, ds: &Dataset) {
    w.put_usize(ds.n_rows());
    w.put_usize(ds.n_cols());
    for name in ds.columns() {
        w.put_str(name);
    }
    match ds.ids() {
        Some(ids) => {
            w.put_bool(true);
            for &id in ids {
                w.put_u64(id);
            }
        }
        None => w.put_bool(false),
    }
    for &v in ds.matrix().as_slice() {
        w.put_f64(v);
    }
}

/// Reads a dataset written by [`encode_dataset`].
///
/// # Errors
///
/// Typed [`WireError`] on truncation, oversized counts, or inconsistent
/// shape.
pub fn decode_dataset(r: &mut ByteReader<'_>) -> WireResult<Dataset> {
    let shape_offset = r.position();
    let rows = r.take_usize()?;
    let cols = r.take_usize()?;
    guard_count(r, cols, 4, "column")?;
    let mut columns = Vec::with_capacity(cols);
    for _ in 0..cols {
        columns.push(r.take_str()?.to_string());
    }
    let has_ids = r.take_bool()?;
    let ids = if has_ids {
        guard_count(r, rows, 8, "record id")?;
        let mut ids = Vec::with_capacity(rows);
        for _ in 0..rows {
            ids.push(r.take_u64()?);
        }
        Some(ids)
    } else {
        None
    };
    let cells = rows.checked_mul(cols).ok_or_else(|| {
        malformed(
            shape_offset,
            format!("dataset shape {rows}x{cols} overflows"),
        )
    })?;
    guard_count(r, cells, 8, "cell")?;
    let mut data = Vec::with_capacity(cells);
    for _ in 0..cells {
        data.push(r.take_f64()?);
    }
    let matrix =
        Matrix::from_vec(rows, cols, data).map_err(|e| malformed(shape_offset, e.to_string()))?;
    let ds = Dataset::new(matrix, columns).map_err(|e| malformed(shape_offset, e.to_string()))?;
    match ids {
        Some(ids) => ds
            .with_ids(ids)
            .map_err(|e| malformed(shape_offset, e.to_string())),
        None => Ok(ds),
    }
}

/// A client request, one per frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Register (or replace) `tenant`'s sealed key file.
    LoadKey {
        /// Tenant identifier.
        tenant: String,
        /// The sealed `RBTS` key bytes, exactly as persisted on disk.
        key_bytes: Vec<u8>,
    },
    /// Transform a batch under `tenant`'s fitted session.
    Transform {
        /// Tenant identifier.
        tenant: String,
        /// The out-of-sample batch.
        batch: Dataset,
    },
    /// Owner-side inverse of a released batch.
    Invert {
        /// Tenant identifier.
        tenant: String,
        /// A previously released batch.
        batch: Dataset,
    },
    /// Server and per-tenant counters.
    Stats,
    /// Drop a tenant entirely.
    EvictTenant {
        /// Tenant identifier.
        tenant: String,
    },
    /// Liveness check.
    Ping,
    /// Re-scan the server's key directory into the registry (hot reload).
    /// Served only when the server was started with a key store.
    ReloadKeys,
    /// A clean goodbye: the client is closing this connection and expects
    /// no response. Replaces the bare RST a dropped socket would send.
    Goodbye,
    /// Open a federated release session on the server's hub. The body is
    /// an encoded `rbt_protocol::FederationConfig` — self-checksummed by
    /// the protocol codec and opaque to the framing layer.
    FedOpen {
        /// Encoded `FederationConfig` (protocol-layer codec).
        config: Vec<u8>,
    },
    /// Deliver one owner's outbound federation messages and drain that
    /// owner's mailbox in return. Each element is one encoded,
    /// CRC-trailed `rbt_protocol::Message`, opaque to the framing layer.
    FedMsg {
        /// Federation session id.
        session: u64,
        /// The calling owner's index within the session.
        owner: u16,
        /// Encoded protocol messages, owner → hub.
        messages: Vec<Vec<u8>>,
    },
    /// Poll a federated session for its joint clustering summary.
    FedResult {
        /// Federation session id.
        session: u64,
    },
    /// Close a federated session, dropping all its hub-side state.
    FedClose {
        /// Federation session id.
        session: u64,
    },
}

/// Encodes a list of opaque protocol-message blobs.
fn encode_blobs(w: &mut ByteWriter, blobs: &[Vec<u8>]) {
    w.put_u32(blobs.len() as u32);
    for blob in blobs {
        w.put_usize(blob.len());
        w.put_bytes(blob);
    }
}

/// Decodes a list of opaque protocol-message blobs.
fn decode_blobs(r: &mut ByteReader<'_>) -> WireResult<Vec<Vec<u8>>> {
    let count = r.take_u32()? as usize;
    // Each blob costs at least its 8-byte length prefix.
    guard_count(r, count, 8, "federation messages")?;
    let mut blobs = Vec::with_capacity(count);
    for _ in 0..count {
        let len = r.take_usize()?;
        blobs.push(r.take_bytes(len)?.to_vec());
    }
    Ok(blobs)
}

impl Request {
    /// The opcode this request travels under.
    pub fn opcode(&self) -> Opcode {
        match self {
            Request::LoadKey { .. } => Opcode::LoadKey,
            Request::Transform { .. } => Opcode::Transform,
            Request::Invert { .. } => Opcode::Invert,
            Request::Stats => Opcode::Stats,
            Request::EvictTenant { .. } => Opcode::EvictTenant,
            Request::Ping => Opcode::Ping,
            Request::ReloadKeys => Opcode::ReloadKeys,
            Request::Goodbye => Opcode::GoingAway,
            Request::FedOpen { .. } => Opcode::FedOpen,
            Request::FedMsg { .. } => Opcode::FedMsg,
            Request::FedResult { .. } => Opcode::FedResult,
            Request::FedClose { .. } => Opcode::FedClose,
        }
    }

    /// Encodes the request into a frame (request id 0; use
    /// [`Frame::with_request_id`] to tag it).
    pub fn to_frame(&self) -> Frame {
        let mut w = ByteWriter::new();
        match self {
            Request::LoadKey { tenant, key_bytes } => {
                w.put_str(tenant);
                w.put_usize(key_bytes.len());
                w.put_bytes(key_bytes);
            }
            Request::Transform { tenant, batch } | Request::Invert { tenant, batch } => {
                w.put_str(tenant);
                encode_dataset(&mut w, batch);
            }
            Request::EvictTenant { tenant } => w.put_str(tenant),
            Request::FedOpen { config } => {
                w.put_usize(config.len());
                w.put_bytes(config);
            }
            Request::FedMsg {
                session,
                owner,
                messages,
            } => {
                w.put_u64(*session);
                w.put_u16(*owner);
                encode_blobs(&mut w, messages);
            }
            Request::FedResult { session } | Request::FedClose { session } => w.put_u64(*session),
            Request::Stats | Request::Ping | Request::ReloadKeys | Request::Goodbye => {}
        }
        Frame::new(self.opcode(), w.into_bytes())
    }

    /// Decodes a request from a frame.
    ///
    /// # Errors
    ///
    /// Typed [`WireError`] when the body does not parse for the frame's
    /// opcode, or the opcode is response-only ([`Opcode::Error`],
    /// [`Opcode::Deadline`]).
    pub fn from_frame(frame: &Frame) -> WireResult<Request> {
        let mut r = ByteReader::new(&frame.body);
        let req = match frame.opcode {
            Opcode::LoadKey => {
                let tenant = r.take_str()?.to_string();
                let len = r.take_usize()?;
                let key_bytes = r.take_bytes(len)?.to_vec();
                Request::LoadKey { tenant, key_bytes }
            }
            Opcode::Transform => Request::Transform {
                tenant: r.take_str()?.to_string(),
                batch: decode_dataset(&mut r)?,
            },
            Opcode::Invert => Request::Invert {
                tenant: r.take_str()?.to_string(),
                batch: decode_dataset(&mut r)?,
            },
            Opcode::Stats => Request::Stats,
            Opcode::EvictTenant => Request::EvictTenant {
                tenant: r.take_str()?.to_string(),
            },
            Opcode::Ping => Request::Ping,
            Opcode::ReloadKeys => Request::ReloadKeys,
            Opcode::GoingAway => Request::Goodbye,
            Opcode::FedOpen => {
                let len = r.take_usize()?;
                Request::FedOpen {
                    config: r.take_bytes(len)?.to_vec(),
                }
            }
            Opcode::FedMsg => Request::FedMsg {
                session: r.take_u64()?,
                owner: r.take_u16()?,
                messages: decode_blobs(&mut r)?,
            },
            Opcode::FedResult => Request::FedResult {
                session: r.take_u64()?,
            },
            Opcode::FedClose => Request::FedClose {
                session: r.take_u64()?,
            },
            Opcode::Deadline => {
                return Err(malformed(0, "Deadline frames are responses, not requests"))
            }
            Opcode::Error => return Err(malformed(0, "Error frames are responses, not requests")),
        };
        r.expect_end()?;
        Ok(req)
    }

    /// Whether a retry of this request is safe after a transport failure
    /// whose outcome is unknown. Transforms are pure given a loaded key,
    /// `LoadKey` overwrites with identical bytes, and the control requests
    /// are reads — excluded are `EvictTenant` and `FedClose` (whose
    /// `existed` answers change on replay), `Goodbye`, and the federation
    /// writes: a replayed `FedOpen` collides with the session it opened,
    /// and a replayed `FedMsg` double-delivers protocol messages, which
    /// the state machines reject as duplicates (poisoning the session).
    /// Only `FedResult`, a pure poll, is retry-safe in the family.
    pub fn is_idempotent(&self) -> bool {
        !matches!(
            self,
            Request::EvictTenant { .. }
                | Request::Goodbye
                | Request::FedOpen { .. }
                | Request::FedMsg { .. }
                | Request::FedClose { .. }
        )
    }
}

/// A server response, one per frame. Success responses reuse the opcode of
/// the request they answer and echo its request id; failures use
/// [`Opcode::Error`] or [`Opcode::Deadline`].
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The key decoded and the session is registered.
    Loaded {
        /// The release method the key encodes (`rbt`, `noise`, …).
        method: String,
        /// Attribute count the session was fitted on.
        n_attributes: u64,
    },
    /// A transformed batch.
    Transformed {
        /// The released (transformed) batch, IDs suppressed.
        released: Dataset,
        /// Rows of the request batch that fell outside the fitted
        /// normalization range (drift).
        out_of_range_rows: u64,
    },
    /// A recovered batch.
    Inverted {
        /// The owner-side recovered batch.
        recovered: Dataset,
    },
    /// Server and per-tenant counters.
    Stats(ServerStats),
    /// Tenant eviction outcome.
    Evicted {
        /// Whether the tenant existed.
        existed: bool,
    },
    /// Liveness reply.
    Pong,
    /// Key-directory hot-reload outcome.
    Reloaded {
        /// Tenants (re)registered from the key directory.
        loaded: u64,
        /// Corrupt entries moved to quarantine instead of being served.
        quarantined: u64,
    },
    /// The server is draining: this is the last frame on the connection.
    /// Every request read before the drain began has been answered;
    /// anything unanswered should be retried against a fresh connection.
    GoingAway {
        /// Human-readable reason (e.g. "shutting down").
        message: String,
    },
    /// The request was shed because it waited past its per-opcode
    /// deadline before the server could start it.
    Deadline {
        /// How long the request had waited, in milliseconds.
        waited_ms: u64,
        /// The per-opcode budget it exceeded, in milliseconds.
        budget_ms: u64,
    },
    /// A federated session was opened on the hub.
    FedOpened {
        /// The session id now hosted.
        session: u64,
    },
    /// The calling owner's drained mailbox: encoded `rbt_protocol`
    /// messages, hub → owner.
    FedMsgs {
        /// Encoded protocol messages, opaque to the framing layer.
        messages: Vec<Vec<u8>>,
    },
    /// Outcome of a federated result poll.
    FedSummary {
        /// The encoded `JointDataset` protocol message once the session's
        /// receiver has completed; `None` while rounds are in flight.
        summary: Option<Vec<u8>>,
    },
    /// Outcome of a federated session close.
    FedClosed {
        /// Whether the session existed.
        existed: bool,
    },
    /// The request failed.
    Error {
        /// Error family, matching the CLI exit-code taxonomy (2 usage,
        /// 3 data, 4 codec/wire, 5 shape, 6 threshold, 7 capability,
        /// 8 unavailable — the server refused the connection or request
        /// because it is at capacity or draining).
        code: u8,
        /// Human-readable detail.
        message: String,
    },
}

/// The `Error` code family for "server at capacity / draining" refusals.
pub const CODE_UNAVAILABLE: u8 = 8;

impl Response {
    /// The opcode this response travels under.
    pub fn opcode(&self) -> Opcode {
        match self {
            Response::Loaded { .. } => Opcode::LoadKey,
            Response::Transformed { .. } => Opcode::Transform,
            Response::Inverted { .. } => Opcode::Invert,
            Response::Stats(_) => Opcode::Stats,
            Response::Evicted { .. } => Opcode::EvictTenant,
            Response::Pong => Opcode::Ping,
            Response::Reloaded { .. } => Opcode::ReloadKeys,
            Response::GoingAway { .. } => Opcode::GoingAway,
            Response::Deadline { .. } => Opcode::Deadline,
            Response::FedOpened { .. } => Opcode::FedOpen,
            Response::FedMsgs { .. } => Opcode::FedMsg,
            Response::FedSummary { .. } => Opcode::FedResult,
            Response::FedClosed { .. } => Opcode::FedClose,
            Response::Error { .. } => Opcode::Error,
        }
    }

    /// Encodes the response into a frame (request id 0; use
    /// [`Frame::with_request_id`] to echo the request's id).
    pub fn to_frame(&self) -> Frame {
        let mut w = ByteWriter::new();
        match self {
            Response::Loaded {
                method,
                n_attributes,
            } => {
                w.put_str(method);
                w.put_u64(*n_attributes);
            }
            Response::Transformed {
                released,
                out_of_range_rows,
            } => {
                encode_dataset(&mut w, released);
                w.put_u64(*out_of_range_rows);
            }
            Response::Inverted { recovered } => encode_dataset(&mut w, recovered),
            Response::Stats(stats) => stats.encode_into(&mut w),
            Response::Evicted { existed } => w.put_bool(*existed),
            Response::Pong => {}
            Response::Reloaded {
                loaded,
                quarantined,
            } => {
                w.put_u64(*loaded);
                w.put_u64(*quarantined);
            }
            Response::GoingAway { message } => w.put_str(message),
            Response::Deadline {
                waited_ms,
                budget_ms,
            } => {
                w.put_u64(*waited_ms);
                w.put_u64(*budget_ms);
            }
            Response::FedOpened { session } => w.put_u64(*session),
            Response::FedMsgs { messages } => encode_blobs(&mut w, messages),
            Response::FedSummary { summary } => {
                w.put_bool(summary.is_some());
                if let Some(bytes) = summary {
                    w.put_usize(bytes.len());
                    w.put_bytes(bytes);
                }
            }
            Response::FedClosed { existed } => w.put_bool(*existed),
            Response::Error { code, message } => {
                w.put_u8(*code);
                w.put_str(message);
            }
        }
        Frame::new(self.opcode(), w.into_bytes())
    }

    /// Decodes a response from a frame.
    ///
    /// # Errors
    ///
    /// Typed [`WireError`] when the body does not parse for the frame's
    /// opcode.
    pub fn from_frame(frame: &Frame) -> WireResult<Response> {
        let mut r = ByteReader::new(&frame.body);
        let resp = match frame.opcode {
            Opcode::LoadKey => Response::Loaded {
                method: r.take_str()?.to_string(),
                n_attributes: r.take_u64()?,
            },
            Opcode::Transform => Response::Transformed {
                released: decode_dataset(&mut r)?,
                out_of_range_rows: r.take_u64()?,
            },
            Opcode::Invert => Response::Inverted {
                recovered: decode_dataset(&mut r)?,
            },
            Opcode::Stats => Response::Stats(ServerStats::decode_from(&mut r)?),
            Opcode::EvictTenant => Response::Evicted {
                existed: r.take_bool()?,
            },
            Opcode::Ping => Response::Pong,
            Opcode::ReloadKeys => Response::Reloaded {
                loaded: r.take_u64()?,
                quarantined: r.take_u64()?,
            },
            Opcode::GoingAway => Response::GoingAway {
                message: r.take_str()?.to_string(),
            },
            Opcode::Deadline => Response::Deadline {
                waited_ms: r.take_u64()?,
                budget_ms: r.take_u64()?,
            },
            Opcode::FedOpen => Response::FedOpened {
                session: r.take_u64()?,
            },
            Opcode::FedMsg => Response::FedMsgs {
                messages: decode_blobs(&mut r)?,
            },
            Opcode::FedResult => Response::FedSummary {
                summary: if r.take_bool()? {
                    let len = r.take_usize()?;
                    Some(r.take_bytes(len)?.to_vec())
                } else {
                    None
                },
            },
            Opcode::FedClose => Response::FedClosed {
                existed: r.take_bool()?,
            },
            Opcode::Error => Response::Error {
                code: r.take_u8()?,
                message: r.take_str()?.to_string(),
            },
        };
        r.expect_end()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_dataset(rows: usize, with_ids: bool) -> Dataset {
        let cols = 3;
        let data: Vec<f64> = (0..rows * cols).map(|i| (i as f64) * 1.25 - 7.0).collect();
        let m = Matrix::from_vec(rows, cols, data).unwrap();
        let ds = Dataset::new(
            m,
            vec![
                "age".to_string(),
                "weight".to_string(),
                "h_rate".to_string(),
            ],
        )
        .unwrap();
        if with_ids {
            ds.with_ids((0..rows as u64).map(|i| 9000 + i).collect())
                .unwrap()
        } else {
            ds
        }
    }

    fn assert_datasets_bitwise(a: &Dataset, b: &Dataset) {
        assert_eq!(a.columns(), b.columns());
        assert_eq!(a.ids(), b.ids());
        assert_eq!(a.n_rows(), b.n_rows());
        assert_eq!(a.n_cols(), b.n_cols());
        let (xs, ys) = (a.matrix().as_slice(), b.matrix().as_slice());
        assert_eq!(xs.len(), ys.len());
        for (x, y) in xs.iter().zip(ys) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn assembler_yields_frames_from_single_byte_chunks() {
        let frames = [
            Request::Ping.to_frame().with_request_id(1),
            Request::Stats.to_frame().with_request_id(2),
            Request::Transform {
                tenant: "t".to_string(),
                batch: sample_dataset(3, true),
            }
            .to_frame()
            .with_request_id(3),
        ];
        let mut bytes = Vec::new();
        for f in &frames {
            bytes.extend_from_slice(&encode_frame(f));
        }
        let mut asm = FrameAssembler::new();
        let mut out = Vec::new();
        for b in bytes {
            asm.push(&[b]);
            while let Some(res) = asm.next_frame() {
                out.push(res.unwrap());
            }
        }
        assert_eq!(out, frames);
        assert!(!asm.mid_frame(), "all bytes must be consumed");
    }

    #[test]
    fn assembler_splits_multi_frame_chunks_and_tracks_mid_frame() {
        let a = encode_frame(&Request::Ping.to_frame().with_request_id(7));
        let b = encode_frame(&Request::Stats.to_frame().with_request_id(8));
        let mut chunk = a.clone();
        chunk.extend_from_slice(&b[..5]); // one whole frame + a partial header
        let mut asm = FrameAssembler::new();
        asm.push(&chunk);
        assert!(matches!(asm.next_frame(), Some(Ok(f)) if f.request_id == 7));
        assert!(asm.next_frame().is_none());
        assert!(asm.mid_frame(), "partial second frame is pending");
        asm.push(&b[5..]);
        assert!(matches!(asm.next_frame(), Some(Ok(f)) if f.request_id == 8));
        assert!(!asm.mid_frame());
    }

    #[test]
    fn assembler_distinguishes_partial_tails_from_unextracted_frames() {
        let a = encode_frame(&Request::Ping.to_frame().with_request_id(1));
        let b = encode_frame(&Request::Stats.to_frame().with_request_id(2));

        // Empty: neither pending nor partial.
        let mut asm = FrameAssembler::new();
        assert!(!asm.frame_ready());
        assert!(!asm.partial_frame());

        // A complete-but-unextracted frame is *ready*, not partial: a
        // peer held back only by the caller's window owes nothing.
        asm.push(&a);
        assert!(asm.mid_frame());
        assert!(asm.frame_ready());
        assert!(!asm.partial_frame());

        // Two complete frames plus a torn tail: still ready (the front
        // frame is extractable), still not partial.
        asm.push(&b);
        asm.push(&a[..5]);
        assert!(asm.frame_ready());
        assert!(!asm.partial_frame());

        // Drain the complete frames: only the torn tail remains, which
        // the peer does owe bytes for.
        assert!(matches!(asm.next_frame(), Some(Ok(f)) if f.request_id == 1));
        assert!(matches!(asm.next_frame(), Some(Ok(f)) if f.request_id == 2));
        assert!(asm.next_frame().is_none());
        assert!(asm.mid_frame());
        assert!(!asm.frame_ready());
        assert!(asm.partial_frame(), "a torn tail is a genuine partial");

        // A full header declaring an unfinished body is also partial.
        let mut asm = FrameAssembler::new();
        asm.push(&a[..HEADER_LEN + 1]);
        assert!(!asm.frame_ready());
        assert!(asm.partial_frame());

        // Undecodable header bytes are *ready* — next_frame() yields the
        // typed error without more input, so the peer is not stalled.
        let mut bad = a.clone();
        bad[0] = b'X';
        let mut asm = FrameAssembler::new();
        asm.push(&bad);
        assert!(asm.frame_ready());
        assert!(!asm.partial_frame());
    }

    #[test]
    fn assembler_reports_header_and_checksum_errors() {
        // Bad magic.
        let mut bytes = encode_frame(&Request::Ping.to_frame());
        bytes[0] = b'X';
        let mut asm = FrameAssembler::new();
        asm.push(&bytes);
        assert!(matches!(
            asm.next_frame(),
            Some(Err(WireError::BadMagic { .. }))
        ));

        // Oversized declared length, detected from the header alone.
        let mut bytes = encode_frame(&Request::Ping.to_frame());
        bytes[7..11].copy_from_slice(&(MAX_BODY_LEN + 1).to_le_bytes());
        let mut asm = FrameAssembler::new();
        asm.push(&bytes[..HEADER_LEN]);
        assert!(matches!(
            asm.next_frame(),
            Some(Err(WireError::Oversized { .. }))
        ));

        // Flipped body byte: checksum mismatch, bytes not consumed.
        let mut bytes = encode_frame(&Request::Ping.to_frame());
        let flip_at = HEADER_LEN + 2;
        bytes[flip_at] ^= 0x40;
        let mut asm = FrameAssembler::new();
        asm.push(&bytes);
        assert!(matches!(
            asm.next_frame(),
            Some(Err(WireError::ChecksumMismatch { .. }))
        ));
        assert!(asm.mid_frame(), "desynchronized bytes stay pending");
    }

    #[test]
    fn assembler_survives_version_skew_between_frames() {
        // A CRC-valid frame tagged with a future version must be consumed
        // whole so the following frame still parses — the reactor-side
        // mirror of the `read_frame` version-skew contract.
        let mut skewed = encode_frame(&Request::Stats.to_frame().with_request_id(22));
        skewed[4..6].copy_from_slice(&9u16.to_le_bytes());
        let crc_at = skewed.len() - TRAILER_LEN;
        let crc = crc32(&skewed[..crc_at]);
        skewed[crc_at..].copy_from_slice(&crc.to_le_bytes());

        let mut bytes = encode_frame(&Request::Ping.to_frame().with_request_id(21));
        bytes.extend_from_slice(&skewed);
        bytes.extend_from_slice(&encode_frame(&Request::Ping.to_frame().with_request_id(23)));

        let mut asm = FrameAssembler::new();
        asm.push(&bytes);
        assert!(matches!(asm.next_frame(), Some(Ok(f)) if f.request_id == 21));
        assert!(matches!(
            asm.next_frame(),
            Some(Err(WireError::UnsupportedVersion { found: 9 }))
        ));
        assert!(matches!(asm.next_frame(), Some(Ok(f)) if f.request_id == 23));
        assert!(asm.next_frame().is_none());
        assert!(!asm.mid_frame());
    }

    #[test]
    fn assembler_matches_decode_frame_on_every_request() {
        let requests = [Request::Ping, Request::Stats, Request::ReloadKeys];
        for req in requests {
            let bytes = encode_frame(&req.to_frame().with_request_id(42));
            let mut asm = FrameAssembler::new();
            asm.push(&bytes);
            let from_asm = asm.next_frame().unwrap().unwrap();
            let from_decode = decode_frame(&bytes).unwrap();
            assert_eq!(from_asm, from_decode);
        }
    }

    #[test]
    fn every_request_round_trips() {
        let requests = vec![
            Request::LoadKey {
                tenant: "hospital-a".to_string(),
                key_bytes: vec![0, 1, 2, 254, 255],
            },
            Request::Transform {
                tenant: "hospital-b".to_string(),
                batch: sample_dataset(4, true),
            },
            Request::Invert {
                tenant: "naïve-tenant".to_string(),
                batch: sample_dataset(2, false),
            },
            Request::Stats,
            Request::EvictTenant {
                tenant: "x".to_string(),
            },
            Request::Ping,
            Request::ReloadKeys,
            Request::Goodbye,
            Request::FedOpen {
                config: vec![9, 8, 7, 6, 0, 255],
            },
            Request::FedMsg {
                session: 0xFEED_F00D,
                owner: 3,
                messages: vec![vec![1, 2, 3], Vec::new(), vec![255; 17]],
            },
            Request::FedMsg {
                session: 1,
                owner: 0,
                messages: Vec::new(),
            },
            Request::FedResult { session: u64::MAX },
            Request::FedClose { session: 0 },
        ];
        for req in requests {
            let frame = req.to_frame();
            let bytes = encode_frame(&frame);
            let decoded_frame = decode_frame(&bytes).unwrap();
            assert_eq!(decoded_frame, frame);
            let decoded = Request::from_frame(&decoded_frame).unwrap();
            assert_eq!(decoded, req);
        }
    }

    #[test]
    fn every_response_round_trips() {
        let responses = vec![
            Response::Loaded {
                method: "rbt".to_string(),
                n_attributes: 7,
            },
            Response::Transformed {
                released: sample_dataset(5, false),
                out_of_range_rows: 3,
            },
            Response::Inverted {
                recovered: sample_dataset(1, true),
            },
            Response::Stats(ServerStats::sample_for_tests()),
            Response::Evicted { existed: true },
            Response::Pong,
            Response::Reloaded {
                loaded: 5,
                quarantined: 2,
            },
            Response::GoingAway {
                message: "shutting down".to_string(),
            },
            Response::Deadline {
                waited_ms: 5200,
                budget_ms: 5000,
            },
            Response::Error {
                code: 4,
                message: "checksum mismatch".to_string(),
            },
            Response::FedOpened { session: 77 },
            Response::FedMsgs {
                messages: vec![Vec::new(), vec![42; 9]],
            },
            Response::FedSummary { summary: None },
            Response::FedSummary {
                summary: Some(vec![0, 1, 2, 3]),
            },
            Response::FedClosed { existed: false },
        ];
        for resp in responses {
            let frame = resp.to_frame();
            let decoded = Response::from_frame(&decode_frame(&encode_frame(&frame)).unwrap());
            assert_eq!(decoded.unwrap(), resp);
        }
    }

    #[test]
    fn request_ids_echo_through_the_codec() {
        for id in [0u64, 1, 42, u64::MAX] {
            let frame = Request::Ping.to_frame().with_request_id(id);
            let bytes = encode_frame(&frame);
            let back = decode_frame(&bytes).unwrap();
            assert_eq!(back.request_id, id);
            assert_eq!(back, frame);
            let mut cursor = std::io::Cursor::new(bytes);
            assert_eq!(read_frame(&mut cursor).unwrap(), Some(frame));
        }
    }

    #[test]
    fn version_1_frames_still_decode_with_id_zero() {
        // Hand-roll a v1 frame: no request-id prefix in the body.
        let body = Response::Error {
            code: 2,
            message: "old peer".to_string(),
        }
        .to_frame()
        .body;
        let mut w = ByteWriter::new();
        w.put_bytes(&MAGIC);
        w.put_u16(1);
        w.put_u8(Opcode::Error as u8);
        w.put_u32(body.len() as u32);
        w.put_bytes(&body);
        let crc = crc32(w.as_bytes());
        w.put_u32(crc);
        let bytes = w.into_bytes();

        let frame = decode_frame(&bytes).unwrap();
        assert_eq!(frame.request_id, 0);
        assert_eq!(frame.opcode, Opcode::Error);
        let resp = Response::from_frame(&frame).unwrap();
        assert!(matches!(resp, Response::Error { code: 2, .. }));
    }

    #[test]
    fn version_2_body_too_short_for_the_id_is_malformed() {
        // A v2 frame whose declared body cannot hold the 8-byte id.
        let mut w = ByteWriter::new();
        w.put_bytes(&MAGIC);
        w.put_u16(WIRE_VERSION);
        w.put_u8(Opcode::Ping as u8);
        w.put_u32(3);
        w.put_bytes(&[1, 2, 3]);
        let crc = crc32(w.as_bytes());
        w.put_u32(crc);
        assert!(matches!(
            decode_frame(&w.into_bytes()).unwrap_err(),
            WireError::Byte(DecodeError::Malformed { .. })
        ));
    }

    #[test]
    fn dataset_payload_is_bitwise_lossless() {
        let m = Matrix::from_vec(
            2,
            2,
            vec![
                -0.0,
                f64::MIN_POSITIVE,
                f64::from_bits(0x7FF8_0000_0000_1234),
                1e308,
            ],
        )
        .unwrap();
        let ds = Dataset::new(m, vec!["a".to_string(), "b".to_string()]).unwrap();
        let mut w = ByteWriter::new();
        encode_dataset(&mut w, &ds);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = decode_dataset(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_datasets_bitwise(&ds, &back);
    }

    /// The PR-3-style battery: every single-bit corruption of a valid frame
    /// is rejected with a typed error, never a panic or a silent success.
    #[test]
    fn every_single_bit_flip_is_rejected() {
        let frame = Request::Transform {
            tenant: "t".to_string(),
            batch: sample_dataset(2, true),
        }
        .to_frame()
        .with_request_id(77);
        let bytes = encode_frame(&frame);
        for idx in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupted = bytes.clone();
                corrupted[idx] ^= 1 << bit;
                assert!(
                    decode_frame(&corrupted).is_err(),
                    "flip at byte {idx} bit {bit} was not rejected"
                );
            }
        }
    }

    /// Every proper prefix of a valid frame is rejected as truncated.
    #[test]
    fn every_truncation_is_rejected() {
        let bytes = encode_frame(&Request::Ping.to_frame());
        for len in 0..bytes.len() {
            let err = decode_frame(&bytes[..len]).unwrap_err();
            assert!(
                matches!(err, WireError::Byte(DecodeError::Truncated { .. })),
                "prefix of {len} bytes: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = encode_frame(&Request::Ping.to_frame());
        bytes.push(0);
        assert!(matches!(
            decode_frame(&bytes).unwrap_err(),
            WireError::Byte(DecodeError::Malformed { .. })
        ));
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut bytes = encode_frame(&Request::Ping.to_frame());
        bytes[7..11].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            decode_frame(&bytes).unwrap_err(),
            WireError::Oversized {
                length: u32::MAX,
                limit: MAX_BODY_LEN
            }
        );
    }

    #[test]
    fn wrong_version_with_valid_checksum_is_a_version_error() {
        // Re-seal the CRC so the *only* defect is the version field.
        let frame = Request::Ping.to_frame();
        let mut bytes = encode_frame(&frame);
        bytes[4..6].copy_from_slice(&99u16.to_le_bytes());
        let crc = crc32(&bytes[..bytes.len() - TRAILER_LEN]);
        let crc_at = bytes.len() - TRAILER_LEN;
        bytes[crc_at..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            decode_frame(&bytes).unwrap_err(),
            WireError::UnsupportedVersion { found: 99 }
        );
    }

    #[test]
    fn unknown_opcode_with_valid_checksum_is_an_opcode_error() {
        let frame = Request::Ping.to_frame();
        let mut bytes = encode_frame(&frame);
        bytes[6] = 0xEE;
        let crc = crc32(&bytes[..bytes.len() - TRAILER_LEN]);
        let crc_at = bytes.len() - TRAILER_LEN;
        bytes[crc_at..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            decode_frame(&bytes).unwrap_err(),
            WireError::UnknownOpcode { found: 0xEE }
        );
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = encode_frame(&Request::Ping.to_frame());
        bytes[..4].copy_from_slice(b"RBTS");
        assert_eq!(
            decode_frame(&bytes).unwrap_err(),
            WireError::BadMagic { found: *b"RBTS" }
        );
    }

    #[test]
    fn stream_reader_yields_frames_then_clean_eof() {
        let mut buf = Vec::new();
        let ping = Request::Ping.to_frame();
        let stats = Request::Stats.to_frame();
        buf.extend_from_slice(&encode_frame(&ping));
        buf.extend_from_slice(&encode_frame(&stats));
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), Some(ping));
        assert_eq!(read_frame(&mut cursor).unwrap(), Some(stats));
        assert_eq!(read_frame(&mut cursor).unwrap(), None);
    }

    #[test]
    fn stream_eof_mid_frame_is_a_disconnect() {
        let bytes = encode_frame(&Request::Ping.to_frame());
        // Cut inside the header and inside the trailer.
        for cut in [1, HEADER_LEN - 1, bytes.len() - 1] {
            let mut cursor = std::io::Cursor::new(bytes[..cut].to_vec());
            let err = read_frame(&mut cursor).unwrap_err();
            assert!(
                matches!(
                    err,
                    WireError::Io {
                        kind: std::io::ErrorKind::UnexpectedEof,
                        ..
                    }
                ),
                "cut at {cut}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn stream_reader_rejects_oversized_without_allocating() {
        let mut bytes = encode_frame(&Request::Ping.to_frame());
        bytes[7..11].copy_from_slice(&(MAX_BODY_LEN + 1).to_le_bytes());
        let mut cursor = std::io::Cursor::new(bytes);
        assert_eq!(
            read_frame(&mut cursor).unwrap_err(),
            WireError::Oversized {
                length: MAX_BODY_LEN + 1,
                limit: MAX_BODY_LEN
            }
        );
    }

    /// A reader that yields timeout errors between scripted chunks, the
    /// shape of a socket with a read timeout set.
    struct TickingReader {
        chunks: Vec<Option<Vec<u8>>>, // None = one timeout tick
        at: usize,
    }

    impl Read for TickingReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.at >= self.chunks.len() {
                return Ok(0);
            }
            match &self.chunks[self.at] {
                None => {
                    self.at += 1;
                    Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "tick"))
                }
                Some(bytes) => {
                    let n = bytes.len().min(buf.len());
                    buf[..n].copy_from_slice(&bytes[..n]);
                    let rest = bytes[n..].to_vec();
                    if rest.is_empty() {
                        self.at += 1;
                    } else {
                        self.chunks[self.at] = Some(rest);
                    }
                    Ok(n)
                }
            }
        }
    }

    #[test]
    fn patient_reader_reports_idle_before_a_frame_and_rides_out_mid_frame_ticks() {
        let bytes = encode_frame(&Request::Ping.to_frame());
        // Tick, then the frame split across chunks with ticks inside.
        let mut stream = TickingReader {
            chunks: vec![
                None,
                Some(bytes[..5].to_vec()),
                None,
                Some(bytes[5..HEADER_LEN + 2].to_vec()),
                None,
                Some(bytes[HEADER_LEN + 2..].to_vec()),
            ],
            at: 0,
        };
        let budget = Duration::from_secs(30);
        assert!(matches!(
            read_frame_patient(&mut stream, budget).unwrap(),
            FrameEvent::Idle
        ));
        match read_frame_patient(&mut stream, budget).unwrap() {
            FrameEvent::Frame(f) => assert_eq!(f.opcode, Opcode::Ping),
            other => panic!("expected a frame, got {other:?}"),
        }
        assert!(matches!(
            read_frame_patient(&mut stream, budget).unwrap(),
            FrameEvent::CleanEof
        ));
    }

    #[test]
    fn patient_reader_reports_a_stall_once_the_budget_is_burned() {
        let bytes = encode_frame(&Request::Ping.to_frame());
        // Three header bytes, then silence forever.
        let mut stream = TickingReader {
            chunks: vec![
                Some(bytes[..3].to_vec()),
                None,
                None,
                None,
                None,
                None,
                None,
            ],
            at: 0,
        };
        assert!(matches!(
            read_frame_patient(&mut stream, Duration::ZERO).unwrap(),
            FrameEvent::Stalled
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        // Arbitrary bodies round-trip bit-identically through the frame
        // codec, for every opcode and arbitrary request ids.
        #[test]
        fn arbitrary_bodies_round_trip(
            body in prop::collection::vec(0usize..256, 0..96),
            opcode_pick in 0usize..10,
            request_id in 0u64..u64::MAX,
        ) {
            let opcodes = [
                Opcode::LoadKey, Opcode::Transform, Opcode::Invert,
                Opcode::Stats, Opcode::EvictTenant, Opcode::Ping,
                Opcode::GoingAway, Opcode::ReloadKeys, Opcode::Deadline,
                Opcode::Error,
            ];
            let body: Vec<u8> = body.into_iter().map(|b| b as u8).collect();
            let frame = Frame::new(opcodes[opcode_pick], body).with_request_id(request_id);
            let bytes = encode_frame(&frame);
            prop_assert_eq!(decode_frame(&bytes).unwrap(), frame.clone());
            let mut cursor = std::io::Cursor::new(bytes);
            prop_assert_eq!(read_frame(&mut cursor).unwrap(), Some(frame));
        }

        // Single-byte corruption at an arbitrary position is rejected.
        #[test]
        fn random_corruption_is_rejected(
            body in prop::collection::vec(0usize..256, 0..64),
            pos_frac in 0.0..1.0f64,
            flip in 1usize..256,
        ) {
            let body: Vec<u8> = body.into_iter().map(|b| b as u8).collect();
            let mut bytes = encode_frame(&Frame::new(Opcode::Transform, body));
            let pos = ((bytes.len() as f64) * pos_frac) as usize % bytes.len();
            bytes[pos] ^= flip as u8;
            prop_assert!(decode_frame(&bytes).is_err());
        }
    }
}
