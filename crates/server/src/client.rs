//! A blocking, *resilient* client for the `RBTW` protocol.
//!
//! One request, one response, in order, over a plain `TcpStream` — but
//! unlike a naive client, transport failures are not the end of the
//! world:
//!
//! * **reconnect with backoff** — a dead or refused connection is retried
//!   with exponential backoff plus deterministic jitter, re-resolving the
//!   server address each attempt (so a restarted server on a new port is
//!   found via an address provider);
//! * **idempotent retry** — requests carry a per-request id echoed by the
//!   server; a request whose outcome is unknown (connection died
//!   mid-call) is retried only when [`Request::is_idempotent`] says a
//!   replay is safe, and a response is only accepted if its echoed id
//!   matches;
//! * **circuit breaker** — after [`RetryPolicy::breaker_threshold`]
//!   consecutive transport failures the client fails fast for
//!   [`RetryPolicy::breaker_cooldown`] instead of hammering a dead
//!   server; the first call after the cooldown is the half-open probe;
//! * **clean goodbye** — sockets get `TCP_NODELAY` and explicit
//!   read/write timeouts, and `Drop` sends a `Goodbye` frame so the
//!   server sees a clean departure instead of an RST.

use std::fmt;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::thread;
use std::time::{Duration, Instant};

use rbt_data::Dataset;

use crate::metrics::ServerStats;
use crate::wire::{self, Request, Response, WireError, CODE_UNAVAILABLE};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// The wire layer rejected something (or the stream failed).
    Wire(WireError),
    /// The server answered with a typed `Error` frame.
    Server {
        /// Error-family code (matches the CLI exit-code taxonomy).
        code: u8,
        /// Server-side detail.
        message: String,
    },
    /// The server closed the connection before answering.
    Disconnected,
    /// The server announced it is draining (`GoingAway`) and will not
    /// answer further requests on this connection.
    GoingAway {
        /// Server-side detail.
        message: String,
    },
    /// The server shed the request because it waited past its deadline.
    Deadline {
        /// How long the request had waited server-side, milliseconds.
        waited_ms: u64,
        /// The budget it exceeded, milliseconds.
        budget_ms: u64,
    },
    /// The circuit breaker is open: recent calls failed repeatedly, so
    /// this call failed fast without touching the network.
    CircuitOpen {
        /// Consecutive transport failures that opened the breaker.
        failures: u32,
    },
    /// The server answered with a response of the wrong kind for the
    /// request — a protocol bug, not an I/O failure.
    Unexpected {
        /// What the caller was waiting for.
        expected: &'static str,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "{e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error (code {code}): {message}")
            }
            ClientError::Disconnected => write!(f, "server closed the connection"),
            ClientError::GoingAway { message } => {
                write!(f, "server going away: {message}")
            }
            ClientError::Deadline {
                waited_ms,
                budget_ms,
            } => write!(
                f,
                "request shed after waiting {waited_ms}ms (budget {budget_ms}ms)"
            ),
            ClientError::CircuitOpen { failures } => write!(
                f,
                "circuit breaker open after {failures} consecutive failures"
            ),
            ClientError::Unexpected { expected } => {
                write!(f, "unexpected response kind, wanted {expected}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// Client result alias.
pub type ClientResult<T> = std::result::Result<T, ClientError>;

/// Retry, backoff, and circuit-breaker tuning.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Attempts per call beyond the first (0 disables retry).
    pub max_retries: u32,
    /// First backoff sleep; doubles per attempt.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter applied to each backoff sleep.
    pub jitter_seed: u64,
    /// Consecutive transport failures that open the circuit breaker.
    pub breaker_threshold: u32,
    /// How long the breaker stays open before a half-open probe.
    pub breaker_cooldown: Duration,
    /// Socket read timeout (bounds how long a call waits on a wedged
    /// server).
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 4,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(2),
            jitter_seed: 0x5EED_CAFE,
            breaker_threshold: 8,
            breaker_cooldown: Duration::from_secs(1),
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
        }
    }
}

impl RetryPolicy {
    /// A policy with retries disabled (one shot, like the pre-resilience
    /// client).
    pub fn no_retries() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        }
    }
}

/// Where the client finds the server: a fixed address, or a provider
/// callback re-queried on every reconnect (how the chaos battery follows
/// a server restarted on a new port).
enum AddrSource {
    Fixed(SocketAddr),
    Provider(Box<dyn FnMut() -> SocketAddr + Send>),
}

impl AddrSource {
    fn current(&mut self) -> SocketAddr {
        match self {
            AddrSource::Fixed(addr) => *addr,
            AddrSource::Provider(f) => f(),
        }
    }
}

/// Client-side resilience counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientMetrics {
    /// Requests retried after a transport-class failure.
    pub retries: u64,
    /// Reconnect attempts (successful or not).
    pub reconnects: u64,
    /// Calls failed fast by the open circuit breaker.
    pub breaker_fast_fails: u64,
}

/// A blocking, resilient connection to an [`rbt-server`](crate) daemon.
pub struct Client {
    addr: AddrSource,
    stream: Option<TcpStream>,
    policy: RetryPolicy,
    next_request_id: u64,
    /// xorshift state for deterministic backoff jitter.
    jitter: u64,
    consecutive_failures: u32,
    breaker_opened_at: Option<Instant>,
    metrics: ClientMetrics,
}

impl Client {
    /// Connects to a running server with the default [`RetryPolicy`].
    ///
    /// # Errors
    ///
    /// [`ClientError::Wire`] wrapping the connect failure.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> ClientResult<Client> {
        Client::connect_with(addr, RetryPolicy::default())
    }

    /// Connects with an explicit policy.
    ///
    /// # Errors
    ///
    /// [`ClientError::Wire`] wrapping the connect or address-resolution
    /// failure.
    pub fn connect_with<A: ToSocketAddrs>(addr: A, policy: RetryPolicy) -> ClientResult<Client> {
        let resolved = addr
            .to_socket_addrs()
            .map_err(WireError::from)?
            .next()
            .ok_or_else(|| {
                ClientError::Wire(WireError::Io {
                    kind: std::io::ErrorKind::AddrNotAvailable,
                    message: "address resolved to nothing".to_string(),
                })
            })?;
        let mut client = Client {
            addr: AddrSource::Fixed(resolved),
            stream: None,
            jitter: policy.jitter_seed | 1,
            policy,
            next_request_id: 1,
            consecutive_failures: 0,
            breaker_opened_at: None,
            metrics: ClientMetrics::default(),
        };
        client.reconnect()?;
        Ok(client)
    }

    /// Connects through an address provider that is re-queried on every
    /// reconnect — the failover path for a server that restarts on a
    /// different port.
    ///
    /// # Errors
    ///
    /// [`ClientError::Wire`] wrapping the initial connect failure.
    pub fn connect_via(
        provider: impl FnMut() -> SocketAddr + Send + 'static,
        policy: RetryPolicy,
    ) -> ClientResult<Client> {
        let mut client = Client {
            addr: AddrSource::Provider(Box::new(provider)),
            stream: None,
            jitter: policy.jitter_seed | 1,
            policy,
            next_request_id: 1,
            consecutive_failures: 0,
            breaker_opened_at: None,
            metrics: ClientMetrics::default(),
        };
        client.reconnect()?;
        Ok(client)
    }

    /// Client-side resilience counters.
    pub fn metrics(&self) -> ClientMetrics {
        self.metrics
    }

    /// Deterministic jitter in `[0, cap)` microseconds (xorshift64*).
    fn jitter_us(&mut self, cap: u64) -> u64 {
        let mut x = self.jitter;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.jitter = x;
        if cap == 0 {
            0
        } else {
            x.wrapping_mul(0x2545_F491_4F6C_DD1D) % cap
        }
    }

    fn backoff_for(&mut self, attempt: u32) -> Duration {
        let base = self
            .policy
            .base_backoff
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.policy.max_backoff);
        let jitter = self.jitter_us(base.as_micros().min(u128::from(u64::MAX)) as u64 / 2 + 1);
        base + Duration::from_micros(jitter)
    }

    fn reconnect(&mut self) -> ClientResult<()> {
        self.stream = None;
        self.metrics.reconnects += 1;
        let addr = self.addr.current();
        let stream = TcpStream::connect(addr).map_err(WireError::from)?;
        stream.set_nodelay(true).map_err(WireError::from)?;
        stream
            .set_read_timeout(Some(self.policy.read_timeout))
            .map_err(WireError::from)?;
        stream
            .set_write_timeout(Some(self.policy.write_timeout))
            .map_err(WireError::from)?;
        self.stream = Some(stream);
        Ok(())
    }

    fn stream(&mut self) -> ClientResult<&mut TcpStream> {
        if self.stream.is_none() {
            self.reconnect()?;
        }
        Ok(self
            .stream
            .as_mut()
            .expect("reconnect populated the stream"))
    }

    /// Whether an error is transport-class: the request's outcome is
    /// unknown (or the server refused it for capacity reasons), so an
    /// idempotent replay on a fresh connection is the right move.
    fn is_transport_error(e: &ClientError) -> bool {
        matches!(
            e,
            ClientError::Wire(WireError::Io { .. })
                | ClientError::Disconnected
                | ClientError::GoingAway { .. }
                | ClientError::Deadline { .. }
                | ClientError::Server {
                    code: CODE_UNAVAILABLE,
                    ..
                }
        )
    }

    fn breaker_check(&mut self) -> ClientResult<()> {
        if self.consecutive_failures < self.policy.breaker_threshold {
            return Ok(());
        }
        let opened = self
            .breaker_opened_at
            .get_or_insert_with(Instant::now)
            .to_owned();
        if opened.elapsed() < self.policy.breaker_cooldown {
            self.metrics.breaker_fast_fails += 1;
            return Err(ClientError::CircuitOpen {
                failures: self.consecutive_failures,
            });
        }
        // Cooldown over: half-open. Allow this one probe through; a
        // success resets the breaker, a failure re-opens it.
        self.breaker_opened_at = Some(Instant::now());
        Ok(())
    }

    fn note_success(&mut self) {
        self.consecutive_failures = 0;
        self.breaker_opened_at = None;
    }

    fn note_transport_failure(&mut self) {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        if self.consecutive_failures >= self.policy.breaker_threshold
            && self.breaker_opened_at.is_none()
        {
            self.breaker_opened_at = Some(Instant::now());
        }
    }

    /// Sends one request frame tagged with a fresh request id, without
    /// waiting for the answer — the pipelining half of
    /// [`call`](Client::call), used by the bench load generator and the
    /// backpressure tests. Pipelined sends bypass the retry loop.
    ///
    /// # Errors
    ///
    /// [`ClientError::Wire`] on stream failure.
    pub fn send(&mut self, request: &Request) -> ClientResult<()> {
        let id = self.next_request_id;
        self.next_request_id += 1;
        let frame = request.to_frame().with_request_id(id);
        wire::write_frame(self.stream()?, &frame)?;
        Ok(())
    }

    /// Receives the next response frame (any request id).
    ///
    /// # Errors
    ///
    /// [`ClientError::Disconnected`] when the server closed the stream;
    /// [`ClientError::Server`] for typed `Error` frames;
    /// [`ClientError::GoingAway`] / [`ClientError::Deadline`] for their
    /// frames; [`ClientError::Wire`] for anything malformed.
    pub fn receive(&mut self) -> ClientResult<Response> {
        let stream = self.stream()?;
        match wire::read_frame(stream)? {
            Some(frame) => match Response::from_frame(&frame)? {
                Response::Error { code, message } => Err(ClientError::Server { code, message }),
                Response::GoingAway { message } => Err(ClientError::GoingAway { message }),
                Response::Deadline {
                    waited_ms,
                    budget_ms,
                } => Err(ClientError::Deadline {
                    waited_ms,
                    budget_ms,
                }),
                response => Ok(response),
            },
            None => Err(ClientError::Disconnected),
        }
    }

    /// One attempt: send the tagged frame, read until the response whose
    /// echoed id matches (tolerating id 0 from version-1 servers).
    fn call_once(&mut self, request: &Request, id: u64) -> ClientResult<Response> {
        let frame = request.to_frame().with_request_id(id);
        let stream = self.stream()?;
        wire::write_frame(stream, &frame)?;
        loop {
            let stream = self.stream()?;
            match wire::read_frame(stream)? {
                Some(frame) => {
                    if frame.request_id != 0 && frame.request_id != id {
                        // A stale response from an earlier, abandoned
                        // attempt on this connection; skip it.
                        continue;
                    }
                    return match Response::from_frame(&frame)? {
                        Response::Error { code, message } => {
                            Err(ClientError::Server { code, message })
                        }
                        Response::GoingAway { message } => Err(ClientError::GoingAway { message }),
                        Response::Deadline {
                            waited_ms,
                            budget_ms,
                        } => Err(ClientError::Deadline {
                            waited_ms,
                            budget_ms,
                        }),
                        response => Ok(response),
                    };
                }
                None => return Err(ClientError::Disconnected),
            }
        }
    }

    /// One request, one response — retried behind the scenes when the
    /// failure is transport-class, the request is idempotent, and the
    /// circuit breaker allows it.
    ///
    /// # Errors
    ///
    /// The last attempt's error once retries are exhausted;
    /// [`ClientError::CircuitOpen`] when failing fast.
    pub fn call(&mut self, request: &Request) -> ClientResult<Response> {
        self.breaker_check()?;
        let id = self.next_request_id;
        self.next_request_id += 1;
        let retries = if request.is_idempotent() {
            self.policy.max_retries
        } else {
            0
        };
        let mut attempt = 0u32;
        loop {
            let result = self.call_once(request, id);
            match result {
                Ok(response) => {
                    self.note_success();
                    return Ok(response);
                }
                Err(e) if Self::is_transport_error(&e) && attempt < retries => {
                    self.note_transport_failure();
                    self.metrics.retries += 1;
                    // The connection's state is unknown; start fresh.
                    self.stream = None;
                    let backoff = self.backoff_for(attempt);
                    thread::sleep(backoff);
                    attempt += 1;
                    self.breaker_check()?;
                    // Reconnect failures burn attempts too.
                    if self.reconnect().is_err() && attempt >= retries {
                        return Err(e);
                    }
                }
                Err(e) => {
                    if Self::is_transport_error(&e) {
                        self.note_transport_failure();
                        self.stream = None;
                    }
                    return Err(e);
                }
            }
        }
    }

    /// Liveness check.
    ///
    /// # Errors
    ///
    /// Any transport or server failure.
    pub fn ping(&mut self) -> ClientResult<()> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            _ => Err(ClientError::Unexpected { expected: "Pong" }),
        }
    }

    /// Registers `tenant`'s sealed key bytes; returns the decoded method
    /// name and attribute count.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with code 4 for undecodable keys.
    pub fn load_key(&mut self, tenant: &str, key_bytes: Vec<u8>) -> ClientResult<(String, u64)> {
        let request = Request::LoadKey {
            tenant: tenant.to_string(),
            key_bytes,
        };
        match self.call(&request)? {
            Response::Loaded {
                method,
                n_attributes,
            } => Ok((method, n_attributes)),
            _ => Err(ClientError::Unexpected { expected: "Loaded" }),
        }
    }

    /// Transforms a batch under `tenant`'s session; returns the released
    /// batch and its out-of-range (drift) row count.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with code 2 for unknown tenants, 5 for
    /// shape mismatches.
    pub fn transform(&mut self, tenant: &str, batch: &Dataset) -> ClientResult<(Dataset, u64)> {
        let request = Request::Transform {
            tenant: tenant.to_string(),
            batch: batch.clone(),
        };
        match self.call(&request)? {
            Response::Transformed {
                released,
                out_of_range_rows,
            } => Ok((released, out_of_range_rows)),
            _ => Err(ClientError::Unexpected {
                expected: "Transformed",
            }),
        }
    }

    /// Owner-side inverse of a released batch.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with code 7 for non-invertible methods.
    pub fn invert(&mut self, tenant: &str, batch: &Dataset) -> ClientResult<Dataset> {
        let request = Request::Invert {
            tenant: tenant.to_string(),
            batch: batch.clone(),
        };
        match self.call(&request)? {
            Response::Inverted { recovered } => Ok(recovered),
            _ => Err(ClientError::Unexpected {
                expected: "Inverted",
            }),
        }
    }

    /// The server's stats snapshot.
    ///
    /// # Errors
    ///
    /// Any transport failure.
    pub fn stats(&mut self) -> ClientResult<ServerStats> {
        match self.call(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            _ => Err(ClientError::Unexpected { expected: "Stats" }),
        }
    }

    /// Drops a tenant server-side; returns whether it existed. Never
    /// retried (the `existed` answer changes on replay).
    ///
    /// # Errors
    ///
    /// Any transport failure.
    pub fn evict(&mut self, tenant: &str) -> ClientResult<bool> {
        let request = Request::EvictTenant {
            tenant: tenant.to_string(),
        };
        match self.call(&request)? {
            Response::Evicted { existed } => Ok(existed),
            _ => Err(ClientError::Unexpected {
                expected: "Evicted",
            }),
        }
    }

    /// Asks the server to hot-reload its key directory; returns how many
    /// tenants were loaded and how many corrupt files were quarantined.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with code 7 when the server has no key
    /// store.
    pub fn reload_keys(&mut self) -> ClientResult<(u64, u64)> {
        match self.call(&Request::ReloadKeys)? {
            Response::Reloaded {
                loaded,
                quarantined,
            } => Ok((loaded, quarantined)),
            _ => Err(ClientError::Unexpected {
                expected: "Reloaded",
            }),
        }
    }

    /// Opens a federated release session on the server's hub. `config` is
    /// an encoded `rbt_protocol::FederationConfig`; returns the hosted
    /// session id. Never retried — a replay collides with the session the
    /// first attempt opened.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with code 2 for a duplicate session id or
    /// a full hub, 4 for an undecodable config.
    pub fn fed_open(&mut self, config: Vec<u8>) -> ClientResult<u64> {
        match self.call(&Request::FedOpen { config })? {
            Response::FedOpened { session } => Ok(session),
            _ => Err(ClientError::Unexpected {
                expected: "FedOpened",
            }),
        }
    }

    /// Delivers this owner's outbound federation messages (each an
    /// encoded `rbt_protocol::Message`) and drains the owner's mailbox in
    /// return. Never retried — a replayed delivery is a duplicate the
    /// protocol state machines reject.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with code 2 for unknown sessions or
    /// out-of-range owners, 3 for protocol-state rejections.
    pub fn fed_exchange(
        &mut self,
        session: u64,
        owner: u16,
        messages: Vec<Vec<u8>>,
    ) -> ClientResult<Vec<Vec<u8>>> {
        let request = Request::FedMsg {
            session,
            owner,
            messages,
        };
        match self.call(&request)? {
            Response::FedMsgs { messages } => Ok(messages),
            _ => Err(ClientError::Unexpected {
                expected: "FedMsgs",
            }),
        }
    }

    /// Polls a federated session for its joint clustering result: `None`
    /// while rounds are in flight, or the encoded `JointDataset` protocol
    /// message once the receiver has completed. A pure read, so it is
    /// retried like the other idempotent calls.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with code 2 for unknown sessions, or the
    /// session's recorded protocol failure.
    pub fn fed_result(&mut self, session: u64) -> ClientResult<Option<Vec<u8>>> {
        match self.call(&Request::FedResult { session })? {
            Response::FedSummary { summary } => Ok(summary),
            _ => Err(ClientError::Unexpected {
                expected: "FedSummary",
            }),
        }
    }

    /// Closes a federated session server-side; returns whether it
    /// existed. Never retried (the `existed` answer changes on replay).
    ///
    /// # Errors
    ///
    /// Any transport failure.
    pub fn fed_close(&mut self, session: u64) -> ClientResult<bool> {
        match self.call(&Request::FedClose { session })? {
            Response::FedClosed { existed } => Ok(existed),
            _ => Err(ClientError::Unexpected {
                expected: "FedClosed",
            }),
        }
    }

    /// The raw stream — the escape hatch the fault-injection tests use to
    /// write malformed or partial frames.
    ///
    /// # Panics
    ///
    /// When the client is between connections (a retry left the stream
    /// closed and nothing has reconnected yet).
    pub fn stream_mut(&mut self) -> &mut TcpStream {
        self.stream
            .as_mut()
            .expect("client is between connections; call ping() first")
    }
}

impl Drop for Client {
    fn drop(&mut self) {
        // A clean goodbye instead of an RST: best-effort, never blocking
        // shutdown on a dead server.
        if let Some(stream) = self.stream.as_mut() {
            let _ = wire::write_frame(stream, &Request::Goodbye.to_frame());
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
    }
}
