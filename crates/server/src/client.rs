//! A blocking client for the `RBTW` protocol: one request, one response,
//! in order, over a plain `TcpStream`.

use std::fmt;
use std::net::{TcpStream, ToSocketAddrs};

use rbt_data::Dataset;

use crate::metrics::ServerStats;
use crate::wire::{self, Request, Response, WireError};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// The wire layer rejected something (or the stream failed).
    Wire(WireError),
    /// The server answered with a typed `Error` frame.
    Server {
        /// Error-family code (matches the CLI exit-code taxonomy).
        code: u8,
        /// Server-side detail.
        message: String,
    },
    /// The server closed the connection before answering.
    Disconnected,
    /// The server answered with a response of the wrong kind for the
    /// request — a protocol bug, not an I/O failure.
    Unexpected {
        /// What the caller was waiting for.
        expected: &'static str,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "{e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error (code {code}): {message}")
            }
            ClientError::Disconnected => write!(f, "server closed the connection"),
            ClientError::Unexpected { expected } => {
                write!(f, "unexpected response kind, wanted {expected}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// Client result alias.
pub type ClientResult<T> = std::result::Result<T, ClientError>;

/// A blocking connection to an [`rbt-server`](crate) daemon.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// [`ClientError::Wire`] wrapping the connect failure.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> ClientResult<Client> {
        let stream = TcpStream::connect(addr).map_err(WireError::from)?;
        Ok(Client { stream })
    }

    /// Sends one request frame without waiting for the answer — the
    /// pipelining half of [`call`](Client::call), used by the bench load
    /// generator and the backpressure tests.
    ///
    /// # Errors
    ///
    /// [`ClientError::Wire`] on stream failure.
    pub fn send(&mut self, request: &Request) -> ClientResult<()> {
        wire::write_frame(&mut self.stream, &request.to_frame())?;
        Ok(())
    }

    /// Receives the next response frame.
    ///
    /// # Errors
    ///
    /// [`ClientError::Disconnected`] when the server closed the stream;
    /// [`ClientError::Server`] for typed `Error` frames;
    /// [`ClientError::Wire`] for anything malformed.
    pub fn receive(&mut self) -> ClientResult<Response> {
        match wire::read_frame(&mut self.stream)? {
            Some(frame) => match Response::from_frame(&frame)? {
                Response::Error { code, message } => Err(ClientError::Server { code, message }),
                response => Ok(response),
            },
            None => Err(ClientError::Disconnected),
        }
    }

    /// One request, one response.
    ///
    /// # Errors
    ///
    /// See [`send`](Client::send) and [`receive`](Client::receive).
    pub fn call(&mut self, request: &Request) -> ClientResult<Response> {
        self.send(request)?;
        self.receive()
    }

    /// Liveness check.
    ///
    /// # Errors
    ///
    /// Any transport or server failure.
    pub fn ping(&mut self) -> ClientResult<()> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            _ => Err(ClientError::Unexpected { expected: "Pong" }),
        }
    }

    /// Registers `tenant`'s sealed key bytes; returns the decoded method
    /// name and attribute count.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with code 4 for undecodable keys.
    pub fn load_key(&mut self, tenant: &str, key_bytes: Vec<u8>) -> ClientResult<(String, u64)> {
        let request = Request::LoadKey {
            tenant: tenant.to_string(),
            key_bytes,
        };
        match self.call(&request)? {
            Response::Loaded {
                method,
                n_attributes,
            } => Ok((method, n_attributes)),
            _ => Err(ClientError::Unexpected { expected: "Loaded" }),
        }
    }

    /// Transforms a batch under `tenant`'s session; returns the released
    /// batch and its out-of-range (drift) row count.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with code 2 for unknown tenants, 5 for
    /// shape mismatches.
    pub fn transform(&mut self, tenant: &str, batch: &Dataset) -> ClientResult<(Dataset, u64)> {
        let request = Request::Transform {
            tenant: tenant.to_string(),
            batch: batch.clone(),
        };
        match self.call(&request)? {
            Response::Transformed {
                released,
                out_of_range_rows,
            } => Ok((released, out_of_range_rows)),
            _ => Err(ClientError::Unexpected {
                expected: "Transformed",
            }),
        }
    }

    /// Owner-side inverse of a released batch.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with code 7 for non-invertible methods.
    pub fn invert(&mut self, tenant: &str, batch: &Dataset) -> ClientResult<Dataset> {
        let request = Request::Invert {
            tenant: tenant.to_string(),
            batch: batch.clone(),
        };
        match self.call(&request)? {
            Response::Inverted { recovered } => Ok(recovered),
            _ => Err(ClientError::Unexpected {
                expected: "Inverted",
            }),
        }
    }

    /// The server's stats snapshot.
    ///
    /// # Errors
    ///
    /// Any transport failure.
    pub fn stats(&mut self) -> ClientResult<ServerStats> {
        match self.call(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            _ => Err(ClientError::Unexpected { expected: "Stats" }),
        }
    }

    /// Drops a tenant server-side; returns whether it existed.
    ///
    /// # Errors
    ///
    /// Any transport failure.
    pub fn evict(&mut self, tenant: &str) -> ClientResult<bool> {
        let request = Request::EvictTenant {
            tenant: tenant.to_string(),
        };
        match self.call(&request)? {
            Response::Evicted { existed } => Ok(existed),
            _ => Err(ClientError::Unexpected {
                expected: "Evicted",
            }),
        }
    }

    /// The raw stream — the escape hatch the fault-injection tests use to
    /// write malformed or partial frames.
    pub fn stream_mut(&mut self) -> &mut TcpStream {
        &mut self.stream
    }
}
