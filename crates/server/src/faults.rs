//! Deterministic fault injection for the wire layer.
//!
//! A [`FaultPlan`] is a schedule of transport faults pinned to absolute
//! byte offsets of the read and write directions: stall the next read for
//! a while, delay a write, tear a write short and sever, or disconnect
//! outright once N bytes have moved. Wrapping a stream in
//! [`FaultPlan::wrap`] yields a [`FaultyStream`] that behaves exactly like
//! the inner stream except at those chosen boundaries — so a chaos test
//! can place a disconnect *mid-frame* (offset inside a frame's byte range)
//! or *between* frames (offset on a frame boundary) and replay the exact
//! same failure on every run.
//!
//! Determinism is the point: [`FaultPlan::seeded`] derives the schedule
//! from a seed via the workspace's own seeded RNG, so a chaos-battery
//! failure reproduces from its seed alone, and CI shrinkage is trivial
//! (re-run with the printed seed). Sleeps are real `thread::sleep`s kept
//! short by construction; severing goes through the [`Severable`] trait so
//! the harness can cut a `TcpStream` at the kernel level (RST-like) rather
//! than merely returning errors.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::thread;
use std::time::Duration;

use rand::SeedableRng;

/// Transports that can be forcibly cut below the `Read`/`Write` interface.
pub trait Severable {
    /// Cuts the transport: subsequent reads and writes on *either* half
    /// fail. Idempotent.
    fn sever(&mut self);
}

impl Severable for TcpStream {
    fn sever(&mut self) {
        let _ = self.shutdown(std::net::Shutdown::Both);
    }
}

/// One scheduled fault, pinned to an absolute byte offset in one
/// direction of the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Sleep `for_ms` before servicing the read that crosses read-offset
    /// `at_byte` — a peer that goes quiet mid-frame.
    StallRead {
        /// Read-direction byte offset that triggers the stall.
        at_byte: u64,
        /// Stall duration, milliseconds.
        for_ms: u64,
    },
    /// Sleep `for_ms` before servicing the write that crosses
    /// write-offset `at_byte` — a delayed response.
    DelayWrite {
        /// Write-direction byte offset that triggers the delay.
        at_byte: u64,
        /// Delay duration, milliseconds.
        for_ms: u64,
    },
    /// Let the write crossing write-offset `at_byte` emit only the bytes
    /// up to the offset, then sever — a torn (partial) write.
    TornWrite {
        /// Write-direction byte offset where the stream is cut.
        at_byte: u64,
    },
    /// Sever once read-offset `at_byte` has been reached — the peer
    /// vanishes mid-receive.
    DropRead {
        /// Read-direction byte offset where the stream is cut.
        at_byte: u64,
    },
}

impl Fault {
    fn read_trigger(&self) -> Option<u64> {
        match self {
            Fault::StallRead { at_byte, .. } | Fault::DropRead { at_byte } => Some(*at_byte),
            _ => None,
        }
    }

    fn write_trigger(&self) -> Option<u64> {
        match self {
            Fault::DelayWrite { at_byte, .. } | Fault::TornWrite { at_byte } => Some(*at_byte),
            _ => None,
        }
    }
}

/// A deterministic schedule of transport faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (the wrapped stream behaves normally).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// The scheduled faults, in insertion order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Schedules a read stall: the read crossing read-offset `at_byte`
    /// sleeps `for_ms` first.
    pub fn stall_read(mut self, at_byte: u64, for_ms: u64) -> FaultPlan {
        self.faults.push(Fault::StallRead { at_byte, for_ms });
        self
    }

    /// Schedules a delayed write: the write crossing write-offset
    /// `at_byte` sleeps `for_ms` first.
    pub fn delay_write(mut self, at_byte: u64, for_ms: u64) -> FaultPlan {
        self.faults.push(Fault::DelayWrite { at_byte, for_ms });
        self
    }

    /// Schedules a torn write: the write crossing write-offset `at_byte`
    /// emits only the bytes up to the offset, then the stream is severed.
    pub fn torn_write(mut self, at_byte: u64) -> FaultPlan {
        self.faults.push(Fault::TornWrite { at_byte });
        self
    }

    /// Schedules a mid-receive disconnect once read-offset `at_byte` is
    /// reached.
    pub fn drop_read(mut self, at_byte: u64) -> FaultPlan {
        self.faults.push(Fault::DropRead { at_byte });
        self
    }

    /// Derives a random-but-reproducible plan from `seed`: one to three
    /// faults at offsets within `traffic_hint` bytes (pass roughly the
    /// number of bytes the connection is expected to move). The same seed
    /// always yields the same plan.
    pub fn seeded(seed: u64, traffic_hint: u64) -> FaultPlan {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let span = traffic_hint.max(1);
        let n = rng.random_range(1..=3u32);
        let mut plan = FaultPlan::new();
        for _ in 0..n {
            let at_byte = rng.random_range(0..span);
            let for_ms = rng.random_range(1..=25u64);
            plan = match rng.random_range(0..4u32) {
                0 => plan.stall_read(at_byte, for_ms),
                1 => plan.delay_write(at_byte, for_ms),
                2 => plan.torn_write(at_byte),
                _ => plan.drop_read(at_byte),
            };
        }
        plan
    }

    /// Wraps a stream so the scheduled faults fire at their offsets.
    pub fn wrap<S>(self, inner: S) -> FaultyStream<S> {
        FaultyStream {
            inner,
            pending: self.faults,
            read_pos: 0,
            write_pos: 0,
            severed: false,
        }
    }
}

/// A stream that behaves like `S` except at the byte offsets its
/// [`FaultPlan`] scheduled faults for.
pub struct FaultyStream<S> {
    inner: S,
    pending: Vec<Fault>,
    read_pos: u64,
    write_pos: u64,
    severed: bool,
}

impl<S> FaultyStream<S> {
    /// Whether a fault has already severed the transport.
    pub fn is_severed(&self) -> bool {
        self.severed
    }

    /// Total bytes read through this wrapper so far.
    pub fn bytes_read(&self) -> u64 {
        self.read_pos
    }

    /// Total bytes written through this wrapper so far.
    pub fn bytes_written(&self) -> u64 {
        self.write_pos
    }

    /// Unwraps the inner stream, discarding unfired faults.
    pub fn into_inner(self) -> S {
        self.inner
    }

    fn severed_err() -> io::Error {
        io::Error::new(io::ErrorKind::ConnectionReset, "severed by fault plan")
    }

    /// Pops the first pending fault (insertion order) whose trigger lies
    /// in `[pos, pos + len)` for the given direction.
    fn take_triggered(&mut self, read: bool, pos: u64, len: u64) -> Option<Fault> {
        let idx = self.pending.iter().position(|f| {
            let trig = if read {
                f.read_trigger()
            } else {
                f.write_trigger()
            };
            trig.is_some_and(|t| t >= pos && t < pos + len)
        })?;
        Some(self.pending.remove(idx))
    }
}

impl<S: Read + Severable> Read for FaultyStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.severed {
            return Err(Self::severed_err());
        }
        if buf.is_empty() {
            return self.inner.read(buf);
        }
        if let Some(fault) = self.take_triggered(true, self.read_pos, buf.len() as u64) {
            match fault {
                Fault::StallRead { for_ms, .. } => {
                    thread::sleep(Duration::from_millis(for_ms));
                }
                Fault::DropRead { at_byte } => {
                    // Read up to the offset, then cut. If the trigger is
                    // exactly at the current position there is nothing
                    // left to deliver.
                    let room = (at_byte - self.read_pos) as usize;
                    if room > 0 {
                        let n = self.inner.read(&mut buf[..room])?;
                        self.read_pos += n as u64;
                        if n > 0 {
                            // Deliver the partial read first; re-arm the
                            // cut for the next call.
                            self.pending.insert(0, Fault::DropRead { at_byte });
                            return Ok(n);
                        }
                    }
                    self.inner.sever();
                    self.severed = true;
                    return Err(Self::severed_err());
                }
                _ => unreachable!("write fault triggered on the read path"),
            }
        }
        let n = self.inner.read(buf)?;
        self.read_pos += n as u64;
        Ok(n)
    }
}

impl<S: Write + Severable> Write for FaultyStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.severed {
            return Err(Self::severed_err());
        }
        if buf.is_empty() {
            return self.inner.write(buf);
        }
        if let Some(fault) = self.take_triggered(false, self.write_pos, buf.len() as u64) {
            match fault {
                Fault::DelayWrite { for_ms, .. } => {
                    thread::sleep(Duration::from_millis(for_ms));
                }
                Fault::TornWrite { at_byte } => {
                    let keep = (at_byte - self.write_pos) as usize;
                    if keep > 0 {
                        let n = self.inner.write(&buf[..keep])?;
                        self.write_pos += n as u64;
                        self.inner.flush()?;
                        self.inner.sever();
                        self.severed = true;
                        return Ok(n);
                    }
                    self.inner.sever();
                    self.severed = true;
                    return Err(Self::severed_err());
                }
                _ => unreachable!("read fault triggered on the write path"),
            }
        }
        let n = self.inner.write(buf)?;
        self.write_pos += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.severed {
            return Err(Self::severed_err());
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An in-memory severable transport: reads from a script, writes into
    /// a sink.
    struct MemPipe {
        input: std::io::Cursor<Vec<u8>>,
        output: Vec<u8>,
        cut: bool,
    }

    impl MemPipe {
        fn new(input: Vec<u8>) -> MemPipe {
            MemPipe {
                input: std::io::Cursor::new(input),
                output: Vec::new(),
                cut: false,
            }
        }
    }

    impl Read for MemPipe {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.cut {
                return Err(io::Error::new(io::ErrorKind::ConnectionReset, "cut"));
            }
            self.input.read(buf)
        }
    }

    impl Write for MemPipe {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.cut {
                return Err(io::Error::new(io::ErrorKind::ConnectionReset, "cut"));
            }
            self.output.write(buf)
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    impl Severable for MemPipe {
        fn sever(&mut self) {
            self.cut = true;
        }
    }

    #[test]
    fn an_empty_plan_is_transparent() {
        let mut s = FaultPlan::new().wrap(MemPipe::new(b"hello".to_vec()));
        let mut buf = [0u8; 5];
        s.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        s.write_all(b"world").unwrap();
        s.flush().unwrap();
        assert_eq!(s.into_inner().output, b"world");
    }

    #[test]
    fn torn_write_emits_exactly_the_bytes_before_the_offset() {
        let mut s = FaultPlan::new()
            .torn_write(3)
            .wrap(MemPipe::new(Vec::new()));
        let err = s.write_all(b"abcdef").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        assert!(s.is_severed());
        assert_eq!(s.into_inner().output, b"abc");
    }

    #[test]
    fn drop_read_delivers_bytes_before_the_offset_then_cuts() {
        let mut s = FaultPlan::new()
            .drop_read(4)
            .wrap(MemPipe::new(b"abcdefgh".to_vec()));
        let mut buf = [0u8; 8];
        let n = s.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"abcd");
        let err = s.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        assert!(s.is_severed());
    }

    #[test]
    fn drop_read_at_offset_zero_cuts_immediately() {
        let mut s = FaultPlan::new()
            .drop_read(0)
            .wrap(MemPipe::new(b"abc".to_vec()));
        let mut buf = [0u8; 3];
        assert!(s.read(&mut buf).is_err());
        assert!(s.is_severed());
    }

    #[test]
    fn stall_and_delay_do_not_corrupt_the_byte_stream() {
        let mut s = FaultPlan::new()
            .stall_read(2, 1)
            .delay_write(1, 1)
            .wrap(MemPipe::new(b"abcdef".to_vec()));
        let mut buf = [0u8; 6];
        s.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"abcdef");
        s.write_all(b"123456").unwrap();
        assert_eq!(s.into_inner().output, b"123456");
    }

    #[test]
    fn seeded_plans_are_reproducible_and_distinct() {
        let a1 = FaultPlan::seeded(7, 1000);
        let a2 = FaultPlan::seeded(7, 1000);
        assert_eq!(a1, a2);
        assert!(!a1.faults().is_empty() && a1.faults().len() <= 3);
        // Different seeds should (for these particular values) differ.
        let b = FaultPlan::seeded(8, 1000);
        assert_ne!(a1, b);
    }

    #[test]
    fn faults_fire_in_insertion_order_when_offsets_collide() {
        // Two faults at the same offset: the first scheduled fires first.
        let mut s = FaultPlan::new()
            .stall_read(0, 1)
            .drop_read(0)
            .wrap(MemPipe::new(b"xy".to_vec()));
        let mut buf = [0u8; 2];
        // First read: stall (harmless), bytes still delivered.
        let n = s.read(&mut buf).unwrap();
        assert!(n > 0);
        // The drop at offset 0 is in [0, n) no longer — it fires only if
        // its trigger is still ahead of the cursor, which it is not.
        assert!(!s.is_severed());
    }
}
