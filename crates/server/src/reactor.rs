//! The event-driven connection core: one readiness-polled event loop
//! owning every socket, plus a fixed worker pool for transform compute.
//!
//! The threaded core in [`crate::server`] pays two OS threads per
//! connection; this core serves thousands of connections on
//! `1 + worker_threads` threads. The split of responsibilities:
//!
//! * the **event loop** (one thread) owns the non-blocking listener and
//!   every connection socket, multiplexed through the vendored `poll(2)`
//!   shim (`shims/polling`). It reads bytes into each connection's
//!   incremental [`FrameAssembler`], pops decoded frames through a
//!   per-connection state machine, and flushes queued response bytes —
//!   never doing transform compute itself;
//! * the **worker pool** (`ServerConfig::worker_threads` threads, default
//!   [`rbt_linalg::pool::default_threads`]) decodes request bodies, checks
//!   the queue-wait deadline, runs the request engine shared with the
//!   threaded core, and encodes the response. Completions come back to the
//!   event loop over a self-pipe waker.
//!
//! Semantic parity with the threaded core is the design constraint: the
//! integration and chaos batteries run unmodified against both. The load-
//! bearing rules, mirrored from the reader/worker pair:
//!
//! * at most one request per connection is ever in a worker, so responses
//!   are written in arrival order (pipelining stays FIFO);
//! * a connection whose inbox reaches [`crate::ServerConfig::window`]
//!   stops being read — backpressure lands in the kernel's TCP buffers
//!   exactly as the threaded core's bounded `sync_channel` does;
//! * version-skewed frames are consumed whole (CRC before version) and
//!   answered with a typed error without closing the connection; every
//!   other parse failure answers once and closes after the flush;
//! * idle connections are reaped after `idle_timeout` counted from the
//!   last byte received; a peer silent *mid-frame* is cut after
//!   `stall_budget`;
//! * on drain, each connection quiesces after one read-tick without new
//!   bytes, everything already buffered is answered, a `GoingAway`
//!   farewell is written, and stragglers are force-severed at
//!   `drain_deadline`.

#![cfg(unix)]

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex as StdMutex};
use std::thread;
use std::time::{Duration, Instant};

use polling::{Event, Interest, Poller};

use crate::server::{process_request, refuse, DrainReport, Shared};
use crate::wire::{self, Frame, FrameAssembler, Opcode, Request, Response, WireError};
use crate::CODE_UNAVAILABLE;

const LISTENER_KEY: usize = 0;
const WAKER_KEY: usize = 1;
/// Connection ids map to poller keys with this offset.
const CONN_KEY_BASE: u64 = 2;

/// A decoded request on its way to the worker pool.
struct Job {
    conn_id: u64,
    arrival: Instant,
    frame: Frame,
}

/// An encoded response on its way back to the event loop.
struct Completion {
    conn_id: u64,
    bytes: Vec<u8>,
}

/// One worker: decode body → deadline check → request engine → encode.
/// Exits when the job channel closes (the event loop exited).
fn run_worker(
    shared: Arc<Shared>,
    jobs: Arc<StdMutex<mpsc::Receiver<Job>>>,
    completions: Arc<StdMutex<Vec<Completion>>>,
    waker: Arc<UnixStream>,
) {
    loop {
        let job = {
            let rx = jobs.lock().unwrap_or_else(|e| e.into_inner());
            rx.recv()
        };
        let Ok(job) = job else { return };
        let runtime = shared.registry.runtime();
        let request_id = job.frame.request_id;
        let response = match Request::from_frame(&job.frame) {
            // A valid frame with an undecodable body: framing is intact,
            // so answer and keep the connection.
            Err(e) => Response::Error {
                code: 4,
                message: format!("bad request body: {e}"),
            },
            Ok(request) => {
                let waited = job.arrival.elapsed();
                let budget = shared.config.deadline_for(job.frame.opcode);
                if waited > budget {
                    // Shed rather than serve stale: the client has either
                    // timed out already or would rather retry elsewhere.
                    runtime.deadlines_shed.fetch_add(1, Ordering::Relaxed);
                    Response::Deadline {
                        waited_ms: waited.as_millis().min(u128::from(u64::MAX)) as u64,
                        budget_ms: budget.as_millis().min(u128::from(u64::MAX)) as u64,
                    }
                } else {
                    process_request(&shared, request)
                }
            }
        };
        let bytes = wire::encode_frame(&response.to_frame().with_request_id(request_id));
        completions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Completion {
                conn_id: job.conn_id,
                bytes,
            });
        // One byte per completion; the event loop drains the pipe in bulk.
        let _ = (&*waker).write(&[1u8]);
    }
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    asm: FrameAssembler,
    /// Decoded frames (or recoverable/fatal parse errors) waiting for the
    /// worker, each stamped with its arrival time for the queue-wait
    /// deadline. Bounded by the in-flight window.
    inbox: VecDeque<(Instant, Result<Frame, WireError>)>,
    /// One request is in the worker pool; nothing else may be popped
    /// until its completion returns, preserving response order.
    in_worker: bool,
    outbuf: Vec<u8>,
    out_at: usize,
    last_byte_at: Instant,
    /// No more bytes will be read (EOF, fatal parse error, idle reap,
    /// stall cut, or drain quiescence).
    read_closed: bool,
    /// No more frames may be extracted from the assembler (fatal parse
    /// error, `GoingAway` received, stall cut, or the trailing mid-frame
    /// EOF error already queued). Distinct from `read_closed`: an EOF or
    /// a drain quiescence stops *reading*, but complete frames already
    /// buffered must still be extracted and served — the threaded core
    /// serves every frame received before the peer went away.
    parse_dead: bool,
    /// Retire once the inbox is served and the outbuf flushed.
    closing: bool,
    /// When `closing` began, bounding how long an unflushable outbuf may
    /// pin the connection.
    closing_since: Option<Instant>,
    /// The peer said `Goodbye`; no drain farewell is owed.
    said_goodbye: bool,
    /// The socket failed a write; retire without farewell.
    write_broken: bool,
    /// The peer's departure has been counted in `disconnects`. A client
    /// that says `Goodbye` and then closes would otherwise be counted on
    /// both the frame path and the EOF path; the threaded core counts
    /// exactly one disconnect per connection, and so must we.
    disconnect_counted: bool,
    /// Interest currently registered with the poller.
    interest: Interest,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            asm: FrameAssembler::new(),
            inbox: VecDeque::new(),
            in_worker: false,
            outbuf: Vec::new(),
            out_at: 0,
            last_byte_at: Instant::now(),
            read_closed: false,
            parse_dead: false,
            closing: false,
            closing_since: None,
            said_goodbye: false,
            write_broken: false,
            disconnect_counted: false,
            interest: Interest::READABLE,
        }
    }

    /// Counts the peer's departure exactly once, no matter which path
    /// (Goodbye frame, EOF, hard socket error) observes it first.
    fn count_disconnect(&mut self, runtime: &crate::metrics::RuntimeCounters) {
        if !self.disconnect_counted {
            self.disconnect_counted = true;
            runtime.disconnects.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn queue_response_frame(&mut self, frame: &Frame) {
        self.outbuf.extend_from_slice(&wire::encode_frame(frame));
    }

    fn flushed(&self) -> bool {
        self.out_at == self.outbuf.len()
    }

    fn begin_close(&mut self) {
        self.read_closed = true;
        if !self.closing {
            self.closing = true;
            self.closing_since = Some(Instant::now());
        }
    }
}

/// The event loop state. Runs on its own thread until stopped.
struct Reactor {
    shared: Arc<Shared>,
    poller: Poller,
    listener: Option<TcpListener>,
    waker_rx: UnixStream,
    conns: HashMap<u64, Conn>,
    next_conn_id: u64,
    jobs_tx: mpsc::Sender<Job>,
    completions: Arc<StdMutex<Vec<Completion>>>,
    stop: Arc<AtomicBool>,
    drain_started: Option<Instant>,
    forced: u64,
}

impl Reactor {
    /// The loop: poll → events → completions → timers, until stopped.
    /// Returns the number of force-severed connections.
    fn run(mut self) -> u64 {
        let tick = self.shared.config.read_tick;
        let mut events: Vec<Event> = Vec::new();
        let mut last_scan = Instant::now();
        loop {
            let draining = self.shared.draining.load(Ordering::SeqCst);
            if self.stop.load(Ordering::SeqCst) {
                if self.listener.is_some() {
                    let _ = self.poller.deregister(LISTENER_KEY);
                    self.listener = None;
                }
                if !draining {
                    // Abort (handle dropped without shutdown): sever
                    // everything now.
                    self.sever_all();
                    return self.forced;
                }
                if self.conns.is_empty() {
                    return self.forced;
                }
                let started = *self.drain_started.get_or_insert_with(Instant::now);
                if started.elapsed() >= self.shared.config.drain_deadline {
                    self.forced += self.conns.len() as u64;
                    self.sever_all();
                    return self.forced;
                }
            }

            if self.poller.wait(&mut events, Some(tick)).is_err() {
                // A failed poll would spin; treat it like a fatal stop.
                self.sever_all();
                return self.forced;
            }

            let mut touched: HashSet<u64> = HashSet::new();
            for &ev in &events {
                match ev.key {
                    LISTENER_KEY => self.accept_ready(),
                    WAKER_KEY => self.drain_waker(),
                    key => {
                        let conn_id = key as u64 - CONN_KEY_BASE;
                        if ev.writable {
                            self.flush_conn(conn_id);
                        }
                        if ev.readable {
                            self.read_conn(conn_id);
                        }
                        touched.insert(conn_id);
                    }
                }
            }

            for c in self.take_completions() {
                if let Some(conn) = self.conns.get_mut(&c.conn_id) {
                    conn.in_worker = false;
                    conn.outbuf.extend_from_slice(&c.bytes);
                    touched.insert(c.conn_id);
                }
            }

            if last_scan.elapsed() >= tick {
                last_scan = Instant::now();
                touched.extend(self.scan_timers(draining, tick));
            }

            for conn_id in touched {
                self.pump_conn(conn_id);
            }
        }
    }

    /// Accepts every pending connection (the listener is non-blocking).
    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => self.admit(stream),
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    /// Admission control, mirroring the threaded accept loop: refuse with
    /// `GoingAway` while draining, with a typed code-8 error at the
    /// connection cap, otherwise register the socket with the poller.
    fn admit(&mut self, stream: TcpStream) {
        let runtime = self.shared.registry.runtime();
        let config = &self.shared.config;
        if self.shared.draining.load(Ordering::SeqCst) {
            runtime.refused.fetch_add(1, Ordering::Relaxed);
            // On the BSD family accepted sockets inherit the listener's
            // O_NONBLOCK (Linux never does); make the farewell write
            // blocking so `refuse` cannot drop it on WouldBlock.
            let _ = stream.set_nonblocking(false);
            refuse(
                stream,
                Response::GoingAway {
                    message: "server draining".to_string(),
                },
                config.write_timeout,
            );
            return;
        }
        if self.conns.len() >= config.max_conns {
            runtime.refused.fetch_add(1, Ordering::Relaxed);
            let _ = stream.set_nonblocking(false);
            refuse(
                stream,
                Response::Error {
                    code: CODE_UNAVAILABLE,
                    message: format!("server at capacity ({} connections)", config.max_conns),
                },
                config.write_timeout,
            );
            return;
        }
        runtime.accepted.fetch_add(1, Ordering::Relaxed);
        self.shared.spawned.fetch_add(1, Ordering::SeqCst);
        let sockopts = stream
            .set_nonblocking(true)
            .and_then(|_| stream.set_nodelay(true));
        if sockopts.is_err() {
            self.shared.retire_conn();
            return;
        }
        let conn_id = self.next_conn_id;
        self.next_conn_id += 1;
        let key = (conn_id + CONN_KEY_BASE) as usize;
        if self
            .poller
            .register(stream.as_raw_fd(), key, Interest::READABLE)
            .is_err()
        {
            self.shared.retire_conn();
            return;
        }
        self.conns.insert(conn_id, Conn::new(stream));
    }

    fn drain_waker(&mut self) {
        let mut buf = [0u8; 256];
        loop {
            match self.waker_rx.read(&mut buf) {
                Ok(0) => return,
                Ok(_) => continue,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn take_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut *self.completions.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Pulls bytes off a readable socket into the assembler and extracts
    /// complete frames into the inbox, stopping at the in-flight window.
    fn read_conn(&mut self, conn_id: u64) {
        let window = self.shared.config.window.max(1);
        let runtime = self.shared.registry.runtime();
        let Some(conn) = self.conns.get_mut(&conn_id) else {
            return;
        };
        if conn.read_closed {
            return;
        }
        let mut buf = [0u8; 16 * 1024];
        loop {
            if conn.inbox.len() >= window {
                // Window full: stop pulling bytes. Whatever the client
                // keeps pipelining backs up in the kernel's TCP buffers,
                // exactly like the threaded core's bounded channel.
                break;
            }
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    // EOF. Complete frames already buffered are still
                    // served (the peer may only have half-closed); if the
                    // trailing bytes are an incomplete frame, pump_conn
                    // queues the mid-frame error once extraction runs dry.
                    conn.count_disconnect(runtime);
                    conn.begin_close();
                    break;
                }
                Ok(n) => {
                    conn.last_byte_at = Instant::now();
                    conn.asm.push(&buf[..n]);
                    Reactor::extract_frames(conn, window);
                    if conn.read_closed {
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Hard socket error: treat as a disconnect.
                    conn.count_disconnect(runtime);
                    conn.begin_close();
                    break;
                }
            }
        }
    }

    /// Moves complete frames from the assembler into the inbox, honouring
    /// the window bound and the error-recoverability contract.
    fn extract_frames(conn: &mut Conn, window: usize) {
        while conn.inbox.len() < window && !conn.parse_dead {
            match conn.asm.next_frame() {
                None => break,
                Some(Ok(frame)) => conn.inbox.push_back((Instant::now(), Ok(frame))),
                Some(Err(e)) => {
                    let recoverable = matches!(e, WireError::UnsupportedVersion { .. });
                    conn.inbox.push_back((Instant::now(), Err(e)));
                    if !recoverable {
                        // The stream is desynchronized: stop reading; the
                        // queued error answers once, then the connection
                        // closes.
                        conn.parse_dead = true;
                        conn.begin_close();
                    }
                }
            }
        }
        if conn.read_closed
            && !conn.parse_dead
            && conn.inbox.len() < window
            && conn.asm.partial_frame()
        {
            // EOF (or a hard read error) left an incomplete trailing
            // frame: a malformed-stream event, answered with a typed
            // error (best-effort) after everything complete before it.
            conn.parse_dead = true;
            conn.inbox.push_back((
                Instant::now(),
                Err(WireError::Io {
                    kind: ErrorKind::UnexpectedEof,
                    message: "peer closed mid-frame".to_string(),
                }),
            ));
        }
    }

    /// Writes as much of the outbuf as the socket accepts.
    fn flush_conn(&mut self, conn_id: u64) {
        let Some(conn) = self.conns.get_mut(&conn_id) else {
            return;
        };
        while conn.out_at < conn.outbuf.len() {
            match conn.stream.write(&conn.outbuf[conn.out_at..]) {
                Ok(0) => {
                    conn.write_broken = true;
                    break;
                }
                Ok(n) => conn.out_at += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Client went away mid-response.
                    conn.write_broken = true;
                    break;
                }
            }
        }
        if conn.flushed() {
            conn.outbuf.clear();
            conn.out_at = 0;
        }
    }

    /// Advances one connection's state machine: extract buffered frames,
    /// pop the inbox (at most one request in the worker at a time), flush,
    /// update poller interest, and retire when done.
    fn pump_conn(&mut self, conn_id: u64) {
        let window = self.shared.config.window.max(1);
        let runtime = self.shared.registry.runtime();
        let Some(conn) = self.conns.get_mut(&conn_id) else {
            return;
        };

        Reactor::extract_frames(conn, window);
        while !conn.in_worker {
            let Some((arrival, item)) = conn.inbox.pop_front() else {
                break;
            };
            match item {
                Ok(frame) => {
                    if frame.opcode == Opcode::GoingAway {
                        // A clean departure: no response owed, no error
                        // frame, nothing after it served.
                        conn.count_disconnect(runtime);
                        conn.said_goodbye = true;
                        conn.inbox.clear();
                        conn.parse_dead = true;
                        conn.begin_close();
                        break;
                    }
                    conn.in_worker = true;
                    if self
                        .jobs_tx
                        .send(Job {
                            conn_id,
                            arrival,
                            frame,
                        })
                        .is_err()
                    {
                        // Workers are gone; the loop is exiting anyway.
                        conn.in_worker = false;
                        conn.begin_close();
                        break;
                    }
                }
                Err(e) => {
                    runtime.malformed.fetch_add(1, Ordering::Relaxed);
                    if matches!(e, WireError::UnsupportedVersion { .. }) {
                        // Consumed whole (CRC before version): answer the
                        // typed rejection and keep serving.
                        let resp = Response::Error {
                            code: 4,
                            message: e.to_string(),
                        };
                        conn.queue_response_frame(&resp.to_frame());
                        continue;
                    }
                    // Malformed frame, mid-frame EOF, or stall: answer
                    // once (best-effort) and close after the flush.
                    let resp = Response::Error {
                        code: 4,
                        message: format!("malformed frame: {e}"),
                    };
                    conn.queue_response_frame(&resp.to_frame());
                    conn.inbox.clear();
                    conn.parse_dead = true;
                    conn.begin_close();
                    break;
                }
            }
        }

        self.flush_conn(conn_id);
        let Some(conn) = self.conns.get_mut(&conn_id) else {
            return;
        };
        if conn.write_broken
            || (conn.closing && conn.inbox.is_empty() && !conn.in_worker && conn.flushed())
        {
            self.retire(conn_id);
            return;
        }
        let desired = Interest {
            readable: !conn.read_closed && conn.inbox.len() < window,
            writable: !conn.flushed(),
        };
        if desired != conn.interest {
            conn.interest = desired;
            let _ = self
                .poller
                .modify((conn_id + CONN_KEY_BASE) as usize, desired);
        }
    }

    /// Periodic per-connection timers: idle reap, mid-frame stall, drain
    /// quiescence, and the closing-flush bound. Returns ids to pump.
    fn scan_timers(&mut self, draining: bool, tick: Duration) -> Vec<u64> {
        let config = &self.shared.config;
        let window = config.window.max(1);
        let runtime = self.shared.registry.runtime();
        let now = Instant::now();
        let mut touched = Vec::new();
        for (&conn_id, conn) in self.conns.iter_mut() {
            if conn.closing {
                // A closing connection whose peer will not take the final
                // bytes gets the same patience a blocking write would.
                if let Some(since) = conn.closing_since {
                    if !conn.flushed() && now.duration_since(since) >= config.write_timeout {
                        conn.write_broken = true;
                        touched.push(conn_id);
                    }
                }
                if conn.in_worker || (conn.inbox.is_empty() && !conn.asm.frame_ready()) {
                    continue;
                }
                touched.push(conn_id);
                continue;
            }
            if conn.read_closed {
                continue;
            }
            if conn.inbox.len() >= window || conn.asm.frame_ready() {
                // Reading is paused by the in-flight window, not by the
                // peer: complete frames are waiting their turn, so the
                // peer is neither idle nor stalled. Keep the silence
                // clock parked so the timers restart from the moment
                // backpressure lifts, not from a byte we refused to read.
                conn.last_byte_at = now;
                continue;
            }
            let silent = now.duration_since(conn.last_byte_at);
            if conn.asm.partial_frame() {
                if silent >= config.stall_budget {
                    // A wedged or malicious sender mid-frame: cut it with
                    // the same typed error the threaded reader produces.
                    runtime.stalled.fetch_add(1, Ordering::Relaxed);
                    conn.inbox.push_back((
                        now,
                        Err(WireError::Io {
                            kind: ErrorKind::TimedOut,
                            message: format!(
                                "peer stalled mid-frame past the {:?} budget",
                                config.stall_budget
                            ),
                        }),
                    ));
                    conn.parse_dead = true;
                    conn.begin_close();
                    touched.push(conn_id);
                }
            } else if draining {
                // One tick with no new bytes: the final sweep is done —
                // everything the client sent before the drain began is in
                // the inbox. Serve it, then say goodbye.
                if silent >= tick {
                    conn.begin_close();
                    touched.push(conn_id);
                }
            } else if silent >= config.idle_timeout {
                runtime.idle_reaped.fetch_add(1, Ordering::Relaxed);
                conn.begin_close();
                touched.push(conn_id);
            }
        }
        touched
    }

    /// Removes a connection: on a drain, flush and send the `GoingAway`
    /// farewell over a temporarily-blocking socket (mirroring the
    /// threaded worker's final write), then close and account for it.
    fn retire(&mut self, conn_id: u64) {
        let Some(mut conn) = self.conns.remove(&conn_id) else {
            return;
        };
        let _ = self.poller.deregister((conn_id + CONN_KEY_BASE) as usize);
        let draining = self.shared.draining.load(Ordering::SeqCst);
        if draining && !conn.said_goodbye && !conn.write_broken {
            let runtime = self.shared.registry.runtime();
            let _ = conn.stream.set_nonblocking(false);
            let _ = conn
                .stream
                .set_write_timeout(Some(self.shared.config.write_timeout));
            let pending_ok = if conn.flushed() {
                true
            } else {
                conn.stream.write_all(&conn.outbuf[conn.out_at..]).is_ok()
            };
            let farewell = Response::GoingAway {
                message: "server draining".to_string(),
            };
            if pending_ok && wire::write_frame(&mut conn.stream, &farewell.to_frame()).is_ok() {
                runtime.drained.fetch_add(1, Ordering::Relaxed);
            }
        }
        let _ = conn.stream.shutdown(Shutdown::Both);
        self.shared.retire_conn();
    }

    /// Severs and retires every remaining connection.
    fn sever_all(&mut self) {
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for conn_id in ids {
            if let Some(conn) = self.conns.get_mut(&conn_id) {
                // Past the point of farewells: cut the socket first so
                // retire() cannot block on a blocking write.
                conn.said_goodbye = true;
                let _ = conn.stream.shutdown(Shutdown::Both);
            }
            self.retire(conn_id);
        }
    }
}

/// Handle the [`crate::Server`] keeps for a running reactor core.
pub(crate) struct ReactorHandle {
    stop: Arc<AtomicBool>,
    waker_tx: Arc<UnixStream>,
    loop_thread: Option<thread::JoinHandle<u64>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl ReactorHandle {
    fn wake(&self) {
        let _ = (&*self.waker_tx).write(&[1u8]);
    }

    /// Blocks until the event loop exits (used by `rbt-cli serve`).
    pub(crate) fn wait(&mut self) {
        if let Some(handle) = self.loop_thread.take() {
            let _ = handle.join();
        }
    }

    /// Drains the reactor (the caller has already set the draining flag)
    /// and accounts for every connection ever admitted.
    pub(crate) fn shutdown(&mut self, shared: &Shared) -> DrainReport {
        self.stop.store(true, Ordering::SeqCst);
        self.wake();
        let forced = self
            .loop_thread
            .take()
            .and_then(|h| h.join().ok())
            .unwrap_or(0);
        // The loop thread owned the job sender; workers exit as the
        // channel drains dry.
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        DrainReport {
            spawned: shared.spawned.load(Ordering::SeqCst),
            joined: shared.finished.load(Ordering::SeqCst),
            forced,
        }
    }

    /// Stops the loop without a drain (handle dropped): live connections
    /// are severed; workers unwind on their own once the channel closes.
    pub(crate) fn abort(&mut self) {
        if self.loop_thread.is_none() {
            return;
        }
        self.stop.store(true, Ordering::SeqCst);
        self.wake();
        if let Some(handle) = self.loop_thread.take() {
            let _ = handle.join();
        }
    }
}

/// Binds `addr`, starts the event loop and the worker pool, and returns
/// the bound address plus the handle.
pub(crate) fn spawn(
    addr: &str,
    shared: Arc<Shared>,
) -> std::io::Result<(SocketAddr, ReactorHandle)> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let (waker_rx, waker_tx) = UnixStream::pair()?;
    waker_rx.set_nonblocking(true)?;
    waker_tx.set_nonblocking(true)?;
    let mut poller = Poller::new()?;
    poller.register(listener.as_raw_fd(), LISTENER_KEY, Interest::READABLE)?;
    poller.register(waker_rx.as_raw_fd(), WAKER_KEY, Interest::READABLE)?;

    let stop = Arc::new(AtomicBool::new(false));
    let (jobs_tx, jobs_rx) = mpsc::channel::<Job>();
    let jobs_rx = Arc::new(StdMutex::new(jobs_rx));
    let completions: Arc<StdMutex<Vec<Completion>>> = Arc::new(StdMutex::new(Vec::new()));
    let waker_tx = Arc::new(waker_tx);

    let pool_size = match shared.config.worker_threads {
        0 => rbt_linalg::pool::default_threads(),
        n => n,
    }
    .max(1);
    let mut workers = Vec::with_capacity(pool_size);
    for _ in 0..pool_size {
        let shared = Arc::clone(&shared);
        let jobs_rx = Arc::clone(&jobs_rx);
        let completions = Arc::clone(&completions);
        let waker = Arc::clone(&waker_tx);
        workers.push(thread::spawn(move || {
            run_worker(shared, jobs_rx, completions, waker)
        }));
    }

    let reactor = Reactor {
        shared,
        poller,
        listener: Some(listener),
        waker_rx,
        conns: HashMap::new(),
        next_conn_id: 0,
        jobs_tx,
        completions,
        stop: Arc::clone(&stop),
        drain_started: None,
        forced: 0,
    };
    let loop_thread = thread::spawn(move || reactor.run());
    Ok((
        local,
        ReactorHandle {
            stop,
            waker_tx,
            loop_thread: Some(loop_thread),
            workers,
        },
    ))
}
