//! Crash-safe persistence for tenant key files.
//!
//! A key file is the *only* durable secret a tenant has — lose it and
//! every released batch becomes unrecoverable, tear it and a naive server
//! refuses to start. The store therefore never writes a key in place:
//!
//! ```text
//! put(tenant, bytes):
//!   1. write  .journal/<tenant>.tmp      (full bytes)        + fsync
//!   2. write  .journal/<tenant>.intent   (len + CRC-32)      + fsync
//!   3. rename .journal/<tenant>.tmp  →  <tenant>.key         + fsync(dir)
//!   4. remove .journal/<tenant>.intent                       + fsync(journal dir)
//! ```
//!
//! A crash at any point leaves the store recoverable by
//! [`KeyStore::open`]'s journal replay:
//!
//! * crash before 2 — a stray `.tmp` with no intent: discarded, the put
//!   never happened;
//! * crash between 2 and 3 — intent + matching `.tmp`: the rename is
//!   completed (the put wins);
//! * crash between 3 and 4 — intent, no `.tmp`, key file matches the
//!   intent's CRC: the intent is simply cleared (the put already won);
//! * intent whose `.tmp` fails its CRC — the torn temp is discarded and
//!   the previous key file (if any) stays authoritative.
//!
//! Serving is equally defensive: [`KeyStore::load_into`] registers every
//! key file in the registry, and a file that fails to decode is *moved to
//! quarantine* (`.quarantine/<name>.<n>`) and logged — a single torn key
//! must never abort `serve` and take every healthy tenant down with it.
//! The same routine backs the `ReloadKeys` opcode (SIGHUP-style hot
//! reload), so an operator can drop new key files into the directory and
//! load them without a restart.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use rbt_linalg::codec::crc32;

use crate::registry::SessionRegistry;

/// Name of the pending-write journal subdirectory.
const JOURNAL_DIR: &str = ".journal";
/// Name of the quarantine subdirectory for corrupt key files.
const QUARANTINE_DIR: &str = ".quarantine";
/// Extension key files are written with.
const KEY_EXT: &str = "key";
/// Magic prefix of an intent record.
const INTENT_MAGIC: &[u8; 4] = b"RBTJ";

/// What [`KeyStore::open`] found while replaying the journal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Interrupted puts whose rename was completed during replay.
    pub completed: u64,
    /// Torn or orphaned temp files discarded during replay.
    pub discarded: u64,
}

/// What [`KeyStore::load_into`] did to the key directory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReloadReport {
    /// Tenants (re)registered in the registry.
    pub loaded: u64,
    /// Corrupt key files moved to quarantine instead of being served.
    pub quarantined: u64,
}

/// A crash-safe key directory: atomic writes through a temp + intent
/// journal, quarantine for corrupt entries, and hot reload into a
/// [`SessionRegistry`].
pub struct KeyStore {
    root: PathBuf,
    replay: ReplayReport,
}

fn fsync_dir(dir: &Path) -> io::Result<()> {
    // Directory fsync makes the rename itself durable. Some filesystems
    // refuse to open directories for writing; opening read-only suffices
    // for fsync on the platforms we target.
    File::open(dir)?.sync_all()
}

fn write_durable(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut f = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(path)?;
    f.write_all(bytes)?;
    f.sync_all()
}

/// An intent record: magic, tenant-name length + bytes, payload length,
/// payload CRC-32. Fixed little-endian layout, no framing dependency.
fn encode_intent(tenant: &str, len: u64, crc: u32) -> Vec<u8> {
    let name = tenant.as_bytes();
    let mut out = Vec::with_capacity(4 + 4 + name.len() + 8 + 4);
    out.extend_from_slice(INTENT_MAGIC);
    out.extend_from_slice(&(name.len() as u32).to_le_bytes());
    out.extend_from_slice(name);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

fn decode_intent(bytes: &[u8]) -> Option<(String, u64, u32)> {
    if bytes.len() < 8 || &bytes[..4] != INTENT_MAGIC {
        return None;
    }
    let name_len = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]) as usize;
    let rest = &bytes[8..];
    if rest.len() != name_len + 12 {
        return None;
    }
    let tenant = std::str::from_utf8(&rest[..name_len]).ok()?.to_string();
    let len = u64::from_le_bytes(rest[name_len..name_len + 8].try_into().ok()?);
    let crc = u32::from_le_bytes(rest[name_len + 8..].try_into().ok()?);
    Some((tenant, len, crc))
}

fn file_crc(path: &Path, expect_len: u64) -> io::Result<Option<u32>> {
    let meta = fs::metadata(path)?;
    if meta.len() != expect_len {
        return Ok(None);
    }
    let mut bytes = Vec::with_capacity(expect_len as usize);
    File::open(path)?.read_to_end(&mut bytes)?;
    Ok(Some(crc32(&bytes)))
}

impl KeyStore {
    /// Opens (creating if needed) a key directory and replays any
    /// interrupted writes left in the journal, so the directory observed
    /// by [`load_into`](KeyStore::load_into) is always consistent: every
    /// key file is either the pre-crash version or the fully-written new
    /// one, never a torn hybrid.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures (unreadable directory, failed
    /// rename). Torn journal entries are *not* errors — they are
    /// discarded and counted in the [`ReplayReport`].
    pub fn open(root: impl Into<PathBuf>) -> io::Result<KeyStore> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        fs::create_dir_all(root.join(JOURNAL_DIR))?;
        fs::create_dir_all(root.join(QUARANTINE_DIR))?;
        let mut store = KeyStore {
            root,
            replay: ReplayReport::default(),
        };
        store.replay = store.replay_journal()?;
        Ok(store)
    }

    /// The key directory this store manages.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// What the journal replay at [`open`](KeyStore::open) time found.
    pub fn replay_report(&self) -> ReplayReport {
        self.replay
    }

    fn journal_dir(&self) -> PathBuf {
        self.root.join(JOURNAL_DIR)
    }

    fn quarantine_dir(&self) -> PathBuf {
        self.root.join(QUARANTINE_DIR)
    }

    /// The durable path of a tenant's key file.
    pub fn key_path(&self, tenant: &str) -> PathBuf {
        self.root.join(format!("{tenant}.{KEY_EXT}"))
    }

    fn tmp_path(&self, tenant: &str) -> PathBuf {
        self.journal_dir().join(format!("{tenant}.tmp"))
    }

    fn intent_path(&self, tenant: &str) -> PathBuf {
        self.journal_dir().join(format!("{tenant}.intent"))
    }

    fn replay_journal(&self) -> io::Result<ReplayReport> {
        let mut report = ReplayReport::default();
        let journal = self.journal_dir();
        let mut intents = Vec::new();
        let mut tmps = Vec::new();
        for entry in fs::read_dir(&journal)? {
            let path = entry?.path();
            match path.extension().and_then(|e| e.to_str()) {
                Some("intent") => intents.push(path),
                Some("tmp") => tmps.push(path),
                _ => {}
            }
        }
        let mut claimed_tmps = Vec::new();
        for intent_path in intents {
            let parsed = fs::read(&intent_path).ok().and_then(|b| decode_intent(&b));
            let Some((tenant, len, crc)) = parsed else {
                // A torn intent record: the put never became durable
                // enough to matter. Drop it (and any matching tmp below).
                fs::remove_file(&intent_path)?;
                report.discarded += 1;
                continue;
            };
            let tmp = self.tmp_path(&tenant);
            claimed_tmps.push(tmp.clone());
            if tmp.is_file() && file_crc(&tmp, len)? == Some(crc) {
                // Crash between intent and rename: finish the put.
                fs::rename(&tmp, self.key_path(&tenant))?;
                fsync_dir(&self.root)?;
                report.completed += 1;
            } else if tmp.is_file() {
                // Torn temp: the old key file (if any) stays authoritative.
                fs::remove_file(&tmp)?;
                report.discarded += 1;
            }
            // In every case the intent is now settled. (Crash after the
            // rename but before intent removal lands here too: the key
            // file already carries the new bytes.)
            fs::remove_file(&intent_path)?;
        }
        for tmp in tmps {
            if !claimed_tmps.contains(&tmp) && tmp.is_file() {
                // Orphan temp with no intent: the put never committed.
                fs::remove_file(&tmp)?;
                report.discarded += 1;
            }
        }
        fsync_dir(&journal)?;
        Ok(report)
    }

    /// Durably writes a tenant's key bytes via the temp + intent + rename
    /// protocol. After this returns, either the new bytes are the key file
    /// or (on a crash mid-call) replay at the next [`open`](KeyStore::open)
    /// resolves deterministically to old-or-new, never a torn mix.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures; a failed step leaves the journal in
    /// a state the next replay cleans up.
    pub fn put(&self, tenant: &str, bytes: &[u8]) -> io::Result<()> {
        let tmp = self.tmp_path(tenant);
        write_durable(&tmp, bytes)?;
        let intent = encode_intent(tenant, bytes.len() as u64, crc32(bytes));
        write_durable(&self.intent_path(tenant), &intent)?;
        fsync_dir(&self.journal_dir())?;
        fs::rename(&tmp, self.key_path(tenant))?;
        fsync_dir(&self.root)?;
        fs::remove_file(self.intent_path(tenant))?;
        fsync_dir(&self.journal_dir())?;
        Ok(())
    }

    /// Registers every key file in the directory with `registry` (file
    /// stem = tenant id, name order, so LRU eviction under capacity
    /// pressure is deterministic). A file that fails to decode is moved to
    /// the quarantine subdirectory and logged to stderr — it is *never* a
    /// fatal error, because one torn key must not take down every healthy
    /// tenant.
    ///
    /// # Errors
    ///
    /// Only filesystem failures (unreadable directory, failed quarantine
    /// move) are errors.
    pub fn load_into(&self, registry: &Arc<SessionRegistry>) -> io::Result<ReloadReport> {
        let mut paths: Vec<_> = fs::read_dir(&self.root)?
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.is_file())
            .collect();
        paths.sort();
        let mut report = ReloadReport::default();
        for path in paths {
            let tenant = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("tenant")
                .to_string();
            let outcome = fs::read(&path)
                .map_err(|e| e.to_string())
                .and_then(|bytes| registry.load_key(&tenant, bytes).map_err(|e| e.to_string()));
            match outcome {
                Ok(_) => report.loaded += 1,
                Err(reason) => {
                    let moved = self.quarantine(&path)?;
                    eprintln!(
                        "rbt-server: quarantined corrupt key {} -> {} ({reason})",
                        path.display(),
                        moved.display()
                    );
                    report.quarantined += 1;
                }
            }
        }
        Ok(report)
    }

    /// Moves a corrupt key file into the quarantine subdirectory under a
    /// fresh (numbered) name, returning the destination path.
    fn quarantine(&self, path: &Path) -> io::Result<PathBuf> {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("unnamed");
        for attempt in 0u32.. {
            let dest = self.quarantine_dir().join(format!("{name}.{attempt}"));
            if dest.exists() {
                continue;
            }
            fs::rename(path, &dest)?;
            fsync_dir(&self.quarantine_dir())?;
            fsync_dir(&self.root)?;
            return Ok(dest);
        }
        unreachable!("u32 quarantine namespace exhausted")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rbt-keystore-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_then_read_back_round_trips() {
        let dir = tmpdir("roundtrip");
        let store = KeyStore::open(&dir).unwrap();
        store.put("alpha", b"key bytes one").unwrap();
        store.put("beta", b"key bytes two").unwrap();
        assert_eq!(fs::read(store.key_path("alpha")).unwrap(), b"key bytes one");
        assert_eq!(fs::read(store.key_path("beta")).unwrap(), b"key bytes two");
        // Journal is empty after a completed put.
        let journal_entries = fs::read_dir(dir.join(JOURNAL_DIR)).unwrap().count();
        assert_eq!(journal_entries, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_completes_a_put_that_crashed_before_the_rename() {
        let dir = tmpdir("replay-complete");
        let store = KeyStore::open(&dir).unwrap();
        // Simulate a crash between intent write and rename: tmp + intent
        // present, no key file.
        let bytes = b"the new key".to_vec();
        write_durable(&store.tmp_path("t"), &bytes).unwrap();
        write_durable(
            &store.intent_path("t"),
            &encode_intent("t", bytes.len() as u64, crc32(&bytes)),
        )
        .unwrap();
        drop(store);

        let store = KeyStore::open(&dir).unwrap();
        assert_eq!(store.replay_report().completed, 1);
        assert_eq!(fs::read(store.key_path("t")).unwrap(), bytes);
        assert!(!store.intent_path("t").exists());
        assert!(!store.tmp_path("t").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_discards_a_torn_temp_and_keeps_the_old_key() {
        let dir = tmpdir("replay-torn");
        let store = KeyStore::open(&dir).unwrap();
        store.put("t", b"old key").unwrap();
        // Crash mid-tmp-write: the temp is shorter than the intent claims.
        let new = b"new key that never finished".to_vec();
        write_durable(&store.tmp_path("t"), &new[..5]).unwrap();
        write_durable(
            &store.intent_path("t"),
            &encode_intent("t", new.len() as u64, crc32(&new)),
        )
        .unwrap();
        drop(store);

        let store = KeyStore::open(&dir).unwrap();
        assert_eq!(store.replay_report().discarded, 1);
        assert_eq!(store.replay_report().completed, 0);
        assert_eq!(fs::read(store.key_path("t")).unwrap(), b"old key");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_clears_an_intent_left_after_the_rename() {
        let dir = tmpdir("replay-late");
        let store = KeyStore::open(&dir).unwrap();
        store.put("t", b"committed key").unwrap();
        // Crash after rename, before intent removal: re-create the intent.
        write_durable(
            &store.intent_path("t"),
            &encode_intent("t", 13, crc32(b"committed key")),
        )
        .unwrap();
        drop(store);

        let store = KeyStore::open(&dir).unwrap();
        assert!(!store.intent_path("t").exists());
        assert_eq!(fs::read(store.key_path("t")).unwrap(), b"committed key");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_discards_orphan_temps_and_garbage_intents() {
        let dir = tmpdir("replay-orphan");
        let store = KeyStore::open(&dir).unwrap();
        write_durable(&store.tmp_path("orphan"), b"no intent").unwrap();
        write_durable(&store.intent_path("garbage"), b"not an intent record").unwrap();
        drop(store);

        let store = KeyStore::open(&dir).unwrap();
        assert_eq!(store.replay_report().discarded, 2);
        assert!(!store.tmp_path("orphan").exists());
        assert!(!store.intent_path("garbage").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_into_quarantines_corrupt_keys_and_serves_the_rest() {
        use rand::SeedableRng;
        use rbt_api::{PrivacyTransform, RbtMethod};
        use rbt_core::{PairwiseSecurityThreshold, RbtConfig};
        use rbt_data::Dataset;
        use rbt_linalg::Matrix;

        let dir = tmpdir("quarantine");
        let store = KeyStore::open(&dir).unwrap();

        let rows = 12;
        let cols = 3;
        let data: Vec<f64> = (0..rows * cols)
            .map(|i| ((i * 37) % 101) as f64 - 50.0)
            .collect();
        let ds = Dataset::new(
            Matrix::from_vec(rows, cols, data).unwrap(),
            vec!["a".to_string(), "b".to_string(), "c".to_string()],
        )
        .unwrap();
        let method = RbtMethod::new(RbtConfig::uniform(
            PairwiseSecurityThreshold::uniform(0.05).unwrap(),
        ));
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let fit = method.fit(&ds, &mut rng).unwrap();
        let good = fit.fitted.to_bytes().unwrap();

        store.put("healthy", &good).unwrap();
        let mut torn = good.clone();
        torn.truncate(torn.len() / 2);
        store.put("torn", &torn).unwrap();

        let registry = Arc::new(SessionRegistry::new(8));
        let report = store.load_into(&registry).unwrap();
        assert_eq!(report.loaded, 1);
        assert_eq!(report.quarantined, 1);
        // The healthy tenant serves; the torn one is gone from the dir.
        assert!(registry.transform("healthy", &ds).is_ok());
        assert!(!store.key_path("torn").exists());
        let quarantined: Vec<_> = fs::read_dir(dir.join(QUARANTINE_DIR))
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(quarantined, vec!["torn.key.0".to_string()]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn intent_records_round_trip_and_reject_garbage() {
        let enc = encode_intent("tenant-x", 12345, 0xDEADBEEF);
        assert_eq!(
            decode_intent(&enc),
            Some(("tenant-x".to_string(), 12345, 0xDEADBEEF))
        );
        assert_eq!(decode_intent(b""), None);
        assert_eq!(decode_intent(b"RBTJ"), None);
        let mut truncated = enc.clone();
        truncated.pop();
        assert_eq!(decode_intent(&truncated), None);
        let mut extended = enc;
        extended.push(0);
        assert_eq!(decode_intent(&extended), None);
    }
}
