//! The ICA attack — blind source separation of the release.
//!
//! The strongest post-publication result against rotation perturbation
//! (the *AK-ICA* line of work, Guo & Wu 2007 and the Liu–Kargupta family):
//! when the original attributes are statistically independent and
//! non-Gaussian, the released matrix `X' = X·Rᵀ` is precisely the mixing
//! model of **independent component analysis**. ICA recovers the source
//! attributes from the release *alone* — no known records, no covariance
//! prior — up to the inherent permutation/sign/scale ambiguity. Since the
//! release is published with its column semantics (the miner needs them),
//! resolving the permutation is usually trivial in practice.
//!
//! The implementation is deflationary FastICA (Hyvärinen) with the `tanh`
//! contrast: whiten the released data through the covariance
//! eigendecomposition, then extract one unit one at a time by fixed-point
//! iteration with Gram–Schmidt decorrelation.

use crate::{Error, Result};
use rand::Rng;
use rbt_data::rng::standard_normal;
use rbt_linalg::eigen::symmetric_eigen;
use rbt_linalg::stats::{covariance_matrix, VarianceMode};
use rbt_linalg::Matrix;

/// Outcome of the ICA attack.
#[derive(Debug, Clone)]
pub struct IcaOutcome {
    /// Recovered source estimates (`m × n`), unit variance, zero mean;
    /// columns are in an arbitrary order and sign.
    pub sources: Matrix,
    /// The unmixing matrix applied to the whitened data.
    pub unmixing: Matrix,
    /// Iterations spent per extracted component.
    pub iterations: Vec<usize>,
}

/// Configuration for FastICA.
#[derive(Debug, Clone, Copy)]
pub struct FastIca {
    max_iters: usize,
    tolerance: f64,
}

impl Default for FastIca {
    fn default() -> Self {
        FastIca {
            max_iters: 400,
            tolerance: 1e-10,
        }
    }
}

impl FastIca {
    /// Creates a configuration with an explicit iteration budget and
    /// convergence tolerance.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for a zero budget or
    /// non-positive tolerance.
    pub fn new(max_iters: usize, tolerance: f64) -> Result<Self> {
        if max_iters == 0 {
            return Err(Error::InvalidParameter("max_iters must be positive".into()));
        }
        if tolerance.is_nan() || tolerance <= 0.0 {
            return Err(Error::InvalidParameter(format!(
                "tolerance must be positive, got {tolerance}"
            )));
        }
        Ok(FastIca {
            max_iters,
            tolerance,
        })
    }

    /// Runs the attack on a released matrix.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidParameter`] for fewer rows than columns,
    /// * [`Error::Degenerate`] when whitening fails (rank-deficient
    ///   covariance) or a component does not converge (near-Gaussian
    ///   sources — the one data regime where the attack genuinely fails).
    pub fn attack<R: Rng + ?Sized>(&self, released: &Matrix, rng: &mut R) -> Result<IcaOutcome> {
        let m = released.rows();
        let n = released.cols();
        if m <= n {
            return Err(Error::InvalidParameter(format!(
                "need more rows than columns, got {m} x {n}"
            )));
        }

        // Center.
        let means = rbt_linalg::stats::column_means(released)?;
        let mut centered = released.clone();
        for i in 0..m {
            for (v, mu) in centered.row_mut(i).iter_mut().zip(&means) {
                *v -= mu;
            }
        }

        // Whiten: Z = centered · V · Λ^{-1/2}.
        let cov = covariance_matrix(&centered, VarianceMode::Population)?;
        let eig = symmetric_eigen(&cov)?;
        let scale = eig.eigenvalues[0].abs().max(1e-12);
        if eig.eigenvalues.iter().any(|&l| l <= 1e-10 * scale) {
            return Err(Error::Degenerate(
                "covariance is rank-deficient; cannot whiten".into(),
            ));
        }
        let mut lam_inv_sqrt = Matrix::zeros(n, n);
        for k in 0..n {
            lam_inv_sqrt[(k, k)] = 1.0 / eig.eigenvalues[k].sqrt();
        }
        let whitener = eig.eigenvectors.matmul(&lam_inv_sqrt)?;
        let z = centered.matmul(&whitener)?;

        // Deflationary FastICA with g = tanh.
        let mut w_rows: Vec<Vec<f64>> = Vec::with_capacity(n);
        let mut iterations = Vec::with_capacity(n);
        for _component in 0..n {
            let mut w: Vec<f64> = (0..n).map(|_| standard_normal(rng)).collect();
            gram_schmidt(&mut w, &w_rows);
            normalize(&mut w);
            let mut iters = 0;
            let mut converged = false;
            for it in 0..self.max_iters {
                iters = it + 1;
                // w⁺ = E[z·g(wᵀz)] − E[g'(wᵀz)]·w
                let mut ezg = vec![0.0f64; n];
                let mut eg_prime = 0.0f64;
                for row in z.row_iter() {
                    let u: f64 = row.iter().zip(&w).map(|(a, b)| a * b).sum();
                    let g = u.tanh();
                    eg_prime += 1.0 - g * g;
                    for (acc, &zv) in ezg.iter_mut().zip(row) {
                        *acc += zv * g;
                    }
                }
                let inv_m = 1.0 / m as f64;
                let mut w_new: Vec<f64> = ezg
                    .iter()
                    .zip(&w)
                    .map(|(&a, &b)| a * inv_m - (eg_prime * inv_m) * b)
                    .collect();
                gram_schmidt(&mut w_new, &w_rows);
                normalize(&mut w_new);
                // Convergence: |⟨w, w_new⟩| → 1 (sign flips allowed).
                let dot: f64 = w.iter().zip(&w_new).map(|(a, b)| a * b).sum();
                w = w_new;
                if (dot.abs() - 1.0).abs() < self.tolerance {
                    converged = true;
                    break;
                }
            }
            if !converged {
                return Err(Error::Degenerate(format!(
                    "component {_component} did not converge in {} iterations \
                     (sources may be Gaussian)",
                    self.max_iters
                )));
            }
            iterations.push(iters);
            w_rows.push(w);
        }

        let unmixing = Matrix::from_row_iter(w_rows.clone()).expect("unmixing rows are consistent");
        let sources = z.matmul(&unmixing.transpose())?;
        Ok(IcaOutcome {
            sources,
            unmixing,
            iterations,
        })
    }
}

fn gram_schmidt(w: &mut [f64], basis: &[Vec<f64>]) {
    for b in basis {
        let dot: f64 = w.iter().zip(b).map(|(a, c)| a * c).sum();
        for (wv, &bv) in w.iter_mut().zip(b) {
            *wv -= dot * bv;
        }
    }
}

fn normalize(w: &mut [f64]) {
    let norm = w.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-300);
    for v in w {
        *v /= norm;
    }
}

/// Evaluates an ICA outcome against the true normalized attributes: the
/// best one-to-one matching of recovered components to attributes by
/// absolute Pearson correlation (the permutation/sign ambiguity is exactly
/// what the correlation magnitude quotient removes).
///
/// Returns `(mean |correlation|, per-attribute |correlation|)`.
///
/// # Errors
///
/// Propagates shape errors and metric failures.
pub fn match_components(outcome: &IcaOutcome, original: &Matrix) -> Result<(f64, Vec<f64>)> {
    let n = original.cols();
    if outcome.sources.cols() != n || outcome.sources.rows() != original.rows() {
        return Err(Error::ShapeMismatch(format!(
            "sources are {:?}, original is {:?}",
            outcome.sources.shape(),
            original.shape()
        )));
    }
    // Cost = −|corr| for Hungarian minimisation.
    let mut cost = Matrix::zeros(n, n);
    for a in 0..n {
        let col_a = original.column(a);
        for s in 0..n {
            let col_s = outcome.sources.column(s);
            let corr = rbt_linalg::stats::correlation(&col_a, &col_s).unwrap_or(0.0);
            cost[(a, s)] = -corr.abs();
        }
    }
    let assignment = rbt_cluster::metrics::hungarian_min(&cost);
    let per_attr: Vec<f64> = assignment
        .iter()
        .enumerate()
        .map(|(a, &s)| -cost[(a, s)])
        .collect();
    let mean = per_attr.iter().sum::<f64>() / n as f64;
    Ok((mean, per_attr))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rbt_core::{PairwiseSecurityThreshold, RbtConfig, RbtTransformer};
    use rbt_data::Normalization;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    /// Independent, strongly non-Gaussian sources (cubed normals are
    /// heavy-tailed; uniforms are sub-Gaussian).
    fn independent_sources(rows: usize, seed: u64) -> Matrix {
        let mut r = rng(seed);
        let data: Vec<Vec<f64>> = (0..rows)
            .map(|_| {
                let a = standard_normal(&mut r);
                let b: f64 = r.random_range(-1.0..1.0);
                let c = standard_normal(&mut r);
                vec![a * a * a, 3.0 * b, c.signum() * c * c]
            })
            .collect();
        Matrix::from_row_iter(data).unwrap()
    }

    fn release(normalized: &Matrix, seed: u64) -> Matrix {
        RbtTransformer::new(RbtConfig::uniform(
            PairwiseSecurityThreshold::uniform(0.3).unwrap(),
        ))
        .transform(normalized, &mut rng(seed))
        .unwrap()
        .transformed
    }

    #[test]
    fn recovers_independent_nongaussian_sources_blind() {
        let raw = independent_sources(4000, 1);
        let (_, normalized) = Normalization::zscore_paper().fit_transform(&raw).unwrap();
        let released = release(&normalized, 2);
        let outcome = FastIca::default().attack(&released, &mut rng(3)).unwrap();
        let (mean_corr, per_attr) = match_components(&outcome, &normalized).unwrap();
        assert!(
            mean_corr > 0.95,
            "mean |corr| {mean_corr}, per-attr {per_attr:?}"
        );
        for (j, c) in per_attr.iter().enumerate() {
            assert!(*c > 0.9, "attribute {j} recovered with |corr| {c}");
        }
    }

    #[test]
    fn sources_are_whitened() {
        let raw = independent_sources(2000, 4);
        let (_, normalized) = Normalization::zscore_paper().fit_transform(&raw).unwrap();
        let released = release(&normalized, 5);
        let outcome = FastIca::default().attack(&released, &mut rng(6)).unwrap();
        // Unit variance, zero mean per component.
        for k in 0..3 {
            let col = outcome.sources.column(k);
            let mean = rbt_linalg::stats::mean(&col).unwrap();
            let var = rbt_linalg::stats::variance(&col, VarianceMode::Population).unwrap();
            assert!(mean.abs() < 1e-8, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-6, "var {var}");
        }
        // Unmixing is orthogonal (acts on whitened data).
        assert!(rbt_linalg::rotation::is_orthogonal(&outcome.unmixing, 1e-8));
    }

    #[test]
    fn gaussian_sources_defeat_the_attack() {
        // The identifiability limit: rotations of i.i.d. Gaussians are
        // distributionally invariant, so FastICA cannot converge to
        // anything meaningful. Either it fails outright or the recovered
        // correlation is poor.
        let mut r = rng(7);
        let gauss: Vec<Vec<f64>> = (0..3000)
            .map(|_| {
                vec![
                    standard_normal(&mut r),
                    standard_normal(&mut r),
                    standard_normal(&mut r),
                ]
            })
            .collect();
        let gauss = Matrix::from_row_iter(gauss).unwrap();
        let (_, normalized) = Normalization::zscore_paper().fit_transform(&gauss).unwrap();
        let released = release(&normalized, 8);
        match FastIca::new(60, 1e-12)
            .unwrap()
            .attack(&released, &mut rng(9))
        {
            Err(Error::Degenerate(_)) => {} // no convergence — expected
            Ok(outcome) => {
                let (mean_corr, _) = match_components(&outcome, &normalized).unwrap();
                assert!(
                    mean_corr < 0.9,
                    "Gaussian sources should not be recoverable, got {mean_corr}"
                );
            }
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn validates_input() {
        assert!(FastIca::new(0, 1e-6).is_err());
        assert!(FastIca::new(100, 0.0).is_err());
        let wide = Matrix::zeros(3, 5);
        assert!(matches!(
            FastIca::default().attack(&wide, &mut rng(0)),
            Err(Error::InvalidParameter(_))
        ));
        let constant = Matrix::filled(100, 3, 1.0);
        assert!(matches!(
            FastIca::default().attack(&constant, &mut rng(0)),
            Err(Error::Degenerate(_))
        ));
    }

    #[test]
    fn match_components_checks_shapes() {
        let raw = independent_sources(500, 10);
        let (_, normalized) = Normalization::zscore_paper().fit_transform(&raw).unwrap();
        let released = release(&normalized, 11);
        let outcome = FastIca::default().attack(&released, &mut rng(12)).unwrap();
        let fewer = normalized.select_columns(&[0, 1]).unwrap();
        assert!(matches!(
            match_components(&outcome, &fewer),
            Err(Error::ShapeMismatch(_))
        ));
    }
}
