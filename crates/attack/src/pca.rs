//! The PCA / covariance-alignment attack.
//!
//! Rotation perturbation preserves the covariance *spectrum*: if the
//! release is `X' = X·Rᵀ` then `Σ' = R·Σ·Rᵀ` has the same eigenvalues as
//! `Σ`. An attacker who knows the original covariance — from a public
//! dataset drawn from the same population, a prior release, or domain
//! knowledge — can therefore align the eigenbases:
//!
//! ```text
//! Σ  = V·Λ·Vᵀ,   Σ' = W·Λ·Wᵀ   ⇒   R = W·S·Vᵀ
//! ```
//!
//! with `S` a diagonal ±1 matrix (the per-eigenvector sign ambiguity).
//! This is the distribution-knowledge attack family (Chen & Liu 2005; Liu,
//! Giannella & Kargupta 2006) that superseded rotation perturbation — the
//! attacker never needs a single known record, defeating the keyspace
//! argument of §5.2 entirely.
//!
//! Sign resolution: with a couple of known rows the signs are determined
//! exactly; without any, component skewness (third moments are also
//! rotated faithfully) resolves every component whose marginal is
//! asymmetric.

use crate::{Error, Result};
use rbt_linalg::eigen::symmetric_eigen;
use rbt_linalg::stats::{covariance_matrix, VarianceMode};
use rbt_linalg::Matrix;

/// How to resolve the per-eigenvector sign ambiguity.
#[derive(Debug, Clone, Copy)]
pub enum SignResolution<'a> {
    /// Match third central moments (skewness) of the projections. Works
    /// whenever each principal component's marginal is asymmetric.
    Skewness,
    /// Use a few known (original, released) row pairs.
    KnownRows {
        /// Known original rows (`k × n`).
        original: &'a Matrix,
        /// The matching released rows (`k × n`).
        released: &'a Matrix,
    },
}

/// Outcome of the PCA attack.
#[derive(Debug, Clone)]
pub struct PcaAttackOutcome {
    /// The estimated `R̂ᵀ` with `X' ≈ X·R̂ᵀ`.
    pub estimated_rotation_t: Matrix,
    /// Reconstruction of every released row.
    pub reconstructed: Matrix,
    /// Smallest relative gap between consecutive eigenvalues of the
    /// reference covariance — the attack's conditioning (small gap = the
    /// eigenbasis, and hence the estimate, is unstable).
    pub min_spectral_gap: f64,
}

/// Runs the covariance-alignment attack.
///
/// * `reference` — data the attacker believes shares the original's
///   distribution (in the evaluation harness: the original normalized data
///   itself, or an independent sample from the same generator),
/// * `released` — the RBT release to reconstruct.
///
/// # Errors
///
/// * [`Error::ShapeMismatch`] on column disagreements,
/// * [`Error::Degenerate`] when the reference spectrum has (near-)repeated
///   eigenvalues, which leaves the eigenbasis underdetermined,
/// * propagated eigendecomposition failures.
pub fn pca_attack(
    reference: &Matrix,
    released: &Matrix,
    signs: SignResolution<'_>,
) -> Result<PcaAttackOutcome> {
    let n = reference.cols();
    if released.cols() != n {
        return Err(Error::ShapeMismatch(format!(
            "reference has {n} columns, released has {}",
            released.cols()
        )));
    }
    let mode = VarianceMode::Sample;
    let sigma_ref = covariance_matrix(reference, mode)?;
    let sigma_rel = covariance_matrix(released, mode)?;
    let eig_ref = symmetric_eigen(&sigma_ref)?;
    let eig_rel = symmetric_eigen(&sigma_rel)?;

    // Conditioning: relative eigenvalue gaps of the reference spectrum.
    let scale = eig_ref.eigenvalues[0].abs().max(1e-12);
    let min_spectral_gap = eig_ref
        .eigenvalues
        .windows(2)
        .map(|w| (w[0] - w[1]).abs() / scale)
        .fold(f64::INFINITY, f64::min);
    if min_spectral_gap < 1e-4 {
        return Err(Error::Degenerate(format!(
            "reference covariance spectrum is (near-)degenerate: min relative gap {min_spectral_gap:.2e}"
        )));
    }

    let v = &eig_ref.eigenvectors; // original basis
    let w = &eig_rel.eigenvectors; // released basis

    // Resolve the per-component signs.
    let s = match signs {
        SignResolution::Skewness => {
            let skew_ref = projection_skewness(reference, v)?;
            let skew_rel = projection_skewness(released, w)?;
            skew_ref
                .iter()
                .zip(&skew_rel)
                .map(|(a, b)| {
                    // Ambiguous (near-symmetric) components keep +1.
                    if a.abs() < 1e-3 || b.abs() < 1e-3 || a.signum() == b.signum() {
                        1.0
                    } else {
                        -1.0
                    }
                })
                .collect::<Vec<f64>>()
        }
        SignResolution::KnownRows { original, released } => {
            if original.shape() != released.shape() || original.cols() != n {
                return Err(Error::ShapeMismatch(
                    "known rows disagree in shape with the data".into(),
                ));
            }
            if original.rows() == 0 {
                return Err(Error::InvalidParameter(
                    "need at least one known row to resolve signs".into(),
                ));
            }
            // Project both sides onto their bases; signs maximise agreement.
            let po = original.matmul(v)?;
            let pr = released.matmul(w)?;
            (0..n)
                .map(|k| {
                    let dot: f64 = (0..po.rows()).map(|r| po[(r, k)] * pr[(r, k)]).sum();
                    if dot >= 0.0 {
                        1.0
                    } else {
                        -1.0
                    }
                })
                .collect::<Vec<f64>>()
        }
    };

    // R̂ᵀ = V · S · Wᵀ  (row convention: X' ≈ X·R̂ᵀ).
    let mut vs = v.clone();
    for row in 0..n {
        for (col, sign) in s.iter().enumerate() {
            vs[(row, col)] *= sign;
        }
    }
    let rt = vs.matmul(&w.transpose())?;

    // Reconstruct: X̂ = X' · W · S · Vᵀ = X' · R̂  (R̂ = (R̂ᵀ)ᵀ).
    let reconstructed = released.matmul(&rt.transpose())?;

    Ok(PcaAttackOutcome {
        estimated_rotation_t: rt,
        reconstructed,
        min_spectral_gap,
    })
}

/// Third central moment of the data projected on each basis column.
fn projection_skewness(data: &Matrix, basis: &Matrix) -> Result<Vec<f64>> {
    let proj = data.matmul(basis)?;
    let n = proj.rows() as f64;
    let mut out = Vec::with_capacity(proj.cols());
    for k in 0..proj.cols() {
        let col = proj.column(k);
        let mean = col.iter().sum::<f64>() / n;
        let m3 = col.iter().map(|x| (x - mean).powi(3)).sum::<f64>() / n;
        out.push(m3);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reconstruction::evaluate;
    use rand::SeedableRng;
    use rbt_core::{PairwiseSecurityThreshold, RbtConfig, RbtTransformer};
    use rbt_data::rng::standard_normal;
    use rbt_data::Normalization;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    /// Skewed, anisotropic data: distinct covariance eigenvalues and
    /// asymmetric marginals (squares of normals mixed with normals).
    fn skewed_data(rows: usize, seed: u64) -> Matrix {
        let mut r = rng(seed);
        let data: Vec<Vec<f64>> = (0..rows)
            .map(|_| {
                let a = standard_normal(&mut r);
                let b = standard_normal(&mut r);
                let c = standard_normal(&mut r);
                vec![
                    3.0 * a + 0.5 * a * a,           // wide + skewed
                    1.5 * b + 0.4 * a + 0.3 * b * b, // correlated + skewed
                    0.7 * c + 0.2 * c * c,           // narrow + skewed
                ]
            })
            .collect();
        Matrix::from_row_iter(data).unwrap()
    }

    fn release(normalized: &Matrix, seed: u64) -> Matrix {
        RbtTransformer::new(RbtConfig::uniform(
            PairwiseSecurityThreshold::uniform(0.2).unwrap(),
        ))
        .transform(normalized, &mut rng(seed))
        .unwrap()
        .transformed
    }

    #[test]
    fn perfect_prior_with_known_rows_recovers_everything() {
        let raw = skewed_data(500, 1);
        let (_, normalized) = Normalization::zscore_paper().fit_transform(&raw).unwrap();
        let released = release(&normalized, 2);
        let known_o = normalized.select_rows(&[0, 1]).unwrap();
        let known_r = released.select_rows(&[0, 1]).unwrap();
        let out = pca_attack(
            &normalized,
            &released,
            SignResolution::KnownRows {
                original: &known_o,
                released: &known_r,
            },
        )
        .unwrap();
        let report = evaluate(&normalized, &out.reconstructed, 0.05).unwrap();
        assert!(report.fraction_recovered > 0.99, "{report:?}");
        assert!(out.min_spectral_gap > 1e-4);
    }

    #[test]
    fn skewness_resolves_signs_without_any_known_rows() {
        let raw = skewed_data(2000, 3);
        let (_, normalized) = Normalization::zscore_paper().fit_transform(&raw).unwrap();
        let released = release(&normalized, 4);
        let out = pca_attack(&normalized, &released, SignResolution::Skewness).unwrap();
        let report = evaluate(&normalized, &out.reconstructed, 0.05).unwrap();
        assert!(report.fraction_recovered > 0.95, "{report:?}");
    }

    #[test]
    fn independent_sample_prior_still_approximately_recovers() {
        // The attacker only has an *independent* draw from the same
        // generator — covariance estimated, not known.
        let raw_owner = skewed_data(4000, 5);
        let raw_attacker = skewed_data(4000, 99);
        let (_, normalized) = Normalization::zscore_paper()
            .fit_transform(&raw_owner)
            .unwrap();
        let (_, attacker_ref) = Normalization::zscore_paper()
            .fit_transform(&raw_attacker)
            .unwrap();
        let released = release(&normalized, 6);
        let out = pca_attack(&attacker_ref, &released, SignResolution::Skewness).unwrap();
        let report = evaluate(&normalized, &out.reconstructed, 0.25).unwrap();
        // Approximate disclosure: most values within a quarter standard
        // deviation — a serious breach for "protected" data.
        assert!(report.fraction_recovered > 0.7, "{report:?}");
    }

    #[test]
    fn degenerate_spectrum_is_reported() {
        // A reference whose covariance has an exactly repeated eigenvalue:
        // the symmetric cross (±1, 0), (0, ±1) in the first two coordinates
        // gives Var(x) = Var(y), Cov = 0 — the 2-D eigenbasis is arbitrary.
        let cross = Matrix::from_rows(&[
            &[1.0, 0.0, 0.1],
            &[-1.0, 0.0, 0.1],
            &[0.0, 1.0, 0.4],
            &[0.0, -1.0, 0.4],
        ])
        .unwrap();
        let released = release(&cross, 8);
        assert!(matches!(
            pca_attack(&cross, &released, SignResolution::Skewness),
            Err(Error::Degenerate(_))
        ));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let raw = skewed_data(100, 9);
        let fewer = raw.select_columns(&[0, 1]).unwrap();
        assert!(matches!(
            pca_attack(&raw, &fewer, SignResolution::Skewness),
            Err(Error::ShapeMismatch(_))
        ));
        let known = raw.select_rows(&[0]).unwrap();
        let wrong = raw.select_rows(&[0, 1]).unwrap();
        assert!(matches!(
            pca_attack(
                &raw,
                &raw,
                SignResolution::KnownRows {
                    original: &known,
                    released: &wrong
                }
            ),
            Err(Error::ShapeMismatch(_))
        ));
    }

    #[test]
    fn estimated_rotation_is_nearly_orthogonal() {
        let raw = skewed_data(1000, 11);
        let (_, normalized) = Normalization::zscore_paper().fit_transform(&raw).unwrap();
        let released = release(&normalized, 12);
        let out = pca_attack(&normalized, &released, SignResolution::Skewness).unwrap();
        assert!(rbt_linalg::rotation::is_orthogonal(
            &out.estimated_rotation_t,
            1e-6
        ));
    }
}
