//! Disclosure metrics shared by every attack: how well did the adversary
//! reconstruct the protected values?

use crate::{Error, Result};
use rbt_linalg::Matrix;

/// Outcome of comparing a reconstruction against the true protected data.
#[derive(Debug, Clone)]
pub struct ReconstructionReport {
    /// Mean squared error over all cells.
    pub mse: f64,
    /// Root mean squared error over all cells.
    pub rmse: f64,
    /// RMSE per attribute.
    pub per_column_rmse: Vec<f64>,
    /// Fraction of cells reconstructed to within `epsilon` of the truth —
    /// the *privacy breach* rate at tolerance ε.
    pub fraction_recovered: f64,
    /// The tolerance used for [`fraction_recovered`](Self::fraction_recovered).
    pub epsilon: f64,
}

/// Compares a reconstruction against the truth.
///
/// # Errors
///
/// * [`Error::ShapeMismatch`] if the matrices disagree in shape,
/// * [`Error::InvalidParameter`] for a non-positive `epsilon` or empty input.
pub fn evaluate(
    original: &Matrix,
    reconstructed: &Matrix,
    epsilon: f64,
) -> Result<ReconstructionReport> {
    if original.shape() != reconstructed.shape() {
        return Err(Error::ShapeMismatch(format!(
            "original is {:?}, reconstruction is {:?}",
            original.shape(),
            reconstructed.shape()
        )));
    }
    if original.is_empty() {
        return Err(Error::InvalidParameter("empty matrices".into()));
    }
    if epsilon.is_nan() || epsilon <= 0.0 {
        return Err(Error::InvalidParameter(format!(
            "epsilon must be positive, got {epsilon}"
        )));
    }
    let n_cells = (original.rows() * original.cols()) as f64;
    let mut sse = 0.0;
    let mut within = 0usize;
    let mut per_col_sse = vec![0.0f64; original.cols()];
    for i in 0..original.rows() {
        let (a, b) = (original.row(i), reconstructed.row(i));
        for (j, (x, y)) in a.iter().zip(b).enumerate() {
            let d = x - y;
            sse += d * d;
            per_col_sse[j] += d * d;
            if d.abs() <= epsilon {
                within += 1;
            }
        }
    }
    let mse = sse / n_cells;
    Ok(ReconstructionReport {
        mse,
        rmse: mse.sqrt(),
        per_column_rmse: per_col_sse
            .iter()
            .map(|s| (s / original.rows() as f64).sqrt())
            .collect(),
        fraction_recovered: within as f64 / n_cells,
        epsilon,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_reconstruction() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let r = evaluate(&m, &m, 0.01).unwrap();
        assert_eq!(r.mse, 0.0);
        assert_eq!(r.rmse, 0.0);
        assert_eq!(r.fraction_recovered, 1.0);
        assert_eq!(r.per_column_rmse, vec![0.0, 0.0]);
    }

    #[test]
    fn known_error_values() {
        let a = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 0.0]]).unwrap();
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 0.0]]).unwrap();
        let r = evaluate(&a, &b, 0.5).unwrap();
        assert!((r.mse - 0.25).abs() < 1e-12);
        assert!((r.fraction_recovered - 0.75).abs() < 1e-12);
        // Column 0: SSE 1 over 2 rows → RMSE sqrt(1/2).
        assert!((r.per_column_rmse[0] - 0.5f64.sqrt()).abs() < 1e-12);
        assert!((r.per_column_rmse[1] - 0.0).abs() < 1e-12);
    }

    #[test]
    fn validates_input() {
        let a = Matrix::zeros(2, 2);
        assert!(matches!(
            evaluate(&a, &Matrix::zeros(2, 3), 0.1),
            Err(Error::ShapeMismatch(_))
        ));
        assert!(matches!(
            evaluate(&a, &a, 0.0),
            Err(Error::InvalidParameter(_))
        ));
        let empty = Matrix::zeros(0, 0);
        assert!(matches!(
            evaluate(&empty, &empty, 0.1),
            Err(Error::InvalidParameter(_))
        ));
    }
}
