//! Brute-force angle recovery for a single attribute pair.
//!
//! The paper argues reversal is expensive because θ lives in a continuous
//! range. For a *single known record* and a *known pair*, however, the
//! angle is determined up to measurement noise: grid-search θ minimising
//! the squared error between the rotated known values and the released
//! values, then refine by golden-section search. This is the attack the
//! paper's work-factor argument implicitly prices at `angle_steps^k ×
//! pairings` (see [`crate::keyspace`]) — cheap for one pair, and the
//! building block of a full enumeration for small `n`.

use crate::{Error, Result};
use rbt_linalg::Rotation2;

/// Outcome of a brute-force angle search.
#[derive(Debug, Clone, Copy)]
pub struct BruteForceOutcome {
    /// Estimated clockwise rotation angle, degrees, in `[0, 360)`.
    pub theta_degrees: f64,
    /// Sum of squared errors at the estimate.
    pub sse: f64,
    /// Number of objective evaluations spent.
    pub evaluations: usize,
}

/// Sum of squared residuals between `R(θ)·(x, y)` and `(x', y')`.
fn objective(theta: f64, x: &[f64], y: &[f64], xr: &[f64], yr: &[f64]) -> f64 {
    let rot = Rotation2::from_degrees(theta);
    let mut sse = 0.0;
    for i in 0..x.len() {
        let (px, py) = rot.apply_point(x[i], y[i]);
        let dx = px - xr[i];
        let dy = py - yr[i];
        sse += dx * dx + dy * dy;
    }
    sse
}

/// Recovers the rotation angle of one pair from known original values
/// `(x, y)` and their released counterparts `(xr, yr)`.
///
/// `grid` is the number of coarse candidates over `[0°, 360°)`; the best
/// candidate is refined by golden-section search to ~1e-10°.
///
/// # Errors
///
/// * [`Error::ShapeMismatch`] for length disagreements,
/// * [`Error::InvalidParameter`] for empty inputs or `grid < 4`.
pub fn brute_force_angle(
    x: &[f64],
    y: &[f64],
    xr: &[f64],
    yr: &[f64],
    grid: usize,
) -> Result<BruteForceOutcome> {
    if x.is_empty() {
        return Err(Error::InvalidParameter("empty known sample".into()));
    }
    if grid < 4 {
        return Err(Error::InvalidParameter(format!(
            "grid must be >= 4, got {grid}"
        )));
    }
    for (name, len) in [("y", y.len()), ("x'", xr.len()), ("y'", yr.len())] {
        if len != x.len() {
            return Err(Error::ShapeMismatch(format!(
                "{name} has length {len}, expected {}",
                x.len()
            )));
        }
    }

    let mut evaluations = 0usize;
    let mut eval = |t: f64| {
        evaluations += 1;
        objective(t, x, y, xr, yr)
    };

    // Coarse scan.
    let step = 360.0 / grid as f64;
    let mut best = (0.0f64, f64::INFINITY);
    for k in 0..grid {
        let t = k as f64 * step;
        let v = eval(t);
        if v < best.1 {
            best = (t, v);
        }
    }

    // Golden-section refinement on [best − step, best + step].
    let phi = (5f64.sqrt() - 1.0) / 2.0;
    let (mut lo, mut hi) = (best.0 - step, best.0 + step);
    let mut c = hi - phi * (hi - lo);
    let mut d = lo + phi * (hi - lo);
    let mut fc = eval(c);
    let mut fd = eval(d);
    for _ in 0..120 {
        if fc < fd {
            hi = d;
            d = c;
            fd = fc;
            c = hi - phi * (hi - lo);
            fc = eval(c);
        } else {
            lo = c;
            c = d;
            fc = fd;
            d = lo + phi * (hi - lo);
            fd = eval(d);
        }
        if hi - lo < 1e-11 {
            break;
        }
    }
    let theta = 0.5 * (lo + hi);
    let sse = eval(theta);
    Ok(BruteForceOutcome {
        theta_degrees: theta.rem_euclid(360.0),
        sse,
        evaluations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rotate(theta: f64, x: &[f64], y: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let rot = Rotation2::from_degrees(theta);
        let mut xr = x.to_vec();
        let mut yr = y.to_vec();
        rot.apply_columns(&mut xr, &mut yr).unwrap();
        (xr, yr)
    }

    const X: [f64; 4] = [1.4809, 0.4151, -0.4824, -1.1556];
    const Y: [f64; 4] = [-0.3476, -1.5061, 0.4634, 1.1586];

    #[test]
    fn recovers_paper_angle_exactly() {
        let (xr, yr) = rotate(312.47, &X, &Y);
        let out = brute_force_angle(&X, &Y, &xr, &yr, 360).unwrap();
        assert!(
            (out.theta_degrees - 312.47).abs() < 1e-6,
            "estimated {}",
            out.theta_degrees
        );
        assert!(out.sse < 1e-18);
    }

    #[test]
    fn works_with_a_single_known_record() {
        let (xr, yr) = rotate(123.456, &X[..1], &Y[..1]);
        let out = brute_force_angle(&X[..1], &Y[..1], &xr, &yr, 720).unwrap();
        assert!(
            (out.theta_degrees - 123.456).abs() < 1e-6,
            "estimated {}",
            out.theta_degrees
        );
    }

    #[test]
    fn robust_to_small_noise() {
        let (mut xr, yr) = rotate(200.0, &X, &Y);
        for v in &mut xr {
            *v += 0.01;
        }
        let out = brute_force_angle(&X, &Y, &xr, &yr, 360).unwrap();
        assert!((out.theta_degrees - 200.0).abs() < 2.0);
        assert!(out.sse > 0.0);
    }

    #[test]
    fn validates_input() {
        assert!(brute_force_angle(&[], &[], &[], &[], 360).is_err());
        assert!(brute_force_angle(&X, &Y[..2], &X, &Y, 360).is_err());
        assert!(brute_force_angle(&X, &Y, &X, &Y, 2).is_err());
    }

    #[test]
    fn evaluation_count_is_bounded() {
        let (xr, yr) = rotate(10.0, &X, &Y);
        let out = brute_force_angle(&X, &Y, &xr, &yr, 360).unwrap();
        // Coarse grid + golden refinement stays in the hundreds.
        assert!(out.evaluations < 700, "used {}", out.evaluations);
    }
}
