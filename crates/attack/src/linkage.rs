//! Distance-profile re-identification — the attack the isometry itself
//! enables.
//!
//! §5.3 of the paper argues that suppressing IDs (anonymization) plus
//! rotation protects individuals. But RBT's defining guarantee — *every*
//! pairwise distance is preserved — is itself a fingerprint: an adversary
//! who knows `k` individuals' records can compute the mutual distances
//! among them and search the released matrix for `k` rows with the same
//! mutual-distance pattern. With even a handful of known individuals the
//! pattern is almost surely unique, so ID suppression is undone and every
//! known individual's (transformed) row — including attributes the
//! adversary did *not* know — is located.
//!
//! The search is a backtracking subgraph-matching over the released rows,
//! pruned by pairwise distance consistency; for the `k ≤ 10`, `m ≤ 10⁴`
//! regime of realistic linkage it runs in milliseconds.

use crate::{Error, Result};
use rbt_linalg::distance::Metric;
use rbt_linalg::Matrix;

/// Outcome of the linkage attack.
#[derive(Debug, Clone)]
pub struct LinkageOutcome {
    /// `assignment[i]` = released-row index matched to known row `i`.
    pub assignment: Vec<usize>,
    /// Maximum absolute mismatch between known and matched mutual
    /// distances (0 for an exact isometric release).
    pub max_mismatch: f64,
    /// Number of backtracking states explored (work factor).
    pub states_explored: usize,
}

/// Re-identifies `known` rows (in normalized space) inside an
/// ID-suppressed, RBT-released matrix by mutual-distance matching.
///
/// `tolerance` bounds the per-pair distance mismatch (float rounding plus
/// whatever noise the attacker's knowledge carries). Returns the first
/// consistent assignment found; for exact releases and generic data this
/// is the true one.
///
/// # Errors
///
/// * [`Error::ShapeMismatch`] on column disagreements,
/// * [`Error::InvalidParameter`] for fewer than 2 known rows or a
///   non-positive tolerance,
/// * [`Error::Degenerate`] if no consistent assignment exists at this
///   tolerance.
#[allow(clippy::needless_range_loop, clippy::too_many_arguments)]
// Triangular index scans and the explicit backtracking state read clearer
// with indices; the recursion threads its whole state by design.
pub fn distance_profile_linkage(
    known: &Matrix,
    released: &Matrix,
    tolerance: f64,
) -> Result<LinkageOutcome> {
    if known.cols() != released.cols() {
        return Err(Error::ShapeMismatch(format!(
            "known rows have {} columns, released has {}",
            known.cols(),
            released.cols()
        )));
    }
    let k = known.rows();
    if k < 2 {
        return Err(Error::InvalidParameter(
            "linkage needs at least 2 known rows".into(),
        ));
    }
    if tolerance.is_nan() || tolerance <= 0.0 {
        return Err(Error::InvalidParameter(format!(
            "tolerance must be positive, got {tolerance}"
        )));
    }
    let m = released.rows();
    if m < k {
        return Err(Error::InvalidParameter(format!(
            "released data has {m} rows, fewer than the {k} known rows"
        )));
    }

    // Mutual distances among the known rows.
    let mut known_d = vec![vec![0.0f64; k]; k];
    for i in 0..k {
        for j in (i + 1)..k {
            let d = Metric::Euclidean.distance(known.row(i), known.row(j));
            known_d[i][j] = d;
            known_d[j][i] = d;
        }
    }

    // Backtracking: assign known rows in order; prune candidates whose
    // distance to every already-assigned released row mismatches.
    let mut assignment: Vec<usize> = Vec::with_capacity(k);
    let mut used = vec![false; m];
    let mut states = 0usize;

    #[allow(clippy::too_many_arguments)]
    fn recurse(
        level: usize,
        k: usize,
        m: usize,
        known_d: &[Vec<f64>],
        released: &Matrix,
        tolerance: f64,
        assignment: &mut Vec<usize>,
        used: &mut [bool],
        states: &mut usize,
    ) -> bool {
        if level == k {
            return true;
        }
        for candidate in 0..m {
            if used[candidate] {
                continue;
            }
            *states += 1;
            let consistent = assignment.iter().enumerate().all(|(prev, &row)| {
                let d_rel = Metric::Euclidean.distance(released.row(candidate), released.row(row));
                (d_rel - known_d[level][prev]).abs() <= tolerance
            });
            if !consistent {
                continue;
            }
            assignment.push(candidate);
            used[candidate] = true;
            if recurse(
                level + 1,
                k,
                m,
                known_d,
                released,
                tolerance,
                assignment,
                used,
                states,
            ) {
                return true;
            }
            used[candidate] = false;
            assignment.pop();
        }
        false
    }

    let found = recurse(
        0,
        k,
        m,
        &known_d,
        released,
        tolerance,
        &mut assignment,
        &mut used,
        &mut states,
    );
    if !found {
        return Err(Error::Degenerate(format!(
            "no consistent assignment at tolerance {tolerance} \
             (explored {states} states)"
        )));
    }

    let mut max_mismatch = 0.0f64;
    for i in 0..k {
        for j in (i + 1)..k {
            let d_rel = Metric::Euclidean
                .distance(released.row(assignment[i]), released.row(assignment[j]));
            max_mismatch = max_mismatch.max((d_rel - known_d[i][j]).abs());
        }
    }
    Ok(LinkageOutcome {
        assignment,
        max_mismatch,
        states_explored: states,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rbt_core::{PairwiseSecurityThreshold, RbtConfig, RbtTransformer};
    use rbt_data::synth::GaussianMixture;
    use rbt_data::Normalization;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn release(rows: usize, cols: usize, seed: u64) -> (Matrix, Matrix) {
        let mut r = rng(seed);
        let gm = GaussianMixture::well_separated(3, cols, 8.0, 1.0).unwrap();
        let raw = gm.sample(rows, &mut r).matrix;
        let (_, normalized) = Normalization::zscore_paper().fit_transform(&raw).unwrap();
        let out = RbtTransformer::new(RbtConfig::uniform(
            PairwiseSecurityThreshold::uniform(0.3).unwrap(),
        ))
        .transform(&normalized, &mut r)
        .unwrap();
        (normalized, out.transformed)
    }

    #[test]
    fn reidentifies_known_individuals_despite_anonymization() {
        let (normalized, released) = release(400, 4, 1);
        // The adversary knows individuals at rows 10, 55, 200, 333.
        let truth = [10usize, 55, 200, 333];
        let known = normalized.select_rows(&truth).unwrap();
        let outcome = distance_profile_linkage(&known, &released, 1e-6).unwrap();
        assert_eq!(outcome.assignment, truth);
        assert!(outcome.max_mismatch < 1e-9);
    }

    #[test]
    fn three_known_rows_suffice_on_generic_data() {
        let (normalized, released) = release(1000, 5, 2);
        let truth = [7usize, 500, 900];
        let known = normalized.select_rows(&truth).unwrap();
        let outcome = distance_profile_linkage(&known, &released, 1e-6).unwrap();
        assert_eq!(outcome.assignment, truth);
        // Work factor stays tiny relative to the m!/(m-k)! naive bound.
        assert!(outcome.states_explored < 100_000);
    }

    #[test]
    fn tolerates_noisy_attacker_knowledge() {
        let (normalized, released) = release(300, 4, 3);
        let truth = [3usize, 150, 280];
        let mut known = normalized.select_rows(&truth).unwrap();
        for (idx, v) in known.as_mut_slice().iter_mut().enumerate() {
            *v += if idx % 2 == 0 { 5e-4 } else { -5e-4 };
        }
        let outcome = distance_profile_linkage(&known, &released, 5e-3).unwrap();
        assert_eq!(outcome.assignment, truth);
        assert!(outcome.max_mismatch > 0.0);
    }

    #[test]
    fn impossible_match_reported() {
        let (normalized, released) = release(100, 4, 4);
        // Fabricated "known" rows with distances present nowhere.
        let mut known = normalized.select_rows(&[0, 1]).unwrap();
        for v in known.as_mut_slice() {
            *v *= 1000.0;
        }
        assert!(matches!(
            distance_profile_linkage(&known, &released, 1e-9),
            Err(Error::Degenerate(_))
        ));
    }

    #[test]
    fn validates_input() {
        let (normalized, released) = release(50, 4, 5);
        let one = normalized.select_rows(&[0]).unwrap();
        assert!(matches!(
            distance_profile_linkage(&one, &released, 1e-6),
            Err(Error::InvalidParameter(_))
        ));
        let known = normalized.select_rows(&[0, 1]).unwrap();
        assert!(matches!(
            distance_profile_linkage(&known, &released, 0.0),
            Err(Error::InvalidParameter(_))
        ));
        let wrong_cols = released.select_columns(&[0, 1]).unwrap();
        assert!(matches!(
            distance_profile_linkage(&known, &wrong_cols, 1e-6),
            Err(Error::ShapeMismatch(_))
        ));
        let tiny = released.select_rows(&[0]).unwrap();
        assert!(matches!(
            distance_profile_linkage(&known, &tiny, 1e-6),
            Err(Error::InvalidParameter(_))
        ));
    }

    #[test]
    fn linkage_reveals_unknown_attributes() {
        // The payoff: once linked, the adversary reads the matched rows'
        // *other* transformed attributes and, with any rotation estimate
        // (e.g. from the known-sample attack), recovers them outright.
        let (normalized, released) = release(200, 5, 6);
        let truth = [20usize, 120, 180];
        let known = normalized.select_rows(&truth).unwrap();
        let linked = distance_profile_linkage(&known, &released, 1e-6).unwrap();
        let known_rel = released.select_rows(&linked.assignment).unwrap();
        let attack = crate::known_sample::known_sample_attack(&known, &known_rel, &released);
        // 3 known rows < n = 5 attributes: underdetermined, but combining
        // linkage with more known individuals crosses the threshold.
        assert!(attack.is_err());
        let truth5 = [20usize, 120, 180, 60, 90];
        let known5 = normalized.select_rows(&truth5).unwrap();
        let linked5 = distance_profile_linkage(&known5, &released, 1e-6).unwrap();
        assert_eq!(linked5.assignment, truth5);
        let known_rel5 = released.select_rows(&linked5.assignment).unwrap();
        let outcome =
            crate::known_sample::known_sample_attack(&known5, &known_rel5, &released).unwrap();
        let report =
            crate::reconstruction::evaluate(&normalized, &outcome.reconstructed, 0.01).unwrap();
        assert!(report.fraction_recovered > 0.999);
    }
}
