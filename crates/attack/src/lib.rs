//! Attacks on rotation-based data perturbation.
//!
//! §5.2 of the RBT paper argues its security *informally*: reversing the
//! release requires guessing the attribute pairs, their order, and a real-
//! valued angle per pair, and the one concrete attack it analyses —
//! re-normalizing the released data — fails (Table 5). This crate
//! implements that analysis **and** the stronger attacks the later
//! literature used to break rotation perturbation (e.g. Liu, Kargupta &
//! Ryan's known-sample attacks and Chen & Liu's PCA-style analyses),
//! documenting the method's real security envelope:
//!
//! * [`renormalize`] — the paper's own §5.2 attack; reproduces Table 5 and
//!   confirms the paper's claim that it fails,
//! * [`keyspace`] — quantifies the brute-force search space behind the
//!   paper's "computational work" argument,
//! * [`brute`] — brute-force angle recovery for a single pair given a few
//!   known records (the attack the paper says is expensive — for one pair
//!   it is not),
//! * [`known_sample`] — full known-sample least-squares attack: with `k ≥ n`
//!   known records the entire rotation matrix, and hence every unknown
//!   record, is recovered,
//! * [`linkage`] — distance-profile re-identification: the preserved
//!   distances *are* a fingerprint, so ID suppression (§5.3) is undone by
//!   matching mutual-distance patterns of a few known individuals,
//! * [`pca`] — covariance-alignment attack: an attacker who only knows the
//!   *distribution* of the original data (not a single record) aligns the
//!   eigenbases of the original and released covariance matrices to
//!   estimate the rotation,
//! * [`ica`] — blind source separation (FastICA): for independent
//!   non-Gaussian attributes the release is a textbook ICA mixing model,
//!   and the attack needs no prior knowledge whatsoever,
//! * [`reconstruction`] — disclosure metrics shared by all attacks.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod brute;
pub mod ica;
pub mod keyspace;
pub mod known_sample;
pub mod linkage;
pub mod pca;
pub mod reconstruction;
pub mod renormalize;

pub use reconstruction::ReconstructionReport;

use std::fmt;

/// Errors produced by the attack suite.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// An underlying linear-algebra error.
    Linalg(rbt_linalg::Error),
    /// An underlying data-layer error.
    Data(rbt_data::Error),
    /// A parameter was invalid.
    InvalidParameter(String),
    /// The attacker's inputs disagree in shape.
    ShapeMismatch(String),
    /// The attack cannot proceed (e.g. degenerate covariance spectrum).
    Degenerate(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Linalg(e) => write!(f, "linear algebra error: {e}"),
            Error::Data(e) => write!(f, "data error: {e}"),
            Error::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            Error::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
            Error::Degenerate(msg) => write!(f, "degenerate input: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Linalg(e) => Some(e),
            Error::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rbt_linalg::Error> for Error {
    fn from(e: rbt_linalg::Error) -> Self {
        Error::Linalg(e)
    }
}

impl From<rbt_data::Error> for Error {
    fn from(e: rbt_data::Error) -> Self {
        Error::Data(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;
