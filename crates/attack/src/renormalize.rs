//! The paper's own §5.2 attack: re-normalize the released data and hope the
//! result reverses the transformation.
//!
//! The paper shows (Table 5) that z-scoring the released Table 3 changes
//! the inter-object distances — so the attacker ends up with data that is
//! useless both as a reconstruction *and* for clustering. This module
//! reproduces that analysis and generalises it to arbitrary releases.

use crate::Result;
use rbt_data::Normalization;
use rbt_linalg::dissimilarity::DissimilarityMatrix;
use rbt_linalg::distance::Metric;
use rbt_linalg::Matrix;

/// Outcome of the re-normalization attack.
#[derive(Debug, Clone)]
pub struct RenormalizationReport {
    /// The re-normalized (attacked) matrix.
    pub renormalized: Matrix,
    /// Max distance drift between the *released* data and the attacked
    /// data. Nonzero drift means the attack destroyed the very property
    /// (distance preservation) that made the release useful.
    pub drift_vs_released: f64,
    /// Max absolute difference between the attacked matrix and the true
    /// normalized original — how close the attacker got to reversal.
    pub error_vs_original: Option<f64>,
}

/// Runs the attack: z-score the released matrix (the natural attacker move,
/// since the owner is known to normalize before rotating).
///
/// `normalized_original` — when the caller knows it (evaluation setting) —
/// lets the report quantify how far from a true reversal the attack landed.
///
/// # Errors
///
/// Propagates normalization errors for degenerate input.
pub fn renormalization_attack(
    released: &Matrix,
    normalized_original: Option<&Matrix>,
) -> Result<RenormalizationReport> {
    let (_, renormalized) = Normalization::zscore_paper().fit_transform(released)?;
    let threads = rbt_linalg::pool::default_threads();
    let before = DissimilarityMatrix::from_matrix_parallel(released, Metric::Euclidean, threads);
    let after =
        DissimilarityMatrix::from_matrix_parallel(&renormalized, Metric::Euclidean, threads);
    let drift_vs_released = before
        .max_abs_diff(&after)
        .expect("same object count by construction");
    let error_vs_original = normalized_original.and_then(|orig| renormalized.max_abs_diff(orig));
    Ok(RenormalizationReport {
        renormalized,
        drift_vs_released,
        error_vs_original,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbt_data::datasets;

    #[test]
    fn reproduces_paper_table5() {
        // Attacking Table 3 must yield exactly the dissimilarity matrix the
        // paper prints as Table 5.
        let released = datasets::arrhythmia_transformed_table3();
        let report = renormalization_attack(released.matrix(), None).unwrap();
        let dm = DissimilarityMatrix::from_matrix(&report.renormalized, Metric::Euclidean);
        let table5 = DissimilarityMatrix::from_condensed(
            5,
            datasets::lower_triangle_to_condensed(&datasets::ARRHYTHMIA_TABLE5_LOWER),
        )
        .unwrap();
        assert!(
            dm.max_abs_diff(&table5).unwrap() < 5e-4,
            "max diff {:?}",
            dm.max_abs_diff(&table5)
        );
    }

    #[test]
    fn attack_changes_distances_as_paper_claims() {
        let released = datasets::arrhythmia_transformed_table3();
        let report = renormalization_attack(released.matrix(), None).unwrap();
        // §5.2: "the distances between the objects will be changed".
        assert!(
            report.drift_vs_released > 0.5,
            "drift {}",
            report.drift_vs_released
        );
    }

    #[test]
    fn attack_does_not_recover_the_original() {
        let released = datasets::arrhythmia_transformed_table3();
        let original = datasets::arrhythmia_normalized_table2();
        let report = renormalization_attack(released.matrix(), Some(original.matrix())).unwrap();
        // Far from a reversal.
        assert!(report.error_vs_original.unwrap() > 0.5);
    }

    #[test]
    fn attack_on_unrotated_data_is_idempotent() {
        // Sanity: re-normalizing already-normalized data is a no-op, so the
        // attack "succeeds" trivially when no rotation was applied — the
        // protection comes from the rotation, not the normalization.
        let normalized = datasets::arrhythmia_normalized_table2();
        let report =
            renormalization_attack(normalized.matrix(), Some(normalized.matrix())).unwrap();
        assert!(report.error_vs_original.unwrap() < 1e-3);
        assert!(report.drift_vs_released < 1e-3);
    }
}
