//! The known-sample (known input–output) attack.
//!
//! If the adversary knows `k ≥ n` original records *and* which released
//! rows they correspond to (insider knowledge, a public subset, or linkage
//! through quasi-identifiers — exactly the threat model of Liu, Kargupta &
//! Ryan 2006), the rotation is a linear map `X' = X·Rᵀ` that least squares
//! recovers outright. Every other record is then reconstructed with
//! `X̂ = X'·R̂`, since `R̂⁻¹ = R̂ᵀ` for an orthogonal estimate.
//!
//! This is the attack that ultimately relegated rotation perturbation: the
//! paper's keyspace argument ([`crate::keyspace`]) does not apply because
//! the attacker never searches the keyspace at all.

use crate::{Error, Result};
use rbt_linalg::solve::least_squares;
use rbt_linalg::Matrix;

/// Outcome of the known-sample attack.
#[derive(Debug, Clone)]
pub struct KnownSampleOutcome {
    /// The estimated transpose of the composite rotation (`R̂ᵀ`, the matrix
    /// with `X' ≈ X·R̂ᵀ`).
    pub estimated_rotation_t: Matrix,
    /// Reconstruction of every released row in normalized space.
    pub reconstructed: Matrix,
    /// Orthogonality defect `‖R̂·R̂ᵀ − I‖_F` of the estimate (≈0 when the
    /// known sample is consistent and well-conditioned).
    pub orthogonality_defect: f64,
}

/// Runs the attack.
///
/// * `known_original` — `k × n` matrix of known original (normalized) rows,
/// * `known_released` — the matching `k × n` released rows,
/// * `released` — the full released matrix to reconstruct.
///
/// # Errors
///
/// * [`Error::ShapeMismatch`] on any column/row disagreement,
/// * [`Error::InvalidParameter`] if `k < n` (the system is underdetermined),
/// * [`Error::Degenerate`] if the known sample is rank-deficient.
pub fn known_sample_attack(
    known_original: &Matrix,
    known_released: &Matrix,
    released: &Matrix,
) -> Result<KnownSampleOutcome> {
    let n = known_original.cols();
    if known_released.shape() != known_original.shape() {
        return Err(Error::ShapeMismatch(format!(
            "known pairs disagree: {:?} vs {:?}",
            known_original.shape(),
            known_released.shape()
        )));
    }
    if released.cols() != n {
        return Err(Error::ShapeMismatch(format!(
            "released data has {} columns, known sample has {n}",
            released.cols()
        )));
    }
    if known_original.rows() < n {
        return Err(Error::InvalidParameter(format!(
            "need at least {n} known records, got {}",
            known_original.rows()
        )));
    }

    // X' = X · Rᵀ  ⇒  solve the least-squares problem for Rᵀ.
    let rt = least_squares(known_original, known_released).map_err(|e| match e {
        rbt_linalg::Error::Singular => Error::Degenerate("known sample is rank-deficient".into()),
        other => Error::Linalg(other),
    })?;

    // Orthogonality defect of the estimate.
    let defect = {
        let prod = rt.matmul(&rt.transpose())?;
        prod.sub(&Matrix::identity(n))?.frobenius_norm()
    };

    // Reconstruct: X̂ = X' · (Rᵀ)⁻¹ ≈ X' · R̂ (orthogonal ⇒ inverse =
    // transpose of Rᵀ-estimate's transpose = R̂). Use the actual inverse to
    // stay correct even when the estimate drifts from orthogonality.
    let rt_inv = rbt_linalg::solve::invert(&rt).map_err(|e| match e {
        rbt_linalg::Error::Singular => Error::Degenerate("estimated rotation is singular".into()),
        other => Error::Linalg(other),
    })?;
    let reconstructed = released.matmul(&rt_inv)?;

    Ok(KnownSampleOutcome {
        estimated_rotation_t: rt,
        reconstructed,
        orthogonality_defect: defect,
    })
}

/// The Procrustes-refined variant: projects the least-squares estimate onto
/// the nearest orthogonal matrix before reconstructing.
///
/// With noisy attacker knowledge the raw least-squares estimate drifts from
/// orthogonality and the reconstruction error grows; constraining the
/// estimate to the orthogonal group (which the true map is known to lie in)
/// recovers most of that loss. This is the estimator the post-publication
/// attack literature actually uses.
///
/// # Errors
///
/// Same conditions as [`known_sample_attack`].
pub fn known_sample_attack_procrustes(
    known_original: &Matrix,
    known_released: &Matrix,
    released: &Matrix,
) -> Result<KnownSampleOutcome> {
    let raw = known_sample_attack(known_original, known_released, released)?;
    let rt =
        rbt_linalg::solve::nearest_orthogonal(&raw.estimated_rotation_t).map_err(|e| match e {
            rbt_linalg::Error::Singular => {
                Error::Degenerate("estimate is singular; cannot orthogonalize".into())
            }
            other => Error::Linalg(other),
        })?;
    // Orthogonal estimate ⇒ the inverse is the transpose: X̂ = X'·R̂.
    let reconstructed = released.matmul(&rt.transpose())?;
    let defect = {
        let prod = rt.matmul(&rt.transpose())?;
        prod.sub(&Matrix::identity(rt.rows()))?.frobenius_norm()
    };
    Ok(KnownSampleOutcome {
        estimated_rotation_t: rt,
        reconstructed,
        orthogonality_defect: defect,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reconstruction::evaluate;
    use rand::SeedableRng;
    use rbt_core::{PairwiseSecurityThreshold, RbtConfig, RbtTransformer};
    use rbt_data::synth::GaussianMixture;
    use rbt_data::Normalization;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    /// Generates normalized data, releases it through RBT, and returns
    /// (normalized, released).
    fn rbt_release(n_rows: usize, dim: usize, seed: u64) -> (Matrix, Matrix) {
        let mut r = rng(seed);
        let gm = GaussianMixture::well_separated(3, dim, 8.0, 1.0).unwrap();
        let data = gm.sample(n_rows, &mut r);
        let (_, normalized) = Normalization::zscore_paper()
            .fit_transform(&data.matrix)
            .unwrap();
        let out = RbtTransformer::new(RbtConfig::uniform(
            PairwiseSecurityThreshold::uniform(0.2).unwrap(),
        ))
        .transform(&normalized, &mut r)
        .unwrap();
        (normalized, out.transformed)
    }

    #[test]
    fn full_recovery_with_enough_known_records() {
        let (normalized, released) = rbt_release(300, 4, 1);
        // Attacker knows the first 8 records (2n).
        let known_orig = normalized.select_rows(&(0..8).collect::<Vec<_>>()).unwrap();
        let known_rel = released.select_rows(&(0..8).collect::<Vec<_>>()).unwrap();
        let out = known_sample_attack(&known_orig, &known_rel, &released).unwrap();
        let report = evaluate(&normalized, &out.reconstructed, 0.01).unwrap();
        // Everything is recovered — RBT offers no protection here.
        assert!(report.fraction_recovered > 0.999, "{report:?}");
        assert!(report.rmse < 1e-6, "{report:?}");
        assert!(out.orthogonality_defect < 1e-6);
    }

    #[test]
    fn recovery_with_exactly_n_records() {
        let (normalized, released) = rbt_release(100, 3, 2);
        let known_orig = normalized.select_rows(&[0, 1, 2]).unwrap();
        let known_rel = released.select_rows(&[0, 1, 2]).unwrap();
        let out = known_sample_attack(&known_orig, &known_rel, &released).unwrap();
        let report = evaluate(&normalized, &out.reconstructed, 0.01).unwrap();
        assert!(report.fraction_recovered > 0.99, "{report:?}");
    }

    #[test]
    fn underdetermined_sample_rejected() {
        let (normalized, released) = rbt_release(50, 4, 3);
        let known_orig = normalized.select_rows(&[0, 1]).unwrap();
        let known_rel = released.select_rows(&[0, 1]).unwrap();
        assert!(matches!(
            known_sample_attack(&known_orig, &known_rel, &released),
            Err(Error::InvalidParameter(_))
        ));
    }

    #[test]
    fn rank_deficient_sample_detected() {
        let (normalized, released) = rbt_release(50, 3, 4);
        // Duplicate the same row n times: rank 1.
        let known_orig = normalized.select_rows(&[0, 0, 0]).unwrap();
        let known_rel = released.select_rows(&[0, 0, 0]).unwrap();
        assert!(matches!(
            known_sample_attack(&known_orig, &known_rel, &released),
            Err(Error::Degenerate(_))
        ));
    }

    #[test]
    fn shape_mismatches_rejected() {
        let (normalized, released) = rbt_release(50, 3, 5);
        let known_orig = normalized.select_rows(&[0, 1, 2]).unwrap();
        let known_rel = released.select_rows(&[0, 1]).unwrap();
        assert!(matches!(
            known_sample_attack(&known_orig, &known_rel, &released),
            Err(Error::ShapeMismatch(_))
        ));
        let wrong_cols = released.select_columns(&[0, 1]).unwrap();
        let known_orig3 = normalized.select_rows(&[0, 1, 2]).unwrap();
        let known_rel3 = released.select_rows(&[0, 1, 2]).unwrap();
        assert!(matches!(
            known_sample_attack(&known_orig3, &known_rel3, &wrong_cols),
            Err(Error::ShapeMismatch(_))
        ));
    }

    #[test]
    fn procrustes_beats_raw_least_squares_under_noise() {
        let (normalized, released) = rbt_release(400, 4, 21);
        let idx: Vec<usize> = (0..8).collect();
        // Attacker knowledge corrupted by ±3% noise.
        let known_orig = {
            let mut m = normalized.select_rows(&idx).unwrap();
            for (k, v) in m.as_mut_slice().iter_mut().enumerate() {
                *v *= if k % 2 == 0 { 1.03 } else { 0.97 };
            }
            m
        };
        let known_rel = released.select_rows(&idx).unwrap();
        let raw = known_sample_attack(&known_orig, &known_rel, &released).unwrap();
        let refined = known_sample_attack_procrustes(&known_orig, &known_rel, &released).unwrap();
        let raw_report = evaluate(&normalized, &raw.reconstructed, 0.1).unwrap();
        let refined_report = evaluate(&normalized, &refined.reconstructed, 0.1).unwrap();
        assert!(refined.orthogonality_defect < 1e-9);
        assert!(raw.orthogonality_defect > refined.orthogonality_defect);
        assert!(
            refined_report.rmse <= raw_report.rmse * 1.001,
            "refined {refined_report:?} vs raw {raw_report:?}"
        );
    }

    #[test]
    fn procrustes_matches_exact_attack_on_clean_data() {
        let (normalized, released) = rbt_release(200, 3, 22);
        let idx: Vec<usize> = (0..6).collect();
        let ko = normalized.select_rows(&idx).unwrap();
        let kr = released.select_rows(&idx).unwrap();
        let refined = known_sample_attack_procrustes(&ko, &kr, &released).unwrap();
        let report = evaluate(&normalized, &refined.reconstructed, 0.01).unwrap();
        assert!(report.fraction_recovered > 0.999);
    }

    #[test]
    fn noisy_knowledge_still_approximately_recovers() {
        let (normalized, released) = rbt_release(200, 3, 6);
        let idx: Vec<usize> = (0..12).collect();
        let known_orig = {
            let mut m = normalized.select_rows(&idx).unwrap();
            // Attacker's knowledge is imperfect: ±0.01 noise.
            for (k, v) in m.as_mut_slice().iter_mut().enumerate() {
                *v += if k % 2 == 0 { 0.01 } else { -0.01 };
            }
            m
        };
        let known_rel = released.select_rows(&idx).unwrap();
        let out = known_sample_attack(&known_orig, &known_rel, &released).unwrap();
        let report = evaluate(&normalized, &out.reconstructed, 0.1).unwrap();
        assert!(report.fraction_recovered > 0.9, "{report:?}");
    }
}
