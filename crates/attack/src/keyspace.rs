//! Quantifying the paper's brute-force argument (§5.2).
//!
//! The paper lists four secrets an attacker must guess: the attribute
//! pairs, their order, the per-pair thresholds (which shape the ranges),
//! and the real-valued angle per pair. This module counts the discrete part
//! of that keyspace and the work factor of an angle grid — making the
//! "computational work" claim concrete, and also exposing its weakness:
//! the keyspace is only super-exponential in the *attribute* count, which
//! for typical tables (tens of columns) is within reach of the known-sample
//! attacks implemented elsewhere in this crate.

/// Number of perfect matchings of `n` labelled items (`(n−1)!!` for even
/// `n`), saturating at `u128::MAX`.
pub fn perfect_matchings(n: usize) -> u128 {
    if !n.is_multiple_of(2) {
        return 0;
    }
    let mut acc: u128 = 1;
    let mut k = n as u128;
    while k > 1 {
        acc = acc.saturating_mul(k - 1);
        k -= 2;
    }
    acc
}

/// Number of *ordered RBT pairings* of `n` attributes: sequences of
/// `k = ⌈n/2⌉` ordered pairs as the algorithm uses them.
///
/// * Even `n`: matchings × pair orientations (`2^k`) × pair orderings
///   (`k!`).
/// * Odd `n`: the same for the first `n−1` attributes (choosing which
///   attribute is the leftover: `n` ways), times the `n−1` possible
///   already-distorted partners and 2 orientations for the final chained
///   pair.
///
/// Saturates at `u128::MAX`.
pub fn ordered_pairings(n: usize) -> u128 {
    if n < 2 {
        return 0;
    }
    if n.is_multiple_of(2) {
        let k = (n / 2) as u32;
        let m = perfect_matchings(n);
        m.saturating_mul(1u128 << k.min(127))
            .saturating_mul(factorial(n as u128 / 2))
    } else {
        let base = ordered_pairings(n - 1);
        base.saturating_mul(n as u128)
            .saturating_mul((n - 1) as u128)
            .saturating_mul(2)
    }
}

fn factorial(n: u128) -> u128 {
    (1..=n).fold(1u128, |acc, x| acc.saturating_mul(x))
}

/// Work factor of a brute-force attack that also grids each pair's angle at
/// `angle_steps` candidate values: `ordered_pairings(n) × angle_steps^k`.
/// Saturates at `u128::MAX`.
pub fn brute_force_work(n: usize, angle_steps: u64) -> u128 {
    let k = n.div_ceil(2) as u32;
    let mut angles: u128 = 1;
    for _ in 0..k {
        angles = angles.saturating_mul(angle_steps as u128);
    }
    ordered_pairings(n).saturating_mul(angles)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matchings_known_values() {
        assert_eq!(perfect_matchings(2), 1);
        assert_eq!(perfect_matchings(4), 3);
        assert_eq!(perfect_matchings(6), 15);
        assert_eq!(perfect_matchings(8), 105);
        assert_eq!(perfect_matchings(3), 0);
    }

    #[test]
    fn ordered_pairings_small_cases() {
        // n=2: one matching {0,1}, 2 orientations, 1 ordering.
        assert_eq!(ordered_pairings(2), 2);
        // n=4: 3 matchings × 2² orientations × 2! orderings = 24.
        assert_eq!(ordered_pairings(4), 24);
        // n=3: even part (n=2) = 2, × 3 leftover choices × 2 partners × 2
        // orientations = 24.
        assert_eq!(ordered_pairings(3), 24);
        assert_eq!(ordered_pairings(1), 0);
        assert_eq!(ordered_pairings(0), 0);
    }

    #[test]
    fn keyspace_grows_superexponentially() {
        let mut prev = 1u128;
        for n in [4usize, 6, 8, 10, 12] {
            let cur = ordered_pairings(n);
            assert!(cur > prev * 8, "n={n}: {cur} vs {prev}");
            prev = cur;
        }
    }

    #[test]
    fn brute_force_work_scales_with_angle_grid() {
        let coarse = brute_force_work(4, 360);
        let fine = brute_force_work(4, 3600);
        assert!(fine > coarse * 99);
        // 2 pairs → factor (3600/360)² = 100.
        assert_eq!(fine / coarse, 100);
    }

    #[test]
    fn saturation_does_not_panic() {
        let huge = brute_force_work(60, 1_000_000);
        assert_eq!(huge, u128::MAX);
    }
}
