//! Kernel micro-benchmarks: the pre-PR scalar hot paths against the
//! performance substrate (unrolled kernels, fused column sweeps, blocked
//! matmul, pooled parallelism), with a JSON trail.
//!
//! Unlike the criterion benches, this is a custom harness (`harness =
//! false` + plain `main`) because it has two extra jobs:
//!
//! 1. keep *replicas of the pre-optimisation scalar implementations* around
//!    so every speedup is measured against the real before-state, not a
//!    strawman, and
//! 2. emit `BENCH_kernels.json` at the workspace root so the perf
//!    trajectory of the repo is recorded, run over run.
//!
//! Run the full suite:   `cargo bench -p rbt-bench --bench kernels`
//! CI smoke (seconds):   `cargo bench -p rbt-bench --bench kernels -- --quick-smoke`

use rand::SeedableRng;
use rbt_api::{Method, Release};
use rbt_bench::{workload, WorkloadSpec};
use rbt_core::key::{RotationStep, TransformationKey};
use rbt_core::{DriftBounds, ReleaseSession};
use rbt_data::{Dataset, Normalization};
use rbt_linalg::dissimilarity::DissimilarityMatrix;
use rbt_linalg::distance::Metric;
use rbt_linalg::matrix::rotate_pair_in_rows;
use rbt_linalg::pool::{self, even_chunks, Pool};
use rbt_linalg::rotation::givens;
use rbt_linalg::{kernels, Matrix, Rotation2};
use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Counting wrapper around the system allocator so the streaming section
/// can *pin* steady-state allocation behaviour: with reused output
/// buffers, per-batch allocation must stay negligible next to the batch
/// payload itself. Only the two counters are touched on the hot path.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Best (minimum) seconds per iteration for each of the competing
/// implementations, measured in **alternating rounds**: scalar, fast,
/// (parallel), scalar, fast, … The minimum filters scheduler and allocator
/// noise, and the alternation keeps a clock-frequency or steal-time drift
/// mid-run from biasing one side of the ratio — which it visibly does on
/// small shared VMs if each side is measured in one contiguous phase.
fn time_competitors(budget_s: f64, rounds: usize, fs: &mut [&mut dyn FnMut()]) -> Vec<f64> {
    for f in fs.iter_mut() {
        f(); // warm-up
    }
    let mut best = vec![f64::INFINITY; fs.len()];
    let round_budget = budget_s / rounds as f64;
    for _ in 0..rounds {
        for (slot, f) in best.iter_mut().zip(fs.iter_mut()) {
            let round = Instant::now();
            loop {
                let t = Instant::now();
                f();
                *slot = slot.min(t.elapsed().as_secs_f64());
                if round.elapsed().as_secs_f64() >= round_budget {
                    break;
                }
            }
        }
    }
    best
}

struct Entry {
    name: &'static str,
    params: String,
    scalar_s: f64,
    fast_s: f64,
    parallel_s: Option<f64>,
}

impl Entry {
    fn speedup(&self) -> f64 {
        self.scalar_s / self.fast_s
    }
    fn speedup_parallel(&self) -> Option<f64> {
        self.parallel_s.map(|p| self.scalar_s / p)
    }
}

/// One point of the end-to-end streaming scaling record: sustained
/// rows/sec through fit → transform (→ invert) at row count `m`, with the
/// session pinned to `threads` pool threads.
struct StreamEntry {
    m: usize,
    cols: usize,
    batch_rows: usize,
    threads: usize,
    fit_seconds: f64,
    baseline_rows_per_sec: f64,
    transform_rows_per_sec: f64,
    roundtrip_rows_per_sec: f64,
    allocs_per_batch: f64,
    alloc_bytes_per_batch: f64,
    memcpy_gbps: f64,
}

impl StreamEntry {
    fn speedup(&self) -> f64 {
        self.transform_rows_per_sec / self.baseline_rows_per_sec
    }
    /// Approximate memory traffic of the transform pass: copy-in (r+w),
    /// normalize in place (r+w), drift scan (r), fused sweep (r+w) — seven
    /// batch-sized streams per batch.
    fn transform_gbps(&self) -> f64 {
        self.transform_rows_per_sec * (self.cols * 8) as f64 * 7.0 / 1e9
    }
}

/// Sustained throughput: repeat `pass` (one sweep over all `total_rows`)
/// until the budget elapses, after one warm-up, and report rows/sec over
/// the whole timed span (throughput, unlike the min-latency
/// `time_competitors`, is what a streaming deployment experiences).
fn sustained_rows_per_sec(budget_s: f64, total_rows: usize, pass: &mut dyn FnMut()) -> f64 {
    pass(); // warm-up: fault in buffers, settle allocator reuse
    let t = Instant::now();
    let mut rows = 0usize;
    loop {
        pass();
        rows += total_rows;
        if t.elapsed().as_secs_f64() >= budget_s {
            break;
        }
    }
    rows as f64 / t.elapsed().as_secs_f64()
}

// ---- pre-PR scalar replicas ------------------------------------------------

/// `DissimilarityMatrix::from_matrix` as it was before the kernel rewrite:
/// one scalar `Metric::distance` call per pair.
fn scalar_dissimilarity(data: &Matrix, metric: Metric) -> Vec<f64> {
    let n = data.rows();
    let mut condensed = Vec::with_capacity(n.saturating_sub(1) * n / 2);
    for i in 0..n {
        let ri = data.row(i);
        for j in (i + 1)..n {
            condensed.push(metric.distance(ri, data.row(j)));
        }
    }
    condensed
}

/// `TransformationKey::apply` as it was before the fused column sweep:
/// extract both columns, rotate the buffers, write both columns back.
fn scalar_apply(key: &TransformationKey, m: &Matrix) -> Matrix {
    let mut out = m.clone();
    let mut xs = Vec::with_capacity(out.rows());
    let mut ys = Vec::with_capacity(out.rows());
    for step in key.steps() {
        out.column_into(step.i, &mut xs);
        out.column_into(step.j, &mut ys);
        Rotation2::from_degrees(step.theta_degrees)
            .apply_columns(&mut xs, &mut ys)
            .unwrap();
        out.set_column(step.i, &xs).unwrap();
        out.set_column(step.j, &ys).unwrap();
    }
    out
}

/// `TransformationKey::composite_matrix` as it was before the row-pair
/// sweep: one full Givens matmul per step.
fn scalar_composite(key: &TransformationKey) -> Matrix {
    let n = key.n_attributes();
    let mut acc = Matrix::identity(n);
    for step in key.steps() {
        let g = givens(
            n,
            step.i,
            step.j,
            &Rotation2::from_degrees(step.theta_degrees),
        )
        .unwrap();
        acc = g.matmul_naive(&acc).unwrap();
    }
    acc
}

/// The k-means assignment loop as it was before the blocked kernel: one
/// scalar `Metric::distance` call per (point, centroid) pair.
fn scalar_assign(data: &Matrix, centroids: &Matrix, labels: &mut [usize]) {
    for (i, point) in data.row_iter().enumerate() {
        let mut best = (0usize, f64::INFINITY);
        for (j, c) in centroids.row_iter().enumerate() {
            let d2 = Metric::SquaredEuclidean.distance(point, c);
            if d2 < best.1 {
                best = (j, d2);
            }
        }
        labels[i] = best.0;
    }
}

// ---- harness ---------------------------------------------------------------

/// A synthetic `p`-step key over `n` attributes (pairs wrap around so every
/// attribute is touched at least twice, like sequential pairing on real
/// runs).
fn synthetic_key(n: usize, p: usize) -> TransformationKey {
    let steps: Vec<RotationStep> = (0..p)
        .map(|t| {
            let i = (2 * t) % n;
            let j = (2 * t + 1) % n;
            let (i, j) = if i == j { (i, (j + 1) % n) } else { (i, j) };
            RotationStep {
                i,
                j,
                theta_degrees: 17.0 + 7.3 * t as f64,
                achieved_var1: 0.0,
                achieved_var2: 0.0,
            }
        })
        .collect();
    TransformationKey::new(steps, n).unwrap()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick-smoke");
    let budget = if quick { 0.6 } else { 3.0 };
    let rounds = if quick { 3 } else { 6 };
    let threads = pool::default_threads();
    let mut entries: Vec<Entry> = Vec::new();

    // 1. Dissimilarity construction, m >= 2000 (the Eq. 5/6 hot path).
    {
        let (m, cols) = (2000usize, 64usize);
        let w = workload(WorkloadSpec {
            rows: m,
            cols,
            k: 4,
            seed: 977,
        });
        let best = time_competitors(
            budget,
            rounds,
            &mut [
                &mut || {
                    black_box(scalar_dissimilarity(&w.matrix, Metric::Euclidean));
                },
                &mut || {
                    black_box(DissimilarityMatrix::from_matrix(
                        &w.matrix,
                        Metric::Euclidean,
                    ));
                },
                &mut || {
                    black_box(DissimilarityMatrix::from_matrix_parallel(
                        &w.matrix,
                        Metric::Euclidean,
                        threads,
                    ));
                },
            ],
        );
        let (scalar_s, fast_s, parallel_s) = (best[0], best[1], best[2]);
        // Sanity: the kernel path reproduces the scalar distances.
        let reference = scalar_dissimilarity(&w.matrix, Metric::Euclidean);
        let fast = DissimilarityMatrix::from_matrix(&w.matrix, Metric::Euclidean);
        let max_err = reference
            .iter()
            .zip(fast.condensed())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_err < 1e-9, "kernel drifted from scalar: {max_err}");
        entries.push(Entry {
            name: "dissimilarity_build",
            params: format!("{{\"m\": {m}, \"cols\": {cols}}}"),
            scalar_s,
            fast_s,
            parallel_s: Some(parallel_s),
        });
    }

    // 2. Composite-key application, n >= 32 attributes (Eq. 1 lifted to n-D).
    {
        let (rows, n, p) = (4096usize, 32usize, 32usize);
        let w = workload(WorkloadSpec {
            rows,
            cols: n,
            k: 4,
            seed: 978,
        });
        let key = synthetic_key(n, p);
        let best = time_competitors(
            budget,
            rounds,
            &mut [
                &mut || {
                    black_box(scalar_apply(&key, &w.matrix));
                },
                &mut || {
                    black_box(key.apply(&w.matrix).unwrap());
                },
            ],
        );
        let (scalar_s, fast_s) = (best[0], best[1]);
        let reference = scalar_apply(&key, &w.matrix);
        let fast = key.apply(&w.matrix).unwrap();
        assert!(
            reference.approx_eq(&fast, 0.0),
            "fused apply must be bit-identical to the scalar path"
        );
        entries.push(Entry {
            name: "key_apply",
            params: format!("{{\"rows\": {rows}, \"n_attributes\": {n}, \"steps\": {p}}}"),
            scalar_s,
            fast_s,
            parallel_s: None,
        });
    }

    // 3. Composite-matrix accumulation (Givens product).
    {
        let (n, p) = (64usize, 64usize);
        let key = synthetic_key(n, p);
        let best = time_competitors(
            budget,
            rounds,
            &mut [
                &mut || {
                    black_box(scalar_composite(&key));
                },
                &mut || {
                    black_box(key.composite_matrix().unwrap());
                },
            ],
        );
        let (scalar_s, fast_s) = (best[0], best[1]);
        assert!(scalar_composite(&key).approx_eq(&key.composite_matrix().unwrap(), 1e-12));
        entries.push(Entry {
            name: "composite_matrix",
            params: format!("{{\"n_attributes\": {n}, \"steps\": {p}}}"),
            scalar_s,
            fast_s,
            parallel_s: None,
        });
    }

    // 4. Blocked vs naive matmul.
    {
        let n = if quick { 768usize } else { 1024 };
        let a =
            Matrix::from_vec(n, n, (0..n * n).map(|t| (t as f64 * 0.61).sin()).collect()).unwrap();
        let b =
            Matrix::from_vec(n, n, (0..n * n).map(|t| (t as f64 * 0.37).cos()).collect()).unwrap();
        let best = time_competitors(
            budget,
            rounds,
            &mut [
                &mut || {
                    black_box(a.matmul_naive(&b).unwrap());
                },
                &mut || {
                    black_box(a.matmul(&b).unwrap());
                },
            ],
        );
        let (scalar_s, fast_s) = (best[0], best[1]);
        assert!(a
            .matmul(&b)
            .unwrap()
            .approx_eq(&a.matmul_naive(&b).unwrap(), 0.0));
        entries.push(Entry {
            name: "matmul",
            params: format!("{{\"n\": {n}}}"),
            scalar_s,
            fast_s,
            parallel_s: None,
        });
    }

    // 5. K-means assignment sweep (the Corollary 1 workhorse).
    {
        let (m, cols, k) = (2000usize, 16usize, 16usize);
        let w = workload(WorkloadSpec {
            rows: m,
            cols,
            k,
            seed: 979,
        });
        let centroids = w.matrix.select_rows(&(0..k).collect::<Vec<_>>()).unwrap();
        let mut labels = vec![0usize; m];
        let mut fast_labels = vec![0usize; m];
        let mut par_labels = vec![0usize; m];
        let pool = Pool::new(threads);
        let bounds = even_chunks(m, threads);
        let best = time_competitors(
            budget,
            rounds,
            &mut [
                &mut || {
                    scalar_assign(&w.matrix, &centroids, &mut labels);
                    black_box(&labels);
                },
                &mut || {
                    for (i, slot) in fast_labels.iter_mut().enumerate() {
                        *slot = kernels::nearest_row_squared(
                            w.matrix.row(i),
                            centroids.as_slice(),
                            cols,
                            k,
                        )
                        .0;
                    }
                    black_box(&fast_labels);
                },
                &mut || {
                    pool.for_each_chunk_mut(&mut par_labels, &bounds, |_, start, chunk| {
                        for (t, slot) in chunk.iter_mut().enumerate() {
                            *slot = kernels::nearest_row_squared(
                                w.matrix.row(start + t),
                                centroids.as_slice(),
                                cols,
                                k,
                            )
                            .0;
                        }
                    });
                    black_box(&par_labels);
                },
            ],
        );
        let (scalar_s, fast_s, parallel_s) = (best[0], best[1], best[2]);
        scalar_assign(&w.matrix, &centroids, &mut labels);
        assert_eq!(labels, fast_labels, "blocked assignment changed labels");
        assert_eq!(labels, par_labels, "parallel assignment changed labels");
        entries.push(Entry {
            name: "kmeans_assign",
            params: format!("{{\"m\": {m}, \"cols\": {cols}, \"k\": {k}}}"),
            scalar_s,
            fast_s,
            parallel_s: Some(parallel_s),
        });
    }

    // 6. Object-safe release dispatch: the same fitted RBT state driven
    //    directly as a concrete `ReleaseSession` vs through the release
    //    API's `Box<dyn FittedTransform>`. The whole point of the trait
    //    layer is that this vtable hop costs nothing against the O(rows ×
    //    (cols + steps)) batch work behind it.
    {
        let (rows, n) = (4096usize, 32usize);
        let w = workload(WorkloadSpec {
            rows,
            cols: n,
            k: 4,
            seed: 980,
        });
        let dataset = rbt_data::Dataset::from_matrix(w.matrix.clone());
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut via_trait = Release::of(&dataset)
            .with_method(Method::Rbt)
            .fit(&mut rng)
            .expect("default thresholds are feasible on this workload");
        let mut direct = via_trait
            .session()
            .expect("rbt exposes its session")
            .clone();
        let best = time_competitors(
            budget,
            rounds,
            &mut [
                &mut || {
                    black_box(direct.transform_batch(&dataset).unwrap());
                },
                &mut || {
                    black_box(via_trait.transform_batch(&dataset).unwrap());
                },
            ],
        );
        let (scalar_s, fast_s) = (best[0], best[1]);
        // Sanity: both paths release identical bytes.
        let a = direct.transform_batch(&dataset).unwrap();
        let b = via_trait.transform_batch(&dataset).unwrap();
        assert!(
            a.released.matrix().approx_eq(b.matrix(), 0.0),
            "trait dispatch changed the release"
        );
        entries.push(Entry {
            name: "release_dispatch",
            params: format!("{{\"rows\": {rows}, \"n_attributes\": {n}}}"),
            scalar_s,
            fast_s,
            parallel_s: None,
        });
    }

    // 7. End-to-end streaming at scale: fit on a bounded subsample, then
    //    stream the full row count through transform (and invert) in
    //    8192-row batches with reused output buffers — the shape a
    //    long-running release deployment actually has. The baseline is a
    //    replica of the pre-zero-copy batch path: clone the batch, then
    //    one whole-chunk pass per rotation step.
    let mut streaming: Vec<StreamEntry> = Vec::new();
    {
        const STREAM_COLS: usize = 16;
        const BATCH_ROWS: usize = 8192;
        let sizes: &[usize] = if quick {
            &[20_000]
        } else {
            &[100_000, 1_000_000]
        };
        let thread_sweep: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4] };
        for &m in sizes {
            let w = workload(WorkloadSpec {
                rows: m,
                cols: STREAM_COLS,
                k: 4,
                seed: 981,
            });

            // Fit: normalizer + drift bounds from the first shipment only
            // (the full stream is never resident at fit time), plus the
            // synthetic rotation key.
            let fit_rows = m.min(20_000);
            let t_fit = Instant::now();
            let sub = w
                .matrix
                .select_rows(&(0..fit_rows).collect::<Vec<_>>())
                .unwrap();
            let (normalizer, normalized) =
                Normalization::zscore_paper().fit_transform(&sub).unwrap();
            let bounds = DriftBounds::from_normalized(&normalized).unwrap();
            let key = synthetic_key(STREAM_COLS, STREAM_COLS);
            let session0 = ReleaseSession::new(key.clone(), normalizer.clone())
                .unwrap()
                .with_drift_bounds(bounds.clone())
                .unwrap();
            let fit_seconds = t_fit.elapsed().as_secs_f64();
            drop((sub, normalized));

            // Pre-split the stream into batch datasets outside the timed
            // region — arrival, not batching, is what we model.
            let batches: Vec<Dataset> = (0..m)
                .step_by(BATCH_ROWS)
                .map(|start| {
                    let rows: Vec<usize> = (start..(start + BATCH_ROWS).min(m)).collect();
                    Dataset::from_matrix(w.matrix.select_rows(&rows).unwrap())
                })
                .collect();

            // Straight memcpy over the same footprint: the hard ceiling
            // for any one-pass row transform on this host.
            let memcpy_gbps = {
                let src = w.matrix.as_slice();
                let mut dst = vec![0.0f64; src.len()];
                let mut best = f64::INFINITY;
                for _ in 0..3 {
                    let t = Instant::now();
                    dst.copy_from_slice(src);
                    best = best.min(t.elapsed().as_secs_f64());
                }
                black_box(&dst);
                // read + write
                (src.len() * 8) as f64 * 2.0 / best / 1e9
            };

            // Pre-zero-copy baseline replica (serial, like PR-6's
            // single-allocation path with per-step whole-chunk sweeps).
            let fwd = key.forward_sweep();
            let mut baseline_pass = || {
                for b in &batches {
                    let mut out = b.matrix().clone();
                    normalizer
                        .transform_rows_in_place(out.as_mut_slice())
                        .unwrap();
                    let oor = out
                        .as_slice()
                        .chunks_exact(STREAM_COLS)
                        .filter(|row| !bounds.row_in_range(row))
                        .count();
                    black_box(oor);
                    for &(i, j, c, s) in &fwd {
                        rotate_pair_in_rows(out.as_mut_slice(), STREAM_COLS, i, j, c, s);
                    }
                    black_box(out.as_slice().as_ptr());
                }
            };
            let baseline_rows_per_sec = sustained_rows_per_sec(budget, m, &mut baseline_pass);

            for &threads in thread_sweep {
                let mut session = session0.clone().with_threads(threads);

                // Sanity: the zero-copy path is bitwise the baseline.
                {
                    let mut out = Matrix::zeros(0, 0);
                    session.transform_batch_into(&batches[0], &mut out).unwrap();
                    let mut reference = batches[0].matrix().clone();
                    normalizer
                        .transform_rows_in_place(reference.as_mut_slice())
                        .unwrap();
                    for &(i, j, c, s) in &fwd {
                        rotate_pair_in_rows(reference.as_mut_slice(), STREAM_COLS, i, j, c, s);
                    }
                    assert!(
                        out.approx_eq(&reference, 0.0),
                        "zero-copy transform drifted from the cloning path"
                    );
                }

                let mut out = Matrix::zeros(0, 0);
                let mut session_t = session.clone();
                let mut transform_pass = || {
                    for b in &batches {
                        session_t.transform_batch_into(b, &mut out).unwrap();
                        black_box(out.as_slice().as_ptr());
                    }
                };
                let transform_rows_per_sec = sustained_rows_per_sec(budget, m, &mut transform_pass);

                // Steady-state allocation pin (meaningful once buffers are
                // warm): per batch, the library may allocate only the
                // step/boundary scratch vectors — a fixed few hundred
                // bytes against the ~1 MiB batch payload.
                let (allocs_per_batch, alloc_bytes_per_batch) = {
                    transform_pass();
                    let calls0 = ALLOC_CALLS.load(Ordering::Relaxed);
                    let bytes0 = ALLOC_BYTES.load(Ordering::Relaxed);
                    transform_pass();
                    let calls = (ALLOC_CALLS.load(Ordering::Relaxed) - calls0) as f64
                        / batches.len() as f64;
                    let bytes = (ALLOC_BYTES.load(Ordering::Relaxed) - bytes0) as f64
                        / batches.len() as f64;
                    assert!(
                        bytes < 16_384.0,
                        "steady-state allocation regressed: {bytes:.0} B/batch"
                    );
                    assert!(
                        calls < 32.0,
                        "steady-state allocation regressed: {calls:.1} allocs/batch"
                    );
                    (calls, bytes)
                };

                let mut inv = Matrix::zeros(0, 0);
                let mut session_rt = session.clone();
                let mut roundtrip_pass = || {
                    for b in &batches {
                        session_rt.transform_batch_into(b, &mut out).unwrap();
                        let released =
                            Dataset::from_matrix(std::mem::replace(&mut out, Matrix::zeros(0, 0)));
                        session_rt.invert_batch_into(&released, &mut inv).unwrap();
                        out = released.into_matrix();
                        black_box(inv.as_slice().as_ptr());
                    }
                };
                let roundtrip_rows_per_sec = sustained_rows_per_sec(budget, m, &mut roundtrip_pass);

                streaming.push(StreamEntry {
                    m,
                    cols: STREAM_COLS,
                    batch_rows: BATCH_ROWS,
                    threads,
                    fit_seconds,
                    baseline_rows_per_sec,
                    transform_rows_per_sec,
                    roundtrip_rows_per_sec,
                    allocs_per_batch,
                    alloc_bytes_per_batch,
                    memcpy_gbps,
                });
            }
        }
    }

    // ---- report ------------------------------------------------------------

    println!(
        "\nkernels bench ({} mode, {} thread(s))",
        if quick { "quick-smoke" } else { "full" },
        threads
    );
    println!(
        "{:<20} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "bench", "scalar s", "fast s", "parallel s", "speedup", "par-x"
    );
    for e in &entries {
        println!(
            "{:<20} {:>12.6} {:>12.6} {:>12} {:>8.2}x {:>9}",
            e.name,
            e.scalar_s,
            e.fast_s,
            e.parallel_s.map_or("-".into(), |p| format!("{p:.6}")),
            e.speedup(),
            e.speedup_parallel()
                .map_or("-".into(), |s| format!("{s:.2}x")),
        );
    }

    println!(
        "\nstreaming fit→transform→invert (rows/sec sustained; \
         baseline = pre-zero-copy clone + per-step sweeps)"
    );
    println!(
        "{:>9} {:>8} {:>14} {:>14} {:>14} {:>8} {:>11} {:>10}",
        "m",
        "threads",
        "baseline r/s",
        "transform r/s",
        "roundtrip r/s",
        "speedup",
        "B/batch",
        "~GB/s"
    );
    for e in &streaming {
        println!(
            "{:>9} {:>8} {:>14.0} {:>14.0} {:>14.0} {:>7.2}x {:>11.0} {:>10.2}",
            e.m,
            e.threads,
            e.baseline_rows_per_sec,
            e.transform_rows_per_sec,
            e.roundtrip_rows_per_sec,
            e.speedup(),
            e.alloc_bytes_per_batch,
            e.transform_gbps(),
        );
    }
    if let Some(e) = streaming.first() {
        println!(
            "memcpy ceiling on this host: {:.2} GB/s (r+w); transform traffic ≈ 7 streams/batch",
            e.memcpy_gbps
        );
    }

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"generated_by\": \"cargo bench -p rbt-bench --bench kernels{}\",",
        if quick { " -- --quick-smoke" } else { "" }
    );
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if quick { "quick-smoke" } else { "full" }
    );
    let _ = writeln!(json, "  \"host_threads\": {threads},");
    let _ = writeln!(json, "  \"benches\": [");
    for (idx, e) in entries.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"name\": \"{}\",", e.name);
        let _ = writeln!(json, "      \"params\": {},", e.params);
        let _ = writeln!(json, "      \"scalar_seconds\": {:.9},", e.scalar_s);
        let _ = writeln!(json, "      \"fast_seconds\": {:.9},", e.fast_s);
        if let Some(p) = e.parallel_s {
            let _ = writeln!(json, "      \"parallel_seconds\": {p:.9},");
            let _ = writeln!(
                json,
                "      \"speedup_parallel_vs_scalar\": {:.3},",
                e.speedup_parallel().unwrap()
            );
        }
        let _ = writeln!(json, "      \"speedup_fast_vs_scalar\": {:.3}", e.speedup());
        let _ = writeln!(
            json,
            "    }}{}",
            if idx + 1 < entries.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"streaming\": [");
    for (idx, e) in streaming.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(
            json,
            "      \"params\": {{\"m\": {}, \"cols\": {}, \"batch_rows\": {}, \"threads\": {}}},",
            e.m, e.cols, e.batch_rows, e.threads
        );
        let _ = writeln!(json, "      \"fit_seconds\": {:.6},", e.fit_seconds);
        let _ = writeln!(
            json,
            "      \"baseline_rows_per_sec\": {:.0},",
            e.baseline_rows_per_sec
        );
        let _ = writeln!(
            json,
            "      \"transform_rows_per_sec\": {:.0},",
            e.transform_rows_per_sec
        );
        let _ = writeln!(
            json,
            "      \"roundtrip_rows_per_sec\": {:.0},",
            e.roundtrip_rows_per_sec
        );
        let _ = writeln!(
            json,
            "      \"speedup_transform_vs_baseline\": {:.3},",
            e.speedup()
        );
        let _ = writeln!(
            json,
            "      \"allocs_per_batch\": {:.1},",
            e.allocs_per_batch
        );
        let _ = writeln!(
            json,
            "      \"alloc_bytes_per_batch\": {:.0},",
            e.alloc_bytes_per_batch
        );
        let _ = writeln!(
            json,
            "      \"transform_traffic_gbps\": {:.3},",
            e.transform_gbps()
        );
        let _ = writeln!(json, "      \"memcpy_gbps\": {:.3}", e.memcpy_gbps);
        let _ = writeln!(
            json,
            "    }}{}",
            if idx + 1 < streaming.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");

    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    std::fs::write(out_path, &json).expect("write BENCH_kernels.json");
    println!("\nwrote {out_path}");
}
