//! Kernel micro-benchmarks: the pre-PR scalar hot paths against the
//! performance substrate (unrolled kernels, fused column sweeps, blocked
//! matmul, pooled parallelism), with a JSON trail.
//!
//! Unlike the criterion benches, this is a custom harness (`harness =
//! false` + plain `main`) because it has two extra jobs:
//!
//! 1. keep *replicas of the pre-optimisation scalar implementations* around
//!    so every speedup is measured against the real before-state, not a
//!    strawman, and
//! 2. emit `BENCH_kernels.json` at the workspace root so the perf
//!    trajectory of the repo is recorded, run over run.
//!
//! Run the full suite:   `cargo bench -p rbt-bench --bench kernels`
//! CI smoke (seconds):   `cargo bench -p rbt-bench --bench kernels -- --quick-smoke`

use rand::SeedableRng;
use rbt_api::{Method, Release};
use rbt_bench::{workload, WorkloadSpec};
use rbt_core::key::{RotationStep, TransformationKey};
use rbt_linalg::dissimilarity::DissimilarityMatrix;
use rbt_linalg::distance::Metric;
use rbt_linalg::pool::{self, even_chunks, Pool};
use rbt_linalg::rotation::givens;
use rbt_linalg::{kernels, Matrix, Rotation2};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Best (minimum) seconds per iteration for each of the competing
/// implementations, measured in **alternating rounds**: scalar, fast,
/// (parallel), scalar, fast, … The minimum filters scheduler and allocator
/// noise, and the alternation keeps a clock-frequency or steal-time drift
/// mid-run from biasing one side of the ratio — which it visibly does on
/// small shared VMs if each side is measured in one contiguous phase.
fn time_competitors(budget_s: f64, rounds: usize, fs: &mut [&mut dyn FnMut()]) -> Vec<f64> {
    for f in fs.iter_mut() {
        f(); // warm-up
    }
    let mut best = vec![f64::INFINITY; fs.len()];
    let round_budget = budget_s / rounds as f64;
    for _ in 0..rounds {
        for (slot, f) in best.iter_mut().zip(fs.iter_mut()) {
            let round = Instant::now();
            loop {
                let t = Instant::now();
                f();
                *slot = slot.min(t.elapsed().as_secs_f64());
                if round.elapsed().as_secs_f64() >= round_budget {
                    break;
                }
            }
        }
    }
    best
}

struct Entry {
    name: &'static str,
    params: String,
    scalar_s: f64,
    fast_s: f64,
    parallel_s: Option<f64>,
}

impl Entry {
    fn speedup(&self) -> f64 {
        self.scalar_s / self.fast_s
    }
    fn speedup_parallel(&self) -> Option<f64> {
        self.parallel_s.map(|p| self.scalar_s / p)
    }
}

// ---- pre-PR scalar replicas ------------------------------------------------

/// `DissimilarityMatrix::from_matrix` as it was before the kernel rewrite:
/// one scalar `Metric::distance` call per pair.
fn scalar_dissimilarity(data: &Matrix, metric: Metric) -> Vec<f64> {
    let n = data.rows();
    let mut condensed = Vec::with_capacity(n.saturating_sub(1) * n / 2);
    for i in 0..n {
        let ri = data.row(i);
        for j in (i + 1)..n {
            condensed.push(metric.distance(ri, data.row(j)));
        }
    }
    condensed
}

/// `TransformationKey::apply` as it was before the fused column sweep:
/// extract both columns, rotate the buffers, write both columns back.
fn scalar_apply(key: &TransformationKey, m: &Matrix) -> Matrix {
    let mut out = m.clone();
    let mut xs = Vec::with_capacity(out.rows());
    let mut ys = Vec::with_capacity(out.rows());
    for step in key.steps() {
        out.column_into(step.i, &mut xs);
        out.column_into(step.j, &mut ys);
        Rotation2::from_degrees(step.theta_degrees)
            .apply_columns(&mut xs, &mut ys)
            .unwrap();
        out.set_column(step.i, &xs).unwrap();
        out.set_column(step.j, &ys).unwrap();
    }
    out
}

/// `TransformationKey::composite_matrix` as it was before the row-pair
/// sweep: one full Givens matmul per step.
fn scalar_composite(key: &TransformationKey) -> Matrix {
    let n = key.n_attributes();
    let mut acc = Matrix::identity(n);
    for step in key.steps() {
        let g = givens(
            n,
            step.i,
            step.j,
            &Rotation2::from_degrees(step.theta_degrees),
        )
        .unwrap();
        acc = g.matmul_naive(&acc).unwrap();
    }
    acc
}

/// The k-means assignment loop as it was before the blocked kernel: one
/// scalar `Metric::distance` call per (point, centroid) pair.
fn scalar_assign(data: &Matrix, centroids: &Matrix, labels: &mut [usize]) {
    for (i, point) in data.row_iter().enumerate() {
        let mut best = (0usize, f64::INFINITY);
        for (j, c) in centroids.row_iter().enumerate() {
            let d2 = Metric::SquaredEuclidean.distance(point, c);
            if d2 < best.1 {
                best = (j, d2);
            }
        }
        labels[i] = best.0;
    }
}

// ---- harness ---------------------------------------------------------------

/// A synthetic `p`-step key over `n` attributes (pairs wrap around so every
/// attribute is touched at least twice, like sequential pairing on real
/// runs).
fn synthetic_key(n: usize, p: usize) -> TransformationKey {
    let steps: Vec<RotationStep> = (0..p)
        .map(|t| {
            let i = (2 * t) % n;
            let j = (2 * t + 1) % n;
            let (i, j) = if i == j { (i, (j + 1) % n) } else { (i, j) };
            RotationStep {
                i,
                j,
                theta_degrees: 17.0 + 7.3 * t as f64,
                achieved_var1: 0.0,
                achieved_var2: 0.0,
            }
        })
        .collect();
    TransformationKey::new(steps, n).unwrap()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick-smoke");
    let budget = if quick { 0.6 } else { 3.0 };
    let rounds = if quick { 3 } else { 6 };
    let threads = pool::default_threads();
    let mut entries: Vec<Entry> = Vec::new();

    // 1. Dissimilarity construction, m >= 2000 (the Eq. 5/6 hot path).
    {
        let (m, cols) = (2000usize, 64usize);
        let w = workload(WorkloadSpec {
            rows: m,
            cols,
            k: 4,
            seed: 977,
        });
        let best = time_competitors(
            budget,
            rounds,
            &mut [
                &mut || {
                    black_box(scalar_dissimilarity(&w.matrix, Metric::Euclidean));
                },
                &mut || {
                    black_box(DissimilarityMatrix::from_matrix(
                        &w.matrix,
                        Metric::Euclidean,
                    ));
                },
                &mut || {
                    black_box(DissimilarityMatrix::from_matrix_parallel(
                        &w.matrix,
                        Metric::Euclidean,
                        threads,
                    ));
                },
            ],
        );
        let (scalar_s, fast_s, parallel_s) = (best[0], best[1], best[2]);
        // Sanity: the kernel path reproduces the scalar distances.
        let reference = scalar_dissimilarity(&w.matrix, Metric::Euclidean);
        let fast = DissimilarityMatrix::from_matrix(&w.matrix, Metric::Euclidean);
        let max_err = reference
            .iter()
            .zip(fast.condensed())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_err < 1e-9, "kernel drifted from scalar: {max_err}");
        entries.push(Entry {
            name: "dissimilarity_build",
            params: format!("{{\"m\": {m}, \"cols\": {cols}}}"),
            scalar_s,
            fast_s,
            parallel_s: Some(parallel_s),
        });
    }

    // 2. Composite-key application, n >= 32 attributes (Eq. 1 lifted to n-D).
    {
        let (rows, n, p) = (4096usize, 32usize, 32usize);
        let w = workload(WorkloadSpec {
            rows,
            cols: n,
            k: 4,
            seed: 978,
        });
        let key = synthetic_key(n, p);
        let best = time_competitors(
            budget,
            rounds,
            &mut [
                &mut || {
                    black_box(scalar_apply(&key, &w.matrix));
                },
                &mut || {
                    black_box(key.apply(&w.matrix).unwrap());
                },
            ],
        );
        let (scalar_s, fast_s) = (best[0], best[1]);
        let reference = scalar_apply(&key, &w.matrix);
        let fast = key.apply(&w.matrix).unwrap();
        assert!(
            reference.approx_eq(&fast, 0.0),
            "fused apply must be bit-identical to the scalar path"
        );
        entries.push(Entry {
            name: "key_apply",
            params: format!("{{\"rows\": {rows}, \"n_attributes\": {n}, \"steps\": {p}}}"),
            scalar_s,
            fast_s,
            parallel_s: None,
        });
    }

    // 3. Composite-matrix accumulation (Givens product).
    {
        let (n, p) = (64usize, 64usize);
        let key = synthetic_key(n, p);
        let best = time_competitors(
            budget,
            rounds,
            &mut [
                &mut || {
                    black_box(scalar_composite(&key));
                },
                &mut || {
                    black_box(key.composite_matrix().unwrap());
                },
            ],
        );
        let (scalar_s, fast_s) = (best[0], best[1]);
        assert!(scalar_composite(&key).approx_eq(&key.composite_matrix().unwrap(), 1e-12));
        entries.push(Entry {
            name: "composite_matrix",
            params: format!("{{\"n_attributes\": {n}, \"steps\": {p}}}"),
            scalar_s,
            fast_s,
            parallel_s: None,
        });
    }

    // 4. Blocked vs naive matmul.
    {
        let n = if quick { 768usize } else { 1024 };
        let a =
            Matrix::from_vec(n, n, (0..n * n).map(|t| (t as f64 * 0.61).sin()).collect()).unwrap();
        let b =
            Matrix::from_vec(n, n, (0..n * n).map(|t| (t as f64 * 0.37).cos()).collect()).unwrap();
        let best = time_competitors(
            budget,
            rounds,
            &mut [
                &mut || {
                    black_box(a.matmul_naive(&b).unwrap());
                },
                &mut || {
                    black_box(a.matmul(&b).unwrap());
                },
            ],
        );
        let (scalar_s, fast_s) = (best[0], best[1]);
        assert!(a
            .matmul(&b)
            .unwrap()
            .approx_eq(&a.matmul_naive(&b).unwrap(), 0.0));
        entries.push(Entry {
            name: "matmul",
            params: format!("{{\"n\": {n}}}"),
            scalar_s,
            fast_s,
            parallel_s: None,
        });
    }

    // 5. K-means assignment sweep (the Corollary 1 workhorse).
    {
        let (m, cols, k) = (2000usize, 16usize, 16usize);
        let w = workload(WorkloadSpec {
            rows: m,
            cols,
            k,
            seed: 979,
        });
        let centroids = w.matrix.select_rows(&(0..k).collect::<Vec<_>>()).unwrap();
        let mut labels = vec![0usize; m];
        let mut fast_labels = vec![0usize; m];
        let mut par_labels = vec![0usize; m];
        let pool = Pool::new(threads);
        let bounds = even_chunks(m, threads);
        let best = time_competitors(
            budget,
            rounds,
            &mut [
                &mut || {
                    scalar_assign(&w.matrix, &centroids, &mut labels);
                    black_box(&labels);
                },
                &mut || {
                    for (i, slot) in fast_labels.iter_mut().enumerate() {
                        *slot = kernels::nearest_row_squared(
                            w.matrix.row(i),
                            centroids.as_slice(),
                            cols,
                            k,
                        )
                        .0;
                    }
                    black_box(&fast_labels);
                },
                &mut || {
                    pool.for_each_chunk_mut(&mut par_labels, &bounds, |_, start, chunk| {
                        for (t, slot) in chunk.iter_mut().enumerate() {
                            *slot = kernels::nearest_row_squared(
                                w.matrix.row(start + t),
                                centroids.as_slice(),
                                cols,
                                k,
                            )
                            .0;
                        }
                    });
                    black_box(&par_labels);
                },
            ],
        );
        let (scalar_s, fast_s, parallel_s) = (best[0], best[1], best[2]);
        scalar_assign(&w.matrix, &centroids, &mut labels);
        assert_eq!(labels, fast_labels, "blocked assignment changed labels");
        assert_eq!(labels, par_labels, "parallel assignment changed labels");
        entries.push(Entry {
            name: "kmeans_assign",
            params: format!("{{\"m\": {m}, \"cols\": {cols}, \"k\": {k}}}"),
            scalar_s,
            fast_s,
            parallel_s: Some(parallel_s),
        });
    }

    // 6. Object-safe release dispatch: the same fitted RBT state driven
    //    directly as a concrete `ReleaseSession` vs through the release
    //    API's `Box<dyn FittedTransform>`. The whole point of the trait
    //    layer is that this vtable hop costs nothing against the O(rows ×
    //    (cols + steps)) batch work behind it.
    {
        let (rows, n) = (4096usize, 32usize);
        let w = workload(WorkloadSpec {
            rows,
            cols: n,
            k: 4,
            seed: 980,
        });
        let dataset = rbt_data::Dataset::from_matrix(w.matrix.clone());
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut via_trait = Release::of(&dataset)
            .with_method(Method::Rbt)
            .fit(&mut rng)
            .expect("default thresholds are feasible on this workload");
        let mut direct = via_trait
            .session()
            .expect("rbt exposes its session")
            .clone();
        let best = time_competitors(
            budget,
            rounds,
            &mut [
                &mut || {
                    black_box(direct.transform_batch(&dataset).unwrap());
                },
                &mut || {
                    black_box(via_trait.transform_batch(&dataset).unwrap());
                },
            ],
        );
        let (scalar_s, fast_s) = (best[0], best[1]);
        // Sanity: both paths release identical bytes.
        let a = direct.transform_batch(&dataset).unwrap();
        let b = via_trait.transform_batch(&dataset).unwrap();
        assert!(
            a.released.matrix().approx_eq(b.matrix(), 0.0),
            "trait dispatch changed the release"
        );
        entries.push(Entry {
            name: "release_dispatch",
            params: format!("{{\"rows\": {rows}, \"n_attributes\": {n}}}"),
            scalar_s,
            fast_s,
            parallel_s: None,
        });
    }

    // ---- report ------------------------------------------------------------

    println!(
        "\nkernels bench ({} mode, {} thread(s))",
        if quick { "quick-smoke" } else { "full" },
        threads
    );
    println!(
        "{:<20} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "bench", "scalar s", "fast s", "parallel s", "speedup", "par-x"
    );
    for e in &entries {
        println!(
            "{:<20} {:>12.6} {:>12.6} {:>12} {:>8.2}x {:>9}",
            e.name,
            e.scalar_s,
            e.fast_s,
            e.parallel_s.map_or("-".into(), |p| format!("{p:.6}")),
            e.speedup(),
            e.speedup_parallel()
                .map_or("-".into(), |s| format!("{s:.2}x")),
        );
    }

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"generated_by\": \"cargo bench -p rbt-bench --bench kernels{}\",",
        if quick { " -- --quick-smoke" } else { "" }
    );
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if quick { "quick-smoke" } else { "full" }
    );
    let _ = writeln!(json, "  \"host_threads\": {threads},");
    let _ = writeln!(json, "  \"benches\": [");
    for (idx, e) in entries.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"name\": \"{}\",", e.name);
        let _ = writeln!(json, "      \"params\": {},", e.params);
        let _ = writeln!(json, "      \"scalar_seconds\": {:.9},", e.scalar_s);
        let _ = writeln!(json, "      \"fast_seconds\": {:.9},", e.fast_s);
        if let Some(p) = e.parallel_s {
            let _ = writeln!(json, "      \"parallel_seconds\": {p:.9},");
            let _ = writeln!(
                json,
                "      \"speedup_parallel_vs_scalar\": {:.3},",
                e.speedup_parallel().unwrap()
            );
        }
        let _ = writeln!(json, "      \"speedup_fast_vs_scalar\": {:.3}", e.speedup());
        let _ = writeln!(
            json,
            "    }}{}",
            if idx + 1 < entries.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");

    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    std::fs::write(out_path, &json).expect("write BENCH_kernels.json");
    println!("\nwrote {out_path}");
}
