//! Criterion bench: throughput of every perturbation method on the same
//! workload — RBT's overhead relative to the baselines it replaces.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rbt_bench::{workload, WorkloadSpec};
use rbt_core::{PairwiseSecurityThreshold, RbtConfig, RbtTransformer};
use rbt_data::Normalization;
use rbt_transform::{
    AdditiveNoise, HybridPerturbation, Perturbation, RankSwap, ScalingPerturbation, SimpleRotation,
    TranslationPerturbation,
};
use std::hint::black_box;

fn bench_methods(c: &mut Criterion) {
    let w = workload(WorkloadSpec {
        rows: 10_000,
        cols: 8,
        k: 4,
        seed: 241,
    });
    let (_, normalized) = Normalization::zscore_paper()
        .fit_transform(&w.matrix)
        .unwrap();
    let cells = (normalized.rows() * normalized.cols()) as u64;

    let mut group = c.benchmark_group("perturbation_10000x8");
    group.sample_size(20);
    group.throughput(Throughput::Elements(cells));

    group.bench_function("rbt", |b| {
        let t = RbtTransformer::new(RbtConfig::uniform(
            PairwiseSecurityThreshold::uniform(0.4).unwrap(),
        ));
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            black_box(t.transform(black_box(&normalized), &mut rng).unwrap())
        })
    });
    group.bench_function("translation", |b| {
        let p = TranslationPerturbation::new(2.0);
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            black_box(p.perturb(black_box(&normalized), &mut rng).unwrap())
        })
    });
    group.bench_function("scaling", |b| {
        let p = ScalingPerturbation::new(0.5, 2.0).unwrap();
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            black_box(p.perturb(black_box(&normalized), &mut rng).unwrap())
        })
    });
    group.bench_function("simple_rotation", |b| {
        let p = SimpleRotation::new(45.0);
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            black_box(p.perturb(black_box(&normalized), &mut rng).unwrap())
        })
    });
    group.bench_function("hybrid", |b| {
        let p = HybridPerturbation::default();
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            black_box(p.perturb(black_box(&normalized), &mut rng).unwrap())
        })
    });
    group.bench_function("additive_gaussian", |b| {
        let p = AdditiveNoise::gaussian(0.5).unwrap();
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            black_box(p.perturb(black_box(&normalized), &mut rng).unwrap())
        })
    });
    group.bench_function("rank_swap", |b| {
        let p = RankSwap::new(0.3).unwrap();
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            black_box(p.perturb(black_box(&normalized), &mut rng).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
