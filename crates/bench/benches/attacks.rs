//! Criterion bench: attack costs — what "computational work" (§5.2) the
//! practical attacks actually need.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rbt_attack::brute::brute_force_angle;
use rbt_attack::known_sample::known_sample_attack;
use rbt_attack::pca::{pca_attack, SignResolution};
use rbt_bench::{rbt_release, workload, WorkloadSpec};
use std::hint::black_box;

fn setup() -> (rbt_linalg::Matrix, rbt_linalg::Matrix) {
    let w = workload(WorkloadSpec {
        rows: 1_000,
        cols: 6,
        k: 4,
        seed: 251,
    });
    rbt_release(&w.matrix, 0.3, 253)
}

fn bench_known_sample(c: &mut Criterion) {
    let (normalized, released) = setup();
    let idx: Vec<usize> = (0..12).collect();
    let ko = normalized.select_rows(&idx).unwrap();
    let kr = released.select_rows(&idx).unwrap();
    c.bench_function("known_sample_attack_1000x6", |b| {
        b.iter(|| {
            black_box(known_sample_attack(black_box(&ko), black_box(&kr), &released).unwrap())
        })
    });
}

fn bench_pca(c: &mut Criterion) {
    let (normalized, released) = setup();
    c.bench_function("pca_attack_1000x6", |b| {
        b.iter(|| {
            black_box(
                pca_attack(
                    black_box(&normalized),
                    black_box(&released),
                    SignResolution::Skewness,
                )
                .unwrap(),
            )
        })
    });
}

fn bench_brute_force(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let xs: Vec<f64> = (0..16)
        .map(|_| rbt_data::rng::standard_normal(&mut rng))
        .collect();
    let ys: Vec<f64> = (0..16)
        .map(|_| rbt_data::rng::standard_normal(&mut rng))
        .collect();
    let rot = rbt_linalg::Rotation2::from_degrees(217.3);
    let mut xr = xs.clone();
    let mut yr = ys.clone();
    rot.apply_columns(&mut xr, &mut yr).unwrap();
    c.bench_function("brute_force_angle_16pts", |b| {
        b.iter(|| black_box(brute_force_angle(&xs, &ys, &xr, &yr, 360).unwrap()))
    });
}

criterion_group!(benches, bench_known_sample, bench_pca, bench_brute_force);
criterion_main!(benches);
