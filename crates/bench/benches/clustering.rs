//! Criterion bench: clustering cost on original vs RBT-released data.
//!
//! Corollary 1 at bench scale — not only are the clusters identical, the
//! *cost* of finding them is unchanged by the transformation (the released
//! matrix is dense, same-shape, same-spread data).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rbt_bench::{rbt_release, workload, WorkloadSpec};
use rbt_cluster::{Agglomerative, Dbscan, KMeans, KMeansInit, Linkage};
use rbt_linalg::dissimilarity::DissimilarityMatrix;
use rbt_linalg::distance::Metric;
use std::hint::black_box;

fn bench_kmeans(c: &mut Criterion) {
    let w = workload(WorkloadSpec {
        rows: 2_000,
        cols: 8,
        k: 4,
        seed: 221,
    });
    let (normalized, released) = rbt_release(&w.matrix, 0.4, 223);
    let km = KMeans::new(4).unwrap().with_init(KMeansInit::FirstK);
    let mut group = c.benchmark_group("kmeans_2000x8");
    group.sample_size(20);
    for (label, data) in [("original", &normalized), ("rbt-released", &released)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), data, |b, data| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(0);
                black_box(km.fit(black_box(data), &mut rng).unwrap())
            })
        });
    }
    group.finish();
}

fn bench_hierarchical(c: &mut Criterion) {
    let w = workload(WorkloadSpec {
        rows: 400,
        cols: 8,
        k: 4,
        seed: 225,
    });
    let (normalized, released) = rbt_release(&w.matrix, 0.4, 227);
    let mut group = c.benchmark_group("hierarchical_average_400x8");
    group.sample_size(10);
    for (label, data) in [("original", &normalized), ("rbt-released", &released)] {
        let dm = DissimilarityMatrix::from_matrix(data, Metric::Euclidean);
        group.bench_with_input(BenchmarkId::from_parameter(label), &dm, |b, dm| {
            b.iter(|| {
                black_box(
                    Agglomerative::new(Linkage::Average)
                        .fit(black_box(dm))
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_dbscan(c: &mut Criterion) {
    let w = workload(WorkloadSpec {
        rows: 1_000,
        cols: 6,
        k: 4,
        seed: 229,
    });
    let (normalized, released) = rbt_release(&w.matrix, 0.4, 231);
    let mut group = c.benchmark_group("dbscan_1000x6");
    group.sample_size(10);
    for (label, data) in [("original", &normalized), ("rbt-released", &released)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), data, |b, data| {
            b.iter(|| {
                black_box(
                    Dbscan::new(1.5, 4)
                        .unwrap()
                        .fit(black_box(data), Metric::Euclidean),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kmeans, bench_hierarchical, bench_dbscan);
criterion_main!(benches);
