//! Criterion bench for the dissimilarity substrate: serial vs
//! crossbeam-parallel construction (the storage/parallelism ablation from
//! DESIGN.md) and condensed access.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rbt_bench::{workload, WorkloadSpec};
use rbt_linalg::dissimilarity::DissimilarityMatrix;
use rbt_linalg::distance::Metric;
use std::hint::black_box;

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("dissimilarity_build");
    group.sample_size(15);
    for m in [256usize, 512, 1_024] {
        let w = workload(WorkloadSpec {
            rows: m,
            cols: 8,
            k: 4,
            seed: 211,
        });
        let pairs = (m * (m - 1) / 2) as u64;
        group.throughput(Throughput::Elements(pairs));
        group.bench_with_input(BenchmarkId::new("serial", m), &w.matrix, |b, data| {
            b.iter(|| black_box(DissimilarityMatrix::from_matrix(data, Metric::Euclidean)))
        });
        for threads in [2usize, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("parallel-{threads}"), m),
                &w.matrix,
                |b, data| {
                    b.iter(|| {
                        black_box(DissimilarityMatrix::from_matrix_parallel(
                            data,
                            Metric::Euclidean,
                            threads,
                        ))
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_access(c: &mut Criterion) {
    let w = workload(WorkloadSpec {
        rows: 512,
        cols: 8,
        k: 4,
        seed: 212,
    });
    let dm = DissimilarityMatrix::from_matrix(&w.matrix, Metric::Euclidean);
    c.bench_function("dissimilarity_get_all_pairs", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..dm.len() {
                for j in 0..dm.len() {
                    acc += dm.get(i, j);
                }
            }
            black_box(acc)
        })
    });
}

criterion_group!(benches, bench_build, bench_access);
criterion_main!(benches);
