//! Criterion bench for the security-range solver (§4.3 step 2c), including
//! the grid-resolution ablation called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rbt_core::paper;
use rbt_core::security::security_range;
use std::hint::black_box;

fn bench_solver_grid(c: &mut Criterion) {
    let profile = paper::pair1_profile();
    let pst = paper::pst1();
    let mut group = c.benchmark_group("security_range_grid");
    for grid in [360usize, 1_440, 5_760, 23_040] {
        group.bench_with_input(BenchmarkId::from_parameter(grid), &grid, |b, &grid| {
            b.iter(|| black_box(security_range(&profile, &pst, grid).unwrap()))
        });
    }
    group.finish();
}

fn bench_curve_eval(c: &mut Criterion) {
    let profile = paper::pair2_profile();
    c.bench_function("variance_curves_361pts", |b| {
        b.iter(|| black_box(profile.variance_curves(black_box(361))))
    });
}

fn bench_sampling(c: &mut Criterion) {
    use rand::SeedableRng;
    let profile = paper::pair1_profile();
    let range = security_range(&profile, &paper::pst1(), 1_440).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    c.bench_function("security_range_sample", |b| {
        b.iter(|| black_box(range.sample(&mut rng).unwrap()))
    });
}

criterion_group!(benches, bench_solver_grid, bench_curve_eval, bench_sampling);
criterion_main!(benches);
