//! Criterion bench for Theorem 1: RBT runs in O(m·n).
//!
//! Throughput is reported per cell, so a flat cells/second across sizes is
//! the linear-scaling signature.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rbt_bench::{workload, WorkloadSpec};
use rbt_core::{PairwiseSecurityThreshold, RbtConfig, RbtTransformer};
use rbt_data::Normalization;
use std::hint::black_box;

fn bench_rows(c: &mut Criterion) {
    let mut group = c.benchmark_group("rbt_transform_rows");
    group.sample_size(20);
    for m in [5_000usize, 10_000, 20_000, 40_000] {
        let w = workload(WorkloadSpec {
            rows: m,
            cols: 8,
            k: 4,
            seed: 201,
        });
        let (_, normalized) = Normalization::zscore_paper()
            .fit_transform(&w.matrix)
            .unwrap();
        let transformer = RbtTransformer::new(RbtConfig::uniform(
            PairwiseSecurityThreshold::uniform(0.4).unwrap(),
        ));
        group.throughput(Throughput::Elements((m * 8) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(m), &normalized, |b, data| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                black_box(transformer.transform(black_box(data), &mut rng).unwrap())
            })
        });
    }
    group.finish();
}

fn bench_cols(c: &mut Criterion) {
    let mut group = c.benchmark_group("rbt_transform_cols");
    group.sample_size(20);
    for n in [4usize, 8, 16, 32] {
        let w = workload(WorkloadSpec {
            rows: 10_000,
            cols: n,
            k: 4,
            seed: 202,
        });
        let (_, normalized) = Normalization::zscore_paper()
            .fit_transform(&w.matrix)
            .unwrap();
        let transformer = RbtTransformer::new(RbtConfig::uniform(
            PairwiseSecurityThreshold::uniform(0.4).unwrap(),
        ));
        group.throughput(Throughput::Elements((10_000 * n) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &normalized, |b, data| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                black_box(transformer.transform(black_box(data), &mut rng).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rows, bench_cols);
criterion_main!(benches);
