//! Experiment E-X1: the privacy/accuracy trade-off of the baseline
//! perturbation methods, versus RBT's "no trade-off" claim.
//!
//! For each method we release a perturbed version of a labelled mixture,
//! cluster it with k-means (same deterministic init), and report:
//!
//! * misclassification vs the clustering of the *unperturbed* data (the
//!   paper's §1 failure mode),
//! * F-measure vs ground truth,
//! * the mean `Sec = Var(X−X')/Var(X)` privacy level.
//!
//! Shape expected from the paper's argument: noise-family methods buy
//! privacy only at growing misclassification; RBT (and the other
//! isometries) sit at misclassification 0 with tunable Sec.
//!
//! Run: `cargo run -p rbt-bench --release --bin baselines`

use rand::rngs::StdRng;
use rand::SeedableRng;
use rbt_api::{Method, Release};
use rbt_bench::{format_table, workload, WorkloadSpec};
use rbt_cluster::metrics::{f_measure, misclassification_error};
use rbt_cluster::{KMeans, KMeansInit};
use rbt_core::security::security_level;
use rbt_core::{PairwiseSecurityThreshold, RbtConfig, RbtTransformer};
use rbt_data::Normalization;
use rbt_linalg::stats::VarianceMode;
use rbt_linalg::Matrix;
use rbt_transform::{
    AdditiveNoise, HybridPerturbation, Perturbation, RankSwap, ScalingPerturbation, SimpleRotation,
    TranslationPerturbation,
};

fn kmeans_labels(data: &Matrix, k: usize) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(0);
    KMeans::new(k)
        .unwrap()
        .with_init(KMeansInit::FirstK)
        .fit(data, &mut rng)
        .unwrap()
        .labels
}

fn mean_sec(original: &Matrix, released: &Matrix) -> f64 {
    let n = original.cols();
    (0..n)
        .map(|j| {
            security_level(
                &original.column(j),
                &released.column(j),
                VarianceMode::Sample,
            )
            .unwrap_or(f64::NAN)
        })
        .sum::<f64>()
        / n as f64
}

fn main() {
    let k = 4;
    let w = workload(WorkloadSpec {
        rows: 1_200,
        cols: 6,
        k,
        seed: 101,
    });
    let (_, normalized) = Normalization::zscore_paper()
        .fit_transform(&w.matrix)
        .unwrap();
    let baseline_labels = kmeans_labels(&normalized, k);

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut record = |name: String, released: Matrix| {
        let labels = kmeans_labels(&released, k);
        let mis = misclassification_error(&baseline_labels, &labels).unwrap();
        let f = f_measure(&w.labels, &labels).unwrap();
        let sec = mean_sec(&normalized, &released);
        rows.push(vec![
            name,
            format!("{mis:.4}"),
            format!("{f:.4}"),
            format!("{sec:.3}"),
        ]);
    };

    // RBT at several thresholds (privacy is tunable, accuracy is exact).
    for rho in [0.25, 0.5, 1.0] {
        let mut rng = StdRng::seed_from_u64(111);
        let out = RbtTransformer::new(RbtConfig::uniform(
            PairwiseSecurityThreshold::uniform(rho).unwrap(),
        ))
        .transform(&normalized, &mut rng)
        .unwrap();
        record(format!("RBT (rho={rho})"), out.transformed);
    }

    // Isometric baselines (accuracy preserved, but untunable/weak privacy).
    let mut rng = StdRng::seed_from_u64(123);
    record(
        "translation (mag=2)".into(),
        TranslationPerturbation::new(2.0)
            .perturb(&normalized, &mut rng)
            .unwrap(),
    );
    record(
        "simple-rotation (45°)".into(),
        SimpleRotation::new(45.0)
            .perturb(&normalized, &mut rng)
            .unwrap(),
    );

    // Distance-breaking baselines: sweep the privacy knob.
    record(
        "scaling [0.5, 2.0]".into(),
        ScalingPerturbation::new(0.5, 2.0)
            .unwrap()
            .perturb(&normalized, &mut rng)
            .unwrap(),
    );
    record(
        "hybrid".into(),
        HybridPerturbation::default()
            .perturb(&normalized, &mut rng)
            .unwrap(),
    );
    for level in [0.25, 0.5, 1.0, 2.0] {
        record(
            format!("additive-gaussian (s={level})"),
            AdditiveNoise::gaussian(level)
                .unwrap()
                .perturb(&normalized, &mut rng)
                .unwrap(),
        );
    }
    for window in [0.1, 0.3, 0.6] {
        record(
            format!("rank-swap (w={window})"),
            RankSwap::new(window)
                .unwrap()
                .perturb(&normalized, &mut rng)
                .unwrap(),
        );
    }

    // Every registered method once more through the unified release API,
    // selected by string — the harness no longer hand-wires each method.
    let api_data = rbt_data::Dataset::from_matrix(normalized.clone());
    for name in ["rbt", "hybrid-isometry", "noise", "swap", "geometric"] {
        let method = Method::from_name(name).expect("registry name");
        let mut rng = StdRng::seed_from_u64(777);
        let fitted = Release::of(&api_data)
            .with_method(method)
            .fit(&mut rng)
            .expect("defaults are feasible on this workload");
        record(format!("api:{name}"), fitted.released().matrix().clone());
    }

    println!("== E-X1: privacy vs clustering accuracy across methods ==\n");
    println!(
        "{}",
        format_table(
            &[
                "method",
                "misclassification vs D",
                "F-measure vs truth",
                "mean Sec"
            ],
            &rows
        )
    );
    println!(
        "Shape check (paper §1/§2): RBT rows show misclassification 0.0000 at \
         every threshold; the additive-noise rows show misclassification \
         growing with the noise level that buys Sec. That is the trade-off \
         RBT eliminates."
    );
}
