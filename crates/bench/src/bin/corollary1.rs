//! Experiment E-C1: Corollary 1 — any distance-based clustering algorithm
//! finds exactly the same clusters on the original and the RBT-transformed
//! data.
//!
//! Four algorithm families run on both versions with identical
//! (deterministic) initialisation; we report the partition agreement.
//!
//! Run: `cargo run -p rbt-bench --release --bin corollary1`

use rbt_bench::{format_table, rbt_release, workload, WorkloadSpec};
use rbt_cluster::metrics::{adjusted_rand_index, misclassification_error, same_partition};
use rbt_cluster::{Agglomerative, Dbscan, KMeans, KMeansInit, KMedoids, Linkage};
use rbt_linalg::dissimilarity::DissimilarityMatrix;
use rbt_linalg::distance::Metric;
use rbt_linalg::Matrix;

fn kmeans_labels(data: &Matrix, k: usize) -> Vec<usize> {
    // Deterministic FirstK init so runs on D and D' are comparable.
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0);
    KMeans::new(k)
        .unwrap()
        .with_init(KMeansInit::FirstK)
        .fit(data, &mut rng)
        .unwrap()
        .labels
}

fn kmedoids_labels(data: &Matrix, k: usize) -> Vec<usize> {
    let dm = DissimilarityMatrix::from_matrix_parallel(
        data,
        Metric::Euclidean,
        rbt_linalg::pool::default_threads(),
    );
    let initial: Vec<usize> = (0..k).collect();
    KMedoids::new(k)
        .unwrap()
        .fit_from(&dm, &initial)
        .unwrap()
        .labels
}

fn hierarchical_labels(data: &Matrix, k: usize, linkage: Linkage) -> Vec<usize> {
    Agglomerative::new(linkage)
        .fit_matrix(data, Metric::Euclidean)
        .unwrap()
        .cut(k)
        .unwrap()
}

fn dbscan_labels(data: &Matrix) -> Vec<usize> {
    Dbscan::new(1.5, 4)
        .unwrap()
        .fit(data, Metric::Euclidean)
        .labels
}

fn main() {
    println!("== Corollary 1: cluster preservation across algorithm families ==\n");
    let k = 4;
    let w = workload(WorkloadSpec {
        rows: 800,
        cols: 6,
        k,
        seed: 71,
    });
    let (normalized, released) = rbt_release(&w.matrix, 0.4, 73);

    let runs: Vec<(&str, Vec<usize>, Vec<usize>)> = vec![
        (
            "k-means (FirstK init)",
            kmeans_labels(&normalized, k),
            kmeans_labels(&released, k),
        ),
        (
            "k-medoids (fixed init)",
            kmedoids_labels(&normalized, k),
            kmedoids_labels(&released, k),
        ),
        (
            "hierarchical/single",
            hierarchical_labels(&normalized, k, Linkage::Single),
            hierarchical_labels(&released, k, Linkage::Single),
        ),
        (
            "hierarchical/complete",
            hierarchical_labels(&normalized, k, Linkage::Complete),
            hierarchical_labels(&released, k, Linkage::Complete),
        ),
        (
            "hierarchical/average",
            hierarchical_labels(&normalized, k, Linkage::Average),
            hierarchical_labels(&released, k, Linkage::Average),
        ),
        (
            "hierarchical/ward",
            hierarchical_labels(&normalized, k, Linkage::Ward),
            hierarchical_labels(&released, k, Linkage::Ward),
        ),
        (
            "dbscan (eps=1.5, minPts=4)",
            dbscan_labels(&normalized),
            dbscan_labels(&released),
        ),
    ];

    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|(name, before, after)| {
            vec![
                name.to_string(),
                format!("{}", same_partition(before, after)),
                format!("{:.4}", misclassification_error(before, after).unwrap()),
                format!("{:.4}", adjusted_rand_index(before, after).unwrap()),
                format!("{:.4}", misclassification_error(&w.labels, after).unwrap()),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "algorithm",
                "identical partition",
                "misclassification D vs D'",
                "ARI D vs D'",
                "error vs ground truth"
            ],
            &rows
        )
    );
    println!(
        "Every algorithm returns the identical partition on D and D' \
         (misclassification 0, ARI 1) — Corollary 1. The last column is the \
         algorithm's own quality vs ground truth, unchanged by RBT."
    );

    // Extension: even *model selection* transfers — the silhouette-based
    // choice of k is rotation-invariant, so the miner picks the same k on
    // the release as the owner would on the original.
    let mut rng_a = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0);
    let mut rng_b = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0);
    let (best_a, cand_a) = rbt_cluster::select_k(&normalized, 2..=8, &mut rng_a).unwrap();
    let (best_b, cand_b) = rbt_cluster::select_k(&released, 2..=8, &mut rng_b).unwrap();
    println!(
        "\nsilhouette-based k selection: original picks k = {}, release picks k = {} \
         (true k = {k}); max silhouette difference across the sweep = {:.2e}",
        cand_a[best_a].k,
        cand_b[best_b].k,
        cand_a
            .iter()
            .zip(&cand_b)
            .map(|(a, b)| (a.silhouette - b.silhouette).abs())
            .fold(0.0f64, f64::max),
    );
}
