//! Experiment E-F1: the Figure 1 pipeline (normalize → distort → release)
//! end to end, on the paper's sample and on a larger synthetic workload.
//!
//! Run: `cargo run -p rbt-bench --release --bin pipeline`

use rand::rngs::StdRng;
use rand::SeedableRng;
use rbt_bench::{workload, WorkloadSpec};
use rbt_core::isometry::dissimilarity_drift;
use rbt_core::{PairwiseSecurityThreshold, Pipeline, RbtConfig};
use rbt_data::{datasets, Dataset};

fn run(name: &str, data: &Dataset, rho: f64, seed: u64) {
    let pipeline = Pipeline::new(RbtConfig::uniform(
        PairwiseSecurityThreshold::uniform(rho).unwrap(),
    ));
    let mut rng = StdRng::seed_from_u64(seed);
    let out = pipeline.run(data, &mut rng).unwrap();
    println!("== {name} ==");
    println!(
        "  rows = {}, attributes = {}, rho = {rho}",
        data.n_rows(),
        data.n_cols()
    );
    println!(
        "  released IDs suppressed: {}",
        out.released.ids().is_none()
    );
    for step in out.key.steps() {
        println!(
            "  rotate pair ({}, {}) by {:.2}°: Var1 = {:.4}, Var2 = {:.4}",
            step.i, step.j, step.theta_degrees, step.achieved_var1, step.achieved_var2
        );
    }
    println!(
        "  distance drift vs normalized: {:.3e} (Theorem 2: ~0)",
        dissimilarity_drift(out.normalized.matrix(), out.released.matrix())
    );
    let recovered = Pipeline::recover(&out, out.released.matrix()).unwrap();
    println!(
        "  owner-side recovery error vs raw: {:.3e}\n",
        recovered.max_abs_diff(data.matrix()).unwrap()
    );
}

fn main() {
    run(
        "cardiac arrhythmia sample (Table 1)",
        &datasets::arrhythmia_sample(),
        0.25,
        7,
    );

    let w = workload(WorkloadSpec {
        rows: 2_000,
        cols: 8,
        k: 4,
        seed: 11,
    });
    let ds = Dataset::from_matrix(w.matrix.clone());
    run("synthetic mixture (2000 × 8, 4 clusters)", &ds, 0.5, 13);

    let w = workload(WorkloadSpec {
        rows: 500,
        cols: 5,
        k: 3,
        seed: 17,
    });
    let ds = Dataset::from_matrix(w.matrix.clone());
    run(
        "synthetic mixture (500 × 5, odd attribute count)",
        &ds,
        0.4,
        19,
    );
}
