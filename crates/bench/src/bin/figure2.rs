//! Experiment E-F2: regenerate Figure 2 — the variance curves
//! `Var(age − age')` and `Var(heart_rate − heart_rate')` as functions of
//! the rotation angle, the PST1 = (0.30, 0.55) threshold lines, and the
//! security range.
//!
//! Run: `cargo run -p rbt-bench --release --bin figure2`

use rbt_bench::format_table;
use rbt_core::paper;
use rbt_core::security::{security_range, DEFAULT_GRID};

fn main() {
    let profile = paper::pair1_profile();
    let pst = paper::pst1();

    println!("== Figure 2: variance curves for pair (age, heart_rate) ==");
    println!("thresholds: rho1 = {}, rho2 = {}\n", pst.rho1, pst.rho2);

    // The plotted series (the paper samples 0..350; we print every 10°).
    let rows: Vec<Vec<String>> = profile
        .variance_curves(37)
        .into_iter()
        .map(|(theta, v1, v2)| {
            vec![
                format!("{theta:.0}"),
                format!("{v1:.4}"),
                format!("{v2:.4}"),
                if profile.satisfies(theta, &pst) {
                    "yes".into()
                } else {
                    "no".into()
                },
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["theta(deg)", "Var(age-age')", "Var(hr-hr')", "feasible"],
            &rows
        )
    );

    let range = security_range(&profile, &pst, DEFAULT_GRID).unwrap();
    println!("measured security range: {:?}", range.intervals());
    println!("measured angular measure: {:.2}°", range.measure());
    println!(
        "paper's printed range:   [{:.2}°, {:.2}°]",
        paper::FIGURE2_RANGE.0,
        paper::FIGURE2_RANGE.1
    );
    println!(
        "NOTE (erratum): at the paper's lower endpoint {:.2}°, its own second \
         constraint fails: Var(hr-hr') = {:.4} < {:.2}. The joint-feasibility \
         boundary is {:.2}° (where Var(hr-hr') rises through {:.2}). The upper \
         endpoint reproduces exactly.",
        paper::FIGURE2_RANGE.0,
        profile.var_diff_second(paper::FIGURE2_RANGE.0),
        pst.rho2,
        paper::FIGURE2_RANGE_MEASURED.0,
        pst.rho2,
    );
    println!(
        "\npaper's chosen angle θ = {}°: Var(age-age') = {:.4} (paper: 0.318), \
         Var(hr-hr') = {:.4} (paper: 0.9805)",
        paper::THETA1_DEGREES,
        profile.var_diff_first(paper::THETA1_DEGREES),
        profile.var_diff_second(paper::THETA1_DEGREES),
    );
}
