//! Experiment E-S1: the §5.2 security analysis — variance camouflage and
//! the failure of the re-normalization attack.
//!
//! Run: `cargo run -p rbt-bench --release --bin security`

use rbt_attack::renormalize::renormalization_attack;
use rbt_bench::{format_table, rbt_release, workload, WorkloadSpec};
use rbt_core::paper;
use rbt_core::security::security_level;
use rbt_linalg::stats::{column_variances, VarianceMode};

fn main() {
    println!("== §5.2: variance camouflage on the paper's sample ==\n");
    let example = paper::run_example().unwrap();
    let before = column_variances(&example.normalized, VarianceMode::Sample).unwrap();
    let after = column_variances(&example.transformed, VarianceMode::Sample).unwrap();
    let rows: Vec<Vec<String>> = ["age", "weight", "heart_rate"]
        .iter()
        .enumerate()
        .map(|(j, name)| {
            let sec = security_level(
                &example.normalized.column(j),
                &example.transformed.column(j),
                VarianceMode::Sample,
            )
            .unwrap();
            vec![
                name.to_string(),
                format!("{:.4}", before[j]),
                format!("{:.4}", after[j]),
                format!("{sec:.4}"),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "attribute",
                "Var before",
                "Var after",
                "Sec = Var(X-X')/Var(X)"
            ],
            &rows
        )
    );
    println!(
        "paper §5.2 reports released variances [1.9039, 0.7840, 0.3122] — \
         different from the normalized [1, 1, 1], so variances alone reveal \
         nothing about the angles.\n"
    );

    println!("== §5.2: the re-normalization attack fails ==\n");
    let report = renormalization_attack(&example.transformed, Some(&example.normalized)).unwrap();
    println!(
        "distance drift caused by re-normalizing the release: {:.4}",
        report.drift_vs_released
    );
    println!(
        "reconstruction error vs the true normalized data:    {:.4}",
        report.error_vs_original.unwrap()
    );
    println!(
        "(both large: the attacker destroys the clustering utility without \
         getting closer to the original — exactly Table 5's message)\n"
    );

    println!("== the same analysis at scale (2000 × 8 mixture) ==\n");
    let w = workload(WorkloadSpec {
        rows: 2_000,
        cols: 8,
        k: 4,
        seed: 91,
    });
    let (normalized, released) = rbt_release(&w.matrix, 0.5, 93);
    let secs: Vec<f64> = (0..8)
        .map(|j| {
            security_level(
                &normalized.column(j),
                &released.column(j),
                VarianceMode::Sample,
            )
            .unwrap()
        })
        .collect();
    let min = secs.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "per-attribute Sec levels: min = {min:.3}, all = {:?}",
        secs.iter()
            .map(|s| (s * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );
    let report = renormalization_attack(&released, Some(&normalized)).unwrap();
    println!(
        "re-normalization attack: drift = {:.4}, reconstruction error = {:.4}",
        report.drift_vs_released,
        report.error_vs_original.unwrap()
    );

    println!("\n== extension: per-step vs end-to-end security on chained attributes ==\n");
    // The paper enforces PST per rotation step; an attribute that is
    // re-rotated later (odd-n chaining) can end up with *less* end-to-end
    // displacement than either step promised. Audit with end_to_end_security.
    let example = paper::run_example().unwrap();
    let e2e = rbt_core::security::end_to_end_security(
        &example.normalized,
        &example.transformed,
        VarianceMode::Sample,
    )
    .unwrap();
    println!("paper example, per-step Var achieved:");
    for step in example.key.steps() {
        println!(
            "  pair ({}, {}): ({:.4}, {:.4})",
            step.i, step.j, step.achieved_var1, step.achieved_var2
        );
    }
    println!(
        "end-to-end Sec per attribute [age, weight, heart_rate]: \
         [{:.4}, {:.4}, {:.4}]",
        e2e[0], e2e[1], e2e[2]
    );
    println!(
        "age was rotated twice; its end-to-end displacement ({:.4}) need not \
         match either per-step value — administrators should audit releases \
         end-to-end (here it stays high, but unlucky angle draws can cancel; \
         see the chained_rotations_can_undercut test in rbt-core)",
        e2e[0]
    );
}
