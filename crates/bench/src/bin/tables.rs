//! Experiment E-T1…E-T6: regenerate Tables 1–6 of the paper from the raw
//! Table 1 values and report the deviation from the printed tables.
//!
//! Run: `cargo run -p rbt-bench --release --bin tables`

use rbt_bench::format_matrix;
use rbt_core::paper;
use rbt_data::datasets;
use rbt_linalg::dissimilarity::DissimilarityMatrix;
use rbt_linalg::distance::Metric;

fn main() {
    let example = paper::run_example().expect("paper example replays");
    let ids: Vec<String> = datasets::ARRHYTHMIA_IDS
        .iter()
        .map(|i| i.to_string())
        .collect();
    let cols: Vec<String> = datasets::ARRHYTHMIA_COLUMNS
        .iter()
        .map(|s| s.to_string())
        .collect();

    println!("== Table 1: raw cardiac arrhythmia sample ==");
    println!("{}", format_matrix(example.raw.matrix(), Some(&ids), &cols));

    println!("== Table 2: z-score normalized (sample divisor) ==");
    println!("{}", format_matrix(&example.normalized, Some(&ids), &cols));
    let t2 = datasets::arrhythmia_normalized_table2();
    println!(
        "max |measured - paper| = {:.2e}  (paper prints 4 decimals)\n",
        example.normalized.max_abs_diff(t2.matrix()).unwrap()
    );

    println!(
        "== Table 3: transformed (pair {:?} @ {}°, pair {:?} @ {}°) ==",
        paper::PAIR1,
        paper::THETA1_DEGREES,
        paper::PAIR2,
        paper::THETA2_DEGREES
    );
    println!("{}", format_matrix(&example.transformed, Some(&ids), &cols));
    let t3 = datasets::arrhythmia_transformed_table3();
    println!(
        "max |measured - paper| = {:.2e}\n",
        example.transformed.max_abs_diff(t3.matrix()).unwrap()
    );

    println!("== Table 4: dissimilarity matrix of the transformed data ==");
    let threads = rbt_linalg::pool::default_threads();
    let dm3 =
        DissimilarityMatrix::from_matrix_parallel(&example.transformed, Metric::Euclidean, threads);
    print!("{}", dm3.format_lower_triangle(4));
    let table4 = DissimilarityMatrix::from_condensed(
        5,
        datasets::lower_triangle_to_condensed(&datasets::ARRHYTHMIA_TABLE4_LOWER),
    )
    .unwrap();
    println!(
        "max |measured - paper| = {:.2e}\n",
        dm3.max_abs_diff(&table4).unwrap()
    );

    println!("== Table 5: dissimilarity after an attacker re-normalizes ==");
    let report =
        rbt_attack::renormalize::renormalization_attack(&example.transformed, None).unwrap();
    let dm5 =
        DissimilarityMatrix::from_matrix_parallel(&report.renormalized, Metric::Euclidean, threads);
    print!("{}", dm5.format_lower_triangle(4));
    let table5 = DissimilarityMatrix::from_condensed(
        5,
        datasets::lower_triangle_to_condensed(&datasets::ARRHYTHMIA_TABLE5_LOWER),
    )
    .unwrap();
    println!(
        "max |measured - paper| = {:.2e}",
        dm5.max_abs_diff(&table5).unwrap()
    );
    println!(
        "distance drift caused by the attack (paper: attack fails): {:.4}\n",
        report.drift_vs_released
    );

    println!("== Table 6: dissimilarity of the release (copy of Table 4) ==");
    print!("{}", dm3.format_lower_triangle(4));
    let dm2 =
        DissimilarityMatrix::from_matrix_parallel(&example.normalized, Metric::Euclidean, threads);
    println!(
        "identical to the normalized data's dissimilarity: max diff = {:.2e}",
        dm3.max_abs_diff(&dm2).unwrap()
    );
}
