//! Experiment E-F3: regenerate Figure 3 — the variance curves for the
//! chained second pair `(weight, age')`, the ρ1 = ρ2 = 2.30 threshold, and
//! the security range [118.74°, 258.70°].
//!
//! Run: `cargo run -p rbt-bench --release --bin figure3`

use rbt_bench::format_table;
use rbt_core::paper;
use rbt_core::security::{security_range, DEFAULT_GRID};

fn main() {
    let profile = paper::pair2_profile();
    let pst = paper::pst2();

    println!("== Figure 3: variance curves for the chained pair (weight, age') ==");
    println!(
        "the age column entering this pair is the output of pair 1's rotation \
         (odd-n chaining rule)"
    );
    println!("thresholds: rho1 = rho2 = {}\n", pst.rho1);

    let rows: Vec<Vec<String>> = profile
        .variance_curves(37)
        .into_iter()
        .map(|(theta, v1, v2)| {
            vec![
                format!("{theta:.0}"),
                format!("{v1:.4}"),
                format!("{v2:.4}"),
                if profile.satisfies(theta, &pst) {
                    "yes".into()
                } else {
                    "no".into()
                },
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["theta(deg)", "Var(w-w')", "Var(age-age')", "feasible"],
            &rows
        )
    );

    let range = security_range(&profile, &pst, DEFAULT_GRID).unwrap();
    println!("measured security range: {:?}", range.intervals());
    println!(
        "paper's printed range:   [{:.2}°, {:.2}°]  (both endpoints reproduce)",
        paper::FIGURE3_RANGE.0,
        paper::FIGURE3_RANGE.1
    );
    println!(
        "\npaper's chosen angle θ = {}°: Var(weight-weight') = {:.4} (paper: 2.9714), \
         Var(age-age') = {:.4} (paper: 6.9274)",
        paper::THETA2_DEGREES,
        profile.var_diff_first(paper::THETA2_DEGREES),
        profile.var_diff_second(paper::THETA2_DEGREES),
    );
}
