//! Experiment E-TH2: Theorem 2 at scale — the RBT release preserves every
//! pairwise Euclidean distance regardless of database size, while the
//! non-rotation-invariant Manhattan metric drifts (quantifying why the
//! guarantee is Euclidean-specific).
//!
//! Run: `cargo run -p rbt-bench --release --bin isometry`

use rbt_bench::{format_table, rbt_release, workload, WorkloadSpec};
use rbt_core::isometry::{dissimilarity_drift_with, relative_drift};
use rbt_linalg::distance::Metric;

fn main() {
    println!("== Theorem 2: distance preservation vs database size ==\n");
    let mut rows = Vec::new();
    for (m, n) in [
        (100usize, 3usize),
        (500, 5),
        (1_000, 8),
        (2_000, 12),
        (4_000, 16),
    ] {
        let w = workload(WorkloadSpec {
            rows: m,
            cols: n,
            k: 4,
            seed: 31,
        });
        let (normalized, released) = rbt_release(&w.matrix, 0.4, 41);
        let euclid = dissimilarity_drift_with(&normalized, &released, Metric::Euclidean);
        let manhattan = dissimilarity_drift_with(&normalized, &released, Metric::Manhattan);
        let rel = relative_drift(&normalized, &released, 1e-9);
        rows.push(vec![
            format!("{m}"),
            format!("{n}"),
            format!("{euclid:.2e}"),
            format!("{rel:.2e}"),
            format!("{manhattan:.3}"),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "rows",
                "attrs",
                "euclid drift (abs)",
                "euclid drift (rel)",
                "manhattan drift"
            ],
            &rows
        )
    );
    println!(
        "Euclidean drift stays at float-rounding level at every size \
         (isometry is size-independent); Manhattan distances are not \
         preserved by rotations, as §3.1 implies."
    );
}
