//! Experiment E-X2: the attacks that superseded rotation perturbation.
//!
//! * keyspace: the paper's brute-force work factor (§5.2), made concrete;
//! * brute-force single-pair angle recovery from one known record;
//! * known-sample least-squares attack vs the number of leaked records;
//! * PCA covariance-alignment attack with distribution knowledge only.
//!
//! Run: `cargo run -p rbt-bench --release --bin attacks`

use rand::rngs::StdRng;
use rand::SeedableRng;
use rbt_attack::brute::brute_force_angle;
use rbt_attack::keyspace::{brute_force_work, ordered_pairings};
use rbt_attack::known_sample::known_sample_attack;
use rbt_attack::pca::{pca_attack, SignResolution};
use rbt_attack::reconstruction::evaluate;
use rbt_bench::format_table;
use rbt_core::{PairwiseSecurityThreshold, RbtConfig, RbtTransformer};
use rbt_data::rng::standard_normal;
use rbt_data::Normalization;
use rbt_linalg::Matrix;

/// Anisotropic, skewed, cross-correlated population: a shared latent factor
/// plus per-column idiosyncratic terms gives a covariance matrix with a
/// well-separated spectrum (the conditions the PCA attack needs).
fn population(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<Vec<f64>> = (0..rows)
        .map(|_| {
            let common = standard_normal(&mut rng);
            (0..cols)
                .map(|j| {
                    let g = standard_normal(&mut rng);
                    let loading = 0.3 + 0.25 * j as f64;
                    g + loading * common + 0.3 * g * g
                })
                .collect()
        })
        .collect();
    Matrix::from_row_iter(data).unwrap()
}

fn release(normalized: &Matrix, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    RbtTransformer::new(RbtConfig::uniform(
        PairwiseSecurityThreshold::uniform(0.3).unwrap(),
    ))
    .transform(normalized, &mut rng)
    .unwrap()
    .transformed
}

fn main() {
    println!("== the paper's keyspace argument (§5.2) ==\n");
    let rows: Vec<Vec<String>> = [2usize, 3, 4, 6, 8, 12, 16]
        .iter()
        .map(|&n| {
            vec![
                format!("{n}"),
                format!("{:.3e}", ordered_pairings(n) as f64),
                format!("{:.3e}", brute_force_work(n, 36_000) as f64),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["attributes", "ordered pairings", "work @ 0.01° angle grid"],
            &rows
        )
    );
    println!(
        "The enumeration grows super-exponentially — but the attacks below \
         never search this space.\n"
    );

    println!("== brute-force angle recovery, one pair, one known record ==\n");
    let x = [1.4809];
    let y = [-0.3476];
    let rot = rbt_linalg::Rotation2::from_degrees(312.47);
    let (xr0, yr0) = rot.apply_point(x[0], y[0]);
    let out = brute_force_angle(&x, &y, &[xr0], &[yr0], 720).unwrap();
    println!(
        "true θ = 312.47°, recovered θ = {:.6}° with {} objective evaluations\n",
        out.theta_degrees, out.evaluations
    );

    println!("== known-sample attack vs leaked record count (1000 × 6) ==\n");
    let raw = population(1_000, 6, 131);
    let (_, normalized) = Normalization::zscore_paper().fit_transform(&raw).unwrap();
    let released = release(&normalized, 137);
    let mut rows = Vec::new();
    for leaked in [6usize, 8, 12, 24, 60] {
        let idx: Vec<usize> = (0..leaked).collect();
        let ko = normalized.select_rows(&idx).unwrap();
        let kr = released.select_rows(&idx).unwrap();
        let out = known_sample_attack(&ko, &kr, &released).unwrap();
        let report = evaluate(&normalized, &out.reconstructed, 0.05).unwrap();
        rows.push(vec![
            format!("{leaked}"),
            format!("{:.1}%", 100.0 * leaked as f64 / 1000.0),
            format!("{:.2e}", report.rmse),
            format!("{:.1}%", 100.0 * report.fraction_recovered),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "known records",
                "fraction of data",
                "reconstruction RMSE",
                "cells recovered (ε=0.05)"
            ],
            &rows
        )
    );
    println!(
        "With just n = 6 known records (0.6% of the data) the entire release \
         is reconstructed — the keyspace is irrelevant.\n"
    );

    println!("== PCA attack: distribution knowledge only, no known records ==\n");
    let mut rows = Vec::new();
    for (label, reference) in [
        ("exact covariance (original data)", normalized.clone()),
        ("independent sample, same population", {
            let other = population(1_000, 6, 991);
            Normalization::zscore_paper()
                .fit_transform(&other)
                .unwrap()
                .1
        }),
    ] {
        match pca_attack(&reference, &released, SignResolution::Skewness) {
            Ok(out) => {
                let report = evaluate(&normalized, &out.reconstructed, 0.25).unwrap();
                rows.push(vec![
                    label.to_string(),
                    format!("{:.3}", report.rmse),
                    format!("{:.1}%", 100.0 * report.fraction_recovered),
                    format!("{:.2e}", out.min_spectral_gap),
                ]);
            }
            Err(e) => rows.push(vec![
                label.to_string(),
                format!("failed: {e}"),
                "-".into(),
                "-".into(),
            ]),
        }
    }
    println!(
        "{}",
        format_table(
            &[
                "attacker prior",
                "reconstruction RMSE",
                "cells recovered (ε=0.25)",
                "min spectral gap"
            ],
            &rows
        )
    );
    println!(
        "Even a purely distributional prior recovers most protected values \
         to within a quarter standard deviation — the vulnerability that led \
         the field beyond rotation perturbation (soundness band 2/5).\n"
    );

    println!("== ICA attack: blind source separation, no prior at all ==\n");
    // When attributes are independent and non-Gaussian, the release is a
    // textbook ICA mixing model. Build such a population, release it, and
    // separate it blind.
    let ica_raw = {
        let mut r = StdRng::seed_from_u64(555);

        let rows: Vec<Vec<f64>> = (0..4000)
            .map(|_| {
                let a = standard_normal(&mut r);
                let b: f64 = r.random_range(-1.0f64..1.0);
                let c = standard_normal(&mut r);
                let d: f64 = r.random_range(-1.0f64..1.0);
                vec![a * a * a, 3.0 * b, c.signum() * c * c, d * d * d.signum()]
            })
            .collect();
        Matrix::from_row_iter(rows).unwrap()
    };
    let (_, ica_normalized) = Normalization::zscore_paper()
        .fit_transform(&ica_raw)
        .unwrap();
    let ica_released = release(&ica_normalized, 556);
    let mut r = StdRng::seed_from_u64(557);
    match rbt_attack::ica::FastIca::default().attack(&ica_released, &mut r) {
        Ok(outcome) => {
            let (mean_corr, per_attr) =
                rbt_attack::ica::match_components(&outcome, &ica_normalized).unwrap();
            println!(
                "independent non-Gaussian attributes recovered blind: \
                 mean |corr| = {mean_corr:.4}, per attribute = {:?}",
                per_attr
                    .iter()
                    .map(|c| (c * 1000.0).round() / 1000.0)
                    .collect::<Vec<_>>()
            );
            println!(
                "(rotations of i.i.d. Gaussians are the one unidentifiable case — \
                 see the ica::gaussian_sources_defeat_the_attack test)\n"
            );
        }
        Err(e) => println!("ICA attack failed on this draw: {e}\n"),
    }

    println!("== linkage attack: re-identification through preserved distances ==\n");
    // §5.3 suppresses IDs; but the isometry preserves every mutual distance,
    // so a few known individuals are a unique fingerprint.
    let mut rows = Vec::new();
    for k in [2usize, 3, 4, 6] {
        let truth: Vec<usize> = (0..k).map(|t| 37 + t * 131).collect();
        let known = normalized.select_rows(&truth).unwrap();
        match rbt_attack::linkage::distance_profile_linkage(&known, &released, 1e-6) {
            Ok(out) => rows.push(vec![
                format!("{k}"),
                format!("{}", out.assignment == truth),
                format!("{}", out.states_explored),
                format!("{:.1e}", out.max_mismatch),
            ]),
            Err(e) => rows.push(vec![
                format!("{k}"),
                format!("failed: {e}"),
                "-".into(),
                "-".into(),
            ]),
        }
    }
    println!(
        "{}",
        format_table(
            &[
                "known individuals",
                "re-identified correctly",
                "search states",
                "distance mismatch"
            ],
            &rows
        )
    );
    println!(
        "ID suppression (§5.3 step 2) does not prevent re-identification: the \
         distance preservation that makes RBT useful is itself the linkage key."
    );
}
