//! Experiment E-F1: what a colluding owner can do with a federated release.
//!
//! A federated RBT session gives every owner something no outsider has:
//! the shared normalization fit, its own block's row provenance, and — under
//! [`KeyPolicy::Shared`] — the joint transformation key itself. This binary
//! measures the re-identification surface a single colluding owner (owner 0)
//! has against a victim owner's block (owner 2), under both key policies:
//!
//! * **inversion** — decrypt the victim's released block outright with the
//!   colluder's key (total under a shared key, garbage under per-owner keys);
//! * **linkage** — re-identify known individuals inside the victim's block
//!   through preserved mutual distances (`rbt-attack`'s
//!   `distance_profile_linkage`), which *no* key policy prevents because
//!   each block stays isometric to its normalized source;
//! * **utility** — the price of the safer policy: per-owner keys break
//!   cross-block isometry, so the receiver's joint clustering drifts from
//!   the pooled baseline.
//!
//! Run: `cargo run -p rbt-bench --release --bin federated_collusion`

use rand::rngs::StdRng;
use rand::SeedableRng;
use rbt_attack::linkage::distance_profile_linkage;
use rbt_attack::reconstruction::evaluate;
use rbt_bench::format_table;
use rbt_core::{PairwiseSecurityThreshold, RbtConfig};
use rbt_data::synth::GaussianMixture;
use rbt_data::Normalization;
use rbt_linalg::Matrix;
use rbt_protocol::{FederationConfig, FederationRun, InProcessFederation, KeyPolicy};

const OWNERS: usize = 3;
const ROWS_PER_OWNER: usize = 200;
const COLS: usize = 5;
const COLLUDER: usize = 0;
const VICTIM: usize = 2;
/// Victim individuals the colluder already knows (e.g. shared customers),
/// indexed within the victim's block.
const KNOWN_IN_VICTIM_BLOCK: [usize; 4] = [3, 57, 111, 190];

fn federation_config(key_policy: KeyPolicy) -> FederationConfig {
    FederationConfig {
        session: 77,
        n_cols: COLS,
        owners: OWNERS as u16,
        normalization: Normalization::zscore_paper(),
        rbt: RbtConfig::uniform(PairwiseSecurityThreshold::uniform(0.25).unwrap()),
        key_policy,
        seed: 1234,
        kmeans_k: 3,
        kmeans_max_iters: 128,
    }
}

fn run_federation(key_policy: KeyPolicy, partitions: &[Matrix]) -> FederationRun {
    InProcessFederation::new(federation_config(key_policy), partitions.to_vec())
        .expect("federation construction")
        .run()
        .expect("clean federation run")
}

fn main() {
    // Horizontally partitioned population: three owners, contiguous blocks
    // in announced (pooled concatenation) order.
    let mut rng = StdRng::seed_from_u64(11);
    let mixture = GaussianMixture::well_separated(3, COLS, 8.0, 1.0).unwrap();
    let pooled_raw = mixture.sample(OWNERS * ROWS_PER_OWNER, &mut rng).matrix;
    let partitions: Vec<Matrix> = (0..OWNERS)
        .map(|o| {
            let rows: Vec<usize> = (o * ROWS_PER_OWNER..(o + 1) * ROWS_PER_OWNER).collect();
            pooled_raw.select_rows(&rows).unwrap()
        })
        .collect();

    // The colluder's side knowledge. Every owner receives the shared
    // normalization fit during the protocol, and the federated fit is
    // bit-identical to the pooled one — so fitting on the pool reproduces
    // exactly what owner 0 holds.
    let (_, pooled_normalized) = Normalization::zscore_paper()
        .fit_transform(&pooled_raw)
        .unwrap();
    let victim_rows: Vec<usize> =
        (VICTIM * ROWS_PER_OWNER..(VICTIM + 1) * ROWS_PER_OWNER).collect();
    let victim_truth = pooled_normalized.select_rows(&victim_rows).unwrap();
    let known_truth = victim_truth.select_rows(&KNOWN_IN_VICTIM_BLOCK).unwrap();

    println!(
        "== colluding-owner attack surface: {OWNERS} owners x {ROWS_PER_OWNER} rows x \
         {COLS} attributes, owner {COLLUDER} attacks owner {VICTIM} ==\n"
    );

    let shared = run_federation(KeyPolicy::Shared, &partitions);
    let per_owner = run_federation(KeyPolicy::PerOwner, &partitions);

    let mut rows: Vec<Vec<String>> = Vec::new();
    for (label, run) in [("shared", &shared), ("per-owner", &per_owner)] {
        let victim_range = run.result.owner_ranges[VICTIM].clone();
        let victim_block = run
            .result
            .matrix
            .select_rows(&victim_range.collect::<Vec<_>>())
            .unwrap();

        // Inversion: decrypt the victim's block with the colluder's key.
        let colluder_key = run.owners[COLLUDER]
            .key()
            .expect("released owner keeps key");
        let inverted = colluder_key.invert(&victim_block).unwrap();
        let recon = evaluate(&victim_truth, &inverted, 0.01).unwrap();

        // Linkage: locate the known individuals inside the victim's block
        // by mutual-distance matching. Works under either policy — the
        // victim's block is isometric to its normalized source regardless
        // of who holds the key.
        let linked = distance_profile_linkage(&known_truth, &victim_block, 1e-6).unwrap();
        let correct = linked.assignment == KNOWN_IN_VICTIM_BLOCK;

        rows.push(vec![
            label.to_string(),
            format!("{:.1}%", 100.0 * recon.fraction_recovered),
            format!("{:.3}", recon.rmse),
            format!(
                "{}/{}",
                if correct {
                    KNOWN_IN_VICTIM_BLOCK.len()
                } else {
                    0
                },
                KNOWN_IN_VICTIM_BLOCK.len()
            ),
            format!("{}", linked.states_explored),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "key policy",
                "inverted (tol 1%)",
                "inversion rmse",
                "re-identified",
                "linkage states"
            ],
            &rows
        )
    );
    println!(
        "A shared key hands every owner a master key: owner {COLLUDER} decrypts owner \
         {VICTIM}'s block outright. Per-owner keys reduce the colluder to linkage —\n\
         but linkage still re-identifies every known individual, because rotation \
         preserves the distances the attack matches on.\n"
    );

    println!("== the utility price of per-owner keys ==\n");
    let agree = shared
        .result
        .labels
        .iter()
        .zip(&per_owner.result.labels)
        .filter(|(a, b)| a == b)
        .count();
    let total = shared.result.labels.len();
    let rows = vec![
        vec![
            "shared".to_string(),
            format!("{:.6}", shared.result.inertia),
            format!("{}", shared.result.iterations),
            "bit-identical to pooled pipeline".to_string(),
        ],
        vec![
            "per-owner".to_string(),
            format!("{:.6}", per_owner.result.inertia),
            format!("{}", per_owner.result.iterations),
            format!(
                "{agree}/{total} labels agree with shared ({:.1}%)",
                100.0 * agree as f64 / total as f64
            ),
        ],
    ];
    println!(
        "{}",
        format_table(
            &[
                "key policy",
                "joint inertia",
                "iterations",
                "joint clustering"
            ],
            &rows
        )
    );
    println!(
        "Per-owner keys rotate each block differently, so cross-block distances —\n\
         and with them the joint clustering — are approximate. The policy choice is\n\
         a collusion/utility trade, not a free privacy upgrade."
    );
}
