//! Experiment E-TH1: Theorem 1 — the RBT algorithm runs in O(m·n).
//!
//! Sweeps the object count `m` at fixed `n` (expect linear growth) and the
//! attribute count `n` at fixed `m` (expect linear growth), printing
//! wall-clock times and the time per cell, which should be ~constant.
//!
//! Run: `cargo run -p rbt-bench --release --bin scaling`

use rbt_bench::{format_table, time, workload, WorkloadSpec};
use rbt_core::{PairwiseSecurityThreshold, RbtConfig, RbtTransformer};
use rbt_data::Normalization;

fn release_seconds(rows: usize, cols: usize) -> f64 {
    let w = workload(WorkloadSpec {
        rows,
        cols,
        k: 4,
        seed: 51,
    });
    let (_, normalized) = Normalization::zscore_paper()
        .fit_transform(&w.matrix)
        .unwrap();
    let transformer = RbtTransformer::new(RbtConfig::uniform(
        PairwiseSecurityThreshold::uniform(0.4).unwrap(),
    ));
    // Warm-up run (page-faults the freshly generated matrix into cache),
    // then the median of 7 timed runs to tame noise.
    {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(59);
        let _ = transformer.transform(&normalized, &mut rng).unwrap();
    }
    let mut times: Vec<f64> = (0..7)
        .map(|i| {
            let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(60 + i);
            time(|| transformer.transform(&normalized, &mut rng).unwrap()).1
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[3]
}

fn main() {
    println!("== Theorem 1: runtime scaling of the RBT algorithm ==\n");

    println!("-- sweep m (rows) at n = 8 --");
    let mut rows = Vec::new();
    for m in [10_000usize, 20_000, 40_000, 80_000, 160_000] {
        let secs = release_seconds(m, 8);
        rows.push(vec![
            format!("{m}"),
            format!("{:.3}", secs * 1e3),
            format!("{:.2}", secs * 1e9 / (m as f64 * 8.0)),
        ]);
    }
    println!(
        "{}",
        format_table(&["rows", "time (ms)", "ns per cell"], &rows)
    );

    println!("-- sweep n (attributes) at m = 20000 --");
    let mut rows = Vec::new();
    for n in [4usize, 8, 16, 32, 64] {
        let secs = release_seconds(20_000, n);
        rows.push(vec![
            format!("{n}"),
            format!("{:.3}", secs * 1e3),
            format!("{:.2}", secs * 1e9 / (20_000.0 * n as f64)),
        ]);
    }
    println!(
        "{}",
        format_table(&["attrs", "time (ms)", "ns per cell"], &rows)
    );
    println!(
        "Doubling m or n roughly doubles the wall-clock time and the ns/cell \
         column stays ~flat: O(m·n), as Theorem 1 claims. (The solver's \
         fixed per-pair cost makes small inputs look sublinear.)"
    );
}
