//! Experiment E-X3: how the PST knob controls achieved privacy, and the
//! pairing-strategy ablation (§4.3 step 1 conjectures that, on normalized
//! data, any pairing achieves variances "in the same range").
//!
//! Run: `cargo run -p rbt-bench --release --bin privacy_sweep`

use rand::rngs::StdRng;
use rand::SeedableRng;
use rbt_bench::{format_table, workload, WorkloadSpec};
use rbt_core::security::{security_range, PairVarianceProfile, DEFAULT_GRID};
use rbt_core::{PairingStrategy, PairwiseSecurityThreshold, RbtConfig, RbtTransformer};
use rbt_data::Normalization;
use rbt_linalg::stats::VarianceMode;

fn main() {
    let w = workload(WorkloadSpec {
        rows: 1_000,
        cols: 8,
        k: 4,
        seed: 151,
    });
    let (_, normalized) = Normalization::zscore_paper()
        .fit_transform(&w.matrix)
        .unwrap();

    println!("== E-X3a: security range measure and achieved Sec vs rho ==\n");
    let mut rows = Vec::new();
    for rho in [0.05, 0.1, 0.25, 0.5, 1.0, 1.5, 2.0, 2.5] {
        let pst = PairwiseSecurityThreshold::uniform(rho).unwrap();
        // Range measure on the first attribute pair.
        let profile = PairVarianceProfile::from_columns(
            &normalized.column(0),
            &normalized.column(1),
            VarianceMode::Sample,
        )
        .unwrap();
        let range = security_range(&profile, &pst, DEFAULT_GRID).unwrap();
        let outcome = {
            let mut rng = StdRng::seed_from_u64(161);
            RbtTransformer::new(RbtConfig::uniform(pst)).transform(&normalized, &mut rng)
        };
        match outcome {
            Ok(out) => {
                let min_achieved = out
                    .key
                    .steps()
                    .iter()
                    .map(|s| s.achieved_var1.min(s.achieved_var2))
                    .fold(f64::INFINITY, f64::min);
                rows.push(vec![
                    format!("{rho}"),
                    format!("{:.2}", range.measure()),
                    format!("{:.4}", min_achieved),
                    "ok".into(),
                ]);
            }
            Err(e) => rows.push(vec![
                format!("{rho}"),
                format!("{:.2}", range.measure()),
                "-".into(),
                format!("{e}"),
            ]),
        }
    }
    println!(
        "{}",
        format_table(
            &[
                "rho",
                "range measure (°, pair 0-1)",
                "min achieved Var",
                "status"
            ],
            &rows
        )
    );
    println!(
        "Lower thresholds give broader ranges (§5.2); achieved variance always \
         clears rho until the range collapses to empty.\n"
    );

    println!("== E-X3b: pairing-strategy ablation (§4.3 step 1) ==\n");
    let pst = PairwiseSecurityThreshold::uniform(0.4).unwrap();
    let mut rows = Vec::new();
    let strategies: Vec<(String, PairingStrategy)> = vec![
        ("sequential".into(), PairingStrategy::Sequential),
        (
            "random-shuffle (seed 1)".into(),
            PairingStrategy::RandomShuffle,
        ),
        (
            "random-shuffle (seed 2)".into(),
            PairingStrategy::RandomShuffle,
        ),
        (
            "explicit reversed".into(),
            PairingStrategy::Explicit(vec![(7, 6), (5, 4), (3, 2), (1, 0)]),
        ),
    ];
    for (i, (name, strategy)) in strategies.into_iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(170 + i as u64);
        let out = RbtTransformer::new(RbtConfig::uniform(pst).with_pairing(strategy))
            .transform(&normalized, &mut rng)
            .unwrap();
        let vars: Vec<f64> = out
            .key
            .steps()
            .iter()
            .flat_map(|s| [s.achieved_var1, s.achieved_var2])
            .collect();
        let min = vars.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = vars.iter().cloned().fold(0.0f64, f64::max);
        let drift = rbt_core::isometry::dissimilarity_drift(&normalized, &out.transformed);
        rows.push(vec![
            name,
            format!("{min:.3}"),
            format!("{max:.3}"),
            format!("{drift:.1e}"),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "pairing strategy",
                "min achieved Var",
                "max achieved Var",
                "distance drift"
            ],
            &rows
        )
    );
    println!(
        "As the paper conjectures for normalized data, every pairing lands \
         achieved variances in the same band, and all remain exact isometries."
    );
}
