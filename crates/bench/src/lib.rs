//! Shared infrastructure for the experiment binaries and criterion benches.
//!
//! Every table and figure of the paper has a regeneration target in
//! `src/bin/` (see DESIGN.md §3 for the experiment index); this library
//! holds the pieces they share: aligned-table printing, the seeded workload
//! registry, and the end-to-end "release" helper that produces an RBT
//! release for a given workload.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rbt_core::{PairwiseSecurityThreshold, RbtConfig, RbtTransformer};
use rbt_data::synth::GaussianMixture;
use rbt_data::Normalization;
use rbt_linalg::Matrix;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Instant;

/// Renders an aligned text table (first row of `rows` may be a header the
/// caller styles itself).
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |out: &mut String, cells: &[String]| {
        for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            let _ = write!(out, "{cell:>w$}", w = w);
        }
        out.push('\n');
    };
    fmt_row(
        &mut out,
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        fmt_row(&mut out, row);
    }
    out
}

/// Pretty-prints a matrix with row labels, paper-style (4 decimals).
pub fn format_matrix(m: &Matrix, row_labels: Option<&[String]>, col_labels: &[String]) -> String {
    let headers: Vec<&str> = std::iter::once("")
        .chain(col_labels.iter().map(|s| s.as_str()))
        .collect();
    let rows: Vec<Vec<String>> = (0..m.rows())
        .map(|i| {
            let label = row_labels
                .map(|l| l[i].clone())
                .unwrap_or_else(|| i.to_string());
            std::iter::once(label)
                .chain(m.row(i).iter().map(|v| format!("{v:.4}")))
                .collect()
        })
        .collect();
    format_table(&headers, &rows)
}

/// A seeded Gaussian-mixture workload: `m` rows, `n` attributes, `k`
/// clusters of unit spread separated by `separation`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WorkloadSpec {
    /// Number of objects.
    pub rows: usize,
    /// Number of attributes.
    pub cols: usize,
    /// Number of mixture components.
    pub k: usize,
    /// RNG seed.
    pub seed: u64,
}

/// A generated workload: data plus ground-truth labels.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The raw data matrix.
    pub matrix: Matrix,
    /// Ground-truth component of each row.
    pub labels: Vec<usize>,
}

/// Process-wide workload cache so repeated bench iterations do not pay
/// generation cost (criterion calls setup closures many times).
static WORKLOAD_CACHE: Mutex<Option<HashMap<WorkloadSpec, Workload>>> = Mutex::new(None);

/// Generates (or fetches from cache) the standard mixture workload.
pub fn workload(spec: WorkloadSpec) -> Workload {
    let mut guard = WORKLOAD_CACHE.lock();
    let cache = guard.get_or_insert_with(HashMap::new);
    cache
        .entry(spec)
        .or_insert_with(|| {
            let mut rng = StdRng::seed_from_u64(spec.seed);
            let gm = GaussianMixture::well_separated(spec.k, spec.cols, 12.0, 1.0)
                .expect("spec is valid");
            let data = gm.sample(spec.rows, &mut rng);
            Workload {
                matrix: data.matrix,
                labels: data.labels,
            }
        })
        .clone()
}

/// Normalizes a matrix and runs RBT with a uniform threshold — the standard
/// release used across experiments. Returns (normalized, released).
pub fn rbt_release(matrix: &Matrix, rho: f64, seed: u64) -> (Matrix, Matrix) {
    let (_, normalized) = Normalization::zscore_paper()
        .fit_transform(matrix)
        .expect("workloads are non-degenerate");
    let mut rng = StdRng::seed_from_u64(seed);
    let out = RbtTransformer::new(RbtConfig::uniform(
        PairwiseSecurityThreshold::uniform(rho).expect("rho > 0"),
    ))
    .transform(&normalized, &mut rng)
    .expect("uniform rho is satisfiable on normalized data");
    (normalized, out.transformed)
}

/// Times a closure, returning (result, seconds).
pub fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_formatting_aligns() {
        let s = format_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1.0".into()],
                vec!["long-name".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows are the same width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert!(lines[3].contains("long-name"));
    }

    #[test]
    fn workload_cache_returns_identical_data() {
        let spec = WorkloadSpec {
            rows: 50,
            cols: 3,
            k: 2,
            seed: 1,
        };
        let a = workload(spec);
        let b = workload(spec);
        assert_eq!(a.matrix, b.matrix);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn rbt_release_is_isometric() {
        let spec = WorkloadSpec {
            rows: 80,
            cols: 4,
            k: 3,
            seed: 2,
        };
        let w = workload(spec);
        let (normalized, released) = rbt_release(&w.matrix, 0.3, 7);
        assert!(rbt_core::isometry::dissimilarity_drift(&normalized, &released) < 1e-9);
    }

    #[test]
    fn format_matrix_includes_labels() {
        let m = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        let s = format_matrix(&m, Some(&["row0".into()]), &["a".into(), "b".into()]);
        assert!(s.contains("row0"));
        assert!(s.contains("1.0000"));
    }
}
