//! Dense linear algebra, statistics, and distance substrate for the RBT
//! privacy-preserving clustering suite.
//!
//! This crate implements every numerical primitive the paper
//! *"Achieving Privacy Preservation When Sharing Data For Clustering"*
//! (Oliveira & Zaïane, 2004) relies on:
//!
//! * [`Matrix`] — the data matrix of §3.2 (row = object, column = attribute),
//! * [`stats`] — sample/population variance (Eq. 8), covariance, correlation,
//! * [`rotation`] — the 2-D clockwise rotation matrix of Eq. 1 and its n-D
//!   (Givens) generalisation,
//! * [`distance`] — Euclidean (Eq. 6), Manhattan (Eq. 7) and related metrics,
//! * [`dissimilarity`] — the condensed dissimilarity matrix of §3.3,
//! * [`eigen`] — cyclic-Jacobi symmetric eigendecomposition (used by the
//!   PCA-based attack in `rbt-attack`),
//! * [`solve`] — Gaussian elimination and least squares (used by the
//!   known-sample attack),
//! * [`kernels`] — unrolled, auto-vectorizable distance kernels (the engine
//!   under dissimilarity construction and k-means assignment),
//! * [`pool`] — the shared scoped thread pool and work-partition helpers
//!   every parallel hot path in the workspace runs on,
//! * [`codec`] — little-endian byte writer/reader and CRC-32, the
//!   persistence substrate under the release-session key files.
//!
//! The crate has no `unsafe` code and no dependencies: parallelism is
//! `std::thread::scope` via [`pool`].
//!
//! # Example
//!
//! ```
//! use rbt_linalg::{Matrix, distance::Metric};
//!
//! let d = Matrix::from_rows(&[&[0.0, 0.0], &[3.0, 4.0]]).unwrap();
//! let dm = rbt_linalg::dissimilarity::DissimilarityMatrix::from_matrix(&d, Metric::Euclidean);
//! assert_eq!(dm.get(0, 1), 5.0);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod codec;
pub mod dissimilarity;
pub mod distance;
pub mod eigen;
pub mod kernels;
pub mod matrix;
pub mod ops;
pub mod pool;
pub mod rotation;
pub mod solve;
pub mod stats;

pub use matrix::Matrix;
pub use rotation::Rotation2;
pub use stats::VarianceMode;

use std::fmt;

/// Errors produced by the linear-algebra substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// Two operands had incompatible shapes.
    DimensionMismatch {
        /// Human-readable description of the expected shape.
        expected: String,
        /// Human-readable description of the shape that was found.
        found: String,
    },
    /// An operation that requires a square matrix received a rectangular one.
    NotSquare {
        /// Number of rows of the offending matrix.
        rows: usize,
        /// Number of columns of the offending matrix.
        cols: usize,
    },
    /// An operation that requires a symmetric matrix received an asymmetric one.
    NotSymmetric,
    /// A matrix was numerically singular (or the system had no unique solution).
    Singular,
    /// The input was empty where at least one element is required.
    Empty,
    /// An iterative routine failed to converge within its iteration budget.
    NoConvergence {
        /// The iteration budget that was exhausted.
        iterations: usize,
    },
    /// An index was out of bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The exclusive upper bound.
        bound: usize,
    },
    /// A numeric argument was invalid (NaN, non-positive where positive is
    /// required, and so on).
    InvalidArgument(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            Error::NotSquare { rows, cols } => {
                write!(f, "matrix is not square: {rows}x{cols}")
            }
            Error::NotSymmetric => write!(f, "matrix is not symmetric"),
            Error::Singular => write!(f, "matrix is singular"),
            Error::Empty => write!(f, "input is empty"),
            Error::NoConvergence { iterations } => {
                write!(f, "no convergence after {iterations} iterations")
            }
            Error::IndexOutOfBounds { index, bound } => {
                write!(f, "index {index} out of bounds (len {bound})")
            }
            Error::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;
