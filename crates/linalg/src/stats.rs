//! Descriptive statistics: mean, variance, covariance, correlation.
//!
//! The paper is internally inconsistent about the variance divisor: its
//! Eq. (8) defines `Var` with a `1/N` (population) divisor, yet every number
//! in the running example (Tables 2–6, the Var(A − A') security checks) uses
//! the Bessel-corrected `1/(N−1)` (sample) divisor. [`VarianceMode`] makes
//! the divisor explicit everywhere; the paper-matching default used by the
//! higher layers is [`VarianceMode::Sample`].

use crate::{Error, Matrix, Result};

/// Which divisor to use for variance-like quantities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VarianceMode {
    /// `1/N` divisor — the definition printed as Eq. (8) in the paper.
    Population,
    /// `1/(N−1)` divisor — what the paper's example numbers actually use.
    #[default]
    Sample,
}

impl VarianceMode {
    /// The divisor for `n` observations.
    ///
    /// For `Sample` mode with `n == 1` the divisor degenerates; we return
    /// `1.0` so that a singleton has variance 0 rather than NaN.
    #[inline]
    pub fn divisor(self, n: usize) -> f64 {
        match self {
            VarianceMode::Population => n as f64,
            VarianceMode::Sample => {
                if n > 1 {
                    (n - 1) as f64
                } else {
                    1.0
                }
            }
        }
    }
}

/// Arithmetic mean.
///
/// # Errors
///
/// Returns [`Error::Empty`] for an empty slice.
pub fn mean(xs: &[f64]) -> Result<f64> {
    mean_of(xs.iter().copied())
}

/// Arithmetic mean of a streamed column — the allocation-free companion of
/// [`mean`], used with [`Matrix::column_iter`](crate::Matrix::column_iter)
/// so column scans never materialise a `Vec`. Summation order matches the
/// slice version, so the two agree bit-for-bit.
///
/// # Errors
///
/// Returns [`Error::Empty`] for an empty iterator.
pub fn mean_of(xs: impl Iterator<Item = f64>) -> Result<f64> {
    let mut sum = 0.0;
    let mut count = 0usize;
    for x in xs {
        sum += x;
        count += 1;
    }
    if count == 0 {
        return Err(Error::Empty);
    }
    Ok(sum / count as f64)
}

/// Variance of `xs` under the given [`VarianceMode`].
///
/// With `Population` mode this is exactly Eq. (8) of the paper.
///
/// # Errors
///
/// Returns [`Error::Empty`] for an empty slice.
pub fn variance(xs: &[f64], mode: VarianceMode) -> Result<f64> {
    variance_of(xs.iter().copied(), mode)
}

/// Two-pass variance of a streamed column (`Clone` lets the iterator be
/// walked once for the mean and once for the centred sum of squares) —
/// the allocation-free companion of [`variance`].
///
/// # Errors
///
/// Returns [`Error::Empty`] for an empty iterator.
pub fn variance_of(xs: impl Iterator<Item = f64> + Clone, mode: VarianceMode) -> Result<f64> {
    let m = mean_of(xs.clone())?;
    let mut ss = 0.0;
    let mut count = 0usize;
    for x in xs {
        ss += (x - m) * (x - m);
        count += 1;
    }
    Ok(ss / mode.divisor(count))
}

/// Standard deviation under the given [`VarianceMode`].
///
/// # Errors
///
/// Returns [`Error::Empty`] for an empty slice.
pub fn std_dev(xs: &[f64], mode: VarianceMode) -> Result<f64> {
    variance(xs, mode).map(f64::sqrt)
}

/// Covariance of two equal-length slices under the given [`VarianceMode`].
///
/// # Errors
///
/// Returns [`Error::Empty`] for empty input and [`Error::DimensionMismatch`]
/// for unequal lengths.
pub fn covariance(xs: &[f64], ys: &[f64], mode: VarianceMode) -> Result<f64> {
    if xs.len() != ys.len() {
        return Err(Error::DimensionMismatch {
            expected: format!("slice of length {}", xs.len()),
            found: format!("slice of length {}", ys.len()),
        });
    }
    let mx = mean(xs)?;
    let my = mean(ys)?;
    let ss: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    Ok(ss / mode.divisor(xs.len()))
}

/// Pearson correlation coefficient.
///
/// The result is divisor-independent (the divisors cancel), so no
/// [`VarianceMode`] parameter is needed.
///
/// # Errors
///
/// Propagates errors from [`covariance`]; returns
/// [`Error::InvalidArgument`] when either slice has zero variance.
pub fn correlation(xs: &[f64], ys: &[f64]) -> Result<f64> {
    let mode = VarianceMode::Population;
    let c = covariance(xs, ys, mode)?;
    let vx = variance(xs, mode)?;
    let vy = variance(ys, mode)?;
    if vx == 0.0 || vy == 0.0 {
        return Err(Error::InvalidArgument(
            "correlation undefined for constant input".into(),
        ));
    }
    Ok(c / (vx * vy).sqrt())
}

/// Variance of the element-wise difference `x − y`.
///
/// This is the paper's security measure building block: the security offered
/// by a perturbation is `Var(X − X')` (§4.2, Pairwise-Security Threshold).
///
/// # Errors
///
/// Same conditions as [`covariance`].
pub fn variance_of_difference(xs: &[f64], ys: &[f64], mode: VarianceMode) -> Result<f64> {
    if xs.len() != ys.len() {
        return Err(Error::DimensionMismatch {
            expected: format!("slice of length {}", xs.len()),
            found: format!("slice of length {}", ys.len()),
        });
    }
    let diff: Vec<f64> = xs.iter().zip(ys).map(|(x, y)| x - y).collect();
    variance(&diff, mode)
}

/// Per-column means of a data matrix.
///
/// # Errors
///
/// Returns [`Error::Empty`] for a matrix with no rows.
pub fn column_means(m: &Matrix) -> Result<Vec<f64>> {
    if m.rows() == 0 {
        return Err(Error::Empty);
    }
    let mut sums = vec![0.0; m.cols()];
    for row in m.row_iter() {
        for (s, &x) in sums.iter_mut().zip(row) {
            *s += x;
        }
    }
    let n = m.rows() as f64;
    for s in &mut sums {
        *s /= n;
    }
    Ok(sums)
}

/// Per-column variances of a data matrix.
///
/// # Errors
///
/// Returns [`Error::Empty`] for a matrix with no rows.
pub fn column_variances(m: &Matrix, mode: VarianceMode) -> Result<Vec<f64>> {
    let means = column_means(m)?;
    let mut ss = vec![0.0; m.cols()];
    for row in m.row_iter() {
        for ((s, &x), &mu) in ss.iter_mut().zip(row).zip(&means) {
            let d = x - mu;
            *s += d * d;
        }
    }
    let div = mode.divisor(m.rows());
    for s in &mut ss {
        *s /= div;
    }
    Ok(ss)
}

/// Covariance matrix (columns as variables) of a data matrix.
///
/// # Errors
///
/// Returns [`Error::Empty`] for a matrix with no rows.
pub fn covariance_matrix(m: &Matrix, mode: VarianceMode) -> Result<Matrix> {
    let means = column_means(m)?;
    let n = m.cols();
    let mut cov = Matrix::zeros(n, n);
    for row in m.row_iter() {
        for j in 0..n {
            let dj = row[j] - means[j];
            for k in j..n {
                let dk = row[k] - means[k];
                cov[(j, k)] += dj * dk;
            }
        }
    }
    let div = mode.divisor(m.rows());
    for j in 0..n {
        for k in j..n {
            let v = cov[(j, k)] / div;
            cov[(j, k)] = v;
            cov[(k, j)] = v;
        }
    }
    Ok(cov)
}

/// Minimum and maximum of a slice.
///
/// # Errors
///
/// Returns [`Error::Empty`] for an empty slice.
pub fn min_max(xs: &[f64]) -> Result<(f64, f64)> {
    min_max_of(xs.iter().copied())
}

/// Minimum and maximum of a streamed column — the allocation-free
/// companion of [`min_max`].
///
/// # Errors
///
/// Returns [`Error::Empty`] for an empty iterator.
pub fn min_max_of(xs: impl Iterator<Item = f64>) -> Result<(f64, f64)> {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    let mut seen = false;
    for x in xs {
        lo = lo.min(x);
        hi = hi.max(x);
        seen = true;
    }
    if !seen {
        return Err(Error::Empty);
    }
    Ok((lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    const AGE: [f64; 5] = [75.0, 56.0, 40.0, 28.0, 44.0];
    const HR: [f64; 5] = [63.0, 53.0, 70.0, 76.0, 68.0];

    #[test]
    fn mean_known() {
        assert!((mean(&AGE).unwrap() - 48.6).abs() < 1e-12);
        assert!(mean(&[]).is_err());
    }

    #[test]
    fn variance_population_matches_eq8() {
        // Eq. (8): 1/N * sum (x - mean)^2 on the paper's age column.
        assert!((variance(&AGE, VarianceMode::Population).unwrap() - 254.24).abs() < 1e-10);
    }

    #[test]
    fn variance_sample_matches_paper_normalization() {
        // The z-scores in Table 2 only reproduce with the 1/(N-1) divisor:
        // std(age) = sqrt(1271.2/4) = 17.8269..., so z(75) = 26.4/17.8269 = 1.4809.
        let sd = std_dev(&AGE, VarianceMode::Sample).unwrap();
        assert!(((75.0 - 48.6) / sd - 1.4809).abs() < 1e-4);
    }

    #[test]
    fn variance_singleton_is_zero() {
        assert_eq!(variance(&[5.0], VarianceMode::Sample).unwrap(), 0.0);
        assert_eq!(variance(&[5.0], VarianceMode::Population).unwrap(), 0.0);
    }

    #[test]
    fn covariance_symmetry_and_self() {
        let cxy = covariance(&AGE, &HR, VarianceMode::Sample).unwrap();
        let cyx = covariance(&HR, &AGE, VarianceMode::Sample).unwrap();
        assert!((cxy - cyx).abs() < 1e-12);
        let cxx = covariance(&AGE, &AGE, VarianceMode::Sample).unwrap();
        let vx = variance(&AGE, VarianceMode::Sample).unwrap();
        assert!((cxx - vx).abs() < 1e-12);
        assert!(covariance(&AGE, &HR[..3], VarianceMode::Sample).is_err());
    }

    #[test]
    fn correlation_bounds_and_known_sign() {
        let r = correlation(&AGE, &HR).unwrap();
        assert!((-1.0..=1.0).contains(&r));
        // Age and heart rate are negatively correlated in the paper's sample.
        assert!(r < 0.0);
        // Perfect correlation with self.
        assert!((correlation(&AGE, &AGE).unwrap() - 1.0).abs() < 1e-12);
        assert!(correlation(&[1.0, 1.0], &[2.0, 3.0]).is_err());
    }

    #[test]
    fn variance_of_difference_zero_for_identical() {
        assert_eq!(
            variance_of_difference(&AGE, &AGE, VarianceMode::Sample).unwrap(),
            0.0
        );
        assert!(variance_of_difference(&AGE, &HR[..2], VarianceMode::Sample).is_err());
    }

    #[test]
    fn column_stats_match_scalar_versions() {
        let m = Matrix::from_columns(&[&AGE, &HR]).unwrap();
        let means = column_means(&m).unwrap();
        assert!((means[0] - mean(&AGE).unwrap()).abs() < 1e-12);
        assert!((means[1] - mean(&HR).unwrap()).abs() < 1e-12);
        let vars = column_variances(&m, VarianceMode::Sample).unwrap();
        assert!((vars[0] - variance(&AGE, VarianceMode::Sample).unwrap()).abs() < 1e-12);
        assert!((vars[1] - variance(&HR, VarianceMode::Sample).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn covariance_matrix_is_consistent() {
        let m = Matrix::from_columns(&[&AGE, &HR]).unwrap();
        let cov = covariance_matrix(&m, VarianceMode::Sample).unwrap();
        assert!(cov.is_symmetric(1e-12));
        assert!((cov[(0, 1)] - covariance(&AGE, &HR, VarianceMode::Sample).unwrap()).abs() < 1e-12);
        assert!((cov[(0, 0)] - variance(&AGE, VarianceMode::Sample).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn min_max_known() {
        assert_eq!(min_max(&AGE).unwrap(), (28.0, 75.0));
        assert!(min_max(&[]).is_err());
    }

    #[test]
    fn streamed_variants_bitwise_match_slice_versions() {
        let m = Matrix::from_columns(&[&AGE, &HR]).unwrap();
        for j in 0..2 {
            let col = m.column(j);
            assert_eq!(mean_of(m.column_iter(j)).unwrap(), mean(&col).unwrap());
            for mode in [VarianceMode::Population, VarianceMode::Sample] {
                assert_eq!(
                    variance_of(m.column_iter(j), mode).unwrap(),
                    variance(&col, mode).unwrap()
                );
            }
            assert_eq!(
                min_max_of(m.column_iter(j)).unwrap(),
                min_max(&col).unwrap()
            );
        }
        assert!(mean_of(std::iter::empty()).is_err());
        assert!(variance_of(std::iter::empty(), VarianceMode::Sample).is_err());
        assert!(min_max_of(std::iter::empty()).is_err());
    }

    #[test]
    fn divisor_edge_cases() {
        assert_eq!(VarianceMode::Population.divisor(4), 4.0);
        assert_eq!(VarianceMode::Sample.divisor(4), 3.0);
        assert_eq!(VarianceMode::Sample.divisor(1), 1.0);
    }
}
