//! Dense row-major matrix of `f64` values.
//!
//! This is the *data matrix* of §3.2 of the paper: `m` rows (objects) by `n`
//! columns (attributes). Storage is a single contiguous `Vec<f64>` in
//! row-major order, which keeps row access (the hot path for distance
//! computations) cache-friendly.

use crate::{Error, Result};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major `m × n` matrix of `f64`.
///
/// Rows represent objects and columns represent attributes, matching the
/// paper's data-matrix convention (Eq. 2).
///
/// # Example
///
/// ```
/// use rbt_linalg::Matrix;
///
/// let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
/// assert_eq!(m.shape(), (2, 2));
/// assert_eq!(m[(1, 0)], 3.0);
/// assert_eq!(m.column(1), vec![2.0, 4.0]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates an `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates an `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 0.0)
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(Error::DimensionMismatch {
                expected: format!("{rows}x{cols} = {} elements", rows * cols),
                found: format!("{} elements", data.len()),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Empty`] if `rows` is empty and
    /// [`Error::DimensionMismatch`] if the rows are ragged.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        let first = rows.first().ok_or(Error::Empty)?;
        let cols = first.len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != cols {
                return Err(Error::DimensionMismatch {
                    expected: format!("row of length {cols}"),
                    found: format!("row {i} of length {}", row.len()),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Creates a matrix from an iterator of owned rows.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Matrix::from_rows`].
    pub fn from_row_iter<I, R>(iter: I) -> Result<Self>
    where
        I: IntoIterator<Item = R>,
        R: AsRef<[f64]>,
    {
        let mut data = Vec::new();
        let mut cols = None;
        let mut rows = 0usize;
        for row in iter {
            let row = row.as_ref();
            match cols {
                None => cols = Some(row.len()),
                Some(c) if c != row.len() => {
                    return Err(Error::DimensionMismatch {
                        expected: format!("row of length {c}"),
                        found: format!("row {rows} of length {}", row.len()),
                    })
                }
                _ => {}
            }
            data.extend_from_slice(row);
            rows += 1;
        }
        let cols = cols.ok_or(Error::Empty)?;
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a matrix from columns instead of rows.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Empty`] for no columns, [`Error::DimensionMismatch`]
    /// for ragged columns.
    pub fn from_columns(columns: &[&[f64]]) -> Result<Self> {
        let first = columns.first().ok_or(Error::Empty)?;
        let rows = first.len();
        for (j, col) in columns.iter().enumerate() {
            if col.len() != rows {
                return Err(Error::DimensionMismatch {
                    expected: format!("column of length {rows}"),
                    found: format!("column {j} of length {}", col.len()),
                });
            }
        }
        let cols = columns.len();
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for col in columns {
                data.push(col[i]);
            }
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows (objects).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (attributes).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` if the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// `true` if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow of the flat row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable borrow of the flat row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns its flat row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow of row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a freshly allocated `Vec`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    pub fn column(&self, j: usize) -> Vec<f64> {
        assert!(
            j < self.cols,
            "column index {j} out of bounds ({})",
            self.cols
        );
        (0..self.rows)
            .map(|i| self.data[i * self.cols + j])
            .collect()
    }

    /// Allocation-free strided iterator over column `j`.
    ///
    /// The iterator is `Clone`, so two-pass statistics (mean, then centred
    /// moments) can re-walk the column without materialising it — the
    /// normalizer fitting path in `rbt-data` relies on this instead of the
    /// `Vec`-allocating [`column`](Self::column).
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    pub fn column_iter(&self, j: usize) -> impl ExactSizeIterator<Item = f64> + Clone + '_ {
        assert!(
            j < self.cols,
            "column index {j} out of bounds ({})",
            self.cols
        );
        // `get` instead of slicing: a 0×n matrix has an empty buffer, and
        // `data[j..]` would panic for j > 0 there.
        self.data
            .get(j..)
            .unwrap_or(&[])
            .iter()
            .step_by(self.cols)
            .copied()
    }

    /// Copies column `j` into `out` (clearing it first), avoiding an
    /// allocation when a workhorse buffer is available.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    pub fn column_into(&self, j: usize, out: &mut Vec<f64>) {
        assert!(
            j < self.cols,
            "column index {j} out of bounds ({})",
            self.cols
        );
        out.clear();
        out.extend((0..self.rows).map(|i| self.data[i * self.cols + j]));
    }

    /// Overwrites column `j` with `values`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `values.len() != rows`;
    /// [`Error::IndexOutOfBounds`] if `j >= cols`.
    pub fn set_column(&mut self, j: usize, values: &[f64]) -> Result<()> {
        if j >= self.cols {
            return Err(Error::IndexOutOfBounds {
                index: j,
                bound: self.cols,
            });
        }
        if values.len() != self.rows {
            return Err(Error::DimensionMismatch {
                expected: format!("{} values", self.rows),
                found: format!("{} values", values.len()),
            });
        }
        for (i, &v) in values.iter().enumerate() {
            self.data[i * self.cols + j] = v;
        }
        Ok(())
    }

    /// Iterator over rows as slices.
    pub fn row_iter(&self) -> impl ExactSizeIterator<Item = &[f64]> + '_ {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Rows of the left operand processed per outer panel of
    /// [`matmul`](Self::matmul); a 128-row × 512-col f64 panel is 512 KiB,
    /// comfortably L2-resident alongside the `rhs` column panel it is
    /// multiplied against.
    const MATMUL_ROW_PANEL: usize = 128;
    /// Register-tile height of the matmul micro-kernel (rows of output
    /// accumulated in locals per pass).
    const MATMUL_MR: usize = 4;
    /// Register-tile width of the matmul micro-kernel — 8 f64 is one full
    /// AVX-512 register (two AVX2 registers), so a 4×8 tile keeps the
    /// accumulators and the broadcast `a` values entirely in registers.
    const MATMUL_NR: usize = 8;

    /// Matrix product `self * rhs`.
    ///
    /// Register-blocked: the output is computed in 4×8 tiles, each held in
    /// local accumulators for the whole `k` loop, so every multiply-add
    /// hits registers instead of the output buffer and the 8-wide rows
    /// auto-vectorize. Each `rhs` column panel is packed into a contiguous
    /// scratch buffer before its tiles run — the panel's rows sit one full
    /// matrix row apart, and at power-of-two widths that stride aliases a
    /// handful of cache sets, which is exactly the size class this path
    /// exists for. An outer 128-row panel over `self` keeps the re-walked
    /// left operand L2-resident.
    ///
    /// For each output element `k` increases monotonically and the tile
    /// accumulator starts from the same `0.0` the zeroed output buffer
    /// provides, so the operation sequence per element is exactly that of
    /// [`matmul_naive`](Self::matmul_naive) — with one deliberate
    /// difference: the micro-kernel accumulates every term, including
    /// products with a zero left operand that the naive loop skips. For
    /// finite operands that cannot change a single bit: a `±0.0` product
    /// added to an accumulator leaves it unchanged, because a sum that
    /// starts at `+0.0` can never become `-0.0` (IEEE-754 round-to-nearest
    /// gives `x + (−x) = +0.0` and `+0.0 + −0.0 = +0.0`). The property
    /// suite pins blocked ≡ naive bit-for-bit on zero-laden inputs.
    /// Operands that fit in cache skip the tile bookkeeping and take the
    /// straight loops, which is safe precisely because the two paths agree
    /// bit-for-bit.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `self.cols != rhs.rows`.
    // Indexed loops mirror the naive kernel; iterator chains here would
    // obscure the accumulation-order argument above.
    #[allow(clippy::needless_range_loop)]
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(Error::DimensionMismatch {
                expected: format!("rhs with {} rows", self.cols),
                found: format!("rhs with {} rows", rhs.rows),
            });
        }
        if self.rows.max(self.cols).max(rhs.cols) <= 512 {
            return self.matmul_naive(rhs);
        }
        let (n, rc) = (self.cols, rhs.cols);
        let mut out = Matrix::zeros(self.rows, rc);
        const MR: usize = Matrix::MATMUL_MR;
        const NR: usize = Matrix::MATMUL_NR;
        let mut packed = vec![0.0f64; n * NR];
        for ii0 in (0..self.rows).step_by(Self::MATMUL_ROW_PANEL) {
            let i_hi = (ii0 + Self::MATMUL_ROW_PANEL).min(self.rows);
            let mut jj = 0usize;
            while jj + NR <= rc {
                // Pack the column panel: bit-identical values, contiguous
                // layout (see the cache-aliasing note above).
                for k in 0..n {
                    packed[k * NR..k * NR + NR]
                        .copy_from_slice(&rhs.data[k * rc + jj..k * rc + jj + NR]);
                }
                let mut ii = ii0;
                while ii + MR <= i_hi {
                    let mut acc = [[0.0f64; NR]; MR];
                    for k in 0..n {
                        let brow = &packed[k * NR..k * NR + NR];
                        for (r, accr) in acc.iter_mut().enumerate() {
                            let a = self.data[(ii + r) * n + k];
                            for (o, &b) in accr.iter_mut().zip(brow) {
                                *o += a * b;
                            }
                        }
                    }
                    for (r, accr) in acc.iter().enumerate() {
                        let dst = (ii + r) * rc + jj;
                        out.data[dst..dst + NR].copy_from_slice(accr);
                    }
                    ii += MR;
                }
                // Panel rows left over below the MR tile height: 1×8 tiles.
                for i in ii..i_hi {
                    let mut acc = [0.0f64; NR];
                    for k in 0..n {
                        let a = self.data[i * n + k];
                        let brow = &packed[k * NR..k * NR + NR];
                        for (o, &b) in acc.iter_mut().zip(brow) {
                            *o += a * b;
                        }
                    }
                    let dst = i * rc + jj;
                    out.data[dst..dst + NR].copy_from_slice(&acc);
                }
                jj += NR;
            }
            // Columns left over below the NR tile width: straight i-k-j
            // accumulation into the (already zeroed) output — same per-
            // element operation sequence again.
            if jj < rc {
                for i in ii0..i_hi {
                    let a_row = &self.data[i * n..(i + 1) * n];
                    for k in 0..n {
                        let a = a_row[k];
                        let brow = &rhs.data[k * rc + jj..(k + 1) * rc];
                        let out_row = &mut out.data[i * rc + jj..(i + 1) * rc];
                        for (o, &b) in out_row.iter_mut().zip(brow) {
                            *o += a * b;
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// Unblocked reference implementation of [`matmul`](Self::matmul)
    /// (straight `i-k-j` loops). Kept public so property tests and the
    /// kernel benches can compare the blocked product against it — the two
    /// share one accumulation order and agree bit-for-bit.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `self.cols != rhs.rows`.
    pub fn matmul_naive(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(Error::DimensionMismatch {
                expected: format!("rhs with {} rows", self.cols),
                found: format!("rhs with {} rows", rhs.rows),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Applies the plane rotation `[c s; -s c]` (the paper's Eq. 1 with
    /// `c = cos θ`, `s = sin θ`) to columns `i` and `j` in place, in a
    /// single sweep over the rows:
    /// `(x, y) ← (x·c + y·s, −x·s + y·c)`.
    ///
    /// This is the allocation-free form of extract-rotate-write-back
    /// (`column_into` → [`Rotation2::apply_columns`] → `set_column`): the
    /// arithmetic per element is identical expression-for-expression, so
    /// the two paths produce bit-identical matrices, but this one touches
    /// each row once instead of five strided passes and two buffers.
    ///
    /// [`Rotation2::apply_columns`]: crate::Rotation2::apply_columns
    ///
    /// # Errors
    ///
    /// Returns [`Error::IndexOutOfBounds`] if either column index is out of
    /// range and [`Error::InvalidArgument`] if `i == j`.
    pub fn rotate_column_pair(&mut self, i: usize, j: usize, c: f64, s: f64) -> Result<()> {
        if i == j {
            return Err(Error::InvalidArgument(
                "plane rotation requires two distinct columns".into(),
            ));
        }
        for &k in &[i, j] {
            if k >= self.cols {
                return Err(Error::IndexOutOfBounds {
                    index: k,
                    bound: self.cols,
                });
            }
        }
        rotate_pair_in_rows(&mut self.data, self.cols, i, j, c, s);
        Ok(())
    }

    /// Applies the plane rotation `[c s; -s c]` to **rows** `i` and `j` in
    /// place: `(rowᵢ, rowⱼ) ← (c·rowᵢ + s·rowⱼ, −s·rowᵢ + c·rowⱼ)`.
    ///
    /// Left-multiplying by the Givens matrix `G(i, j, θ)` only changes rows
    /// `i` and `j`, so composing a sequence of plane rotations into one
    /// orthogonal matrix needs O(n) work per step with this sweep instead
    /// of an O(n³) (or zero-skipping O(n²)) full matmul — the accumulation
    /// order per element matches the `G.matmul(acc)` it replaces.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IndexOutOfBounds`] if either row index is out of
    /// range and [`Error::InvalidArgument`] if `i == j`.
    pub fn rotate_row_pair(&mut self, i: usize, j: usize, c: f64, s: f64) -> Result<()> {
        if i == j {
            return Err(Error::InvalidArgument(
                "plane rotation requires two distinct rows".into(),
            ));
        }
        for &k in &[i, j] {
            if k >= self.rows {
                return Err(Error::IndexOutOfBounds {
                    index: k,
                    bound: self.rows,
                });
            }
        }
        let cols = self.cols;
        let (lo, hi) = (i.min(j), i.max(j));
        let (head, tail) = self.data.split_at_mut(hi * cols);
        let row_lo = &mut head[lo * cols..(lo + 1) * cols];
        let row_hi = &mut tail[..cols];
        // Orient so the arithmetic matches (rowᵢ, rowⱼ) regardless of which
        // index is smaller.
        let (row_i, row_j) = if i < j {
            (row_lo, row_hi)
        } else {
            (row_hi, row_lo)
        };
        for (x, y) in row_i.iter_mut().zip(row_j.iter_mut()) {
            let nx = *x * c + *y * s;
            let ny = -*x * s + *y * c;
            *x = nx;
            *y = ny;
        }
        Ok(())
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `v.len() != cols`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(Error::DimensionMismatch {
                expected: format!("vector of length {}", self.cols),
                found: format!("vector of length {}", v.len()),
            });
        }
        Ok(self
            .row_iter()
            .map(|row| row.iter().zip(v).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Element-wise map into a new matrix.
    pub fn map(&self, mut f: impl FnMut(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Element-wise difference `self - rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] on shape mismatch.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(Error::DimensionMismatch {
                expected: format!("{}x{}", self.rows, self.cols),
                found: format!("{}x{}", rhs.rows, rhs.cols),
            });
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        })
    }

    /// Maximum absolute element-wise difference between two same-shape
    /// matrices; `None` on shape mismatch.
    pub fn max_abs_diff(&self, rhs: &Matrix) -> Option<f64> {
        if self.shape() != rhs.shape() {
            return None;
        }
        Some(
            self.data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max),
        )
    }

    /// `true` if every element of the two matrices differs by at most `tol`.
    pub fn approx_eq(&self, rhs: &Matrix, tol: f64) -> bool {
        matches!(self.max_abs_diff(rhs), Some(d) if d <= tol)
    }

    /// `true` if the matrix is symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Returns a new matrix consisting of the selected columns, in order.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IndexOutOfBounds`] if any index is out of range and
    /// [`Error::Empty`] if `indices` is empty.
    pub fn select_columns(&self, indices: &[usize]) -> Result<Matrix> {
        if indices.is_empty() {
            return Err(Error::Empty);
        }
        for &j in indices {
            if j >= self.cols {
                return Err(Error::IndexOutOfBounds {
                    index: j,
                    bound: self.cols,
                });
            }
        }
        let mut data = Vec::with_capacity(self.rows * indices.len());
        for i in 0..self.rows {
            let row = self.row(i);
            data.extend(indices.iter().map(|&j| row[j]));
        }
        Ok(Matrix {
            rows: self.rows,
            cols: indices.len(),
            data,
        })
    }

    /// Returns a new matrix consisting of the selected rows, in order.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IndexOutOfBounds`] if any index is out of range and
    /// [`Error::Empty`] if `indices` is empty.
    pub fn select_rows(&self, indices: &[usize]) -> Result<Matrix> {
        if indices.is_empty() {
            return Err(Error::Empty);
        }
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            if i >= self.rows {
                return Err(Error::IndexOutOfBounds {
                    index: i,
                    bound: self.rows,
                });
            }
            data.extend_from_slice(self.row(i));
        }
        Ok(Matrix {
            rows: indices.len(),
            cols: self.cols,
            data,
        })
    }

    /// Appends a row to the bottom of the matrix.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `row.len() != cols`.
    pub fn push_row(&mut self, row: &[f64]) -> Result<()> {
        if self.rows == 0 && self.cols == 0 {
            self.cols = row.len();
        }
        if row.len() != self.cols {
            return Err(Error::DimensionMismatch {
                expected: format!("row of length {}", self.cols),
                found: format!("row of length {}", row.len()),
            });
        }
        self.data.extend_from_slice(row);
        self.rows += 1;
        Ok(())
    }

    /// Frobenius norm `sqrt(sum of squares)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// `true` when any element is NaN or infinite. Numerical algorithms in
    /// this workspace validate with this at their API boundary rather than
    /// silently propagating NaNs.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// Overwrites `self` with the shape and contents of `src`, reusing the
    /// existing buffer when it has capacity.
    ///
    /// This is the allocation-free analogue of `*self = src.clone()`: after
    /// the first fill a caller-owned output matrix absorbs batch after
    /// batch without touching the allocator, which is what the
    /// release-session `*_into` streaming APIs lean on.
    pub fn copy_from(&mut self, src: &Matrix) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Splits the columns into bands of at most `max_width` columns and
    /// yields a streaming [`ColumnChunk`] view of each (a `max_width` of 0
    /// is treated as 1).
    ///
    /// Row-major storage scatters one column across the whole buffer, so
    /// per-column passes ([`column_iter`](Self::column_iter)) re-stream the
    /// entire matrix once per column. Walking a column *band* row by row
    /// instead touches every cache line exactly once per pass, while each
    /// column still sees its elements in row order — bit-identical
    /// accumulation, contiguous memory. Normalizer fits and drift-bound
    /// scans in the higher layers stream through this view.
    pub fn column_chunks(&self, max_width: usize) -> impl Iterator<Item = ColumnChunk<'_>> {
        let max_width = max_width.max(1);
        let (data, n_cols) = (self.data.as_slice(), self.cols);
        (0..n_cols)
            .step_by(max_width)
            .map(move |start| ColumnChunk {
                data,
                n_cols,
                start,
                end: (start + max_width).min(n_cols),
            })
    }
}

/// A contiguous band of columns `[start, end)` of a row-major matrix,
/// yielded by [`Matrix::column_chunks`].
#[derive(Debug, Clone, Copy)]
pub struct ColumnChunk<'a> {
    data: &'a [f64],
    n_cols: usize,
    start: usize,
    end: usize,
}

impl<'a> ColumnChunk<'a> {
    /// First column (inclusive) of the band.
    #[inline]
    pub fn start(&self) -> usize {
        self.start
    }

    /// One past the last column of the band.
    #[inline]
    pub fn end(&self) -> usize {
        self.end
    }

    /// Number of columns in the band.
    #[inline]
    pub fn width(&self) -> usize {
        self.end - self.start
    }

    /// Iterator over each row's contiguous `[start, end)` segment, in row
    /// order. Per column this visits exactly the elements of
    /// [`Matrix::column_iter`] in the same order, so chunked per-column
    /// statistics match strided ones bit-for-bit.
    pub fn row_segments(&self) -> impl ExactSizeIterator<Item = &'a [f64]> + Clone {
        let (start, end) = (self.start, self.end);
        self.data
            .chunks_exact(self.n_cols)
            .map(move |row| &row[start..end])
    }
}

/// Applies the plane rotation `[c s; -s c]` to columns `i` and `j` of a
/// row-major slice of complete rows: for every row,
/// `(rowᵢ, rowⱼ) ← (c·rowᵢ + s·rowⱼ, −s·rowᵢ + c·rowⱼ)`.
///
/// This is the exact update of [`Matrix::rotate_column_pair`] (which
/// delegates here), factored out so callers that process a matrix in
/// independent row chunks — the release-session batch transformer chunks
/// through the shared [`crate::pool`] — share one arithmetic expression and
/// stay bit-identical to the whole-matrix path by construction.
///
/// Rows whose tail does not fill a complete `n_cols` stride are ignored;
/// callers are expected to pass `rows.len() % n_cols == 0` (debug-asserted).
///
/// # Panics
///
/// Debug-asserts `i`/`j` in range and distinct; release builds index out of
/// bounds (and panic) for invalid column indices, so validate upstream.
pub fn rotate_pair_in_rows(rows: &mut [f64], n_cols: usize, i: usize, j: usize, c: f64, s: f64) {
    debug_assert!(n_cols > 0 && rows.len().is_multiple_of(n_cols));
    debug_assert!(i < n_cols && j < n_cols && i != j);
    for row in rows.chunks_exact_mut(n_cols) {
        rotate_in_row(row, i, j, c, s);
    }
}

/// Applies a whole sequence of plane-rotation steps `(i, j, c, s)` — the
/// precomputed `(column i, column j, cos θ, sin θ)` of a transformation
/// key — to every row of a row-major slice of complete rows.
///
/// Instead of one whole-slice pass per step (`steps.len()` trips through
/// memory), rows are processed in blocks of four and each block receives
/// *all* steps while it is hot in registers/L1: one trip through memory no
/// matter how many rotation steps the key holds. Every `(row, step)` update
/// touches only that row's elements `i` and `j` via `rotate_in_row`'s
/// shared expression, and the per-row step order is unchanged, so the
/// result is bit-identical to looping [`rotate_pair_in_rows`] over `steps`
/// — the property suite pins that. This is the transform hot path of the
/// release session and of `TransformationKey::{apply, invert}`.
///
/// Rows whose tail does not fill a complete `n_cols` stride are ignored;
/// callers are expected to pass `rows.len() % n_cols == 0` (debug-asserted).
///
/// # Panics
///
/// Debug-asserts every step's columns in range and distinct; release
/// builds index out of bounds (and panic) for invalid indices, so validate
/// upstream.
pub fn apply_steps_in_rows(rows: &mut [f64], n_cols: usize, steps: &[(usize, usize, f64, f64)]) {
    debug_assert!(n_cols > 0 && rows.len().is_multiple_of(n_cols));
    debug_assert!(steps
        .iter()
        .all(|&(i, j, _, _)| i < n_cols && j < n_cols && i != j));
    let mut quads = rows.chunks_exact_mut(4 * n_cols);
    for quad in &mut quads {
        let (r0, rest) = quad.split_at_mut(n_cols);
        let (r1, rest) = rest.split_at_mut(n_cols);
        let (r2, r3) = rest.split_at_mut(n_cols);
        for &(i, j, c, s) in steps {
            rotate_in_row(r0, i, j, c, s);
            rotate_in_row(r1, i, j, c, s);
            rotate_in_row(r2, i, j, c, s);
            rotate_in_row(r3, i, j, c, s);
        }
    }
    for row in quads.into_remainder().chunks_exact_mut(n_cols) {
        for &(i, j, c, s) in steps {
            rotate_in_row(row, i, j, c, s);
        }
    }
}

/// The single-row plane-rotation update shared by [`rotate_pair_in_rows`]
/// and [`apply_steps_in_rows`]: `(rowᵢ, rowⱼ) ← (c·rowᵢ + s·rowⱼ,
/// −s·rowᵢ + c·rowⱼ)`. One arithmetic expression for every rotation path
/// in the workspace is what makes them bit-identical by construction.
#[inline(always)]
fn rotate_in_row(row: &mut [f64], i: usize, j: usize, c: f64, s: f64) {
    let x = row[i];
    let y = row[j];
    row[i] = x * c + y * s;
    row[j] = -x * s + y * c;
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(8) {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.4}", self[(i, j)])?;
            }
            if self.cols > 8 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn from_rows_shape_and_index() {
        let m = sample();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 2)], 6.0);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert!(matches!(err, Error::DimensionMismatch { .. }));
    }

    #[test]
    fn from_rows_rejects_empty() {
        assert_eq!(Matrix::from_rows(&[]).unwrap_err(), Error::Empty);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn from_columns_round_trips() {
        let m = Matrix::from_columns(&[&[1.0, 4.0], &[2.0, 5.0], &[3.0, 6.0]]).unwrap();
        assert_eq!(m, sample());
    }

    #[test]
    fn from_row_iter_matches_from_rows() {
        let m = Matrix::from_row_iter(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(m, sample());
    }

    #[test]
    fn column_extraction() {
        let m = sample();
        assert_eq!(m.column(0), vec![1.0, 4.0]);
        assert_eq!(m.column(2), vec![3.0, 6.0]);
        let mut buf = vec![0.0; 17];
        m.column_into(1, &mut buf);
        assert_eq!(buf, vec![2.0, 5.0]);
    }

    #[test]
    fn set_column_overwrites() {
        let mut m = sample();
        m.set_column(1, &[9.0, 8.0]).unwrap();
        assert_eq!(m.column(1), vec![9.0, 8.0]);
        assert!(m.set_column(9, &[1.0, 2.0]).is_err());
        assert!(m.set_column(0, &[1.0]).is_err());
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().shape(), (3, 2));
        assert_eq!(m.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = sample();
        let id = Matrix::identity(3);
        assert_eq!(m.matmul(&id).unwrap(), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(
            c,
            Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap()
        );
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = sample();
        assert!(a.matmul(&sample()).is_err());
    }

    #[test]
    fn matvec_known() {
        let m = sample();
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]).unwrap(), vec![-2.0, -2.0]);
        assert!(m.matvec(&[1.0]).is_err());
    }

    #[test]
    fn sub_and_max_abs_diff() {
        let a = sample();
        let b = a.map(|x| x + 0.5);
        let d = b.sub(&a).unwrap();
        assert!(d.as_slice().iter().all(|&x| (x - 0.5).abs() < 1e-12));
        assert!((a.max_abs_diff(&b).unwrap() - 0.5).abs() < 1e-12);
        assert!(a.approx_eq(&b, 0.5 + 1e-9));
        assert!(!a.approx_eq(&b, 0.4));
    }

    #[test]
    fn symmetric_check() {
        let s = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 3.0]]).unwrap();
        assert!(s.is_symmetric(0.0));
        let ns = Matrix::from_rows(&[&[1.0, 2.0], &[2.1, 3.0]]).unwrap();
        assert!(!ns.is_symmetric(1e-3));
        assert!(!sample().is_symmetric(1.0));
    }

    #[test]
    fn select_columns_and_rows() {
        let m = sample();
        let c = m.select_columns(&[2, 0]).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[3.0, 1.0], &[6.0, 4.0]]).unwrap());
        let r = m.select_rows(&[1]).unwrap();
        assert_eq!(r, Matrix::from_rows(&[&[4.0, 5.0, 6.0]]).unwrap());
        assert!(m.select_columns(&[5]).is_err());
        assert!(m.select_rows(&[5]).is_err());
        assert!(m.select_columns(&[]).is_err());
    }

    #[test]
    fn push_row_grows() {
        let mut m = Matrix::zeros(0, 0);
        m.push_row(&[1.0, 2.0]).unwrap();
        m.push_row(&[3.0, 4.0]).unwrap();
        assert_eq!(m.shape(), (2, 2));
        assert!(m.push_row(&[1.0]).is_err());
    }

    #[test]
    fn frobenius_norm_known() {
        let m = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn row_iter_yields_rows() {
        let m = sample();
        let rows: Vec<&[f64]> = m.row_iter().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn non_finite_detection() {
        let mut m = sample();
        assert!(!m.has_non_finite());
        m[(0, 1)] = f64::NAN;
        assert!(m.has_non_finite());
        m[(0, 1)] = f64::INFINITY;
        assert!(m.has_non_finite());
        m[(0, 1)] = 2.0;
        assert!(!m.has_non_finite());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let m = sample();
        let _ = m[(2, 0)];
    }

    #[test]
    fn column_iter_matches_column() {
        let m = sample();
        for j in 0..m.cols() {
            let via_iter: Vec<f64> = m.column_iter(j).collect();
            assert_eq!(via_iter, m.column(j));
        }
        assert_eq!(m.column_iter(1).len(), 2);
        // Clone allows a second pass without re-borrowing.
        let it = m.column_iter(0);
        assert_eq!(it.clone().sum::<f64>(), it.sum::<f64>());
        // Degenerate 0×n matrix: empty iterator, no panic.
        let empty = Matrix::zeros(0, 3);
        assert_eq!(empty.column_iter(2).count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn column_iter_rejects_bad_index() {
        let _ = sample().column_iter(3);
    }

    #[test]
    fn blocked_matmul_bitwise_equals_naive() {
        // At least one dimension above the 512 dispatch threshold (so the
        // register-blocked path really runs), straddling the 4×8 tile and
        // 128-row panel boundaries in each position, plus zeros so naive's
        // zero-skip is exercised against the micro-kernel's explicit
        // accumulate. Small shapes cover the dispatch-to-naive case.
        for (r, k, c) in [
            (3, 5, 4),
            (65, 70, 67),
            (5, 520, 70),
            (600, 70, 3),
            (70, 65, 580),
            (1, 530, 3),
        ] {
            let a = Matrix::from_vec(
                r,
                k,
                (0..r * k)
                    .map(|t| {
                        if t % 7 == 0 {
                            0.0
                        } else {
                            ((t as f64) * 0.61).sin()
                        }
                    })
                    .collect(),
            )
            .unwrap();
            let b = Matrix::from_vec(
                k,
                c,
                (0..k * c).map(|t| ((t as f64) * 0.37).cos()).collect(),
            )
            .unwrap();
            let blocked = a.matmul(&b).unwrap();
            let naive = a.matmul_naive(&b).unwrap();
            assert_eq!(blocked, naive, "{r}x{k} * {k}x{c}");
        }
        assert!(sample().matmul_naive(&sample()).is_err());
    }

    #[test]
    fn copy_from_reuses_buffer_and_matches_clone() {
        let src = sample();
        let mut dst = Matrix::zeros(7, 5); // larger: capacity covers src
        dst.copy_from(&src);
        assert_eq!(dst, src);
        let ptr_before = dst.as_slice().as_ptr();
        let bigger = Matrix::from_vec(2, 2, vec![9.0; 4]).unwrap();
        dst.copy_from(&bigger);
        assert_eq!(dst, bigger);
        assert_eq!(ptr_before, dst.as_slice().as_ptr(), "refill reallocated");
        // Degenerate source shapes round-trip too.
        dst.copy_from(&Matrix::zeros(0, 3));
        assert_eq!(dst.shape(), (0, 3));
        assert!(dst.is_empty());
    }

    #[test]
    fn column_chunks_cover_all_columns_in_column_iter_order() {
        let m = Matrix::from_vec(5, 7, (0..35).map(|t| t as f64 * 1.3 - 8.0).collect()).unwrap();
        for width in [1usize, 2, 3, 7, 100] {
            let mut seen = Vec::new();
            for chunk in m.column_chunks(width) {
                assert!(chunk.width() >= 1 && chunk.width() <= width);
                assert_eq!(chunk.end() - chunk.start(), chunk.width());
                for (local, j) in (chunk.start()..chunk.end()).enumerate() {
                    let streamed: Vec<f64> = chunk.row_segments().map(|seg| seg[local]).collect();
                    let strided: Vec<f64> = m.column_iter(j).collect();
                    assert_eq!(streamed, strided, "width {width} column {j}");
                }
                seen.extend(chunk.start()..chunk.end());
            }
            assert_eq!(seen, (0..m.cols()).collect::<Vec<_>>(), "width {width}");
        }
        // Degenerate shapes: no columns → no chunks; no rows → empty segments.
        assert_eq!(Matrix::zeros(3, 0).column_chunks(4).count(), 0);
        let empty_rows = Matrix::zeros(0, 3);
        let chunks: Vec<_> = empty_rows.column_chunks(2).collect();
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].row_segments().len(), 0);
        // A max_width of 0 is clamped to 1 instead of looping forever.
        assert_eq!(m.column_chunks(0).count(), m.cols());
    }

    #[test]
    fn fused_steps_sweep_bitwise_equals_sequential_rotations() {
        // Row counts around the 4-row block (remainder tail), multiple
        // steps re-using columns so later steps see earlier steps' output.
        let steps = [
            (0usize, 2usize, 0.8f64, -0.6f64),
            (1, 3, 0.28, 0.96),
            (2, 1, -0.6, 0.8),
        ];
        for rows in [0usize, 1, 3, 4, 5, 8, 11] {
            let data: Vec<f64> = (0..rows * 4).map(|t| ((t as f64) * 0.83).sin()).collect();
            let mut fused = data.clone();
            apply_steps_in_rows(&mut fused, 4, &steps);
            let mut reference = data;
            for &(i, j, c, s) in &steps {
                rotate_pair_in_rows(&mut reference, 4, i, j, c, s);
            }
            let fused_bits: Vec<u64> = fused.iter().map(|x| x.to_bits()).collect();
            let ref_bits: Vec<u64> = reference.iter().map(|x| x.to_bits()).collect();
            assert_eq!(fused_bits, ref_bits, "rows {rows}");
        }
    }

    #[test]
    fn rotate_column_pair_matches_extract_rotate_writeback() {
        use crate::Rotation2;
        let rot = Rotation2::from_degrees(312.47);
        let (s, c) = rot.radians().sin_cos();
        let mut fused =
            Matrix::from_vec(5, 4, (0..20).map(|t| t as f64 * 0.3 - 2.0).collect()).unwrap();
        let mut reference = fused.clone();
        fused.rotate_column_pair(1, 3, c, s).unwrap();
        let mut xs = reference.column(1);
        let mut ys = reference.column(3);
        rot.apply_columns(&mut xs, &mut ys).unwrap();
        reference.set_column(1, &xs).unwrap();
        reference.set_column(3, &ys).unwrap();
        assert_eq!(fused, reference); // bit-for-bit
    }

    #[test]
    fn rotate_column_pair_validates() {
        let mut m = sample();
        assert!(m.rotate_column_pair(0, 0, 1.0, 0.0).is_err());
        assert!(m.rotate_column_pair(0, 9, 1.0, 0.0).is_err());
    }

    #[test]
    fn rotate_row_pair_matches_givens_matmul() {
        use crate::rotation::{givens, Rotation2};
        let rot = Rotation2::from_degrees(147.29);
        let (s, c) = rot.radians().sin_cos();
        let acc =
            Matrix::from_vec(4, 4, (0..16).map(|t| ((t as f64) * 1.1).sin()).collect()).unwrap();
        for (i, j) in [(0usize, 2usize), (3, 1)] {
            let mut fused = acc.clone();
            fused.rotate_row_pair(i, j, c, s).unwrap();
            let g = givens(4, i, j, &rot).unwrap();
            let reference = g.matmul(&acc).unwrap();
            assert_eq!(fused, reference, "pair ({i},{j})"); // bit-for-bit
        }
    }

    #[test]
    fn rotate_row_pair_validates() {
        let mut m = sample();
        assert!(m.rotate_row_pair(1, 1, 1.0, 0.0).is_err());
        assert!(m.rotate_row_pair(0, 5, 1.0, 0.0).is_err());
    }
}
