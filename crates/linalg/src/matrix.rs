//! Dense row-major matrix of `f64` values.
//!
//! This is the *data matrix* of §3.2 of the paper: `m` rows (objects) by `n`
//! columns (attributes). Storage is a single contiguous `Vec<f64>` in
//! row-major order, which keeps row access (the hot path for distance
//! computations) cache-friendly.

use crate::{Error, Result};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major `m × n` matrix of `f64`.
///
/// Rows represent objects and columns represent attributes, matching the
/// paper's data-matrix convention (Eq. 2).
///
/// # Example
///
/// ```
/// use rbt_linalg::Matrix;
///
/// let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
/// assert_eq!(m.shape(), (2, 2));
/// assert_eq!(m[(1, 0)], 3.0);
/// assert_eq!(m.column(1), vec![2.0, 4.0]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates an `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates an `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 0.0)
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(Error::DimensionMismatch {
                expected: format!("{rows}x{cols} = {} elements", rows * cols),
                found: format!("{} elements", data.len()),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Empty`] if `rows` is empty and
    /// [`Error::DimensionMismatch`] if the rows are ragged.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        let first = rows.first().ok_or(Error::Empty)?;
        let cols = first.len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != cols {
                return Err(Error::DimensionMismatch {
                    expected: format!("row of length {cols}"),
                    found: format!("row {i} of length {}", row.len()),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Creates a matrix from an iterator of owned rows.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Matrix::from_rows`].
    pub fn from_row_iter<I, R>(iter: I) -> Result<Self>
    where
        I: IntoIterator<Item = R>,
        R: AsRef<[f64]>,
    {
        let mut data = Vec::new();
        let mut cols = None;
        let mut rows = 0usize;
        for row in iter {
            let row = row.as_ref();
            match cols {
                None => cols = Some(row.len()),
                Some(c) if c != row.len() => {
                    return Err(Error::DimensionMismatch {
                        expected: format!("row of length {c}"),
                        found: format!("row {rows} of length {}", row.len()),
                    })
                }
                _ => {}
            }
            data.extend_from_slice(row);
            rows += 1;
        }
        let cols = cols.ok_or(Error::Empty)?;
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a matrix from columns instead of rows.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Empty`] for no columns, [`Error::DimensionMismatch`]
    /// for ragged columns.
    pub fn from_columns(columns: &[&[f64]]) -> Result<Self> {
        let first = columns.first().ok_or(Error::Empty)?;
        let rows = first.len();
        for (j, col) in columns.iter().enumerate() {
            if col.len() != rows {
                return Err(Error::DimensionMismatch {
                    expected: format!("column of length {rows}"),
                    found: format!("column {j} of length {}", col.len()),
                });
            }
        }
        let cols = columns.len();
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for col in columns {
                data.push(col[i]);
            }
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows (objects).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (attributes).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` if the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// `true` if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow of the flat row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable borrow of the flat row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns its flat row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow of row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a freshly allocated `Vec`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    pub fn column(&self, j: usize) -> Vec<f64> {
        assert!(
            j < self.cols,
            "column index {j} out of bounds ({})",
            self.cols
        );
        (0..self.rows)
            .map(|i| self.data[i * self.cols + j])
            .collect()
    }

    /// Copies column `j` into `out` (clearing it first), avoiding an
    /// allocation when a workhorse buffer is available.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    pub fn column_into(&self, j: usize, out: &mut Vec<f64>) {
        assert!(
            j < self.cols,
            "column index {j} out of bounds ({})",
            self.cols
        );
        out.clear();
        out.extend((0..self.rows).map(|i| self.data[i * self.cols + j]));
    }

    /// Overwrites column `j` with `values`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `values.len() != rows`;
    /// [`Error::IndexOutOfBounds`] if `j >= cols`.
    pub fn set_column(&mut self, j: usize, values: &[f64]) -> Result<()> {
        if j >= self.cols {
            return Err(Error::IndexOutOfBounds {
                index: j,
                bound: self.cols,
            });
        }
        if values.len() != self.rows {
            return Err(Error::DimensionMismatch {
                expected: format!("{} values", self.rows),
                found: format!("{} values", values.len()),
            });
        }
        for (i, &v) in values.iter().enumerate() {
            self.data[i * self.cols + j] = v;
        }
        Ok(())
    }

    /// Iterator over rows as slices.
    pub fn row_iter(&self) -> impl ExactSizeIterator<Item = &[f64]> + '_ {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(Error::DimensionMismatch {
                expected: format!("rhs with {} rows", self.cols),
                found: format!("rhs with {} rows", rhs.rows),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order: streams over rhs rows, good locality for row-major.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `v.len() != cols`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(Error::DimensionMismatch {
                expected: format!("vector of length {}", self.cols),
                found: format!("vector of length {}", v.len()),
            });
        }
        Ok(self
            .row_iter()
            .map(|row| row.iter().zip(v).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Element-wise map into a new matrix.
    pub fn map(&self, mut f: impl FnMut(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Element-wise difference `self - rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] on shape mismatch.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(Error::DimensionMismatch {
                expected: format!("{}x{}", self.rows, self.cols),
                found: format!("{}x{}", rhs.rows, rhs.cols),
            });
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        })
    }

    /// Maximum absolute element-wise difference between two same-shape
    /// matrices; `None` on shape mismatch.
    pub fn max_abs_diff(&self, rhs: &Matrix) -> Option<f64> {
        if self.shape() != rhs.shape() {
            return None;
        }
        Some(
            self.data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max),
        )
    }

    /// `true` if every element of the two matrices differs by at most `tol`.
    pub fn approx_eq(&self, rhs: &Matrix, tol: f64) -> bool {
        matches!(self.max_abs_diff(rhs), Some(d) if d <= tol)
    }

    /// `true` if the matrix is symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Returns a new matrix consisting of the selected columns, in order.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IndexOutOfBounds`] if any index is out of range and
    /// [`Error::Empty`] if `indices` is empty.
    pub fn select_columns(&self, indices: &[usize]) -> Result<Matrix> {
        if indices.is_empty() {
            return Err(Error::Empty);
        }
        for &j in indices {
            if j >= self.cols {
                return Err(Error::IndexOutOfBounds {
                    index: j,
                    bound: self.cols,
                });
            }
        }
        let mut data = Vec::with_capacity(self.rows * indices.len());
        for i in 0..self.rows {
            let row = self.row(i);
            data.extend(indices.iter().map(|&j| row[j]));
        }
        Ok(Matrix {
            rows: self.rows,
            cols: indices.len(),
            data,
        })
    }

    /// Returns a new matrix consisting of the selected rows, in order.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IndexOutOfBounds`] if any index is out of range and
    /// [`Error::Empty`] if `indices` is empty.
    pub fn select_rows(&self, indices: &[usize]) -> Result<Matrix> {
        if indices.is_empty() {
            return Err(Error::Empty);
        }
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            if i >= self.rows {
                return Err(Error::IndexOutOfBounds {
                    index: i,
                    bound: self.rows,
                });
            }
            data.extend_from_slice(self.row(i));
        }
        Ok(Matrix {
            rows: indices.len(),
            cols: self.cols,
            data,
        })
    }

    /// Appends a row to the bottom of the matrix.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `row.len() != cols`.
    pub fn push_row(&mut self, row: &[f64]) -> Result<()> {
        if self.rows == 0 && self.cols == 0 {
            self.cols = row.len();
        }
        if row.len() != self.cols {
            return Err(Error::DimensionMismatch {
                expected: format!("row of length {}", self.cols),
                found: format!("row of length {}", row.len()),
            });
        }
        self.data.extend_from_slice(row);
        self.rows += 1;
        Ok(())
    }

    /// Frobenius norm `sqrt(sum of squares)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// `true` when any element is NaN or infinite. Numerical algorithms in
    /// this workspace validate with this at their API boundary rather than
    /// silently propagating NaNs.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(8) {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.4}", self[(i, j)])?;
            }
            if self.cols > 8 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn from_rows_shape_and_index() {
        let m = sample();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 2)], 6.0);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert!(matches!(err, Error::DimensionMismatch { .. }));
    }

    #[test]
    fn from_rows_rejects_empty() {
        assert_eq!(Matrix::from_rows(&[]).unwrap_err(), Error::Empty);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn from_columns_round_trips() {
        let m = Matrix::from_columns(&[&[1.0, 4.0], &[2.0, 5.0], &[3.0, 6.0]]).unwrap();
        assert_eq!(m, sample());
    }

    #[test]
    fn from_row_iter_matches_from_rows() {
        let m = Matrix::from_row_iter(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(m, sample());
    }

    #[test]
    fn column_extraction() {
        let m = sample();
        assert_eq!(m.column(0), vec![1.0, 4.0]);
        assert_eq!(m.column(2), vec![3.0, 6.0]);
        let mut buf = vec![0.0; 17];
        m.column_into(1, &mut buf);
        assert_eq!(buf, vec![2.0, 5.0]);
    }

    #[test]
    fn set_column_overwrites() {
        let mut m = sample();
        m.set_column(1, &[9.0, 8.0]).unwrap();
        assert_eq!(m.column(1), vec![9.0, 8.0]);
        assert!(m.set_column(9, &[1.0, 2.0]).is_err());
        assert!(m.set_column(0, &[1.0]).is_err());
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().shape(), (3, 2));
        assert_eq!(m.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = sample();
        let id = Matrix::identity(3);
        assert_eq!(m.matmul(&id).unwrap(), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(
            c,
            Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap()
        );
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = sample();
        assert!(a.matmul(&sample()).is_err());
    }

    #[test]
    fn matvec_known() {
        let m = sample();
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]).unwrap(), vec![-2.0, -2.0]);
        assert!(m.matvec(&[1.0]).is_err());
    }

    #[test]
    fn sub_and_max_abs_diff() {
        let a = sample();
        let b = a.map(|x| x + 0.5);
        let d = b.sub(&a).unwrap();
        assert!(d.as_slice().iter().all(|&x| (x - 0.5).abs() < 1e-12));
        assert!((a.max_abs_diff(&b).unwrap() - 0.5).abs() < 1e-12);
        assert!(a.approx_eq(&b, 0.5 + 1e-9));
        assert!(!a.approx_eq(&b, 0.4));
    }

    #[test]
    fn symmetric_check() {
        let s = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 3.0]]).unwrap();
        assert!(s.is_symmetric(0.0));
        let ns = Matrix::from_rows(&[&[1.0, 2.0], &[2.1, 3.0]]).unwrap();
        assert!(!ns.is_symmetric(1e-3));
        assert!(!sample().is_symmetric(1.0));
    }

    #[test]
    fn select_columns_and_rows() {
        let m = sample();
        let c = m.select_columns(&[2, 0]).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[3.0, 1.0], &[6.0, 4.0]]).unwrap());
        let r = m.select_rows(&[1]).unwrap();
        assert_eq!(r, Matrix::from_rows(&[&[4.0, 5.0, 6.0]]).unwrap());
        assert!(m.select_columns(&[5]).is_err());
        assert!(m.select_rows(&[5]).is_err());
        assert!(m.select_columns(&[]).is_err());
    }

    #[test]
    fn push_row_grows() {
        let mut m = Matrix::zeros(0, 0);
        m.push_row(&[1.0, 2.0]).unwrap();
        m.push_row(&[3.0, 4.0]).unwrap();
        assert_eq!(m.shape(), (2, 2));
        assert!(m.push_row(&[1.0]).is_err());
    }

    #[test]
    fn frobenius_norm_known() {
        let m = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn row_iter_yields_rows() {
        let m = sample();
        let rows: Vec<&[f64]> = m.row_iter().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn non_finite_detection() {
        let mut m = sample();
        assert!(!m.has_non_finite());
        m[(0, 1)] = f64::NAN;
        assert!(m.has_non_finite());
        m[(0, 1)] = f64::INFINITY;
        assert!(m.has_non_finite());
        m[(0, 1)] = 2.0;
        assert!(!m.has_non_finite());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let m = sample();
        let _ = m[(2, 0)];
    }
}
