//! Unrolled, auto-vectorizable distance kernels.
//!
//! [`Metric::distance`](crate::distance::Metric::distance) folds into a
//! single accumulator, which serialises the floating-point adds (IEEE
//! addition is not associative, so the compiler cannot reorder them). The
//! kernels here instead:
//!
//! * keep **eight** independent accumulators per row — one full AVX-512
//!   register of f64 lanes, two AVX2 registers — breaking the add
//!   dependency chain so the CPU can overlap the adds and the optimiser can
//!   use SIMD lanes,
//! * contract `d·d + acc` into a fused multiply-add **when the build
//!   target has the `fma` feature** (see `.cargo/config.toml`, which builds
//!   for the host CPU) — the cfg-gate matters because without hardware FMA
//!   `mul_add` falls back to a slow libm call,
//! * fuse "one query row against a block of rows" loops that interleave
//!   two target rows per pass, so the query stays in registers and the
//!   sixteen accumulator chains saturate the FP units.
//!
//! Reordering (and fusing) a sum changes the result in the last few ulps,
//! so kernel distances agree with the scalar [`Metric::distance`] reference
//! to ~1e-12 **relative** error, not bit-for-bit — the property tests in
//! `tests/properties.rs` pin exactly that contract. What *is* exact: every
//! kernel in this module computes a given (query, row) distance with the
//! same per-row accumulation structure, so the block kernels, the pairwise
//! kernels, and the parallel dissimilarity builder all agree bit-for-bit
//! with each other.

use crate::distance::Metric;

/// `a · b + c`, fused when the target has hardware FMA and an ordinary
/// multiply-add otherwise (the libm software fallback of `mul_add` is far
/// slower than two rounded operations).
#[inline(always)]
fn fmadd(a: f64, b: f64, c: f64) -> f64 {
    #[cfg(target_feature = "fma")]
    {
        a.mul_add(b, c)
    }
    #[cfg(not(target_feature = "fma"))]
    {
        a * b + c
    }
}

/// Squared Euclidean distance with eight independent accumulator chains.
#[inline]
pub fn squared_euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "distance between unequal-length points");
    let len = a.len().min(b.len());
    let (a, b) = (&a[..len], &b[..len]);
    let mut s = [0.0f64; 8];
    let mut ca = a.chunks_exact(8);
    let mut cb = b.chunks_exact(8);
    for (x, y) in (&mut ca).zip(&mut cb) {
        for l in 0..8 {
            let d = x[l] - y[l];
            s[l] = fmadd(d, d, s[l]);
        }
    }
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        let d = x - y;
        s[0] = fmadd(d, d, s[0]);
    }
    ((s[0] + s[1]) + (s[2] + s[3])) + ((s[4] + s[5]) + (s[6] + s[7]))
}

/// Euclidean distance via [`squared_euclidean`].
#[inline]
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    squared_euclidean(a, b).sqrt()
}

/// Manhattan (L1) distance with eight independent accumulator chains.
#[inline]
pub fn manhattan(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "distance between unequal-length points");
    let len = a.len().min(b.len());
    let (a, b) = (&a[..len], &b[..len]);
    let mut s = [0.0f64; 8];
    let mut ca = a.chunks_exact(8);
    let mut cb = b.chunks_exact(8);
    for (x, y) in (&mut ca).zip(&mut cb) {
        for l in 0..8 {
            s[l] += (x[l] - y[l]).abs();
        }
    }
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        s[0] += (x - y).abs();
    }
    ((s[0] + s[1]) + (s[2] + s[3])) + ((s[4] + s[5]) + (s[6] + s[7]))
}

/// Squared Euclidean distances from `q` to two rows at once. Each row's
/// accumulation has exactly the structure of [`squared_euclidean`], so the
/// results are bit-identical to two separate calls — the interleave only
/// buys instruction-level parallelism (sixteen independent FMA chains) and
/// one pass over `q`.
#[inline]
fn squared_two_rows(q: &[f64], ra: &[f64], rb: &[f64]) -> (f64, f64) {
    let mut sa = [0.0f64; 8];
    let mut sb = [0.0f64; 8];
    let mut cq = q.chunks_exact(8);
    let mut c1 = ra.chunks_exact(8);
    let mut c2 = rb.chunks_exact(8);
    while let (Some(x), Some(ya), Some(yb)) = (cq.next(), c1.next(), c2.next()) {
        for l in 0..8 {
            let d = x[l] - ya[l];
            sa[l] = fmadd(d, d, sa[l]);
        }
        for l in 0..8 {
            let e = x[l] - yb[l];
            sb[l] = fmadd(e, e, sb[l]);
        }
    }
    let rem = cq.remainder();
    let base = q.len() - rem.len();
    for (k, x) in rem.iter().enumerate() {
        let d = x - ra[base + k];
        sa[0] = fmadd(d, d, sa[0]);
        let e = x - rb[base + k];
        sb[0] = fmadd(e, e, sb[0]);
    }
    (
        ((sa[0] + sa[1]) + (sa[2] + sa[3])) + ((sa[4] + sa[5]) + (sa[6] + sa[7])),
        ((sb[0] + sb[1]) + (sb[2] + sb[3])) + ((sb[4] + sb[5]) + (sb[6] + sb[7])),
    )
}

/// Distance from `query` to a single row under `metric`, using the unrolled
/// kernels for the metrics that have one and the scalar
/// [`Metric::distance`] for the rest.
#[inline]
pub fn distance(metric: Metric, query: &[f64], row: &[f64]) -> f64 {
    match metric {
        Metric::Euclidean => euclidean(query, row),
        Metric::SquaredEuclidean => squared_euclidean(query, row),
        Metric::Manhattan => manhattan(query, row),
        other => other.distance(query, row),
    }
}

/// Fused kernel: distances from one `query` row to a contiguous block of
/// row-major rows.
///
/// `block` holds `out.len()` rows of `cols` values each (a sub-slice of a
/// [`Matrix`](crate::Matrix) buffer); `out[r]` receives
/// `metric(query, block_row_r)`. For the Euclidean metrics, pairs of
/// target rows are interleaved (sixteen independent accumulator chains) —
/// bit-identical to per-pair kernel calls, roughly 1.5× faster.
///
/// # Panics
///
/// Panics if `block` is shorter than `out.len() * cols`.
pub fn distances_to_block(
    metric: Metric,
    query: &[f64],
    block: &[f64],
    cols: usize,
    out: &mut [f64],
) {
    assert!(
        block.len() >= out.len() * cols,
        "block holds {} values, need {} rows of {cols}",
        block.len(),
        out.len()
    );
    if cols == 0 {
        // Zero-attribute rows are all coincident; every supported metric
        // reports distance 0 for them.
        out.fill(0.0);
        return;
    }
    match metric {
        Metric::Euclidean => {
            let rows = out.len();
            let mut row_pairs = block[..rows * cols].chunks_exact(2 * cols);
            let mut out_pairs = out.chunks_exact_mut(2);
            for (pair, slots) in (&mut row_pairs).zip(&mut out_pairs) {
                let (d2a, d2b) = squared_two_rows(query, &pair[..cols], &pair[cols..]);
                slots[0] = d2a.sqrt();
                slots[1] = d2b.sqrt();
            }
            if let [slot] = out_pairs.into_remainder() {
                *slot = squared_euclidean(query, row_pairs.remainder()).sqrt();
            }
        }
        Metric::SquaredEuclidean => {
            let rows = out.len();
            let mut row_pairs = block[..rows * cols].chunks_exact(2 * cols);
            let mut out_pairs = out.chunks_exact_mut(2);
            for (pair, slots) in (&mut row_pairs).zip(&mut out_pairs) {
                let (d2a, d2b) = squared_two_rows(query, &pair[..cols], &pair[cols..]);
                slots[0] = d2a;
                slots[1] = d2b;
            }
            if let [slot] = out_pairs.into_remainder() {
                *slot = squared_euclidean(query, row_pairs.remainder());
            }
        }
        Metric::Manhattan => {
            for (r, slot) in out.iter_mut().enumerate() {
                *slot = manhattan(query, &block[r * cols..(r + 1) * cols]);
            }
        }
        other => {
            for (r, slot) in out.iter_mut().enumerate() {
                *slot = other.distance(query, &block[r * cols..(r + 1) * cols]);
            }
        }
    }
}

/// Index and distance of the row of `block` nearest to `query` under the
/// squared-Euclidean metric (the k-means assignment kernel).
///
/// Rows are scanned in order and ties keep the earliest index; the
/// distances come from the same kernels as [`distances_to_block`], so the
/// argmin matches a scalar first-minimum loop over those values exactly —
/// which is what makes parallel k-means assignment bit-identical to the
/// serial path.
///
/// Returns `(0, f64::INFINITY)` for an empty block.
pub fn nearest_row_squared(query: &[f64], block: &[f64], cols: usize, rows: usize) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    let mut r = 0usize;
    while r + 2 <= rows {
        let (d2a, d2b) = squared_two_rows(
            query,
            &block[r * cols..(r + 1) * cols],
            &block[(r + 1) * cols..(r + 2) * cols],
        );
        if d2a < best.1 {
            best = (r, d2a);
        }
        if d2b < best.1 {
            best = (r + 1, d2b);
        }
        r += 2;
    }
    if r < rows {
        let d2 = squared_euclidean(query, &block[r * cols..(r + 1) * cols]);
        if d2 < best.1 {
            best = (r, d2);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-12 * a.abs().max(b.abs()).max(1.0)
    }

    fn sample(n: usize, seed: f64) -> Vec<f64> {
        (0..n)
            .map(|i| ((i as f64 + seed) * 0.7).sin() * 10.0)
            .collect()
    }

    #[test]
    fn kernels_match_scalar_reference() {
        // Lengths around the unroll width, including the remainder cases.
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 16, 31, 33] {
            let a = sample(n, 0.0);
            let b = sample(n, 3.0);
            assert!(close(
                squared_euclidean(&a, &b),
                Metric::SquaredEuclidean.distance(&a, &b)
            ));
            assert!(close(euclidean(&a, &b), Metric::Euclidean.distance(&a, &b)));
            assert!(close(manhattan(&a, &b), Metric::Manhattan.distance(&a, &b)));
        }
    }

    #[test]
    fn dispatch_covers_all_metrics() {
        let a = sample(9, 1.0);
        let b = sample(9, 2.0);
        for metric in [
            Metric::Euclidean,
            Metric::SquaredEuclidean,
            Metric::Manhattan,
            Metric::Chebyshev,
            Metric::Minkowski(3.0),
        ] {
            assert!(close(distance(metric, &a, &b), metric.distance(&a, &b)));
        }
    }

    #[test]
    fn block_kernel_bitwise_matches_pairwise() {
        // Odd row counts exercise the interleave tail; lengths around the
        // unroll width exercise the remainder loop.
        for cols in [3usize, 4, 6, 8, 11] {
            for rows in [0usize, 1, 2, 5, 11, 12] {
                let query = sample(cols, 0.5);
                let block: Vec<f64> = sample(rows * cols, 9.0);
                for metric in [
                    Metric::Euclidean,
                    Metric::SquaredEuclidean,
                    Metric::Manhattan,
                    Metric::Chebyshev,
                ] {
                    let mut out = vec![0.0; rows];
                    distances_to_block(metric, &query, &block, cols, &mut out);
                    for r in 0..rows {
                        let expect = distance(metric, &query, &block[r * cols..(r + 1) * cols]);
                        assert_eq!(
                            out[r].to_bits(),
                            expect.to_bits(),
                            "metric {metric} cols {cols} rows {rows} row {r}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn block_kernel_zero_cols_is_all_zero() {
        let mut out = vec![1.0; 4];
        distances_to_block(Metric::Euclidean, &[], &[], 0, &mut out);
        assert_eq!(out, vec![0.0; 4]);
    }

    #[test]
    fn nearest_row_scans_in_order() {
        let cols = 3;
        // Rows 1 and 3 are both exact matches; the earliest must win.
        let query = [1.0, 2.0, 3.0];
        let block = [
            9.0, 9.0, 9.0, //
            1.0, 2.0, 3.0, //
            0.0, 0.0, 0.0, //
            1.0, 2.0, 3.0, //
        ];
        let (idx, d2) = nearest_row_squared(&query, &block, cols, 4);
        assert_eq!(idx, 1);
        assert_eq!(d2, 0.0);
        let (idx, d2) = nearest_row_squared(&query, &[], cols, 0);
        assert_eq!(idx, 0);
        assert_eq!(d2, f64::INFINITY);
    }

    #[test]
    fn nearest_row_matches_sequential_scan() {
        // Odd and even row counts (interleave tail) against a reference
        // first-minimum scan over the same kernel distances.
        for rows in [1usize, 2, 5, 8, 13] {
            let cols = 7;
            let query = sample(cols, 2.5);
            let block: Vec<f64> = sample(rows * cols, 4.0);
            let mut best = (0usize, f64::INFINITY);
            for r in 0..rows {
                let d2 = squared_euclidean(&query, &block[r * cols..(r + 1) * cols]);
                if d2 < best.1 {
                    best = (r, d2);
                }
            }
            assert_eq!(nearest_row_squared(&query, &block, cols, rows), best);
        }
    }
}
