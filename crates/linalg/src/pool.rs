//! A small scoped fork–join pool shared by every parallel hot path.
//!
//! The workspace's parallelism needs are uniform: split a contiguous output
//! buffer (condensed distances, label arrays, neighbour lists) into disjoint
//! chunks and fill each chunk independently. [`Pool`] packages exactly that
//! on top of `std::thread::scope` — no queues, no locks, no long-lived
//! worker threads, and therefore nothing to shut down. Spawning a handful
//! of OS threads per call is noise next to the O(m²) work the callers do;
//! when a call has only one chunk (or the pool was built with one thread)
//! everything runs inline on the caller's thread, so the serial and
//! parallel paths share one code path and produce bit-identical output.
//!
//! The partition helpers are the other half of the story: [`even_chunks`]
//! splits `n` items into equal ranges, and [`pair_chunks`] splits the rows
//! of a condensed pairwise-distance build on **exact cumulative pair
//! counts**, so early rows (which own long condensed spans) do not overload
//! the first thread.

use std::num::NonZeroUsize;

/// The default thread budget: the `RBT_THREADS` environment variable when
/// it holds a positive integer, otherwise the machine's available
/// parallelism (`1` when it cannot be queried).
///
/// This is the default thread count every production call site uses; pass
/// an explicit count only to pin behaviour in tests or benches.
/// `RBT_THREADS=1` forces every pooled path onto the caller's thread — CI
/// runs the whole test suite a second time under it so the serial≡parallel
/// contracts are exercised on both sides.
pub fn default_threads() -> usize {
    match threads_from_env(std::env::var("RBT_THREADS").ok().as_deref()) {
        Some(n) => n,
        None => std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1),
    }
}

/// Parses an `RBT_THREADS`-style override: `Some(n)` for a positive
/// integer, `None` for an unset, empty, zero, or unparsable value.
fn threads_from_env(raw: Option<&str>) -> Option<usize> {
    raw.and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

/// A scoped fork–join pool with a fixed thread budget.
///
/// # Example
///
/// ```
/// use rbt_linalg::pool::{even_chunks, Pool};
///
/// let mut out = vec![0usize; 10];
/// let bounds = even_chunks(out.len(), 4);
/// Pool::new(4).for_each_chunk_mut(&mut out, &bounds, |_, start, chunk| {
///     for (k, slot) in chunk.iter_mut().enumerate() {
///         *slot = (start + k) * 2;
///     }
/// });
/// assert_eq!(out[7], 14);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Default for Pool {
    fn default() -> Self {
        Pool::auto()
    }
}

impl Pool {
    /// A pool that uses at most `threads` threads (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        Pool {
            threads: threads.max(1),
        }
    }

    /// A pool sized by [`default_threads`].
    pub fn auto() -> Self {
        Pool::new(default_threads())
    }

    /// The thread budget.
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Splits `data` at the element offsets in `boundaries` (monotone,
    /// starting at `0` and ending at `data.len()`) and runs
    /// `f(chunk_index, start_offset, chunk)` on every non-empty chunk,
    /// spawning at most [`threads`](Self::threads) scoped threads — when the
    /// caller partitions finer than the budget, chunks are grouped into
    /// contiguous batches. With one thread or one chunk the calls run
    /// inline. Chunk count and grouping never change *what* is computed,
    /// only where, so output is bit-identical for every configuration.
    ///
    /// # Panics
    ///
    /// Panics if `boundaries` is not a monotone partition of `data`.
    pub fn for_each_chunk_mut<T, F>(&self, data: &mut [T], boundaries: &[usize], f: F)
    where
        T: Send,
        F: Fn(usize, usize, &mut [T]) + Sync,
    {
        assert!(
            boundaries.first() == Some(&0) && boundaries.last() == Some(&data.len()),
            "boundaries must start at 0 and end at data.len()"
        );
        assert!(
            boundaries.windows(2).all(|w| w[0] <= w[1]),
            "boundaries must be monotone"
        );
        // Materialise the non-empty chunks once, then hand them out.
        let mut chunks: Vec<(usize, usize, &mut [T])> = Vec::new();
        {
            let mut rest = data;
            let mut consumed = 0usize;
            for (idx, w) in boundaries.windows(2).enumerate() {
                let (chunk, tail) = rest.split_at_mut(w[1] - consumed);
                consumed = w[1];
                rest = tail;
                if !chunk.is_empty() {
                    chunks.push((idx, w[0], chunk));
                }
            }
        }
        if self.threads <= 1 || chunks.len() <= 1 {
            for (idx, start, chunk) in chunks {
                f(idx, start, chunk);
            }
            return;
        }
        // Honour the thread budget even when the caller partitioned finer
        // than `threads`: group the chunks into at most `threads` contiguous
        // batches, one scoped thread per batch.
        let groups = even_chunks(chunks.len(), self.threads);
        std::thread::scope(|scope| {
            let f = &f;
            let mut rest: &mut [(usize, usize, &mut [T])] = &mut chunks;
            let mut consumed = 0usize;
            for w in groups.windows(2) {
                let (group, tail) = rest.split_at_mut(w[1] - consumed);
                consumed = w[1];
                rest = tail;
                if !group.is_empty() {
                    scope.spawn(move || {
                        for (idx, start, chunk) in group.iter_mut() {
                            f(*idx, *start, chunk);
                        }
                    });
                }
            }
        });
    }
}

/// Boundaries that split `n` items into at most `parts` equal chunks.
///
/// Returns `parts.min(n).max(1) + 1` monotone offsets starting at `0` and
/// ending at `n`; no chunk is empty (unless `n == 0`).
pub fn even_chunks(n: usize, parts: usize) -> Vec<usize> {
    let parts = parts.clamp(1, n.max(1));
    (0..=parts).map(|t| n * t / parts).collect()
}

/// Row boundaries that split a condensed pairwise build over `n` objects
/// into `parts` chunks of (near-)equal **pair count**.
///
/// Row `i` of the strict upper triangle owns `n − i − 1` pairs, so equal
/// *row* ranges would be badly skewed. This splits on exact cumulative pair
/// counts: boundary `t` is placed at the first row where the cumulative
/// count reaches `total · t / parts` (computed in integer arithmetic, no
/// drift). The result always has `parts + 1` entries, starts at `0` and
/// ends at `n`; trailing chunks may be empty when `parts > total`.
pub fn pair_chunks(n: usize, parts: usize) -> Vec<usize> {
    let parts = parts.max(1);
    let total = (n.saturating_sub(1) * n / 2) as u128;
    let mut bounds = Vec::with_capacity(parts + 1);
    bounds.push(0usize);
    let mut acc: u128 = 0;
    let mut t: u128 = 1;
    for i in 0..n {
        acc += (n - i - 1) as u128;
        while t < parts as u128 && acc * parts as u128 >= total * t {
            bounds.push(i + 1);
            t += 1;
        }
    }
    while bounds.len() < parts + 1 {
        bounds.push(n);
    }
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
        assert_eq!(Pool::auto().threads(), default_threads());
        assert_eq!(Pool::new(0).threads(), 1);
    }

    #[test]
    fn threads_env_override_parsing() {
        // Valid overrides win…
        assert_eq!(threads_from_env(Some("1")), Some(1));
        assert_eq!(threads_from_env(Some(" 8 ")), Some(8));
        // …while unset/empty/zero/garbage fall back to autodetection.
        assert_eq!(threads_from_env(None), None);
        assert_eq!(threads_from_env(Some("")), None);
        assert_eq!(threads_from_env(Some("0")), None);
        assert_eq!(threads_from_env(Some("lots")), None);
        assert_eq!(threads_from_env(Some("-2")), None);
    }

    #[test]
    fn even_chunks_cover_and_balance() {
        for (n, parts) in [(10, 3), (7, 7), (3, 8), (0, 4), (100, 1)] {
            let b = even_chunks(n, parts);
            assert_eq!(*b.first().unwrap(), 0);
            assert_eq!(*b.last().unwrap(), n);
            assert!(b.windows(2).all(|w| w[0] <= w[1]));
            if n > 0 {
                // No empty chunk, sizes within 1 of each other.
                let sizes: Vec<usize> = b.windows(2).map(|w| w[1] - w[0]).collect();
                assert!(sizes.iter().all(|&s| s >= 1));
                let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(hi - lo <= 1, "n={n} parts={parts} sizes={sizes:?}");
            }
        }
    }

    #[test]
    fn pair_chunks_exact_balance() {
        // Includes n where total % parts != 0 and skewed triangular loads.
        for (n, parts) in [(101usize, 4usize), (200, 3), (65, 8), (7, 2), (1000, 16)] {
            let b = pair_chunks(n, parts);
            assert_eq!(b.len(), parts + 1);
            assert_eq!(b[0], 0);
            assert_eq!(*b.last().unwrap(), n);
            assert!(b.windows(2).all(|w| w[0] <= w[1]));
            let total = n * (n - 1) / 2;
            let pairs_in =
                |lo: usize, hi: usize| -> usize { (lo..hi).map(|i| n - i - 1).sum::<usize>() };
            let sizes: Vec<usize> = b.windows(2).map(|w| pairs_in(w[0], w[1])).collect();
            assert_eq!(sizes.iter().sum::<usize>(), total);
            // Each chunk is within one row's worth of pairs of the ideal.
            let ideal = total / parts;
            for (t, &s) in sizes.iter().enumerate() {
                assert!(
                    s <= ideal + n,
                    "n={n} parts={parts} chunk {t} holds {s} pairs (ideal {ideal})"
                );
            }
        }
    }

    #[test]
    fn pair_chunks_degenerate_inputs() {
        assert_eq!(pair_chunks(0, 4), vec![0, 0, 0, 0, 0]);
        assert_eq!(pair_chunks(1, 2), vec![0, 1, 1]);
        let b = pair_chunks(3, 8); // more parts than pairs
        assert_eq!(b.len(), 9);
        assert_eq!(*b.last().unwrap(), 3);
    }

    #[test]
    fn for_each_chunk_mut_fills_disjointly() {
        for threads in [1usize, 2, 4, 7] {
            let mut out = vec![0usize; 23];
            let bounds = even_chunks(out.len(), threads);
            Pool::new(threads).for_each_chunk_mut(&mut out, &bounds, |_, start, chunk| {
                for (k, slot) in chunk.iter_mut().enumerate() {
                    *slot = start + k + 1;
                }
            });
            let expect: Vec<usize> = (1..=23).collect();
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn for_each_chunk_mut_honours_thread_budget() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        // 16 chunks on a 3-thread pool: correct output, and no more than 3
        // distinct worker threads observed.
        let mut out = vec![0usize; 64];
        let bounds = even_chunks(out.len(), 16);
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        Pool::new(3).for_each_chunk_mut(&mut out, &bounds, |_, start, chunk| {
            seen.lock().unwrap().insert(std::thread::current().id());
            for (k, slot) in chunk.iter_mut().enumerate() {
                *slot = start + k + 1;
            }
        });
        assert_eq!(out, (1..=64).collect::<Vec<usize>>());
        assert!(seen.lock().unwrap().len() <= 3);
    }

    #[test]
    fn for_each_chunk_mut_skips_empty_chunks() {
        let mut out = vec![0u8; 4];
        // Middle chunk is empty.
        Pool::new(3).for_each_chunk_mut(&mut out, &[0, 2, 2, 4], |_, _, chunk| {
            assert!(!chunk.is_empty());
            for v in chunk {
                *v = 1;
            }
        });
        assert_eq!(out, vec![1, 1, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "boundaries")]
    fn for_each_chunk_mut_rejects_bad_boundaries() {
        let mut out = vec![0u8; 4];
        Pool::new(2).for_each_chunk_mut(&mut out, &[0, 3], |_, _, _| {});
    }
}
